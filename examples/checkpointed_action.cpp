// Example: user-level action checkpointing (the paper's §4.2 leaves
// resilience of action state to the developer — this is the pattern).
//
// A CheckpointMergeAction persists its dictionary to a KeyValue node inside
// the same ephemeral store when it sees the "!checkpoint" control line, and
// restores from it in onCreate. Deleting and re-creating the action (e.g.
// after a simulated active-server loss) resumes from the checkpoint.
//
// Build & run:  ./build/examples/checkpointed_action
#include <cstdio>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

using namespace glider;  // NOLINT

namespace {

std::string ReadAll(core::ActionNode& node) {
  auto reader = node.OpenReader();
  std::string out;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    if (!chunk.ok() || chunk->empty()) break;
    out += chunk->ToString();
  }
  (void)(*reader)->Close();
  return out;
}

}  // namespace

int main() {
  workloads::RegisterWorkloadActions();
  auto cluster = testing::MiniCluster::Start({});
  if (!cluster.ok()) return 1;
  auto client_or = (*cluster)->NewInternalClient();
  if (!client_or.ok()) return 1;
  auto& client = **client_or;

  const std::string ckpt = "/merge_ckpt";
  auto node = core::ActionNode::Create(client, "/resilient_merge",
                                       "glider.ckpt-merge",
                                       /*interleave=*/false, AsBytes(ckpt));
  if (!node.ok()) return 1;

  // Aggregate some data, then checkpoint.
  {
    auto writer = node->OpenWriter();
    (void)(*writer)->Write("1,10\n2,20\n!checkpoint\n");
    (void)(*writer)->Close();
  }
  std::printf("state after first stream + checkpoint:\n%s",
              ReadAll(*node).c_str());

  // More data arrives but is NOT checkpointed...
  {
    auto writer = node->OpenWriter();
    (void)(*writer)->Write("1,999\n");
    (void)(*writer)->Close();
  }

  // ...and the action object is lost (server failure / eviction). Ephemeral
  // state is gone; re-creating restores the checkpoint.
  (void)node->DeleteObject();
  (void)client.Delete("/resilient_merge");
  auto revived = core::ActionNode::Create(client, "/resilient_merge",
                                          "glider.ckpt-merge",
                                          /*interleave=*/false, AsBytes(ckpt));
  if (!revived.ok()) return 1;
  std::printf("state after loss + restore (un-checkpointed 1,999 is gone):\n%s",
              ReadAll(*revived).c_str());

  // Workers replay since the checkpoint; the aggregate converges again.
  {
    auto writer = revived->OpenWriter();
    (void)(*writer)->Write("1,999\n!checkpoint\n");
    (void)(*writer)->Close();
  }
  std::printf("after replay + re-checkpoint:\n%s", ReadAll(*revived).c_str());
  (void)core::ActionNode::Delete(client, "/resilient_merge");
  return 0;
}
