// Example: the same Glider deployment over real TCP sockets on localhost —
// metadata server, data server and active server each listening on their
// own port, a client connecting through the network stack.
//
// Build & run:  ./build/examples/tcp_cluster
#include <cstdio>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

using namespace glider;  // NOLINT

int main() {
  workloads::RegisterWorkloadActions();

  testing::ClusterOptions options;
  options.use_tcp = true;
  options.data_servers = 1;
  options.active_servers = 1;
  auto cluster = testing::MiniCluster::Start(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "boot: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  std::printf("metadata server listening at %s\n",
              (*cluster)->metadata_address().c_str());
  std::printf("data server at    %s\n", (*cluster)->data(0).address().c_str());
  std::printf("active server at  %s\n", (*cluster)->active(0).address().c_str());

  auto client_or = (*cluster)->NewInternalClient();
  if (!client_or.ok()) return 1;
  auto& client = **client_or;

  // Stream 1 MiB through a file over TCP and read it back.
  (void)client.CreateNode("/tcp_demo", nk::NodeType::kFile);
  {
    auto writer = nk::FileWriter::Open(client, "/tcp_demo");
    Buffer chunk(64 * 1024);
    for (int i = 0; i < 16; ++i) (void)(*writer)->Write(chunk.span());
    (void)(*writer)->Close();
  }
  auto info = client.Lookup("/tcp_demo");
  std::printf("wrote %llu bytes through TCP\n",
              static_cast<unsigned long long>(info->size));

  // And an action round-trip over TCP.
  auto node = core::ActionNode::Create(client, "/tcp_merge", "glider.merge",
                                       /*interleave=*/true);
  if (!node.ok()) return 1;
  {
    auto writer = node->OpenWriter();
    (void)(*writer)->Write("7,40\n7,2\n");
    (void)(*writer)->Close();
  }
  auto reader = node->OpenReader();
  auto chunk = (*reader)->ReadChunk();
  std::printf("action over TCP says: %s", chunk->ToString().c_str());
  (void)(*reader)->Close();
  (void)core::ActionNode::Delete(client, "/tcp_merge");
  std::printf("done.\n");
  return 0;
}
