// Example: the data-ingestion pipeline of the paper's Table 2, end to end.
//
// Serverless workers must word-count huge text files that first need
// per-line filtering. Shipping the full files to the workers (data
// shipping) wastes the functions' limited bandwidth; Glider deploys filter
// actions next to the data, and the workers ingest only the matching lines.
//
// Build & run:  ./build/examples/wordcount_pipeline
#include <cstdio>

#include "bench/harness.h"
#include "workloads/wordcount.h"

using namespace glider;  // NOLINT

int main() {
  workloads::WordcountParams params;
  params.workers = 4;
  params.bytes_per_worker = 4 << 20;
  params.marker_rate = 0.005;

  auto cluster = testing::MiniCluster::Start(bench::PaperClusterOptions());
  if (!cluster.ok()) {
    std::fprintf(stderr, "boot: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  if (auto s = SetupWordcountInput(**cluster, params); !s.ok()) {
    std::fprintf(stderr, "setup: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("input: %zu files x %.1f MiB synthetic text\n", params.workers,
              static_cast<double>(params.bytes_per_worker) / (1 << 20));

  auto baseline = RunWordcountBaseline(**cluster, params);
  if (!baseline.ok()) return 1;
  std::printf("\ndata-shipping: %.3f s, ingested %.2f MiB, %llu matched "
              "lines, %llu words\n",
              baseline->seconds,
              static_cast<double>(baseline->ingested_bytes) / (1 << 20),
              static_cast<unsigned long long>(baseline->matched_lines),
              static_cast<unsigned long long>(baseline->total_words));

  auto glider = RunWordcountGlider(**cluster, params);
  if (!glider.ok()) return 1;
  std::printf("glider:        %.3f s, ingested %.2f MiB, %llu matched "
              "lines, %llu words\n",
              glider->seconds,
              static_cast<double>(glider->ingested_bytes) / (1 << 20),
              static_cast<unsigned long long>(glider->matched_lines),
              static_cast<unsigned long long>(glider->total_words));

  std::printf("\ningest reduced by %.2f%%, speedup %.2fx, identical results: %s\n",
              100.0 * (1.0 - static_cast<double>(glider->ingested_bytes) /
                                 static_cast<double>(baseline->ingested_bytes)),
              baseline->seconds / glider->seconds,
              glider->total_words == baseline->total_words ? "yes" : "NO");
  return 0;
}
