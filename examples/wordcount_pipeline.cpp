// Example: the data-ingestion pipeline of the paper's Table 2, end to end,
// expressed as declarative workload graphs (workloads/spec.h).
//
// Serverless workers must word-count huge text files that first need
// per-line filtering. Shipping the full files to the workers (data
// shipping) wastes the functions' limited bandwidth; Glider deploys filter
// actions next to the data, and the workers ingest only the matching lines.
// Both variants here are built from spec text through the node registry and
// run on one shared MiniCluster — exactly what `glider_load` does with the
// specs under examples/specs/.
//
// Build & run:  ./build/examples/wordcount_pipeline
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "workloads/graph.h"

using namespace glider;  // NOLINT

namespace {

// Shared [node input]: idempotent (skip_existing), so the second graph
// reuses the files the first one generated.
constexpr std::string_view kInput = R"(
[node input]
type = text.files
measured = 0
mkdir = /wc
path = /wc/in_{i}
count = 4
bytes_each = 4194304
marker_rate = 0.005
seed = 7
)";

constexpr std::string_view kBaseline = R"(
[node count]
type = faas.count_lines
workers = 4
input = /wc/in_{i}
marker = NEEDLE
)";

constexpr std::string_view kGlider = R"(
[node filters]
type = action.create
path = /wc/filter_{i}
count = 4
action = glider.filter
config = /wc/in_{i}
config = NEEDLE

[node count]
type = faas.count_lines
workers = 4
input = /wc/filter_{i}
source = action
raw = /wc/in_{i}
)";

Result<workloads::GraphReport> RunVariant(workloads::ClusterHandle& cluster,
                                          std::string_view name,
                                          std::string_view nodes) {
  // Nodes run in declaration order, so the input generator comes first.
  const std::string text =
      "name = " + std::string(name) + "\n" + std::string(kInput) +
      std::string(nodes);
  GLIDER_ASSIGN_OR_RETURN(auto spec, workloads::ParseSpec(text, "<example>"));
  GLIDER_ASSIGN_OR_RETURN(auto graph, workloads::BuildGraph(spec));
  GLIDER_ASSIGN_OR_RETURN(auto report, workloads::RunGraph(graph, cluster));
  std::printf("%-13s %.3f s, ingested %.2f MiB, %s matched lines, %s words\n",
              (graph.name + ":").c_str(), report.measured_seconds,
              static_cast<double>(report.faas_bytes) / (1 << 20),
              report.exports.at("matched").c_str(),
              report.exports.at("words").c_str());
  return report;
}

}  // namespace

int main() {
  auto cluster = testing::MiniCluster::Start(bench::PaperClusterOptions());
  if (!cluster.ok()) {
    std::fprintf(stderr, "boot: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  workloads::MiniClusterHandle handle(**cluster);
  std::printf("input: 4 files x 4.0 MiB synthetic text\n\n");

  auto baseline = RunVariant(handle, "data-shipping", kBaseline);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  auto glider = RunVariant(handle, "glider", kGlider);
  if (!glider.ok()) {
    std::fprintf(stderr, "glider: %s\n", glider.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "\ningest reduced by %.2f%%, speedup %.2fx, identical results: %s\n",
      100.0 * (1.0 - static_cast<double>(glider->faas_bytes) /
                         static_cast<double>(baseline->faas_bytes)),
      baseline->measured_seconds / glider->measured_seconds,
      glider->exports.at("words") == baseline->exports.at("words") ? "yes"
                                                                   : "NO");
  return 0;
}
