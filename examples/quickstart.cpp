// Quickstart: boot a Glider deployment in-process, use the store like a
// file system, then define and use a storage action that aggregates
// "word,count" pairs written by several producers (the paper's Listing 1).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <sstream>

#include "glider/client/action_node.h"
#include "testing/cluster.h"

using namespace glider;  // NOLINT

// 1. Define an action: arbitrary stateful code behind the four optional
//    hooks. State lives in plain object fields.
class WordMergeAction : public core::Action {
 public:
  void onWrite(core::ActionInputStream& in, core::ActionContext&) override {
    auto lines = in.Lines();
    std::string line;
    while (true) {
      auto more = lines.NextLine(line);
      if (!more.ok() || !*more) break;
      const auto comma = line.find(',');
      if (comma == std::string::npos) continue;
      counts_[line.substr(0, comma)] += std::stol(line.substr(comma + 1));
    }
  }
  void onRead(core::ActionOutputStream& out, core::ActionContext&) override {
    std::ostringstream s;
    for (const auto& [word, count] : counts_) s << word << "," << count << "\n";
    (void)out.Write(s.str());
    out.Close();
  }

 private:
  std::map<std::string, long> counts_;
};

// 2. "Deploy" the definition: register it under a name, like uploading a
//    function package to a FaaS platform.
GLIDER_REGISTER_ACTION("example.word-merge", WordMergeAction);

int main() {
  // 3. Boot a deployment: metadata server + DRAM data server + active
  //    server. (MiniCluster wires them over an in-process transport; the
  //    same servers run over TCP — see examples/tcp_cluster.cpp.)
  auto cluster = testing::MiniCluster::Start({});
  if (!cluster.ok()) {
    std::fprintf(stderr, "boot failed: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  auto client_or = (*cluster)->NewInternalClient();
  if (!client_or.ok()) return 1;
  auto& client = **client_or;

  // 4. Plain ephemeral storage: files in a hierarchical namespace.
  (void)client.CreateNode("/demo", nk::NodeType::kDirectory);
  (void)client.CreateNode("/demo/greeting", nk::NodeType::kFile);
  {
    auto writer = nk::FileWriter::Open(client, "/demo/greeting");
    (void)(*writer)->Write("hello, glider\n");
    (void)(*writer)->Close();
  }
  {
    auto value = client.GetValue("/demo/greeting");
    std::printf("file round-trip: %s", value->ToString().c_str());
  }

  // 5. A storage action: create it like any node, write partial counts from
  //    three "workers", read the aggregate back with a single transfer.
  auto node = core::ActionNode::Create(client, "/demo/merge",
                                       "example.word-merge",
                                       /*interleave=*/true);
  if (!node.ok()) return 1;

  const char* partials[] = {"apple,2\nplum,1\n", "apple,3\n", "plum,4\npear,1\n"};
  for (const char* partial : partials) {
    auto writer = node->OpenWriter();
    (void)(*writer)->Write(std::string_view(partial));
    (void)(*writer)->Close();  // returns once the action merged the stream
  }

  auto reader = node->OpenReader();
  std::printf("aggregated by the storage action:\n");
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    if (!chunk.ok() || chunk->empty()) break;
    std::printf("%s", chunk->ToString().c_str());
  }
  (void)(*reader)->Close();

  (void)core::ActionNode::Delete(client, "/demo/merge");
  std::printf("done.\n");
  return 0;
}
