// Example: the distributed sort of the paper's §7.3, end to end.
//
// Baseline: two serverless stages shuffle through intermediate files — the
// whole dataset crosses the compute<->storage link four times. Glider: the
// map stage streams straight into sorter actions, which sort and write the
// output from inside the storage system — the dataset crosses twice.
//
// Build & run:  ./build/examples/distributed_sort
#include <cstdio>

#include "bench/harness.h"
#include "workloads/sort.h"

using namespace glider;  // NOLINT

int main() {
  workloads::SortParams params;
  params.workers = 4;
  params.bytes_per_partition = 1 << 20;

  auto options = bench::PaperClusterOptions();
  options.active_servers = 2;
  options.blocks_per_server = 4096;
  auto cluster = testing::MiniCluster::Start(options);
  if (!cluster.ok()) return 1;
  if (!SetupSortInput(**cluster, params).ok()) return 1;
  std::printf("sorting %zu x %.1f MiB partitions with %zu workers\n\n",
              params.workers,
              static_cast<double>(params.bytes_per_partition) / (1 << 20),
              params.workers);

  auto baseline = RunSortBaseline(**cluster, params);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline: P1 %.3f s + P2 %.3f s = %.3f s | transferred "
              "%.1f MiB | sorted=%s (%llu records)\n",
              baseline->p1_seconds, baseline->p2_seconds,
              baseline->total_seconds,
              static_cast<double>(baseline->transfer_bytes) / (1 << 20),
              baseline->verified ? "yes" : "NO",
              static_cast<unsigned long long>(baseline->records));

  auto glider = RunSortGlider(**cluster, params);
  if (!glider.ok()) {
    std::fprintf(stderr, "%s\n", glider.status().ToString().c_str());
    return 1;
  }
  std::printf("glider:   P1 %.3f s + P2 %.3f s = %.3f s | transferred "
              "%.1f MiB | sorted=%s (%llu records)\n",
              glider->p1_seconds, glider->p2_seconds, glider->total_seconds,
              static_cast<double>(glider->transfer_bytes) / (1 << 20),
              glider->verified ? "yes" : "NO",
              static_cast<unsigned long long>(glider->records));

  std::printf("\nrun time reduced %.1f%%, data movement reduced %.1f%%\n",
              100.0 * (1.0 - glider->total_seconds / baseline->total_seconds),
              100.0 * (1.0 - static_cast<double>(glider->transfer_bytes) /
                                 static_cast<double>(baseline->transfer_bytes)));
  return 0;
}
