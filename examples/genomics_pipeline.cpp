// Example: the genomics variant-calling pipeline of the paper's §7.4, end
// to end, with sampler/manager/reader actions cooperating inside the
// storage system (including an action-to-action stream).
//
// Build & run:  ./build/examples/genomics_pipeline
#include <cstdio>

#include "bench/harness.h"
#include "workloads/genomics.h"

using namespace glider;  // NOLINT

int main() {
  workloads::GenomicsParams params;
  params.fasta_chunks = 2;
  params.fastq_chunks = 6;
  params.reducers_per_chunk = 2;
  params.records_per_mapper = 2000;

  auto options = bench::PaperClusterOptions();
  options.active_servers = 2;
  options.data_servers = 2;
  auto cluster = testing::MiniCluster::Start(options);
  if (!cluster.ok()) return 1;

  faas::S3Like::Options s3opts;
  s3opts.op_latency = std::chrono::microseconds(15'000);
  faas::S3Like s3(s3opts, (*cluster)->metrics());

  std::printf("variant calling: %zu FASTA chunks x %zu FASTQ chunks "
              "(%zu mappers), %zu reducers/chunk\n\n",
              params.fasta_chunks, params.fastq_chunks,
              params.fasta_chunks * params.fastq_chunks,
              params.reducers_per_chunk);

  auto baseline = RunGenomicsBaseline(**cluster, s3, params);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline (S3+SELECT): map %.2f s | ranges %.2f s | reduce "
              "%.2f s | total %.2f s | %llu variants\n",
              baseline->map_seconds, baseline->ranges_seconds,
              baseline->reduce_seconds, baseline->total_seconds,
              static_cast<unsigned long long>(baseline->variants));

  auto glider = RunGenomicsGlider(**cluster, s3, params);
  if (!glider.ok()) {
    std::fprintf(stderr, "%s\n", glider.status().ToString().c_str());
    return 1;
  }
  std::printf("glider:               map %.2f s | ranges %.2f s | reduce "
              "%.2f s | total %.2f s | %llu variants\n",
              glider->map_seconds, glider->ranges_seconds,
              glider->reduce_seconds, glider->total_seconds,
              static_cast<unsigned long long>(glider->variants));

  std::printf("\nidentical calls: %s | run time reduced %.1f%%\n",
              glider->variants == baseline->variants ? "yes" : "NO",
              100.0 * (1.0 - glider->total_seconds / baseline->total_seconds));
  return 0;
}
