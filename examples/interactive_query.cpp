// Example: interactive queries on stateful near-data computation (the
// paper's §3.1 names "indexing, or interactive queries" as data-bound tasks
// that belong in storage).
//
// Workers bulk-load records into an index action; a consumer then issues
// point lookups without ever shipping the dataset out of storage.
//
// Build & run:  ./build/examples/interactive_query
#include <cstdio>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

using namespace glider;  // NOLINT

int main() {
  workloads::RegisterWorkloadActions();
  auto cluster = testing::MiniCluster::Start({});
  if (!cluster.ok()) return 1;
  auto client_or = (*cluster)->NewInternalClient();
  if (!client_or.ok()) return 1;
  auto& client = **client_or;

  auto index = core::ActionNode::Create(client, "/index", "glider.index",
                                        /*interleave=*/true);
  if (!index.ok()) return 1;

  // Bulk load: 10k records streamed in, stored only inside the action.
  {
    auto writer = index->OpenWriter();
    std::string batch;
    for (int i = 0; i < 10'000; ++i) {
      batch += "put user" + std::to_string(i) + " balance=" +
               std::to_string(i * 7 % 1000) + "\n";
      if (batch.size() > 32 * 1024) {
        (void)(*writer)->Write(batch);
        batch.clear();
      }
    }
    (void)(*writer)->Write(batch);
    (void)(*writer)->Close();
  }
  auto state = index->StateBytes();
  std::printf("loaded 10000 records; index holds ~%llu bytes in storage\n",
              static_cast<unsigned long long>(*state));

  // Interactive phase: tiny queries, tiny answers.
  {
    auto writer = index->OpenWriter();
    (void)(*writer)->Write("get user42\nget user9999\nget nobody\ncount\n");
    (void)(*writer)->Close();
  }
  auto reader = index->OpenReader();
  std::printf("answers:\n");
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    if (!chunk.ok() || chunk->empty()) break;
    std::printf("%s", chunk->ToString().c_str());
  }
  (void)(*reader)->Close();
  (void)core::ActionNode::Delete(client, "/index");
  return 0;
}
