# Empty dependencies file for glider_cli.
# This may be replaced when dependencies are built.
