file(REMOVE_RECURSE
  "CMakeFiles/glider_cli.dir/glider_cli.cpp.o"
  "CMakeFiles/glider_cli.dir/glider_cli.cpp.o.d"
  "glider_cli"
  "glider_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
