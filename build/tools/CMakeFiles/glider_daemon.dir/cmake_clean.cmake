file(REMOVE_RECURSE
  "CMakeFiles/glider_daemon.dir/glider_daemon.cpp.o"
  "CMakeFiles/glider_daemon.dir/glider_daemon.cpp.o.d"
  "glider_daemon"
  "glider_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
