# Empty dependencies file for glider_daemon.
# This may be replaced when dependencies are built.
