# Empty dependencies file for wordcount_pipeline.
# This may be replaced when dependencies are built.
