file(REMOVE_RECURSE
  "CMakeFiles/checkpointed_action.dir/checkpointed_action.cpp.o"
  "CMakeFiles/checkpointed_action.dir/checkpointed_action.cpp.o.d"
  "checkpointed_action"
  "checkpointed_action.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpointed_action.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
