# Empty dependencies file for checkpointed_action.
# This may be replaced when dependencies are built.
