# Empty dependencies file for interactive_query.
# This may be replaced when dependencies are built.
