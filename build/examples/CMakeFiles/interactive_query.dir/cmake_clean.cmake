file(REMOVE_RECURSE
  "CMakeFiles/interactive_query.dir/interactive_query.cpp.o"
  "CMakeFiles/interactive_query.dir/interactive_query.cpp.o.d"
  "interactive_query"
  "interactive_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
