file(REMOVE_RECURSE
  "CMakeFiles/fig9_genomics.dir/fig9_genomics.cc.o"
  "CMakeFiles/fig9_genomics.dir/fig9_genomics.cc.o.d"
  "fig9_genomics"
  "fig9_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
