# Empty dependencies file for fig9_genomics.
# This may be replaced when dependencies are built.
