# Empty dependencies file for table2_pipeline.
# This may be replaced when dependencies are built.
