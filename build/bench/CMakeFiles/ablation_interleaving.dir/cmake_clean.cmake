file(REMOVE_RECURSE
  "CMakeFiles/ablation_interleaving.dir/ablation_interleaving.cc.o"
  "CMakeFiles/ablation_interleaving.dir/ablation_interleaving.cc.o.d"
  "ablation_interleaving"
  "ablation_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
