# Empty dependencies file for fig7_sort.
# This may be replaced when dependencies are built.
