file(REMOVE_RECURSE
  "CMakeFiles/fig7_sort.dir/fig7_sort.cc.o"
  "CMakeFiles/fig7_sort.dir/fig7_sort.cc.o.d"
  "fig7_sort"
  "fig7_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
