file(REMOVE_RECURSE
  "libglider_core.a"
)
