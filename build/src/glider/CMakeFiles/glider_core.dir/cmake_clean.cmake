file(REMOVE_RECURSE
  "CMakeFiles/glider_core.dir/action_registry.cc.o"
  "CMakeFiles/glider_core.dir/action_registry.cc.o.d"
  "CMakeFiles/glider_core.dir/active_server.cc.o"
  "CMakeFiles/glider_core.dir/active_server.cc.o.d"
  "CMakeFiles/glider_core.dir/client/action_node.cc.o"
  "CMakeFiles/glider_core.dir/client/action_node.cc.o.d"
  "CMakeFiles/glider_core.dir/stream_channel.cc.o"
  "CMakeFiles/glider_core.dir/stream_channel.cc.o.d"
  "libglider_core.a"
  "libglider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
