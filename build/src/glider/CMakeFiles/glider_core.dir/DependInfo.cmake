
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/glider/action_registry.cc" "src/glider/CMakeFiles/glider_core.dir/action_registry.cc.o" "gcc" "src/glider/CMakeFiles/glider_core.dir/action_registry.cc.o.d"
  "/root/repo/src/glider/active_server.cc" "src/glider/CMakeFiles/glider_core.dir/active_server.cc.o" "gcc" "src/glider/CMakeFiles/glider_core.dir/active_server.cc.o.d"
  "/root/repo/src/glider/client/action_node.cc" "src/glider/CMakeFiles/glider_core.dir/client/action_node.cc.o" "gcc" "src/glider/CMakeFiles/glider_core.dir/client/action_node.cc.o.d"
  "/root/repo/src/glider/stream_channel.cc" "src/glider/CMakeFiles/glider_core.dir/stream_channel.cc.o" "gcc" "src/glider/CMakeFiles/glider_core.dir/stream_channel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nodekernel/CMakeFiles/glider_nodekernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/glider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/glider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
