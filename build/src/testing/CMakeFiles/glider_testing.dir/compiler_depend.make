# Empty compiler generated dependencies file for glider_testing.
# This may be replaced when dependencies are built.
