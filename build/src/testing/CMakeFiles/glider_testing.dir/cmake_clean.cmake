file(REMOVE_RECURSE
  "CMakeFiles/glider_testing.dir/cluster.cc.o"
  "CMakeFiles/glider_testing.dir/cluster.cc.o.d"
  "libglider_testing.a"
  "libglider_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
