file(REMOVE_RECURSE
  "libglider_testing.a"
)
