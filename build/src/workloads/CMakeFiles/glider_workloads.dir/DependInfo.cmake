
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/actions.cc" "src/workloads/CMakeFiles/glider_workloads.dir/actions.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/actions.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/workloads/CMakeFiles/glider_workloads.dir/generators.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/generators.cc.o.d"
  "/root/repo/src/workloads/genomics.cc" "src/workloads/CMakeFiles/glider_workloads.dir/genomics.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/genomics.cc.o.d"
  "/root/repo/src/workloads/reduce.cc" "src/workloads/CMakeFiles/glider_workloads.dir/reduce.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/reduce.cc.o.d"
  "/root/repo/src/workloads/sort.cc" "src/workloads/CMakeFiles/glider_workloads.dir/sort.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/sort.cc.o.d"
  "/root/repo/src/workloads/wordcount.cc" "src/workloads/CMakeFiles/glider_workloads.dir/wordcount.cc.o" "gcc" "src/workloads/CMakeFiles/glider_workloads.dir/wordcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faas/CMakeFiles/glider_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/glider/CMakeFiles/glider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/glider_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/nodekernel/CMakeFiles/glider_nodekernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/glider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/glider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
