file(REMOVE_RECURSE
  "libglider_workloads.a"
)
