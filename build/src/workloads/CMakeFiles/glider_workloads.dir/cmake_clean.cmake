file(REMOVE_RECURSE
  "CMakeFiles/glider_workloads.dir/actions.cc.o"
  "CMakeFiles/glider_workloads.dir/actions.cc.o.d"
  "CMakeFiles/glider_workloads.dir/generators.cc.o"
  "CMakeFiles/glider_workloads.dir/generators.cc.o.d"
  "CMakeFiles/glider_workloads.dir/genomics.cc.o"
  "CMakeFiles/glider_workloads.dir/genomics.cc.o.d"
  "CMakeFiles/glider_workloads.dir/reduce.cc.o"
  "CMakeFiles/glider_workloads.dir/reduce.cc.o.d"
  "CMakeFiles/glider_workloads.dir/sort.cc.o"
  "CMakeFiles/glider_workloads.dir/sort.cc.o.d"
  "CMakeFiles/glider_workloads.dir/wordcount.cc.o"
  "CMakeFiles/glider_workloads.dir/wordcount.cc.o.d"
  "libglider_workloads.a"
  "libglider_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
