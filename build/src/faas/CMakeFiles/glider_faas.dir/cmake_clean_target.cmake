file(REMOVE_RECURSE
  "libglider_faas.a"
)
