file(REMOVE_RECURSE
  "CMakeFiles/glider_faas.dir/invoker.cc.o"
  "CMakeFiles/glider_faas.dir/invoker.cc.o.d"
  "CMakeFiles/glider_faas.dir/s3like.cc.o"
  "CMakeFiles/glider_faas.dir/s3like.cc.o.d"
  "libglider_faas.a"
  "libglider_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
