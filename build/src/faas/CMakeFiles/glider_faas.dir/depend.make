# Empty dependencies file for glider_faas.
# This may be replaced when dependencies are built.
