# Empty compiler generated dependencies file for glider_nodekernel.
# This may be replaced when dependencies are built.
