file(REMOVE_RECURSE
  "libglider_nodekernel.a"
)
