file(REMOVE_RECURSE
  "CMakeFiles/glider_nodekernel.dir/block_manager.cc.o"
  "CMakeFiles/glider_nodekernel.dir/block_manager.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/client/containers.cc.o"
  "CMakeFiles/glider_nodekernel.dir/client/containers.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/client/file_streams.cc.o"
  "CMakeFiles/glider_nodekernel.dir/client/file_streams.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/client/store_client.cc.o"
  "CMakeFiles/glider_nodekernel.dir/client/store_client.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/metadata_server.cc.o"
  "CMakeFiles/glider_nodekernel.dir/metadata_server.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/namespace_tree.cc.o"
  "CMakeFiles/glider_nodekernel.dir/namespace_tree.cc.o.d"
  "CMakeFiles/glider_nodekernel.dir/storage_server.cc.o"
  "CMakeFiles/glider_nodekernel.dir/storage_server.cc.o.d"
  "libglider_nodekernel.a"
  "libglider_nodekernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_nodekernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
