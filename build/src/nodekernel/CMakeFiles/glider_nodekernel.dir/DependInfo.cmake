
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nodekernel/block_manager.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/block_manager.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/block_manager.cc.o.d"
  "/root/repo/src/nodekernel/client/containers.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/containers.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/containers.cc.o.d"
  "/root/repo/src/nodekernel/client/file_streams.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/file_streams.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/file_streams.cc.o.d"
  "/root/repo/src/nodekernel/client/store_client.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/store_client.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/client/store_client.cc.o.d"
  "/root/repo/src/nodekernel/metadata_server.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/metadata_server.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/metadata_server.cc.o.d"
  "/root/repo/src/nodekernel/namespace_tree.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/namespace_tree.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/namespace_tree.cc.o.d"
  "/root/repo/src/nodekernel/storage_server.cc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/storage_server.cc.o" "gcc" "src/nodekernel/CMakeFiles/glider_nodekernel.dir/storage_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/glider_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/glider_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
