file(REMOVE_RECURSE
  "CMakeFiles/glider_net.dir/inproc_transport.cc.o"
  "CMakeFiles/glider_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/glider_net.dir/tcp_transport.cc.o"
  "CMakeFiles/glider_net.dir/tcp_transport.cc.o.d"
  "libglider_net.a"
  "libglider_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glider_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
