# Empty compiler generated dependencies file for glider_net.
# This may be replaced when dependencies are built.
