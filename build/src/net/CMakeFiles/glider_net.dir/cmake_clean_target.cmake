file(REMOVE_RECURSE
  "libglider_net.a"
)
