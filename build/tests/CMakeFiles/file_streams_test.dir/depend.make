# Empty dependencies file for file_streams_test.
# This may be replaced when dependencies are built.
