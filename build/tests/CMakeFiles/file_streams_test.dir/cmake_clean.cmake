file(REMOVE_RECURSE
  "CMakeFiles/file_streams_test.dir/file_streams_test.cc.o"
  "CMakeFiles/file_streams_test.dir/file_streams_test.cc.o.d"
  "file_streams_test"
  "file_streams_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_streams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
