# Empty dependencies file for s3like_test.
# This may be replaced when dependencies are built.
