file(REMOVE_RECURSE
  "CMakeFiles/s3like_test.dir/s3like_test.cc.o"
  "CMakeFiles/s3like_test.dir/s3like_test.cc.o.d"
  "s3like_test"
  "s3like_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
