file(REMOVE_RECURSE
  "CMakeFiles/partitioned_metadata_test.dir/partitioned_metadata_test.cc.o"
  "CMakeFiles/partitioned_metadata_test.dir/partitioned_metadata_test.cc.o.d"
  "partitioned_metadata_test"
  "partitioned_metadata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_metadata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
