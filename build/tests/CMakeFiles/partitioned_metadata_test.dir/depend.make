# Empty dependencies file for partitioned_metadata_test.
# This may be replaced when dependencies are built.
