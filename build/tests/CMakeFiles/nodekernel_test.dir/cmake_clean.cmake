file(REMOVE_RECURSE
  "CMakeFiles/nodekernel_test.dir/nodekernel_test.cc.o"
  "CMakeFiles/nodekernel_test.dir/nodekernel_test.cc.o.d"
  "nodekernel_test"
  "nodekernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nodekernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
