# Empty compiler generated dependencies file for nodekernel_test.
# This may be replaced when dependencies are built.
