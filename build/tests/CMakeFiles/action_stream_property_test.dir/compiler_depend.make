# Empty compiler generated dependencies file for action_stream_property_test.
# This may be replaced when dependencies are built.
