file(REMOVE_RECURSE
  "CMakeFiles/action_stream_property_test.dir/action_stream_property_test.cc.o"
  "CMakeFiles/action_stream_property_test.dir/action_stream_property_test.cc.o.d"
  "action_stream_property_test"
  "action_stream_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_stream_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
