# Empty compiler generated dependencies file for action_integration_test.
# This may be replaced when dependencies are built.
