file(REMOVE_RECURSE
  "CMakeFiles/action_integration_test.dir/action_integration_test.cc.o"
  "CMakeFiles/action_integration_test.dir/action_integration_test.cc.o.d"
  "action_integration_test"
  "action_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
