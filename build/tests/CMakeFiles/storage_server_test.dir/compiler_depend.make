# Empty compiler generated dependencies file for storage_server_test.
# This may be replaced when dependencies are built.
