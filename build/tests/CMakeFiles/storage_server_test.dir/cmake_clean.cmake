file(REMOVE_RECURSE
  "CMakeFiles/storage_server_test.dir/storage_server_test.cc.o"
  "CMakeFiles/storage_server_test.dir/storage_server_test.cc.o.d"
  "storage_server_test"
  "storage_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
