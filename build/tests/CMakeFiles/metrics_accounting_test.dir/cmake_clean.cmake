file(REMOVE_RECURSE
  "CMakeFiles/metrics_accounting_test.dir/metrics_accounting_test.cc.o"
  "CMakeFiles/metrics_accounting_test.dir/metrics_accounting_test.cc.o.d"
  "metrics_accounting_test"
  "metrics_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
