file(REMOVE_RECURSE
  "CMakeFiles/workload_actions_test.dir/workload_actions_test.cc.o"
  "CMakeFiles/workload_actions_test.dir/workload_actions_test.cc.o.d"
  "workload_actions_test"
  "workload_actions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_actions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
