# Empty dependencies file for workload_actions_test.
# This may be replaced when dependencies are built.
