// glider_top: a live, top(1)-style terminal view over a running Glider
// cluster (DESIGN.md "Cluster observability").
//
//   glider_top --metadata host:port [--interval ms] [--once]
//
// Each tick polls every server via ClusterMonitor (one kSeriesDump RPC per
// server), diffs the snapshots against the previous tick, and repaints:
//
//   * per-server rows: ops/s (RPCs handled), bytes in/out per second,
//     action queue depth, windowed p50/p99 of server-side RPC handling,
//     the node's load index and failure-detector verdict (phi), plus the
//     TENANT column: the principal with the most ledger CPU on that node
//     (from the "ledger.<principal>.cpu_us" rollup gauges);
//   * a per-action-slot table attributing invocations, stream bytes and
//     CPU time to individual slots (active servers only). Slots flagged by
//     the server's hotspot detector are marked with '*';
//   * a per-tenant table over the merged rollup gauges: cluster-wide CPU,
//     queue time, bytes and invocations charged to each principal.
//
// Rates come from counter/histogram deltas between consecutive polls, so
// the first tick shows only absolute values. --once prints a single
// snapshot without clearing the screen (script-friendly).
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "glider/cluster_monitor.h"
#include "net/tcp_transport.h"

using namespace glider;  // NOLINT

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* unknown = nullptr) {
  if (unknown != nullptr) {
    std::fprintf(stderr, "glider_top: unknown flag '%s'\n\n", unknown);
  }
  std::fprintf(
      stderr,
      "usage: glider_top --metadata host:port [--interval ms] [--once]\n"
      "\n"
      "  --metadata host:port   metadata server used for discovery "
      "(required)\n"
      "  --interval ms          poll/repaint interval (default 1000)\n"
      "  --once                 print a single snapshot without clearing\n"
      "                         the screen (script-friendly)\n"
      "\n"
      "Each tick shows per-server rates (ops/s, bytes/s, queue depth,\n"
      "windowed p50/p99, load index, failure-detector health), the tenant\n"
      "with the most attributed CPU per node, a per-action-slot table, and\n"
      "a cluster-wide per-tenant attribution table from the ledger rollup\n"
      "gauges. Use `glider_cli ledger` for exact per-operation breakdowns.\n");
  return 2;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// One server's digested tick: everything the row needs, plus the raw
// snapshot kept so the next tick can diff against it.
struct ServerRow {
  obs::MetricsSnapshot snapshot;
  double ops_per_s = 0;
  double bytes_in_per_s = 0;
  double bytes_out_per_s = 0;
  std::int64_t queue_depth = 0;
  std::uint64_t p50_us = 0;  // windowed over the tick, cumulative on tick 0
  std::uint64_t p99_us = 0;
  // The principal with the most attributed CPU on this node, from the
  // "ledger.<principal>.cpu_us" rollup gauges ("-" when nothing charged).
  std::string top_principal = "-";
};

// Parses "ledger.<principal>.<field>" rollup gauge names; returns the
// principal (empty when `name` is not a rollup gauge for `field`).
std::string LedgerGaugePrincipal(const std::string& name, const char* field) {
  if (!StartsWith(name, "ledger.")) return "";
  const std::string suffix = std::string(".") + field;
  if (!EndsWith(name, suffix.c_str())) return "";
  const std::size_t start = std::strlen("ledger.");
  if (name.size() <= start + suffix.size()) return "";
  return name.substr(start, name.size() - start - suffix.size());
}

// Per-slot attribution extracted from `active.slot<i>.*` metric names.
struct SlotRow {
  double invocations_per_s = 0;
  double bytes_in_per_s = 0;
  double bytes_out_per_s = 0;
  double cpu_per_s = 0;  // CPU-us per wall-second
  std::int64_t queue_depth = 0;
  std::uint64_t total_invocations = 0;
  bool hot = false;  // flagged by the server's hotspot detector
};

double Rate(std::uint64_t now, std::uint64_t prev, double dt_s) {
  if (dt_s <= 0 || now < prev) return 0;
  return static_cast<double>(now - prev) / dt_s;
}

ServerRow Digest(const obs::MetricsSnapshot& snap,
                 const obs::MetricsSnapshot* prev, double dt_s) {
  ServerRow row;
  row.snapshot = snap;

  std::map<std::string, std::uint64_t> prev_counters;
  std::map<std::string, const obs::HistogramSnapshot*> prev_hists;
  if (prev != nullptr && prev->generation == snap.generation) {
    for (const auto& [name, value] : prev->counters) {
      prev_counters[name] = value;
    }
    for (const auto& [name, hist] : prev->histograms) {
      prev_hists[name] = &hist;
    }
  }
  auto prev_counter = [&](const std::string& name) -> std::uint64_t {
    auto it = prev_counters.find(name);
    return it == prev_counters.end() ? 0 : it->second;
  };

  for (const auto& [name, value] : snap.counters) {
    if (EndsWith(name, ".bytes_in")) {
      row.bytes_in_per_s += Rate(value, prev_counter(name), dt_s);
    } else if (EndsWith(name, ".bytes_out")) {
      row.bytes_out_per_s += Rate(value, prev_counter(name), dt_s);
    }
  }
  std::int64_t top_cpu = 0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "active.queue_depth") row.queue_depth = value;
    const std::string principal = LedgerGaugePrincipal(name, "cpu_us");
    if (!principal.empty() && value > top_cpu) {
      top_cpu = value;
      row.top_principal = principal;
    }
  }
  // Server-side RPC handling: sum every rpc.server.* histogram, windowed
  // against the previous tick where possible.
  obs::HistogramSnapshot window;
  std::uint64_t ops_delta = 0;
  for (const auto& [name, hist] : snap.histograms) {
    if (!StartsWith(name, "rpc.server.")) continue;
    obs::HistogramSnapshot h = hist;
    auto it = prev_hists.find(name);
    if (it != prev_hists.end()) h = hist.DeltaSince(*it->second);
    ops_delta += h.count;
    window.Merge(h);
  }
  row.ops_per_s = dt_s > 0 ? static_cast<double>(ops_delta) / dt_s : 0;
  row.p50_us = window.Percentile(50);
  row.p99_us = window.Percentile(99);
  return row;
}

// Collects `active.slot<i>.*` metrics from one server into per-slot rows.
void DigestSlots(const obs::MetricsSnapshot& snap,
                 const obs::MetricsSnapshot* prev, double dt_s,
                 const std::string& address,
                 std::map<std::pair<std::string, int>, SlotRow>* slots) {
  std::map<std::string, std::uint64_t> prev_counters;
  if (prev != nullptr && prev->generation == snap.generation) {
    for (const auto& [name, value] : prev->counters) {
      prev_counters[name] = value;
    }
  }
  auto parse = [](const std::string& name, std::string* field) -> int {
    // active.slot<i>.<field> -> slot index, or -1.
    if (!StartsWith(name, "active.slot")) return -1;
    const std::size_t dot = name.find('.', std::strlen("active.slot"));
    if (dot == std::string::npos) return -1;
    const std::string index = name.substr(std::strlen("active.slot"),
                                          dot - std::strlen("active.slot"));
    if (index.empty() ||
        index.find_first_not_of("0123456789") != std::string::npos) {
      return -1;
    }
    *field = name.substr(dot + 1);
    return std::atoi(index.c_str());
  };
  for (const auto& [name, value] : snap.counters) {
    std::string field;
    const int slot = parse(name, &field);
    if (slot < 0) continue;
    SlotRow& row = (*slots)[{address, slot}];
    auto it = prev_counters.find(name);
    const std::uint64_t prev_value =
        it == prev_counters.end() ? 0 : it->second;
    const double rate = Rate(value, prev_value, dt_s);
    if (field == "invocations") {
      row.invocations_per_s = rate;
      row.total_invocations = value;
    } else if (field == "bytes_in") {
      row.bytes_in_per_s = rate;
    } else if (field == "bytes_out") {
      row.bytes_out_per_s = rate;
    } else if (field == "cpu_us") {
      row.cpu_per_s = rate;
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string field;
    const int slot = parse(name, &field);
    if (slot < 0) continue;
    if (field == "queue_depth") {
      (*slots)[{address, slot}].queue_depth = value;
    } else if (field == "hot") {
      (*slots)[{address, slot}].hot = value != 0;
    }
  }
}

std::string HumanBytes(double per_s) {
  char buffer[32];
  if (per_s >= 1024.0 * 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", per_s / (1024.0 * 1024.0));
  } else if (per_s >= 1024.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", per_s / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", per_s);
  }
  return buffer;
}

const char* RoleName(const ClusterMonitor::ServerSample& server) {
  if (server.is_metadata) return "metadata";
  return server.server.storage_class == nk::kActiveClass ? "active" : "storage";
}

}  // namespace

int main(int argc, char** argv) {
  std::string metadata;
  long interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metadata") == 0 && i + 1 < argc) {
      metadata = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_ms = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      return Usage(argv[i]);
    }
  }
  if (metadata.empty() || interval_ms <= 0) return Usage();

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  net::TcpTransport transport(4);
  ClusterMonitor monitor(&transport, metadata,
                         net::LinkModel::Unshaped(LinkClass::kControl,
                                                  nullptr));

  // Previous tick's per-address snapshot (for rate windows) and its wall
  // time. Unreachable servers simply have no entry.
  std::map<std::string, obs::MetricsSnapshot> prev;
  std::uint64_t prev_t_us = 0;

  while (g_stop == 0) {
    auto sample = monitor.Poll();
    const std::uint64_t now_us = obs::TraceNowMicros();
    const double dt_s = prev_t_us == 0
                            ? 0
                            : static_cast<double>(now_us - prev_t_us) / 1e6;
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
    if (!sample.ok()) {
      std::printf("glider_top: poll failed: %s\n",
                  sample.status().ToString().c_str());
    } else {
      std::printf("glider_top  %zu server(s)  interval %ld ms%s\n\n",
                  sample->servers.size(), interval_ms,
                  dt_s == 0 ? "  (first tick: absolute values)" : "");
      if (sample->stale_discovery) {
        std::printf("!! metadata unreachable: showing last known servers\n");
      }
      std::printf("%-21s %-8s %9s %9s %9s %5s %8s %8s %6s %-10s %-8s\n",
                  "ADDRESS", "ROLE", "OPS/S", "IN_B/S", "OUT_B/S", "QD",
                  "P50_US", "P99_US", "LOAD", "HEALTH", "TENANT");
      std::map<std::string, obs::MetricsSnapshot> next;
      std::map<std::pair<std::string, int>, SlotRow> slots;
      for (const auto& server : sample->servers) {
        const std::string& address = server.server.address;
        // Failure-detector verdict, e.g. "alive 0.1" or "dead 12.4". For a
        // server that was never reached the detector has no row — show a
        // plain "unreachable".
        char health[32];
        if (server.health == obs::PeerState::kUnknown) {
          std::snprintf(health, sizeof(health), "unreach");
        } else {
          std::snprintf(health, sizeof(health), "%s %.1f",
                        std::string(obs::PeerStateName(server.health)).c_str(),
                        server.phi);
        }
        if (!server.status.ok()) {
          std::printf("%-21s %-8s %52s %6s %-10s [%s]\n", address.c_str(),
                      RoleName(server), "",
                      "-", health, server.status.ToString().c_str());
          continue;
        }
        auto it = prev.find(address);
        const obs::MetricsSnapshot* prev_snap =
            it == prev.end() ? nullptr : &it->second;
        const ServerRow row =
            Digest(server.dump.snapshot, prev_snap, dt_s);
        DigestSlots(server.dump.snapshot, prev_snap, dt_s, address, &slots);
        std::printf("%-21s %-8s %9.1f %9s %9s %5" PRId64 " %8" PRIu64
                    " %8" PRIu64 " %6.2f %-10s %-8s\n",
                    address.c_str(),
                    RoleName(server),
                    row.ops_per_s, HumanBytes(row.bytes_in_per_s).c_str(),
                    HumanBytes(row.bytes_out_per_s).c_str(), row.queue_depth,
                    row.p50_us, row.p99_us, server.load_index, health,
                    row.top_principal.c_str());
        next[address] = std::move(row.snapshot);
      }
      // Per-slot attribution: only slots that have ever run a method.
      bool header = false;
      for (const auto& [key, row] : slots) {
        if (row.total_invocations == 0) continue;
        if (!header) {
          std::printf("\n%-21s %5s %9s %9s %9s %8s %5s\n", "ACTION SLOT",
                      "SLOT", "INV/S", "IN_B/S", "OUT_B/S", "CPU%", "QD");
          header = true;
        }
        // A '*' after the slot number marks a hotspot (this slot's share of
        // the node's CPU exceeds the detector's multiple of the mean).
        char slot_label[16];
        std::snprintf(slot_label, sizeof(slot_label), "%d%s", key.second,
                      row.hot ? "*" : "");
        std::printf("%-21s %5s %9.1f %9s %9s %7.1f%% %5" PRId64 "\n",
                    key.first.c_str(), slot_label, row.invocations_per_s,
                    HumanBytes(row.bytes_in_per_s).c_str(),
                    HumanBytes(row.bytes_out_per_s).c_str(),
                    row.cpu_per_s / 1e4,  // cpu-us per s -> percent of a core
                    row.queue_depth);
      }
      // Cluster-wide per-tenant attribution from the merged rollup gauges
      // (gauges sum across servers, so these are cluster totals).
      struct TenantRow {
        std::int64_t cpu_us = 0, queue_us = 0;
        std::int64_t bytes_in = 0, bytes_out = 0, invocations = 0;
      };
      std::map<std::string, TenantRow> tenants;
      for (const auto& [name, value] : sample->merged.gauges) {
        std::string principal;
        if (!(principal = LedgerGaugePrincipal(name, "cpu_us")).empty()) {
          tenants[principal].cpu_us = value;
        } else if (!(principal =
                         LedgerGaugePrincipal(name, "queue_us")).empty()) {
          tenants[principal].queue_us = value;
        } else if (!(principal =
                         LedgerGaugePrincipal(name, "bytes_in")).empty()) {
          tenants[principal].bytes_in = value;
        } else if (!(principal =
                         LedgerGaugePrincipal(name, "bytes_out")).empty()) {
          tenants[principal].bytes_out = value;
        } else if (!(principal =
                         LedgerGaugePrincipal(name, "invocations")).empty()) {
          tenants[principal].invocations = value;
        }
      }
      if (!tenants.empty()) {
        std::printf("\n%-12s %12s %12s %12s %12s %10s\n", "TENANT", "CPU_US",
                    "QUEUE_US", "BYTES_IN", "BYTES_OUT", "CALLS");
        for (const auto& [principal, t] : tenants) {
          std::printf("%-12s %12" PRId64 " %12" PRId64 " %12" PRId64
                      " %12" PRId64 " %10" PRId64 "\n",
                      principal.c_str(), t.cpu_us, t.queue_us, t.bytes_in,
                      t.bytes_out, t.invocations);
        }
      }
      prev = std::move(next);
      prev_t_us = now_us;
    }
    if (once) break;
    std::fflush(stdout);
    for (long waited = 0; waited < interval_ms && g_stop == 0; waited += 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}
