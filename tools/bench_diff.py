#!/usr/bin/env python3
"""Compare two BENCH_<name>.json snapshots (written by bench::BenchJsonWriter)
and flag regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]
                           [--json]

Scalars and histogram percentiles are compared pairwise. A metric counts as a
regression when the candidate is worse than the baseline by more than the
threshold (default 10%): larger for time/latency/bytes-like metrics, where
"worse" means bigger. Throughput-like metrics (gbps/bps/speedup) regress when
they shrink. Metrics present in only one snapshot are reported in a
"missing/new metrics" section (renames and dropped instrumentation are easy
to miss otherwise) but never flagged. With --json the full report is emitted
as one JSON object on stdout for CI annotation. Exit code is 1 if any
regression is flagged, else 0.
"""

import argparse
import json
import sys

# Metrics where bigger is better; everything else is treated as a cost.
GOOD_UP_MARKERS = ("gbps", "bps", "speedup", "throughput", "hits")


def is_good_up(name: str) -> bool:
    return any(marker in name.lower() for marker in GOOD_UP_MARKERS)


def flatten(snapshot: dict) -> dict:
    """Flattens a BENCH json into {metric_name: float}."""
    out = {}
    for key, value in snapshot.get("scalars", {}).items():
        out["scalars." + key] = float(value)
    metrics = snapshot.get("metrics", {})
    for key, value in metrics.get("counters", {}).items():
        out["counters." + key] = float(value)
    for key, value in metrics.get("gauges", {}).items():
        out["gauges." + key] = float(value)
    for name, hist in metrics.get("histograms", {}).items():
        for field in ("p50", "p95", "p99", "mean"):
            if field in hist:
                out["histograms." + name + "." + field] = float(hist[field])
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as a JSON object on stdout")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = flatten(json.load(f))
    with open(args.candidate) as f:
        cand = flatten(json.load(f))

    common = sorted(set(base) & set(cand))
    baseline_only = sorted(set(base) - set(cand))
    candidate_only = sorted(set(cand) - set(base))
    if not common:
        print("no common metrics between the two snapshots", file=sys.stderr)
        return 2

    regressions = []
    for name in common:
        b, c = base[name], cand[name]
        if b == 0:
            continue
        rel = (c - b) / abs(b)
        if is_good_up(name):
            rel = -rel  # shrinking throughput is the regression
        if rel > args.threshold:
            regressions.append((name, b, c, rel))
    regressions.sort(key=lambda r: -r[3])

    if args.json:
        report = {
            "threshold": args.threshold,
            "compared": len(common),
            "regressions": [
                {"name": name, "baseline": b, "candidate": c, "relative": rel}
                for name, b, c, rel in regressions
            ],
            "missing_metrics": baseline_only,
            "new_metrics": candidate_only,
        }
        json.dump(report, sys.stdout, indent=2)
        print()
        return 1 if regressions else 0

    print(f"compared {len(common)} metrics "
          f"({len(baseline_only)} baseline-only, "
          f"{len(candidate_only)} candidate-only)")
    if baseline_only or candidate_only:
        print("\nmissing/new metrics (not compared):")
        for name in baseline_only:
            print(f"  - {name}  (baseline only: dropped or renamed?)")
        for name in candidate_only:
            print(f"  + {name}  (candidate only: new instrumentation)")
    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%} threshold:")
        for name, b, c, rel in regressions:
            print(f"  {name}: {b:g} -> {c:g}  ({rel:+.1%})")
        return 1
    print("no regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
