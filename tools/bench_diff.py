#!/usr/bin/env python3
"""Compare BENCH_<name>.json snapshots (written by bench::BenchJsonWriter)
and flag regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json
                           [BASELINE2.json CANDIDATE2.json ...]
                           [--threshold 0.10] [--json]
                           [--informational REGEX]

Positional arguments are (baseline, candidate) pairs — one invocation can
gate several benchmark families (e.g. BENCH_contention.json and
BENCH_batching.json) with a single exit code.

Scalars and histogram percentiles are compared pairwise. A metric counts as a
regression when the candidate is worse than the baseline by more than the
threshold (default 10%): larger for time/latency/bytes-like metrics, where
"worse" means bigger. Throughput-like metrics (gbps/bps/speedup) regress when
they shrink. Metrics present in only one snapshot are reported in a
"missing/new metrics" section (renames and dropped instrumentation are easy
to miss otherwise) but never flagged. With --json the full report is emitted
on stdout for CI annotation: one JSON object for a single pair (backward
compatible), {"pairs": [...]} for several. Exit code is 1 if any regression
is flagged in any pair, else 0.
"""

import argparse
import json
import re
import sys

# Metrics where bigger is better; everything else is treated as a cost.
GOOD_UP_MARKERS = ("gbps", "bps", "speedup", "throughput", "hits", "ops_per_s",
                   "per_second")


def is_good_up(name: str) -> bool:
    return any(marker in name.lower() for marker in GOOD_UP_MARKERS)


def flatten(snapshot: dict) -> dict:
    """Flattens a BENCH json into {metric_name: float}."""
    out = {}
    for key, value in snapshot.get("scalars", {}).items():
        out["scalars." + key] = float(value)
    metrics = snapshot.get("metrics", {})
    for key, value in metrics.get("counters", {}).items():
        out["counters." + key] = float(value)
    for key, value in metrics.get("gauges", {}).items():
        out["gauges." + key] = float(value)
    for name, hist in metrics.get("histograms", {}).items():
        for field in ("p50", "p95", "p99", "mean"):
            if field in hist:
                out["histograms." + name + "." + field] = float(hist[field])
    return out


def compare(baseline_path: str, candidate_path: str, threshold: float,
            informational=None):
    """Diffs one (baseline, candidate) pair.

    Metrics whose name matches the `informational` regex are compared and
    reported but never gate (attribution breakdowns, diagnostic fields —
    useful to see, too noisy or too new to fail CI on).

    Returns (report_dict, exit_code): 0 clean, 1 regressions, 2 no overlap.
    """
    with open(baseline_path) as f:
        base = flatten(json.load(f))
    with open(candidate_path) as f:
        cand = flatten(json.load(f))

    common = sorted(set(base) & set(cand))
    baseline_only = sorted(set(base) - set(cand))
    candidate_only = sorted(set(cand) - set(base))

    regressions = []
    informational_changes = []
    for name in common:
        b, c = base[name], cand[name]
        if b == 0:
            continue
        rel = (c - b) / abs(b)
        if is_good_up(name):
            rel = -rel  # shrinking throughput is the regression
        if rel > threshold:
            if informational is not None and informational.search(name):
                informational_changes.append((name, b, c, rel))
            else:
                regressions.append((name, b, c, rel))
    regressions.sort(key=lambda r: -r[3])
    informational_changes.sort(key=lambda r: -r[3])

    report = {
        "baseline": baseline_path,
        "candidate": candidate_path,
        "threshold": threshold,
        "compared": len(common),
        "regressions": [
            {"name": name, "baseline": b, "candidate": c, "relative": rel}
            for name, b, c, rel in regressions
        ],
        "informational": [
            {"name": name, "baseline": b, "candidate": c, "relative": rel}
            for name, b, c, rel in informational_changes
        ],
        "missing_metrics": baseline_only,
        "new_metrics": candidate_only,
    }
    if not common:
        return report, 2
    return report, 1 if regressions else 0


def print_report(report: dict, threshold: float) -> None:
    print(f"compared {report['compared']} metrics "
          f"({len(report['missing_metrics'])} baseline-only, "
          f"{len(report['new_metrics'])} candidate-only)")
    if report["missing_metrics"] or report["new_metrics"]:
        print("\nmissing/new metrics (not compared):")
        for name in report["missing_metrics"]:
            print(f"  - {name}  (baseline only: dropped or renamed?)")
        for name in report["new_metrics"]:
            print(f"  + {name}  (candidate only: new instrumentation)")
    if report.get("informational"):
        print(f"\n{len(report['informational'])} informational change(s) "
              f"(reported, never gating):")
        for r in report["informational"]:
            print(f"  {r['name']}: {r['baseline']:g} -> {r['candidate']:g}"
                  f"  ({r['relative']:+.1%})")
    if report["compared"] == 0:
        print("no common metrics between the two snapshots", file=sys.stderr)
    elif report["regressions"]:
        print(f"\n{len(report['regressions'])} regression(s) over "
              f"{threshold:.0%} threshold:")
        for r in report["regressions"]:
            print(f"  {r['name']}: {r['baseline']:g} -> {r['candidate']:g}"
                  f"  ({r['relative']:+.1%})")
    else:
        print("no regressions flagged")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="+",
                        metavar="BASELINE.json CANDIDATE.json",
                        help="one or more (baseline, candidate) pairs")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--informational", metavar="REGEX", default=None,
                        help="metrics matching REGEX are compared and "
                             "reported but never flagged as regressions "
                             "(e.g. '_us_p(50|99)$' for per-component "
                             "latency attribution fields)")
    args = parser.parse_args()

    informational = (re.compile(args.informational)
                     if args.informational else None)

    if len(args.snapshots) % 2 != 0:
        print("expected an even number of snapshot paths "
              "(BASELINE CANDIDATE pairs)", file=sys.stderr)
        return 2
    pairs = [(args.snapshots[i], args.snapshots[i + 1])
             for i in range(0, len(args.snapshots), 2)]

    reports = []
    exit_code = 0
    for baseline, candidate in pairs:
        report, code = compare(baseline, candidate, args.threshold,
                               informational)
        reports.append(report)
        exit_code = max(exit_code, code)

    if args.json:
        payload = reports[0] if len(reports) == 1 else {"pairs": reports}
        json.dump(payload, sys.stdout, indent=2)
        print()
        return exit_code

    for i, report in enumerate(reports):
        if len(reports) > 1:
            if i:
                print()
            print(f"== {report['baseline']} vs {report['candidate']} ==")
        print_report(report, args.threshold)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
