// glider_daemon: runs one Glider server role over TCP, for multi-process /
// multi-host deployments.
//
//   glider_daemon metadata --listen 0.0.0.0:7000
//   glider_daemon storage  --metadata 10.0.0.1:7000 --blocks 1024 \
//                          --block-size 1048576 [--class 0] [--listen ...]
//   glider_daemon active   --metadata 10.0.0.1:7000 --slots 32 [--listen ...]
//
// Active daemons serve the action definitions compiled into this binary
// (the workload library); a deployment registers its own definitions by
// linking them in and rebuilding — the "upload a package" step of §6.2.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <semaphore>
#include <set>
#include <string>

#include "common/profiler.h"
#include "common/time_series.h"
#include "common/trace.h"
#include "glider/active_server.h"
#include "glider/health_monitor.h"
#include "net/http_metrics.h"
#include "net/rpc_obs.h"
#include "net/tcp_transport.h"
#include "nodekernel/metadata_server.h"
#include "nodekernel/storage_server.h"
#include "workloads/actions.h"

using namespace glider;  // NOLINT

namespace {

std::binary_semaphore g_stop{0};

void HandleSignal(int) { g_stop.release(); }

// Every flag the daemon understands; an argument outside this set is an
// error naming the flag, not a silent no-op.
const std::set<std::string>& KnownFlags() {
  static const std::set<std::string> kFlags = {
      "listen", "metadata", "blocks", "block-size", "class", "slots",
      "partition", "trace", "sample-ms", "metrics-listen", "profile",
      "profile-hz", "health-ms", "flush-us", "coalesce-bytes",
      "coalesce-frames"};
  return kFlags;
}

Result<std::map<std::string, std::string>> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
      return Status::InvalidArgument("unexpected argument '" + arg +
                                     "' (flags look like --name value)");
    }
    const std::string name = arg.substr(2);
    if (KnownFlags().count(name) == 0) {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag '" + arg + "' needs a value");
    }
    flags[name] = argv[++i];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& name, const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: glider_daemon <metadata|storage|active> [flags]\n"
      "\n"
      "roles:\n"
      "  metadata  namespace + block manager partition\n"
      "            --listen host:port     bind address (default 127.0.0.1:0)\n"
      "            --partition P          partition index (default 0)\n"
      "  storage   block storage server\n"
      "            --metadata host:port   metadata server to register with "
      "(required)\n"
      "            --listen host:port     preferred data address\n"
      "            --blocks N             block count (default 256)\n"
      "            --block-size B         block size in bytes (default "
      "1048576)\n"
      "            --class C              storage class id (default 0)\n"
      "  active    action execution server\n"
      "            --metadata host:port   metadata server to register with "
      "(required)\n"
      "            --listen host:port     preferred data address\n"
      "            --slots N              concurrent action slots (default "
      "16)\n"
      "\n"
      "observability (any role):\n"
      "  --trace 1                enable span recording + latency histograms\n"
      "  --sample-ms N            start the time-series sampler at this "
      "cadence (implies --trace)\n"
      "  --metrics-listen h:p     serve GET /metrics (Prometheus text)\n"
      "  --profile 1              arm the sampling CPU/off-CPU profiler\n"
      "  --profile-hz N           profiler sample rate (implies --profile; "
      "default 99)\n"
      "  --health-ms N            heartbeat the cluster + phi-accrual failure "
      "detection\n"
      "\n"
      "transport (any role):\n"
      "  --flush-us N             hold small frames up to N us for batched "
      "sends (default 0)\n"
      "  --coalesce-bytes B       max bytes per coalesced send batch\n"
      "  --coalesce-frames N      max frames per coalesced send batch\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string role = argv[1];
  if (role == "--help" || role == "-h" || role == "help") return Usage();
  auto parsed = ParseFlags(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "glider_daemon: %s\n",
                 parsed.status().message().c_str());
    return Usage();
  }
  const auto flags = std::move(parsed).value();

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  workloads::RegisterWorkloadActions();
  // --trace 1 turns on span recording + latency histograms (GLIDER_TRACE=1
  // in the environment does the same); dump via glider_cli stats/trace-dump.
  if (FlagOr(flags, "trace", "0") == "1") obs::SetEnabled(true);
  // --sample-ms N starts the in-process time-series sampler (kSeriesDump /
  // glider_top read its rings). Implies --trace: rates over disabled
  // histograms would be all zeros.
  const long sample_ms = std::stol(FlagOr(flags, "sample-ms", "0"));
  if (sample_ms > 0) {
    obs::SetEnabled(true);
    obs::TimeSeriesSampler::Options sopts;
    sopts.interval = std::chrono::milliseconds(sample_ms);
    const Status started = obs::TimeSeriesSampler::Global().Start(sopts);
    if (!started.ok()) {
      std::fprintf(stderr, "sampler: %s\n", started.ToString().c_str());
      return 1;
    }
  }
  // --profile 1 arms the sampling profiler at boot (--profile-hz overrides
  // the 99 Hz default; setting it implies --profile). Implies --trace so
  // dispatch sites install attribution tags. Dump via glider_cli profile.
  const long profile_hz = std::stol(FlagOr(flags, "profile-hz", "0"));
  if (FlagOr(flags, "profile", "0") == "1" || profile_hz > 0) {
    obs::SetEnabled(true);
    obs::SamplingProfiler::Options popts;
    if (profile_hz > 0) popts.hz = static_cast<int>(profile_hz);
    const Status started = obs::SamplingProfiler::Global().Start(popts);
    if (!started.ok()) {
      std::fprintf(stderr, "profiler: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("profiler sampling at %d Hz%s\n", popts.hz,
                obs::SamplingProfiler::SignalSamplingSupported()
                    ? ""
                    : " (signal sampling unavailable: wait samples only)");
  }
  auto metrics = std::make_shared<Metrics>();
  // --metrics-listen host:port serves GET /metrics (Prometheus text). Each
  // scrape re-mirrors the data-plane gauges and recomputes the load index,
  // so Prometheus sees the same values kStatsDump / kSeriesDump would.
  std::unique_ptr<net::HttpMetricsServer> metrics_http;
  const std::string metrics_listen = FlagOr(flags, "metrics-listen", "");
  if (!metrics_listen.empty()) {
    auto http = net::HttpMetricsServer::Listen(
        metrics_listen, obs::MetricsRegistry::Global(), {{"role", role}},
        [m = metrics.get()] { net::RefreshMirroredGauges(m); });
    if (!http.ok()) {
      std::fprintf(stderr, "metrics-listen: %s\n",
                   http.status().ToString().c_str());
      return 1;
    }
    metrics_http = std::move(http).value();
    std::printf("metrics at http://%s/metrics\n",
                metrics_http->address().c_str());
  }
  // Send-coalescer knobs (DESIGN.md §8): --flush-us 0 (default) flushes
  // opportunistically — batching emerges only under load; --flush-us N>0
  // holds small frames up to N µs for bigger sendmsg batches. The byte /
  // frame budgets cap a batch in either mode.
  net::TcpOptions topts;
  topts.flush_us =
      static_cast<std::uint32_t>(std::stoul(FlagOr(flags, "flush-us", "0")));
  topts.coalesce_bytes = std::stoul(
      FlagOr(flags, "coalesce-bytes", std::to_string(topts.coalesce_bytes)));
  topts.coalesce_frames = std::stoul(
      FlagOr(flags, "coalesce-frames", std::to_string(topts.coalesce_frames)));
  net::TcpTransport transport(16, topts);
  const std::string listen = FlagOr(flags, "listen", "127.0.0.1:0");
  const std::string metadata = FlagOr(flags, "metadata", "");

  std::unique_ptr<net::Listener> listener;  // keeps the service alive
  std::shared_ptr<nk::StorageServer> storage;
  std::shared_ptr<core::ActiveServer> active;

  if (role == "metadata") {
    auto server = std::make_shared<nk::MetadataServer>(
        &transport, metrics,
        static_cast<std::uint32_t>(std::stoul(FlagOr(flags, "partition", "0"))));
    auto bound = transport.Listen(listen, server);
    if (!bound.ok()) {
      std::fprintf(stderr, "listen: %s\n", bound.status().ToString().c_str());
      return 1;
    }
    listener = std::move(bound).value();
    std::printf("metadata server listening at %s\n",
                listener->address().c_str());
  } else if (role == "storage" || role == "active") {
    if (metadata.empty()) {
      std::fprintf(stderr, "--metadata host:port is required\n");
      return Usage();
    }
    if (role == "storage") {
      nk::StorageServer::Options options;
      options.storage_class = static_cast<nk::StorageClassId>(
          std::stoul(FlagOr(flags, "class", "0")));
      options.num_blocks =
          static_cast<std::uint32_t>(std::stoul(FlagOr(flags, "blocks", "256")));
      options.block_size = std::stoull(FlagOr(flags, "block-size", "1048576"));
      options.preferred_address = listen;
      storage = std::make_shared<nk::StorageServer>(options, metrics);
      const Status started = storage->Start(transport, metadata);
      if (!started.ok()) {
        std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
        return 1;
      }
      std::printf("storage server (class %s) at %s, registered with %s\n",
                  FlagOr(flags, "class", "0").c_str(),
                  storage->address().c_str(), metadata.c_str());
    } else {
      core::ActiveServer::Options options;
      options.num_slots =
          static_cast<std::uint32_t>(std::stoul(FlagOr(flags, "slots", "16")));
      options.preferred_address = listen;
      active = std::make_shared<core::ActiveServer>(
          options,
          std::shared_ptr<core::ActionRegistry>(
              &core::ActionRegistry::Global(), [](core::ActionRegistry*) {}),
          metrics);
      const Status started = active->Start(transport, metadata);
      if (!started.ok()) {
        std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
        return 1;
      }
      std::printf("active server (%s slots) at %s, registered with %s\n",
                  FlagOr(flags, "slots", "16").c_str(),
                  active->address().c_str(), metadata.c_str());
    }
  } else {
    return Usage();
  }

  // --health-ms N runs an in-process HealthMonitor: heartbeat every server
  // at this cadence, feed a phi-accrual failure detector, and publish the
  // verdicts as "health.phi.<address>" gauges (Prometheus: glider_health_phi)
  // plus the health board served by kHealthDump (`glider_cli health <addr>`).
  std::unique_ptr<HealthMonitor> health;
  const long health_ms = std::stol(FlagOr(flags, "health-ms", "0"));
  if (health_ms > 0) {
    HealthMonitor::Options hopts;
    hopts.interval = std::chrono::milliseconds(health_ms);
    // A metadata daemon discovers through itself; other roles through the
    // metadata server they registered with.
    const std::string hub =
        role == "metadata" ? listener->address() : metadata;
    health = std::make_unique<HealthMonitor>(&transport, hub, hopts);
    const Status started = health->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "health: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("health monitor heartbeating every %ld ms via %s\n",
                health_ms, hub.c_str());
  }

  std::printf("running; Ctrl-C to stop\n");
  // Scripts poll the log for the bound addresses; don't sit on them in the
  // stdio buffer while blocked below.
  std::fflush(stdout);
  g_stop.acquire();
  std::printf("shutting down\n");
  // The listeners hold shared_ptrs back to the services; stop explicitly
  // so worker/method threads are joined before process teardown. The health
  // monitor goes first — it holds connections into the transport.
  if (health) health->Stop();
  if (storage) storage->Stop();
  if (active) active->Stop();
  listener.reset();
  return 0;
}
