// glider_trace: cluster-wide trace assembly and latency attribution
// (DESIGN.md §11).
//
//   glider_trace assemble      [--metadata ADDR | --json FILE ...] [--out F]
//   glider_trace critical-path [--metadata ADDR | --json FILE ...]
//                              [--trace-id HEX]
//   glider_trace top           [--metadata ADDR | --json FILE ...]
//                              [--by-component]
//
// Live mode (--metadata): discovers every server, aligns their clocks by
// RTT-midpoint sampling over kHeartbeat (each node's trace timebase is
// steady-microseconds since *that process* started, so offsets are whole
// boot-time deltas), fetches every kTraceDump, and merges the spans into
// cross-node traces. Offline mode (--json, repeatable): parses Chrome/
// Perfetto JSON dumps (e.g. from `glider_cli trace` or `glider_load
// --trace-out`) and aligns nodes causally via cross-dump RPC span pairs.
//
//   assemble       one row per trace; --out writes the merged Perfetto
//                  JSON (one pid per node, shared aligned timeline)
//   critical-path  the blocking critical path of one trace (slowest by
//                  default): which span, on which node, owns each slice
//                  of the end-to-end window, and the per-bucket totals
//   top            per-component totals across all traces: where cluster
//                  time actually goes (client/net/server/queue/run/channel)
//
// --check turns assemble into a smoke gate: fails unless at least one
// trace assembled, the slowest has a non-empty critical path, and every
// trace's bucket sum is within 5% of its end-to-end latency.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/trace_assemble.h"
#include "glider/cluster_monitor.h"
#include "net/tcp_transport.h"

using namespace glider;         // NOLINT
using glider::bench::Fmt;
using glider::bench::Table;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: glider_trace COMMAND [options]\n"
      "commands:\n"
      "  assemble         list assembled traces (one row per trace)\n"
      "  critical-path    blocking critical path of one trace\n"
      "  top              per-component time across all traces\n"
      "options:\n"
      "  --metadata ADDR  live cluster: align clocks + fetch every server's\n"
      "                   kTraceDump\n"
      "  --json FILE      offline: parse a Chrome-JSON dump (repeatable;\n"
      "                   nodes align causally via cross-dump RPC pairs)\n"
      "  --out FILE       write merged Perfetto JSON (aligned timeline,\n"
      "                   one pid per node)\n"
      "  --clear          clear each server's span buffer after dumping\n"
      "  --align-samples N  heartbeat samples per server (default 8)\n"
      "  --trace-id HEX   pick the trace (default: slowest end-to-end)\n"
      "  --limit N        max table rows (default 32)\n"
      "  --by-component   aggregate `top` by attribution bucket (default)\n"
      "  --check          exit nonzero unless >=1 trace assembled, the\n"
      "                   critical path is non-empty, and bucket sums are\n"
      "                   within 5%% of end-to-end\n");
  return 2;
}

std::string HexId(std::uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// File stem ("out/node1.json" -> "node1") names offline dumps' nodes.
std::string Stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name;
}

struct Options {
  std::string command;
  std::string metadata;
  std::vector<std::string> json_files;
  std::string out;
  bool clear = false;
  int align_samples = 8;
  std::optional<std::uint64_t> trace_id;
  std::size_t limit = 32;
  bool check = false;
};

// Builds the assembler from either source; returns false on a hard error
// (no spans could be loaded at all).
bool LoadSpans(const Options& options, obs::TraceAssembler& assembler) {
  if (!options.json_files.empty()) {
    bool any = false;
    for (const auto& path : options.json_files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "glider_trace: cannot read %s\n", path.c_str());
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string json = buf.str();
      auto spans = obs::ParseChromeTraceJson(json);
      if (!spans.ok()) {
        std::fprintf(stderr, "glider_trace: %s: %s\n", path.c_str(),
                     spans.status().ToString().c_str());
        continue;
      }
      assembler.AddSpans(Stem(path), std::move(spans).value());
      any = true;
    }
    return any;
  }

  net::TcpTransport transport(2);
  ClusterMonitor monitor(&transport, options.metadata,
                         net::LinkModel::Unshaped(LinkClass::kControl,
                                                  nullptr));
  auto offsets = monitor.AlignClocks(options.align_samples);
  if (!offsets.ok()) {
    std::fprintf(stderr, "glider_trace: clock alignment failed: %s\n",
                 offsets.status().ToString().c_str());
    return false;
  }
  for (const auto& [address, offset] : offsets.value()) {
    std::fprintf(stderr, "  clock %s: offset %+lld us (min rtt %llu us, "
                 "error <= %llu us)\n",
                 address.c_str(),
                 static_cast<long long>(offset.offset_us),
                 static_cast<unsigned long long>(offset.min_rtt_us),
                 static_cast<unsigned long long>((offset.min_rtt_us + 1) / 2));
  }
  bool any = false;
  for (const auto& [address, offset] : offsets.value()) {
    auto json = monitor.FetchTraceJson(address, options.clear);
    if (!json.ok()) {
      std::fprintf(stderr, "glider_trace: %s: trace dump failed: %s\n",
                   address.c_str(), json.status().ToString().c_str());
      continue;
    }
    auto spans = obs::ParseChromeTraceJson(json.value());
    if (!spans.ok()) {
      std::fprintf(stderr, "glider_trace: %s: bad trace JSON: %s\n",
                   address.c_str(), spans.status().ToString().c_str());
      continue;
    }
    assembler.AddSpans(address, std::move(spans).value(), offset.offset_us);
    any = true;
  }
  return any;
}

const obs::AssembledTrace* PickTrace(
    const std::vector<obs::AssembledTrace>& traces,
    const std::optional<std::uint64_t>& wanted) {
  if (wanted) {
    for (const auto& trace : traces) {
      if (trace.trace_id == *wanted) return &trace;
    }
    return nullptr;
  }
  const obs::AssembledTrace* slowest = nullptr;
  for (const auto& trace : traces) {
    if (slowest == nullptr || trace.total_us > slowest->total_us) {
      slowest = &trace;
    }
  }
  return slowest;
}

// The dominant bucket of one trace ("server 61%"), for the assemble table.
std::string TopBucket(const obs::AssembledTrace& trace) {
  const std::string* best = nullptr;
  std::uint64_t best_us = 0;
  for (const auto& [bucket, us] : trace.bucket_us) {
    if (best == nullptr || us > best_us) {
      best = &bucket;
      best_us = us;
    }
  }
  if (best == nullptr || trace.total_us == 0) return "-";
  return *best + " " +
         Fmt(100.0 * static_cast<double>(best_us) /
                 static_cast<double>(trace.total_us),
             0) +
         "%";
}

int CmdAssemble(const Options& options,
                const std::vector<obs::AssembledTrace>& traces) {
  Table table({"Trace", "Root", "Nodes", "Spans", "Orphans", "Total (ms)",
               "Top bucket"});
  std::size_t rows = 0;
  for (const auto& trace : traces) {
    if (rows++ >= options.limit) break;
    table.AddRow({HexId(trace.trace_id),
                  trace.spans[trace.root].span.name,
                  std::to_string(trace.nodes),
                  std::to_string(trace.spans.size()),
                  std::to_string(trace.orphans),
                  Fmt(static_cast<double>(trace.total_us) / 1000.0, 3),
                  TopBucket(trace)});
  }
  table.Print();
  if (traces.size() > options.limit) {
    std::printf("(+%zu more; --limit to see them)\n",
                traces.size() - options.limit);
  }
  return 0;
}

int CmdCriticalPath(const Options& options,
                    const std::vector<obs::AssembledTrace>& traces) {
  const obs::AssembledTrace* trace = PickTrace(traces, options.trace_id);
  if (trace == nullptr) {
    std::fprintf(stderr, "glider_trace: trace not found\n");
    return 1;
  }
  std::printf("trace %s  root %s  %zu spans on %zu nodes  %.3f ms\n",
              HexId(trace->trace_id).c_str(),
              trace->spans[trace->root].span.name.c_str(),
              trace->spans.size(), trace->nodes,
              static_cast<double>(trace->total_us) / 1000.0);

  Table table({"t+ (us)", "dur (us)", "bucket", "span", "node"});
  std::size_t rows = 0;
  for (const auto& segment : trace->critical_path) {
    if (rows++ >= options.limit) break;
    const auto& span = trace->spans[segment.span];
    table.AddRow({std::to_string(segment.start_us - trace->start_us),
                  std::to_string(segment.end_us - segment.start_us),
                  segment.bucket, span.span.name,
                  span.node.empty() ? "(assembled)" : span.node});
  }
  table.Print();
  if (trace->critical_path.size() > options.limit) {
    std::printf("(+%zu more segments; --limit to see them)\n",
                trace->critical_path.size() - options.limit);
  }

  std::printf("\n");
  Table buckets({"bucket", "us", "share"});
  std::uint64_t sum = 0;
  for (const auto& [bucket, us] : trace->bucket_us) {
    sum += us;
    buckets.AddRow({bucket, std::to_string(us),
                    trace->total_us == 0
                        ? "-"
                        : Fmt(100.0 * static_cast<double>(us) /
                                  static_cast<double>(trace->total_us),
                              1) + "%"});
  }
  buckets.AddRow({"total", std::to_string(sum),
                  "e2e " + std::to_string(trace->total_us) + " us"});
  buckets.Print();
  return 0;
}

int CmdTop(const Options& options,
           const std::vector<obs::AssembledTrace>& traces) {
  // Per-bucket per-trace samples: totals tell where cluster time goes,
  // percentiles how it is distributed across traces.
  std::map<std::string, std::vector<std::uint64_t>> samples;
  std::uint64_t e2e_sum = 0;
  for (const auto& trace : traces) {
    e2e_sum += trace.total_us;
    for (const auto& [bucket, us] : trace.bucket_us) {
      samples[bucket].push_back(us);
    }
  }
  struct Row {
    std::string bucket;
    std::uint64_t total = 0;
    double p50 = 0, p99 = 0;
  };
  std::vector<Row> rows;
  for (const auto& [bucket, values] : samples) {
    Row row;
    row.bucket = bucket;
    for (const std::uint64_t us : values) row.total += us;
    row.p50 = obs::PercentileUs(values, 50);
    row.p99 = obs::PercentileUs(values, 99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total > b.total; });

  std::printf("%zu traces, %.3f ms end-to-end total\n", traces.size(),
              static_cast<double>(e2e_sum) / 1000.0);
  Table table({"bucket", "total (us)", "share", "p50/trace (us)",
               "p99/trace (us)"});
  std::size_t printed = 0;
  for (const auto& row : rows) {
    if (printed++ >= options.limit) break;
    table.AddRow({row.bucket, std::to_string(row.total),
                  e2e_sum == 0 ? "-"
                               : Fmt(100.0 * static_cast<double>(row.total) /
                                         static_cast<double>(e2e_sum),
                                     1) + "%",
                  Fmt(row.p50, 0), Fmt(row.p99, 0)});
  }
  table.Print();
  return 0;
}

// --check: the CI smoke gate. Bucket sums are exact by construction (the
// critical path partitions the root window), so a drift beyond 5% means
// assembly itself broke.
int RunCheck(const std::vector<obs::AssembledTrace>& traces) {
  if (traces.empty()) {
    std::fprintf(stderr, "CHECK FAILED: no traces assembled\n");
    return 1;
  }
  const obs::AssembledTrace* slowest = PickTrace(traces, std::nullopt);
  if (slowest->critical_path.empty()) {
    std::fprintf(stderr, "CHECK FAILED: slowest trace %s has an empty "
                 "critical path\n", HexId(slowest->trace_id).c_str());
    return 1;
  }
  for (const auto& trace : traces) {
    if (trace.total_us == 0) continue;
    std::uint64_t sum = 0;
    for (const auto& [bucket, us] : trace.bucket_us) sum += us;
    const double drift =
        std::abs(static_cast<double>(sum) -
                 static_cast<double>(trace.total_us)) /
        static_cast<double>(trace.total_us);
    if (drift > 0.05) {
      std::fprintf(stderr,
                   "CHECK FAILED: trace %s bucket sum %llu vs e2e %llu "
                   "(drift %.1f%%)\n",
                   HexId(trace.trace_id).c_str(),
                   static_cast<unsigned long long>(sum),
                   static_cast<unsigned long long>(trace.total_us),
                   drift * 100.0);
      return 1;
    }
  }
  std::printf("check ok: %zu traces, bucket sums match end-to-end\n",
              traces.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "glider_trace: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metadata") {
      options.metadata = value();
    } else if (arg == "--json") {
      options.json_files.push_back(value());
    } else if (arg == "--out") {
      options.out = value();
    } else if (arg == "--clear") {
      options.clear = true;
    } else if (arg == "--align-samples") {
      options.align_samples = std::atoi(value());
    } else if (arg == "--trace-id") {
      options.trace_id = std::strtoull(value(), nullptr, 16);
    } else if (arg == "--limit") {
      options.limit = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--by-component") {
      // `top`'s only aggregation mode; accepted for explicitness.
    } else if (arg == "--check") {
      options.check = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "glider_trace: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else if (options.command.empty()) {
      options.command = arg;
    } else {
      std::fprintf(stderr, "glider_trace: unexpected argument '%s'\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (options.command != "assemble" && options.command != "critical-path" &&
      options.command != "top") {
    return Usage();
  }
  if (options.metadata.empty() == options.json_files.empty()) {
    std::fprintf(stderr,
                 "glider_trace: need exactly one of --metadata or --json\n");
    return Usage();
  }

  obs::TraceAssembler assembler;
  if (!LoadSpans(options, assembler)) return 1;
  const std::vector<obs::AssembledTrace> traces = assembler.Assemble();
  for (const auto& node : assembler.unaligned_nodes()) {
    std::fprintf(stderr,
                 "warning: node %s has no clock estimate (no heartbeat "
                 "sample, no cross-node span pair); taken at offset 0\n",
                 node.c_str());
  }

  if (!options.out.empty()) {
    const std::string json = obs::ToPerfettoJson(traces);
    std::FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "glider_trace: cannot write %s\n",
                   options.out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu traces)\n", options.out.c_str(),
                 traces.size());
  }

  int rc;
  if (options.command == "assemble") {
    rc = CmdAssemble(options, traces);
  } else if (options.command == "critical-path") {
    rc = CmdCriticalPath(options, traces);
  } else {
    rc = CmdTop(options, traces);
  }
  if (rc == 0 && options.check) rc = RunCheck(traces);
  return rc;
}
