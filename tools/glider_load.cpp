// glider_load: runs declarative workload-graph specs (workloads/spec.h).
//
//   glider_load [options] SPEC [SPEC ...]
//
// Each spec builds a graph through the node registry and runs it against a
// fresh in-process MiniCluster shaped by its [cluster] section — or against
// a live TCP cluster with --metadata. Specs with a [load] section run
// open-loop: offered load is swept across the configured rates and the
// latency curve (p50/p95/p99 from *scheduled* arrival time) is reported.
// Results from all specs land in one BENCH_<name>.json (--bench), scalars
// prefixed with each spec's name; the [check] section asserts invariants
// (entries, checksums, word counts) agree across the specs of one
// invocation — the cross-variant "RESULT MISMATCH" guard the bespoke bench
// drivers used to hard-code.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/trace.h"
#include "workloads/graph.h"

using namespace glider;         // NOLINT
using namespace glider::bench;  // NOLINT
using glider::workloads::Graph;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: glider_load [options] SPEC [SPEC ...]\n"
      "  --bench NAME       write merged results to BENCH_NAME.json\n"
      "  --metadata ADDRS   run against a live cluster (comma-separated\n"
      "                     metadata host:port list) instead of an\n"
      "                     in-process MiniCluster per spec\n"
      "  --trace            enable span tracing: open-loop sweeps report a\n"
      "                     per-component latency breakdown (client / net /\n"
      "                     server / queue / run / channel percentiles)\n"
      "  --trace-out FILE   write this process's span buffer as Chrome/\n"
      "                     Perfetto JSON after all specs run (implies\n"
      "                     --trace; feed it to glider_trace --json)\n"
      "  --list-nodes       print the registered node types and exit\n"
      "  --help             this text\n");
}

// "100" for integral rates, "12.5" otherwise — stable BENCH scalar keys.
std::string RateKey(double rate) {
  if (rate == static_cast<double>(static_cast<long long>(rate))) {
    return std::to_string(static_cast<long long>(rate));
  }
  return Fmt(rate, 1);
}

// Exports are strings; only fully-numeric ones become BENCH scalars.
std::optional<double> AsNumber(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

struct SpecRun {
  std::string name;
  std::vector<std::string> check_equal;
  std::map<std::string, std::string> exports;
};

Status RunClosedLoop(const std::string& spec_name, Graph& graph,
                     workloads::ClusterHandle& cluster,
                     BenchJsonWriter* bench, SpecRun& run) {
  GLIDER_ASSIGN_OR_RETURN(auto report, workloads::RunGraph(graph, cluster));
  run.exports = report.exports;

  Table table({"Node", "Type", "Time (s)", "Ops", "Bytes", "FaaS xfer",
               "Accesses"});
  for (const auto& node : graph.nodes) {
    const auto& s = node->stats();
    table.AddRow({node->name() + (node->measured() ? "" : " (unmeasured)"),
                  node->type(), Fmt(s.seconds, 3), std::to_string(s.ops),
                  FmtBytes(s.bytes), FmtBytes(s.faas_bytes),
                  std::to_string(s.accesses)});
  }
  table.Print();
  std::printf(
      "measured: %.3f s, %s over the compute<->storage link, %llu accesses\n",
      report.measured_seconds, FmtBytes(report.faas_bytes).c_str(),
      static_cast<unsigned long long>(report.accesses));
  for (const auto& [key, value] : report.exports) {
    std::printf("  %s = %s\n", key.c_str(), value.c_str());
  }

  if (bench != nullptr) {
    const std::string prefix = spec_name + ".";
    bench->AddScalar(prefix + "seconds", report.measured_seconds);
    bench->AddScalar(prefix + "faas_bytes",
                     static_cast<double>(report.faas_bytes));
    bench->AddScalar(prefix + "accesses",
                     static_cast<double>(report.accesses));
    const std::uint64_t stored =
        report.action_state_bytes > 0
            ? report.action_state_bytes
            : (report.peak_stored > 0
                   ? static_cast<std::uint64_t>(report.peak_stored)
                   : 0);
    bench->AddScalar(prefix + "stored_bytes", static_cast<double>(stored));
    for (const auto& [key, value] : report.exports) {
      if (const auto number = AsNumber(value)) {
        bench->AddScalar(prefix + key, *number);
      }
    }
  }
  return Status::Ok();
}

Status RunOpenLoop(const std::string& spec_name, Graph& graph,
                   workloads::ClusterHandle& cluster, BenchJsonWriter* bench,
                   SpecRun& run) {
  GLIDER_ASSIGN_OR_RETURN(auto curve, workloads::RunLoadSweep(graph, cluster));
  run.exports = curve.exports;

  Table table({"Offered/s", "Achieved/s", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "Max (ms)", "Completed", "Shed", "Errors", "Peak backlog"});
  for (const auto& point : curve.points) {
    const auto& r = point.result;
    table.AddRow({Fmt(r.offered_per_s, 1), Fmt(r.achieved_per_s, 1),
                  Fmt(r.p50_ms, 2), Fmt(r.p95_ms, 2), Fmt(r.p99_ms, 2),
                  Fmt(r.max_ms, 2), std::to_string(r.completed),
                  std::to_string(r.shed), std::to_string(r.errors),
                  std::to_string(r.peak_backlog)});
  }
  table.Print();

  // With --trace, each point carries per-component critical-path
  // percentiles; show the p99 split (where the tail actually goes).
  bool any_breakdown = false;
  for (const auto& point : curve.points) {
    if (!point.breakdown.empty()) any_breakdown = true;
  }
  if (any_breakdown) {
    static constexpr const char* kBuckets[] = {"client", "net",   "server",
                                               "queue",  "run",   "channel"};
    std::vector<std::string> header{"Offered/s"};
    for (const char* bucket : kBuckets) {
      header.push_back(std::string(bucket) + " p99 (us)");
    }
    Table breakdown(header);
    for (const auto& point : curve.points) {
      std::vector<std::string> row{Fmt(point.result.offered_per_s, 1)};
      for (const char* bucket : kBuckets) {
        const auto it = point.breakdown.find(std::string(bucket) + "_us_p99");
        row.push_back(it == point.breakdown.end() ? "-" : Fmt(it->second, 0));
      }
      breakdown.AddRow(std::move(row));
    }
    breakdown.Print();
  }

  if (bench != nullptr) {
    for (const auto& point : curve.points) {
      const auto& r = point.result;
      const std::string prefix =
          spec_name + ".r" + RateKey(point.rate) + ".";
      bench->AddScalar(prefix + "offered_per_second", r.offered_per_s);
      bench->AddScalar(prefix + "achieved_per_second", r.achieved_per_s);
      bench->AddScalar(prefix + "p50_ms", r.p50_ms);
      bench->AddScalar(prefix + "p95_ms", r.p95_ms);
      bench->AddScalar(prefix + "p99_ms", r.p99_ms);
      bench->AddScalar(prefix + "shed", static_cast<double>(r.shed));
      bench->AddScalar(prefix + "errors", static_cast<double>(r.errors));
      // "<bucket>_us_p50/p99" per-component attribution (only under
      // --trace; bench_diff treats them as informational on first landing).
      for (const auto& [key, value] : point.breakdown) {
        bench->AddScalar(prefix + key, value);
      }
    }
  }
  return Status::Ok();
}

Status RunSpec(const std::string& path, const std::string& metadata,
               BenchJsonWriter* bench, SpecRun& run) {
  GLIDER_ASSIGN_OR_RETURN(auto spec, workloads::ParseSpecFile(path));
  GLIDER_ASSIGN_OR_RETURN(auto graph, workloads::BuildGraph(spec));
  run.name = graph.name;
  run.check_equal = graph.check_equal;

  std::printf("== %s (%s, %s) ==\n", graph.name.c_str(), path.c_str(),
              graph.load ? "open-loop" : "closed-loop");

  if (!metadata.empty()) {
    GLIDER_ASSIGN_OR_RETURN(auto remote,
                            workloads::RemoteClusterHandle::Connect(metadata));
    return graph.load ? RunOpenLoop(graph.name, graph, *remote, bench, run)
                      : RunClosedLoop(graph.name, graph, *remote, bench, run);
  }
  GLIDER_ASSIGN_OR_RETURN(auto mini,
                          testing::MiniCluster::Start(graph.cluster_options));
  workloads::MiniClusterHandle handle(*mini);
  return graph.load ? RunOpenLoop(graph.name, graph, handle, bench, run)
                    : RunClosedLoop(graph.name, graph, handle, bench, run);
}

// [check] equal = k1,k2,...: every spec in this invocation that exported
// the key must agree with every other; a disagreement is the cross-variant
// result mismatch that fails the run.
bool CheckInvariants(const std::vector<SpecRun>& runs) {
  bool ok = true;
  for (const auto& run : runs) {
    for (const auto& key : run.check_equal) {
      const SpecRun* first = nullptr;
      for (const auto& other : runs) {
        if (other.exports.find(key) == other.exports.end()) continue;
        if (first == nullptr) {
          first = &other;
          continue;
        }
        const auto& expect = first->exports.at(key);
        const auto& actual = other.exports.at(key);
        if (expect != actual) {
          std::fprintf(stderr,
                       "RESULT MISMATCH: %s: '%s' = %s, but %s has %s\n",
                       key.c_str(), first->name.c_str(), expect.c_str(),
                       other.name.c_str(), actual.c_str());
          ok = false;
        }
      }
      if (first == nullptr) {
        std::fprintf(stderr, "check: no spec exported '%s'\n", key.c_str());
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench_name;
  std::string metadata;
  std::string trace_out;
  bool trace = false;
  std::vector<std::string> spec_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "glider_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bench") {
      bench_name = value();
    } else if (arg == "--metadata") {
      metadata = value();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-out") {
      trace_out = value();
      trace = true;
    } else if (arg == "--list-nodes") {
      workloads::RegisterBuiltinNodes();
      for (const auto& type : workloads::NodeRegistry::Global().Types()) {
        std::printf("%s\n", type.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "glider_load: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      spec_paths.push_back(arg);
    }
  }
  if (spec_paths.empty()) {
    Usage();
    return 2;
  }

  if (trace) obs::SetEnabled(true);

  // Scalars only: open-loop runs keep observability off unless --trace, and
  // the cluster metric deltas already flow through the per-spec scalars —
  // an obs dump here would be all-zero noise for the perf gate.
  std::optional<BenchJsonWriter> bench;
  if (!bench_name.empty()) bench.emplace(bench_name, /*include_metrics=*/false);

  std::vector<SpecRun> runs;
  for (const auto& path : spec_paths) {
    SpecRun run;
    const Status status =
        RunSpec(path, metadata, bench ? &*bench : nullptr, run);
    if (!status.ok()) {
      std::fprintf(stderr, "glider_load: %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    runs.push_back(std::move(run));
    std::printf("\n");
  }

  if (!trace_out.empty()) {
    const std::string json = obs::TraceRecorder::Global().ToChromeJson();
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "glider_load: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes of trace JSON to %s\n", json.size(),
                trace_out.c_str());
  }

  if (!CheckInvariants(runs)) return 1;
  if (bench && !bench->Write()) return 1;
  return 0;
}
