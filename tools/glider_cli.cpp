// glider_cli: a small command-line client for a running Glider deployment
// (see tools/glider_daemon.cpp).
//
//   glider_cli --metadata host:port <command> [args]
//
// Commands:
//   mkdir <path>                     create a directory
//   put <path>                       create/overwrite a file from stdin
//   get <path>                       print a file to stdout
//   ls <path>                        list a container
//   rm <path>                        delete a node
//   stat <path>                      show node metadata
//   action-create <path> <type> [interleave]   instantiate an action
//   action-write <path>              stream stdin into an action
//   action-read <path>               stream an action's onRead to stdout
//   action-rm <path>                 delete an action (object + node)
//   stats <address>                  print a server's metrics as JSON
//   trace-dump <address> [clear]     print a server's Chrome trace JSON
//                                    (load in Perfetto / chrome://tracing)
//   slow-traces <address> [clear]    print a server's retained slow traces
//   series <address>                 print a server's time-series rings
//   cluster-stats                    poll every server via the metadata
//                                    server and print merged metrics
//   health [address]                 no address: poll every server and print
//                                    a per-node health/load table; with an
//                                    address: print that server's health
//                                    board JSON (daemon --health-ms)
//   events <address> [clear]         print a server's structured event
//                                    journal as JSON
//   ledger [--by principal|action|key] [--clear]
//                                    poll every server's resource ledger
//                                    (kLedgerDump) via the metadata server,
//                                    merge exactly, and print attribution
//                                    tables (per tenant, per operation, or
//                                    the hot-key sketch)
//   profile <address> [--seconds N] [--hz H] [--folded out.txt]
//                                    sample the server for N seconds (default
//                                    2) and print/write collapsed stacks —
//                                    pipe through flamegraph.pl for an SVG
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "glider/client/action_node.h"
#include "glider/cluster_monitor.h"
#include "net/rpc_client.h"
#include "net/rpc_obs.h"
#include "net/tcp_transport.h"
#include "nodekernel/client/store_client.h"
#include "workloads/actions.h"

using namespace glider;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string ReadStdin() {
  std::string data;
  char buffer[64 * 1024];
  while (std::cin.read(buffer, sizeof(buffer)) || std::cin.gcount() > 0) {
    data.append(buffer, static_cast<std::size_t>(std::cin.gcount()));
  }
  return data;
}

int Usage(const std::string& unknown = "") {
  if (!unknown.empty()) {
    std::fprintf(stderr, "glider_cli: unknown command '%s'\n\n",
                 unknown.c_str());
  }
  std::fprintf(
      stderr,
      "usage: glider_cli --metadata host:port <command> [args]\n"
      "\n"
      "filesystem commands (<path> is a Glider path):\n"
      "  mkdir <path>                    create a directory\n"
      "  put <path>                      create/overwrite a file from stdin\n"
      "  get <path>                      print a file to stdout\n"
      "  ls <path>                       list a container\n"
      "  rm <path>                       delete a node\n"
      "  stat <path>                     show node metadata\n"
      "\n"
      "action commands:\n"
      "  action-create <path> <type> [interleave]   instantiate an action\n"
      "  action-write <path>             stream stdin into an action\n"
      "  action-read <path>              stream an action's onRead to stdout\n"
      "  action-rm <path>                delete an action (object + node)\n"
      "\n"
      "observability commands (<address> is a server's host:port):\n"
      "  stats <address>                 print a server's metrics as JSON\n"
      "  trace-dump <address> [clear]    print a server's Chrome trace JSON\n"
      "  slow-traces <address> [clear]   print a server's retained slow "
      "traces\n"
      "  series <address>                print a server's time-series rings\n"
      "  events <address> [clear]        print a server's event journal\n"
      "  cluster-stats                   poll every server and print merged "
      "metrics\n"
      "  health [address]                per-node health/load table, or one\n"
      "                                  server's health board JSON\n"
      "  ledger [--by principal|action|key] [--clear]\n"
      "                                  cluster-merged resource attribution:\n"
      "                                  per-tenant ledger totals (principal),\n"
      "                                  per-operation totals (action), or "
      "the\n"
      "                                  heavy-hitter key sketch (key).\n"
      "                                  --clear resets ledgers after "
      "dumping\n"
      "  profile <address> [--seconds N] [--hz H] [--folded out.txt]\n"
      "                                  sample the server and print "
      "collapsed\n"
      "                                  stacks (flamegraph.pl input)\n");
  return 2;
}

// Sends an observability opcode directly to the server at `address` and
// prints the JSON payload it returns.
int DumpFromServer(net::TcpTransport& transport, const std::string& address,
                   std::uint16_t opcode, bool clear) {
  auto conn = transport.Connect(
      address, net::LinkModel::Unshaped(LinkClass::kControl, nullptr));
  if (!conn.ok()) return Fail(conn.status());
  Buffer payload;
  if (clear) {
    payload.Resize(1);
    payload.mutable_span()[0] = 1;
  }
  auto result = (*conn)->CallSync(opcode, std::move(payload));
  if (!result.ok()) return Fail(result.status());
  std::fwrite(result->data(), 1, result->size(), stdout);
  std::printf("\n");
  return 0;
}

// Fetches one server's time-series rings (kSeriesDump) and prints each
// series' latest window: `<name> n=<samples> last=<value>`.
int PrintSeries(net::TcpTransport& transport, const std::string& address) {
  auto conn = transport.Connect(
      address, net::LinkModel::Unshaped(LinkClass::kControl, nullptr));
  if (!conn.ok()) return Fail(conn.status());
  auto dump = net::Call<net::SeriesDumpResponse>(**conn, net::kSeriesDump,
                                                 Buffer{});
  if (!dump.ok()) return Fail(dump.status());
  if (dump->sampler_interval_ms == 0) {
    std::printf("# sampler not running (start the daemon with --sample-ms)\n");
  } else {
    std::printf("# sampler interval: %" PRIu64 " ms\n",
                dump->sampler_interval_ms);
  }
  for (const auto& series : dump->series) {
    const double last =
        series.samples.empty() ? 0.0 : series.samples.back().value;
    std::printf("%-48s n=%-4zu last=%.2f\n", series.name.c_str(),
                series.samples.size(), last);
  }
  return 0;
}

// Profiles the server at `address` for `seconds`: starts its sampling
// profiler (unless one is already running — then we only observe), waits,
// and dumps collapsed stacks. Stops/clears only the session we started, so
// concurrent operators don't tear down each other's windows.
int Profile(net::TcpTransport& transport, const std::string& address,
            int seconds, std::uint32_t hz, const std::string& folded_path) {
  auto conn = transport.Connect(
      address, net::LinkModel::Unshaped(LinkClass::kControl, nullptr));
  if (!conn.ok()) return Fail(conn.status());

  Buffer start_payload;
  start_payload.Resize(5);
  start_payload.mutable_span()[0] =
      static_cast<std::uint8_t>(net::ProfileCmd::kStart);
  std::memcpy(start_payload.mutable_span().data() + 1, &hz, sizeof(hz));
  auto started = (*conn)->CallSync(net::kProfileDump, std::move(start_payload));
  if (!started.ok()) return Fail(started.status());
  const bool we_started = started->size() >= 1 && started->data()[0] == 1;
  if (!we_started) {
    std::fprintf(stderr,
                 "profiler already running on %s; dumping its window\n",
                 address.c_str());
  }

  std::this_thread::sleep_for(std::chrono::seconds(seconds));

  if (we_started) {
    Buffer stop_payload;
    stop_payload.Resize(1);
    stop_payload.mutable_span()[0] =
        static_cast<std::uint8_t>(net::ProfileCmd::kStop);
    auto stopped = (*conn)->CallSync(net::kProfileDump, std::move(stop_payload));
    if (!stopped.ok()) return Fail(stopped.status());
  }

  Buffer dump_payload;
  dump_payload.Resize(1);
  dump_payload.mutable_span()[0] = static_cast<std::uint8_t>(
      we_started ? net::ProfileCmd::kDumpClear : net::ProfileCmd::kDump);
  auto dump = (*conn)->CallSync(net::kProfileDump, std::move(dump_payload));
  if (!dump.ok()) return Fail(dump.status());

  if (!folded_path.empty()) {
    std::ofstream out(folded_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", folded_path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(dump->data()),
              static_cast<std::streamsize>(dump->size()));
    std::fprintf(stderr, "wrote %zu bytes of folded stacks to %s\n",
                 dump->size(), folded_path.c_str());
  } else {
    std::fwrite(dump->data(), 1, dump->size(), stdout);
  }
  return 0;
}

// Polls every server via the metadata server and prints the merged view.
int ClusterStats(net::TcpTransport& transport, const std::string& metadata) {
  ClusterMonitor monitor(&transport, metadata,
                         net::LinkModel::Unshaped(LinkClass::kControl,
                                                  nullptr));
  auto sample = monitor.Poll();
  if (!sample.ok()) return Fail(sample.status());
  std::printf("servers:\n");
  for (const auto& server : sample->servers) {
    if (server.status.ok()) {
      std::printf("  %-21s %-8s counters=%zu histograms=%zu\n",
                  server.server.address.c_str(),
                  server.is_metadata ? "metadata" : "storage",
                  server.dump.snapshot.counters.size(),
                  server.dump.snapshot.histograms.size());
    } else {
      std::printf("  %-21s %-8s [%s]\n", server.server.address.c_str(),
                  server.is_metadata ? "metadata" : "storage",
                  server.status.ToString().c_str());
    }
  }
  std::printf("merged counters:\n");
  for (const auto& [name, value] : sample->merged.counters) {
    std::printf("  %-48s %" PRIu64 "\n", name.c_str(), value);
  }
  std::printf("merged gauges:\n");
  for (const auto& [name, value] : sample->merged.gauges) {
    std::printf("  %-48s %" PRId64 "\n", name.c_str(), value);
  }
  std::printf("merged histograms (count / p50 / p99):\n");
  for (const auto& [name, hist] : sample->merged.histograms) {
    std::printf("  %-48s %" PRIu64 " / %" PRIu64 " / %" PRIu64 "\n",
                name.c_str(), hist.count, hist.Percentile(50),
                hist.Percentile(99));
  }
  return 0;
}

// Polls every server's resource ledger via the metadata server, merges the
// dumps exactly (cells sum per (principal, op); sketches merge under the
// space-saving rule) and prints one attribution table. `by` selects the
// grouping: "principal" (per-tenant totals plus a per-op breakdown),
// "action" (per-op totals across tenants), "key" (the hot-key sketch).
int Ledger(net::TcpTransport& transport, const std::string& metadata,
           const std::string& by, bool clear) {
  ClusterMonitor monitor(&transport, metadata,
                         net::LinkModel::Unshaped(LinkClass::kControl,
                                                  nullptr));
  auto dump = monitor.PollLedgers(clear);
  if (!dump.ok()) return Fail(dump.status());

  if (by == "key") {
    const net::LedgerDumpResponse::Sketch* keys = nullptr;
    for (const auto& sketch : dump->sketches) {
      if (sketch.name == "keys") keys = &sketch;
    }
    if (keys == nullptr || keys->entries.empty()) {
      std::printf("# no keys observed (is observability on?)\n");
      return 0;
    }
    std::printf("# heavy-hitter keys, %" PRIu64
                " lookups observed (count <= true + error)\n",
                keys->total);
    std::printf("%-48s %12s %10s\n", "KEY", "COUNT", "ERROR");
    for (const auto& entry : keys->entries) {
      std::printf("%-48s %12" PRIu64 " %10" PRIu64 "\n", entry.key.c_str(),
                  entry.count, entry.error);
    }
    return 0;
  }

  if (dump->entries.empty()) {
    std::printf("# ledger empty (is observability on?)\n");
    return 0;
  }

  if (by == "action") {
    std::map<std::string, obs::LedgerCell> per_op;
    for (const auto& entry : dump->entries) {
      per_op[entry.op].Merge(entry.cell);
    }
    std::printf("%-28s %12s %12s %12s %12s %10s\n", "OP", "CPU_US",
                "QUEUE_US", "BYTES_IN", "BYTES_OUT", "CALLS");
    for (const auto& [op, cell] : per_op) {
      std::printf("%-28s %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %10" PRIu64 "\n",
                  op.c_str(), cell.cpu_us, cell.queue_us, cell.bytes_in,
                  cell.bytes_out, cell.invocations);
    }
    return 0;
  }

  // Default: per-principal totals, then the (principal, op) breakdown.
  std::map<obs::PrincipalId, obs::LedgerCell> per_principal;
  for (const auto& entry : dump->entries) {
    per_principal[entry.principal].Merge(entry.cell);
  }
  std::printf("%-12s %12s %12s %12s %12s %10s\n", "PRINCIPAL", "CPU_US",
              "QUEUE_US", "BYTES_IN", "BYTES_OUT", "CALLS");
  for (const auto& [principal, cell] : per_principal) {
    std::printf("%-12s %12" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %10" PRIu64 "\n",
                obs::PrincipalName(principal).c_str(), cell.cpu_us,
                cell.queue_us, cell.bytes_in, cell.bytes_out,
                cell.invocations);
  }
  std::printf("\n%-12s %-28s %12s %12s %12s %12s %10s\n", "PRINCIPAL", "OP",
              "CPU_US", "QUEUE_US", "BYTES_IN", "BYTES_OUT", "CALLS");
  for (const auto& entry : dump->entries) {
    std::printf("%-12s %-28s %12" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %12" PRIu64 " %10" PRIu64 "\n",
                obs::PrincipalName(entry.principal).c_str(), entry.op.c_str(),
                entry.cell.cpu_us, entry.cell.queue_us, entry.cell.bytes_in,
                entry.cell.bytes_out, entry.cell.invocations);
  }
  return 0;
}

// Polls every server a few times via the metadata server (so the failure
// detector accumulates heartbeat intervals) and prints a per-node health /
// load table. With `address` non-empty, instead dumps that server's own
// health board JSON (populated when the daemon runs with --health-ms).
int Health(net::TcpTransport& transport, const std::string& metadata,
           const std::string& address) {
  if (!address.empty()) {
    return DumpFromServer(transport, address, net::kHealthDump,
                          /*clear=*/false);
  }
  ClusterMonitor monitor(&transport, metadata,
                         net::LinkModel::Unshaped(LinkClass::kControl,
                                                  nullptr));
  Result<ClusterMonitor::ClusterSample> sample = Status::Unavailable("unpolled");
  constexpr int kPolls = 3;
  for (int i = 0; i < kPolls; ++i) {
    sample = monitor.Poll();
    if (!sample.ok()) return Fail(sample.status());
    if (i + 1 < kPolls) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  }
  if (sample->stale_discovery) {
    std::printf("# metadata unreachable; using last known server list\n");
  }
  std::printf("%-21s %-8s %-12s %8s %8s %8s\n", "ADDRESS", "ROLE", "HEALTH",
              "PHI", "LOAD", "HOT");
  for (const auto& server : sample->servers) {
    const char* role = server.is_metadata ? "metadata"
                       : server.server.storage_class == nk::kActiveClass
                           ? "active"
                           : "storage";
    std::string state(obs::PeerStateName(server.health));
    if (!server.status.ok() && server.health == obs::PeerState::kUnknown) {
      state = "unreachable";
    }
    char hot[16];
    if (server.hotspot_slots >= 0) {
      std::snprintf(hot, sizeof(hot), "%lld",
                    static_cast<long long>(server.hotspot_slots));
    } else {
      std::snprintf(hot, sizeof(hot), "-");
    }
    std::printf("%-21s %-8s %-12s %8.2f %8.2f %8s\n",
                server.server.address.c_str(), role, state.c_str(),
                server.phi, server.load_index, hot);
    if (!server.status.ok()) {
      std::printf("  [%s]\n", server.status.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  workloads::RegisterWorkloadActions();
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string metadata;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--metadata") {
      metadata = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  if (metadata.empty() || args.empty()) return Usage();
  const std::string command = args[0];

  net::TcpTransport transport(4);
  // cluster-stats needs only the metadata address; everything else takes a
  // <path|address> argument.
  if (command == "cluster-stats") return ClusterStats(transport, metadata);
  // `health` takes an optional address: without one it polls the cluster.
  if (command == "health") {
    return Health(transport, metadata, args.size() > 1 ? args[1] : "");
  }
  // `ledger` polls the cluster via the metadata server; no address needed.
  if (command == "ledger") {
    std::string by = "principal";
    bool clear = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--by" && i + 1 < args.size()) {
        by = args[++i];
      } else if (args[i] == "--clear") {
        clear = true;
      } else {
        return Usage();
      }
    }
    if (by != "principal" && by != "action" && by != "key") {
      std::fprintf(stderr,
                   "glider_cli: ledger --by takes principal|action|key "
                   "(got '%s')\n",
                   by.c_str());
      return 2;
    }
    return Ledger(transport, metadata, by, clear);
  }
  // Reject unknown verbs by name before complaining about a missing
  // <path|address> argument, so `glider_cli frobnicate` says which verb
  // it did not recognize.
  static const char* kVerbs[] = {
      "stats",  "trace-dump",    "slow-traces",  "series",
      "events", "profile",       "mkdir",        "put",
      "get",    "ls",            "rm",           "stat",
      "action-create", "action-write", "action-read", "action-rm"};
  bool known = false;
  for (const char* verb : kVerbs) known = known || command == verb;
  if (!known) return Usage(command);
  if (args.size() < 2) return Usage();
  const std::string path = args[1];

  // Observability verbs talk to one server directly (the <path> argument is
  // its host:port), no store client needed.
  if (command == "stats") {
    return DumpFromServer(transport, path, net::kStatsDump, /*clear=*/false);
  }
  if (command == "trace-dump") {
    const bool clear = args.size() > 2 && args[2] == "clear";
    return DumpFromServer(transport, path, net::kTraceDump, clear);
  }
  if (command == "slow-traces") {
    const bool clear = args.size() > 2 && args[2] == "clear";
    return DumpFromServer(transport, path, net::kSlowTraceDump, clear);
  }
  if (command == "series") return PrintSeries(transport, path);
  if (command == "events") {
    const bool clear = args.size() > 2 && args[2] == "clear";
    return DumpFromServer(transport, path, net::kEventDump, clear);
  }
  if (command == "profile") {
    int seconds = 2;
    std::uint32_t hz = 0;  // 0 = server default (99)
    std::string folded_path;
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
      if (args[i] == "--seconds") {
        seconds = std::stoi(args[i + 1]);
      } else if (args[i] == "--hz") {
        hz = static_cast<std::uint32_t>(std::stoul(args[i + 1]));
      } else if (args[i] == "--folded") {
        folded_path = args[i + 1];
      } else {
        return Usage();
      }
    }
    return Profile(transport, path, seconds, hz, folded_path);
  }

  // With GLIDER_TRACE=1 every other command becomes a trace root, so the
  // servers' trace-dump shows its RPCs; inert otherwise.
  obs::Span root_span = obs::Span::Root("cli", "cli." + command);
  nk::StoreClient::Options options;
  options.transport = &transport;
  options.metadata_address = metadata;
  auto client_or = nk::StoreClient::Connect(std::move(options));
  if (!client_or.ok()) return Fail(client_or.status());
  auto& client = **client_or;

  if (command == "mkdir") {
    auto created = client.CreateNode(path, nk::NodeType::kDirectory);
    if (!created.ok()) return Fail(created.status());
  } else if (command == "put") {
    auto created = client.CreateNode(path, nk::NodeType::kFile);
    if (!created.ok() &&
        created.status().code() != StatusCode::kAlreadyExists) {
      return Fail(created.status());
    }
    auto writer = nk::FileWriter::Open(client, path);
    if (!writer.ok()) return Fail(writer.status());
    const std::string data = ReadStdin();
    if (auto s = (*writer)->Write(data); !s.ok()) return Fail(s);
    if (auto s = (*writer)->Close(); !s.ok()) return Fail(s);
    std::fprintf(stderr, "wrote %zu bytes\n", data.size());
  } else if (command == "get") {
    auto reader = nk::FileReader::Open(client, path);
    if (!reader.ok()) return Fail(reader.status());
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      if (!chunk.ok()) return Fail(chunk.status());
      if (chunk->empty()) break;
      std::fwrite(chunk->data(), 1, chunk->size(), stdout);
    }
  } else if (command == "ls") {
    auto listing = client.List(path);
    if (!listing.ok()) return Fail(listing.status());
    for (const auto& entry : listing->entries) {
      std::printf("%-10s %s\n",
                  std::string(nk::NodeTypeName(entry.type)).c_str(),
                  entry.name.c_str());
    }
  } else if (command == "rm") {
    auto removed = client.Delete(path);
    if (!removed.ok()) return Fail(removed.status());
  } else if (command == "stat") {
    auto info = client.Lookup(path);
    if (!info.ok()) return Fail(info.status());
    std::printf("id: %llu\ntype: %s\nsize: %llu\nclass: %u\n",
                static_cast<unsigned long long>(info->id),
                std::string(nk::NodeTypeName(info->type)).c_str(),
                static_cast<unsigned long long>(info->size),
                info->storage_class);
    if (info->type == nk::NodeType::kAction) {
      std::printf("action: %s\ninterleave: %s\nslot: %s#%u\n",
                  info->action_type.c_str(),
                  info->interleave ? "yes" : "no",
                  info->slot.address.c_str(), info->slot.block);
    }
  } else if (command == "action-create") {
    if (args.size() < 3) return Usage();
    const bool interleave = args.size() > 3 && args[3] == "interleave";
    auto node = core::ActionNode::Create(client, path, args[2], interleave);
    if (!node.ok()) return Fail(node.status());
  } else if (command == "action-write") {
    auto node = core::ActionNode::Lookup(client, path);
    if (!node.ok()) return Fail(node.status());
    auto writer = node->OpenWriter();
    if (!writer.ok()) return Fail(writer.status());
    if (auto s = (*writer)->Write(ReadStdin()); !s.ok()) return Fail(s);
    if (auto s = (*writer)->Close(); !s.ok()) return Fail(s);
  } else if (command == "action-read") {
    auto node = core::ActionNode::Lookup(client, path);
    if (!node.ok()) return Fail(node.status());
    auto reader = node->OpenReader();
    if (!reader.ok()) return Fail(reader.status());
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      if (!chunk.ok()) return Fail(chunk.status());
      if (chunk->empty()) break;
      std::fwrite(chunk->data(), 1, chunk->size(), stdout);
    }
    if (auto s = (*reader)->Close(); !s.ok()) return Fail(s);
  } else if (command == "action-rm") {
    if (auto s = core::ActionNode::Delete(client, path); !s.ok()) {
      return Fail(s);
    }
  } else {
    return Usage(command);
  }
  return 0;
}
