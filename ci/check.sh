#!/usr/bin/env bash
# CI entry point: tier-1 configure/build/test, then the same test suite
# under AddressSanitizer and ThreadSanitizer. Run from anywhere; builds
# land in build/, build-asan/ and build-tsan/ under the repo root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "== ASan: configure + build + ctest =="
cmake -B build-asan -S . -DGLIDER_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "== TSan: configure + build + ctest =="
cmake -B build-tsan -S . -DGLIDER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo
echo "ci/check.sh: all checks passed"
