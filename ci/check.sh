#!/usr/bin/env bash
# CI entry point: tier-1 configure/build/test, then the same test suite
# under AddressSanitizer and ThreadSanitizer. Run from anywhere; builds
# land in build/, build-asan/ and build-tsan/ under the repo root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "== perf gate: bench/contention vs committed baseline =="
# Enforcing: a >10% regression on any contention metric (notably the
# 8-thread ops/s scalar) vs the committed BENCH_contention.json fails CI.
# Runs only on the tier-1 (unsanitized) build — sanitizer overheads would
# drown the signal. The bench writes BENCH_contention.json into its working
# directory, so run it from a scratch dir to leave the committed repo-root
# baseline untouched. Set GLIDER_SKIP_PERF_GATE=1 to skip (e.g. on
# known-slow or heavily shared hosts where the noise floor exceeds 10%).
if [[ "${GLIDER_SKIP_PERF_GATE:-0}" == "1" ]]; then
  echo "perf gate skipped (GLIDER_SKIP_PERF_GATE=1)"
elif [[ ! -f BENCH_contention.json ]]; then
  # Fresh checkouts / branches without a committed baseline get a report,
  # not a failure: there is nothing to diff against.
  echo "perf gate: no committed BENCH_contention.json baseline (skipping diff)"
else
  mkdir -p build/perf
  if (cd build/perf && ../bench/contention); then
    tools/bench_diff.py BENCH_contention.json build/perf/BENCH_contention.json \
      || { echo "perf gate: FAIL — regression vs committed baseline" \
                "(rerun on a quiet host, or GLIDER_SKIP_PERF_GATE=1 to" \
                "bypass; refresh the baseline only with a justified PR)";
           exit 1; }
  else
    echo "perf gate: FAIL — bench/contention did not run"
    exit 1
  fi
fi

echo
echo "== profiler smoke: daemon --profile + workload + glider_cli profile =="
# Boots a minimal TCP deployment with continuous profiling on, streams a
# merge workload through an action, then pulls collapsed stacks off the
# active server with `glider_cli profile`. Fails if the folded output is
# empty. Artifacts (daemon logs + folded stacks) land in
# build/profile-smoke/ for the CI system to archive.
SMOKE_DIR="build/profile-smoke"
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"
SMOKE_PIDS=()
cleanup_smoke() { kill "${SMOKE_PIDS[@]}" 2>/dev/null || true; }
trap cleanup_smoke EXIT

build/tools/glider_daemon metadata --listen 127.0.0.1:0 \
  >"${SMOKE_DIR}/metadata.log" 2>&1 &
SMOKE_PIDS+=($!)
META_ADDR=""
for _ in $(seq 100); do
  META_ADDR="$(sed -n 's/^metadata server listening at \(.*\)$/\1/p' \
    "${SMOKE_DIR}/metadata.log")"
  [[ -n "${META_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${META_ADDR}" ]] || { echo "metadata daemon did not come up"; exit 1; }

build/tools/glider_daemon storage --metadata "${META_ADDR}" --blocks 256 \
  >"${SMOKE_DIR}/storage.log" 2>&1 &
SMOKE_PIDS+=($!)
# 997 Hz (vs the 99 Hz default) so even this short workload lands enough
# samples for a deterministic non-empty dump.
build/tools/glider_daemon active --metadata "${META_ADDR}" --profile-hz 997 \
  >"${SMOKE_DIR}/active.log" 2>&1 &
SMOKE_PIDS+=($!)
ACTIVE_ADDR=""
for _ in $(seq 100); do
  ACTIVE_ADDR="$(sed -n 's/^active server (.*) at \([^,]*\), registered .*$/\1/p' \
    "${SMOKE_DIR}/active.log")"
  [[ -n "${ACTIVE_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${ACTIVE_ADDR}" ]] || { echo "active daemon did not come up"; exit 1; }

build/tools/glider_cli --metadata "${META_ADDR}" action-create /smoke glider.merge
for _ in $(seq 10); do
  seq 1 2000 | sed 's/$/,1/' \
    | build/tools/glider_cli --metadata "${META_ADDR}" action-write /smoke
done
build/tools/glider_cli --metadata "${META_ADDR}" profile "${ACTIVE_ADDR}" \
  --seconds 1 --folded "${SMOKE_DIR}/active.folded"
[[ -s "${SMOKE_DIR}/active.folded" ]] \
  || { echo "profiler smoke: empty folded output"; exit 1; }
echo "profiler smoke: $(wc -l <"${SMOKE_DIR}/active.folded") folded stacks (archived in ${SMOKE_DIR})"
cleanup_smoke
trap - EXIT

echo
echo "== ASan: configure + build + ctest =="
cmake -B build-asan -S . -DGLIDER_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "== TSan: configure + build + ctest =="
cmake -B build-tsan -S . -DGLIDER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo
echo "ci/check.sh: all checks passed"
