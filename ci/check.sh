#!/usr/bin/env bash
# CI entry point: tier-1 configure/build/test, then the same test suite
# under AddressSanitizer and ThreadSanitizer. Run from anywhere; builds
# land in build/, build-asan/ and build-tsan/ under the repo root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "== soft perf gate: bench/contention vs committed baseline =="
# Report-only: perf on shared CI machines is noisy, so a regression here
# warns but never fails the run. Runs only on the tier-1 (unsanitized) build
# — sanitizer overheads would drown the signal. The bench writes
# BENCH_contention.json into its working directory, so run it from a scratch
# dir to leave the committed repo-root baseline untouched. Set
# GLIDER_SKIP_PERF_GATE=1 to skip entirely (e.g. on known-slow hosts).
if [[ "${GLIDER_SKIP_PERF_GATE:-0}" == "1" ]]; then
  echo "perf gate skipped (GLIDER_SKIP_PERF_GATE=1)"
else
  mkdir -p build/perf
  if (cd build/perf && ../bench/contention); then
    tools/bench_diff.py BENCH_contention.json build/perf/BENCH_contention.json \
      || echo "perf gate: regression flagged (report-only, not failing CI)"
  else
    echo "perf gate: bench/contention failed to run (report-only, ignoring)"
  fi
fi

echo
echo "== ASan: configure + build + ctest =="
cmake -B build-asan -S . -DGLIDER_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "== TSan: configure + build + ctest =="
cmake -B build-tsan -S . -DGLIDER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo
echo "ci/check.sh: all checks passed"
