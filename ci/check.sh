#!/usr/bin/env bash
# CI entry point: tier-1 configure/build/test, then the same test suite
# under AddressSanitizer and ThreadSanitizer. Run from anywhere; builds
# land in build/, build-asan/ and build-tsan/ under the repo root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${REPO_ROOT}"

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo
echo "== workload smoke: declarative spec, open-loop, in-process cluster =="
# One tiny spec through the whole declarative path: parse -> node registry ->
# MiniCluster -> open-loop sweep (2 rates). Catches spec-format or runner
# breakage in seconds, before the heavier legs below.
build/tools/glider_load examples/specs/ci_smoke.spec

echo
echo "== perf gate: contention + batching + load-curve vs committed baselines =="
# Enforcing: a >10% regression on any contention metric (notably the
# 8-thread ops/s scalar) vs the committed BENCH_contention.json, or on the
# hot-path batching legs (TCP burst framing, spin-then-park wakeups) vs the
# committed BENCH_batching.json, fails CI. Runs only on the tier-1
# (unsanitized) build — sanitizer overheads would drown the signal. The
# benches write their BENCH_*.json into the working directory, so run them
# from a scratch dir to leave the committed repo-root baselines untouched.
# Set GLIDER_SKIP_PERF_GATE=1 to skip (e.g. on known-slow or heavily shared
# hosts where the noise floor exceeds 10%).
if [[ "${GLIDER_SKIP_PERF_GATE:-0}" == "1" ]]; then
  echo "perf gate skipped (GLIDER_SKIP_PERF_GATE=1)"
else
  mkdir -p build/perf
  DIFF_ARGS=()
  if [[ -f BENCH_contention.json ]]; then
    if (cd build/perf && ../bench/contention); then
      DIFF_ARGS+=(BENCH_contention.json build/perf/BENCH_contention.json)
    else
      echo "perf gate: FAIL — bench/contention did not run"
      exit 1
    fi
  else
    # Fresh checkouts / branches without a committed baseline get a report,
    # not a failure: there is nothing to diff against.
    echo "perf gate: no committed BENCH_contention.json baseline (skipping)"
  fi
  if [[ -f BENCH_batching.json ]]; then
    # Only the batching benchmarks: WriteBatchingJson emits its snapshot iff
    # all four legs ran, and the filter keeps this gate fast.
    if (cd build/perf && ../bench/micro_components \
          --benchmark_filter='BM_TcpRpcBurst(Unbatched|Batched)|BM_ThreadPoolWake(SpinThenPark|PurePark)'); then
      [[ -f build/perf/BENCH_batching.json ]] \
        || { echo "perf gate: FAIL — batching legs wrote no snapshot"; exit 1; }
      DIFF_ARGS+=(BENCH_batching.json build/perf/BENCH_batching.json)
    else
      echo "perf gate: FAIL — bench/micro_components did not run"
      exit 1
    fi
  else
    echo "perf gate: no committed BENCH_batching.json baseline (skipping)"
  fi
  if [[ -f BENCH_load_curve.json ]]; then
    # The open-loop latency curve from the declarative load harness. Diffed
    # separately at a 90% threshold: millisecond-scale tail latencies on a
    # shared CI box swing far more than the throughput scalars above, so
    # this gate guards collapse (achieved rate falling off offered, p50/p99
    # blowing up by an order of magnitude, shedding appearing), not
    # percent-level drift.
    if (cd build/perf && ../tools/glider_load --bench load_curve --trace \
          ../../examples/specs/load_curve.spec >/dev/null); then
      # --trace adds "<bucket>_us_p50/p99" per-component attribution
      # scalars; they are informational (reported, never gating) — the
      # split between client/net/server/queue/run/channel shifts with
      # scheduler noise far more than the e2e percentiles do.
      tools/bench_diff.py --threshold 0.9 --informational '_us_p(50|99)$' \
          BENCH_load_curve.json build/perf/BENCH_load_curve.json \
        || { echo "perf gate: FAIL — load-curve regression vs committed" \
                  "baseline (rerun on a quiet host, or" \
                  "GLIDER_SKIP_PERF_GATE=1 to bypass)";
             exit 1; }
    else
      echo "perf gate: FAIL — glider_load did not run"
      exit 1
    fi
  else
    echo "perf gate: no committed BENCH_load_curve.json baseline (skipping)"
  fi
  # 25% threshold: back-to-back runs of these benches on the 1-core CI box
  # spread ±10-15% around their median, so 10% flakes on noise alone. The
  # wins these gates actually guard (contention ~5x single- to multi-client,
  # batching 36-59%) sit far above 25%.
  if [[ ${#DIFF_ARGS[@]} -gt 0 ]]; then
    tools/bench_diff.py --threshold 0.25 "${DIFF_ARGS[@]}" \
      || { echo "perf gate: FAIL — regression vs committed baseline" \
                "(rerun on a quiet host, or GLIDER_SKIP_PERF_GATE=1 to" \
                "bypass; refresh the baseline only with a justified PR)";
           exit 1; }
  fi
fi

echo
echo "== profiler smoke: daemon --profile + workload + glider_cli profile =="
# Boots a minimal TCP deployment with continuous profiling on, streams a
# merge workload through an action, then pulls collapsed stacks off the
# active server with `glider_cli profile`. Fails if the folded output is
# empty. Artifacts (daemon logs + folded stacks) land in
# build/profile-smoke/ for the CI system to archive.
SMOKE_DIR="build/profile-smoke"
rm -rf "${SMOKE_DIR}"
mkdir -p "${SMOKE_DIR}"
SMOKE_PIDS=()
cleanup_smoke() { kill "${SMOKE_PIDS[@]}" 2>/dev/null || true; }
trap cleanup_smoke EXIT

build/tools/glider_daemon metadata --listen 127.0.0.1:0 \
  >"${SMOKE_DIR}/metadata.log" 2>&1 &
SMOKE_PIDS+=($!)
META_ADDR=""
for _ in $(seq 100); do
  META_ADDR="$(sed -n 's/^metadata server listening at \(.*\)$/\1/p' \
    "${SMOKE_DIR}/metadata.log")"
  [[ -n "${META_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${META_ADDR}" ]] || { echo "metadata daemon did not come up"; exit 1; }

build/tools/glider_daemon storage --metadata "${META_ADDR}" --blocks 256 \
  >"${SMOKE_DIR}/storage.log" 2>&1 &
SMOKE_PIDS+=($!)
# 997 Hz (vs the 99 Hz default) so even this short workload lands enough
# samples for a deterministic non-empty dump.
build/tools/glider_daemon active --metadata "${META_ADDR}" --profile-hz 997 \
  >"${SMOKE_DIR}/active.log" 2>&1 &
SMOKE_PIDS+=($!)
ACTIVE_ADDR=""
for _ in $(seq 100); do
  ACTIVE_ADDR="$(sed -n 's/^active server (.*) at \([^,]*\), registered .*$/\1/p' \
    "${SMOKE_DIR}/active.log")"
  [[ -n "${ACTIVE_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${ACTIVE_ADDR}" ]] || { echo "active daemon did not come up"; exit 1; }

build/tools/glider_cli --metadata "${META_ADDR}" action-create /smoke glider.merge
for _ in $(seq 10); do
  seq 1 2000 | sed 's/$/,1/' \
    | build/tools/glider_cli --metadata "${META_ADDR}" action-write /smoke
done
build/tools/glider_cli --metadata "${META_ADDR}" profile "${ACTIVE_ADDR}" \
  --seconds 1 --folded "${SMOKE_DIR}/active.folded"
[[ -s "${SMOKE_DIR}/active.folded" ]] \
  || { echo "profiler smoke: empty folded output"; exit 1; }
echo "profiler smoke: $(wc -l <"${SMOKE_DIR}/active.folded") folded stacks (archived in ${SMOKE_DIR})"
cleanup_smoke
trap - EXIT

echo
echo "== health smoke: daemon --health-ms + node kill + glider_cli health =="
# Boots metadata (heartbeating every 100 ms, Prometheus endpoint on) plus a
# storage daemon, hard-kills the storage daemon, and asserts that (a)
# `glider_cli health` against the metadata daemon's board reports it dead
# and (b) /metrics exposes the per-peer glider_health_phi gauges.
HEALTH_DIR="build/health-smoke"
rm -rf "${HEALTH_DIR}"
mkdir -p "${HEALTH_DIR}"
HEALTH_PIDS=()
cleanup_health() { kill "${HEALTH_PIDS[@]}" 2>/dev/null || true; }
trap cleanup_health EXIT

build/tools/glider_daemon metadata --listen 127.0.0.1:0 --health-ms 100 \
  --metrics-listen 127.0.0.1:0 >"${HEALTH_DIR}/metadata.log" 2>&1 &
HEALTH_PIDS+=($!)
META_ADDR=""
for _ in $(seq 100); do
  META_ADDR="$(sed -n 's/^metadata server listening at \(.*\)$/\1/p' \
    "${HEALTH_DIR}/metadata.log")"
  [[ -n "${META_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${META_ADDR}" ]] || { echo "metadata daemon did not come up"; exit 1; }
METRICS_URL="$(sed -n 's/^metrics at \(.*\)$/\1/p' "${HEALTH_DIR}/metadata.log")"
[[ -n "${METRICS_URL}" ]] || { echo "metadata daemon exposed no /metrics"; exit 1; }

build/tools/glider_daemon storage --metadata "${META_ADDR}" --blocks 64 \
  >"${HEALTH_DIR}/storage.log" 2>&1 &
STORAGE_PID=$!
HEALTH_PIDS+=("${STORAGE_PID}")
STORAGE_ADDR=""
for _ in $(seq 100); do
  STORAGE_ADDR="$(sed -n 's/^storage server (.*) at \([^,]*\), registered .*$/\1/p' \
    "${HEALTH_DIR}/storage.log")"
  [[ -n "${STORAGE_ADDR}" ]] && break
  sleep 0.1
done
[[ -n "${STORAGE_ADDR}" ]] || { echo "storage daemon did not come up"; exit 1; }

# Let the monitor discover the storage server and mark it alive first.
ALIVE=0
for _ in $(seq 50); do
  if build/tools/glider_cli --metadata "${META_ADDR}" health "${META_ADDR}" \
       | grep -q "\"address\":\"${STORAGE_ADDR}\",\"state\":\"alive\""; then
    ALIVE=1
    break
  fi
  sleep 0.1
done
[[ "${ALIVE}" == "1" ]] \
  || { echo "health smoke: storage never reported alive"; exit 1; }

kill -9 "${STORAGE_PID}"
DEAD=0
for _ in $(seq 100); do
  if build/tools/glider_cli --metadata "${META_ADDR}" health "${META_ADDR}" \
       | grep -q "\"address\":\"${STORAGE_ADDR}\",\"state\":\"dead\""; then
    DEAD=1
    break
  fi
  sleep 0.1
done
[[ "${DEAD}" == "1" ]] \
  || { echo "health smoke: killed storage daemon never reported dead"; exit 1; }

python3 -c "import urllib.request,sys; sys.stdout.write(
    urllib.request.urlopen('${METRICS_URL}', timeout=10).read().decode())" \
  >"${HEALTH_DIR}/metrics.txt"
grep -q "glider_health_phi" "${HEALTH_DIR}/metrics.txt" \
  || { echo "health smoke: /metrics has no glider_health_phi gauges"; exit 1; }
echo "health smoke: dead peer detected, $(grep -c glider_health_phi \
  "${HEALTH_DIR}/metrics.txt") phi gauge lines on /metrics"
cleanup_health
trap - EXIT

# Trace-assembly smoke: boots a 3-daemon deployment with span tracing on,
# streams a traced workload through it, then assembles every server's
# kTraceDump into cross-node traces. `glider_trace --check` fails unless at
# least one trace assembled, its critical path is non-empty, and every
# trace's bucket sum lands within 5% of its end-to-end latency — the
# clock-alignment + tree-rebuild invariants, checked against live daemons
# (and again under ASan/TSan below, where data races in the span plumbing
# would surface). Takes the build dir so each sanitizer leg reuses it.
trace_smoke() {
  local build_dir="$1"
  local smoke_dir="${build_dir}/trace-smoke"
  rm -rf "${smoke_dir}"
  mkdir -p "${smoke_dir}"
  TRACE_PIDS=()
  cleanup_trace() { kill "${TRACE_PIDS[@]}" 2>/dev/null || true; }
  trap cleanup_trace EXIT

  "${build_dir}/tools/glider_daemon" metadata --listen 127.0.0.1:0 --trace 1 \
    >"${smoke_dir}/metadata.log" 2>&1 &
  TRACE_PIDS+=($!)
  local meta_addr=""
  for _ in $(seq 100); do
    meta_addr="$(sed -n 's/^metadata server listening at \(.*\)$/\1/p' \
      "${smoke_dir}/metadata.log")"
    [[ -n "${meta_addr}" ]] && break
    sleep 0.1
  done
  [[ -n "${meta_addr}" ]] || { echo "trace smoke: metadata daemon did not come up"; return 1; }

  "${build_dir}/tools/glider_daemon" storage --metadata "${meta_addr}" \
    --blocks 256 --trace 1 >"${smoke_dir}/storage.log" 2>&1 &
  TRACE_PIDS+=($!)
  "${build_dir}/tools/glider_daemon" active --metadata "${meta_addr}" \
    --trace 1 >"${smoke_dir}/active.log" 2>&1 &
  TRACE_PIDS+=($!)
  local active_addr=""
  for _ in $(seq 100); do
    active_addr="$(sed -n 's/^active server (.*) at \([^,]*\), registered .*$/\1/p' \
      "${smoke_dir}/active.log")"
    [[ -n "${active_addr}" ]] && break
    sleep 0.1
  done
  [[ -n "${active_addr}" ]] || { echo "trace smoke: active daemon did not come up"; return 1; }

  # A short traced open-loop workload: the request spans land in the
  # daemons' ring buffers (the client's own spans die with glider_load —
  # exactly the orphan-grafting path the assembler must handle).
  "${build_dir}/tools/glider_load" --trace --metadata "${meta_addr}" \
    examples/specs/ci_smoke.spec >"${smoke_dir}/load.log" 2>&1 \
    || { echo "trace smoke: glider_load failed"; cat "${smoke_dir}/load.log"; return 1; }

  "${build_dir}/tools/glider_trace" assemble --metadata "${meta_addr}" \
    --check --out "${smoke_dir}/merged_trace.json" \
    >"${smoke_dir}/assemble.log" 2>&1 \
    || { echo "trace smoke: glider_trace --check failed"; cat "${smoke_dir}/assemble.log"; return 1; }
  [[ -s "${smoke_dir}/merged_trace.json" ]] \
    || { echo "trace smoke: empty merged Perfetto JSON"; return 1; }
  echo "trace smoke: $(grep -o '"ph":"X"' "${smoke_dir}/merged_trace.json" \
    | wc -l) merged span events (archived in ${smoke_dir})"
  cleanup_trace
  trap - EXIT
}

# Attribution smoke: boots a 3-daemon deployment with tracing on and the
# metadata daemon's Prometheus endpoint exposed, drives the two-principal
# ci_attr.spec (load workers split between tenants alpha and beta), then
# asserts (a) `glider_cli ledger` reports BOTH principals with nonzero
# cpu_us and nonzero bytes — the per-tenant resource ledgers survived the
# frame encoding, cross-thread propagation and the cluster-wide merge —
# and (b) an Accept-negotiated OpenMetrics scrape of /metrics carries at
# least one histogram exemplar ('# {trace_id=') linking a latency bucket
# to a live trace, while the classic 0.0.4 scrape stays exemplar-free.
# Takes the build dir so the sanitizer legs reuse it.
attr_smoke() {
  local build_dir="$1"
  local smoke_dir="${build_dir}/attr-smoke"
  rm -rf "${smoke_dir}"
  mkdir -p "${smoke_dir}"
  ATTR_PIDS=()
  cleanup_attr() { kill "${ATTR_PIDS[@]}" 2>/dev/null || true; }
  trap cleanup_attr EXIT

  "${build_dir}/tools/glider_daemon" metadata --listen 127.0.0.1:0 --trace 1 \
    --metrics-listen 127.0.0.1:0 >"${smoke_dir}/metadata.log" 2>&1 &
  ATTR_PIDS+=($!)
  local meta_addr=""
  for _ in $(seq 100); do
    meta_addr="$(sed -n 's/^metadata server listening at \(.*\)$/\1/p' \
      "${smoke_dir}/metadata.log")"
    [[ -n "${meta_addr}" ]] && break
    sleep 0.1
  done
  [[ -n "${meta_addr}" ]] || { echo "attr smoke: metadata daemon did not come up"; return 1; }
  local metrics_url
  metrics_url="$(sed -n 's/^metrics at \(.*\)$/\1/p' "${smoke_dir}/metadata.log")"
  [[ -n "${metrics_url}" ]] || { echo "attr smoke: metadata daemon exposed no /metrics"; return 1; }

  "${build_dir}/tools/glider_daemon" storage --metadata "${meta_addr}" \
    --blocks 256 --trace 1 >"${smoke_dir}/storage.log" 2>&1 &
  ATTR_PIDS+=($!)
  "${build_dir}/tools/glider_daemon" active --metadata "${meta_addr}" \
    --trace 1 >"${smoke_dir}/active.log" 2>&1 &
  ATTR_PIDS+=($!)
  local active_addr=""
  for _ in $(seq 100); do
    active_addr="$(sed -n 's/^active server (.*) at \([^,]*\), registered .*$/\1/p' \
      "${smoke_dir}/active.log")"
    [[ -n "${active_addr}" ]] && break
    sleep 0.1
  done
  [[ -n "${active_addr}" ]] || { echo "attr smoke: active daemon did not come up"; return 1; }

  "${build_dir}/tools/glider_load" --trace --metadata "${meta_addr}" \
    examples/specs/ci_attr.spec >"${smoke_dir}/load.log" 2>&1 \
    || { echo "attr smoke: glider_load failed"; cat "${smoke_dir}/load.log"; return 1; }

  "${build_dir}/tools/glider_cli" --metadata "${meta_addr}" ledger \
    --by principal >"${smoke_dir}/ledger.txt" \
    || { echo "attr smoke: glider_cli ledger failed"; return 1; }
  local tenant
  for tenant in alpha beta; do
    awk -v p="${tenant}" '$1 == p && $2 > 0 && ($4 > 0 || $5 > 0) {found = 1}
                          END {exit !found}' "${smoke_dir}/ledger.txt" \
      || { echo "attr smoke: ledger has no nonzero cpu/bytes row for ${tenant}";
           cat "${smoke_dir}/ledger.txt"; return 1; }
  done

  # Exemplars are only legal in the OpenMetrics exposition format, so they
  # are negotiated via Accept: the classic (default) scrape must stay
  # exemplar-free or a stock Prometheus parser rejects the whole page.
  python3 -c "import urllib.request,sys; sys.stdout.write(
      urllib.request.urlopen('${metrics_url}', timeout=10).read().decode())" \
    >"${smoke_dir}/metrics_classic.txt"
  if grep -q '# {trace_id=' "${smoke_dir}/metrics_classic.txt"; then
    echo "attr smoke: classic /metrics leaks OpenMetrics exemplars"; return 1
  fi
  python3 -c "import urllib.request,sys; sys.stdout.write(
      urllib.request.urlopen(urllib.request.Request('${metrics_url}',
          headers={'Accept': 'application/openmetrics-text; version=1.0.0'}),
          timeout=10).read().decode())" \
    >"${smoke_dir}/metrics.txt"
  grep -q '# {trace_id=' "${smoke_dir}/metrics.txt" \
    || { echo "attr smoke: OpenMetrics /metrics has no histogram exemplars"; return 1; }
  grep -q '^# EOF' "${smoke_dir}/metrics.txt" \
    || { echo "attr smoke: OpenMetrics /metrics missing # EOF terminator"; return 1; }
  echo "attr smoke: both tenants billed, $(grep -c '# {trace_id=' \
    "${smoke_dir}/metrics.txt") exemplar lines on /metrics (archived in ${smoke_dir})"
  cleanup_attr
  trap - EXIT
}

echo
echo "== trace smoke: daemons --trace + glider_load + glider_trace --check =="
trace_smoke build

echo
echo "== attribution smoke: two-principal load + glider_cli ledger + exemplars =="
attr_smoke build

echo
echo "== ASan: configure + build + ctest =="
cmake -B build-asan -S . -DGLIDER_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo
echo "== trace smoke (ASan) =="
trace_smoke build-asan

echo
echo "== attribution smoke (ASan) =="
attr_smoke build-asan

echo
echo "== TSan: configure + build + ctest =="
cmake -B build-tsan -S . -DGLIDER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}"

echo
echo "== trace smoke (TSan) =="
trace_smoke build-tsan

echo
echo "== attribution smoke (TSan) =="
attr_smoke build-tsan

echo
echo "ci/check.sh: all checks passed"
