// Unit tests of StreamChannel + ActionMonitor: sequence ordering, deferred
// admission/consumption, end-of-stream, abort, and interleaving yield.
#include <gtest/gtest.h>

#include <thread>

#include "glider/stream_channel.h"

namespace glider::core {
namespace {

DataTask Task(std::string_view text) {
  DataTask t;
  t.data = Buffer::FromString(text);
  return t;
}

TEST(StreamChannelTest, InOrderPushPop) {
  StreamChannel channel(4);
  std::vector<Status> acks;
  channel.AsyncPush(0, Task("a"), [&](Status s) { acks.push_back(s); });
  channel.AsyncPush(1, Task("b"), [&](Status s) { acks.push_back(s); });
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_TRUE(acks[0].ok() && acks[1].ok());

  auto t1 = channel.BlockingPop(nullptr);
  auto t2 = channel.BlockingPop(nullptr);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(t1->data.ToString(), "a");
  EXPECT_EQ(t2->data.ToString(), "b");
}

TEST(StreamChannelTest, OutOfOrderArrivalsReleasedInSequence) {
  StreamChannel channel(8);
  std::vector<int> admitted;
  channel.AsyncPush(2, Task("c"), [&](Status) { admitted.push_back(2); });
  channel.AsyncPush(1, Task("b"), [&](Status) { admitted.push_back(1); });
  EXPECT_TRUE(admitted.empty());  // holes: nothing admitted yet
  channel.AsyncPush(0, Task("a"), [&](Status) { admitted.push_back(0); });
  EXPECT_EQ(admitted, (std::vector<int>{0, 1, 2}));

  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "a");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "b");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "c");
}

TEST(StreamChannelTest, AdmissionDeferredWhileFull) {
  StreamChannel channel(2);
  int acked = 0;
  channel.AsyncPush(0, Task("a"), [&](Status) { ++acked; });
  channel.AsyncPush(1, Task("b"), [&](Status) { ++acked; });
  channel.AsyncPush(2, Task("c"), [&](Status) { ++acked; });
  EXPECT_EQ(acked, 2);  // third write waits for space
  ASSERT_TRUE(channel.BlockingPop(nullptr).ok());
  EXPECT_EQ(acked, 3);  // space freed -> admission + ack
}

TEST(StreamChannelTest, AsyncPopDeliversWhenDataArrives) {
  StreamChannel channel(4);
  std::vector<std::string> got;
  channel.AsyncPop(0, [&](Result<DataTask> t) {
    ASSERT_TRUE(t.ok());
    got.push_back(t->data.ToString());
  });
  EXPECT_TRUE(got.empty());  // parked
  channel.AsyncPush(0, Task("x"), [](Status) {});
  EXPECT_EQ(got, (std::vector<std::string>{"x"}));
}

TEST(StreamChannelTest, PipelinedPopsServedInSeqOrder) {
  StreamChannel channel(8);
  std::vector<std::string> got;
  // Reads arrive out of order (two network workers raced).
  channel.AsyncPop(1, [&](Result<DataTask> t) {
    got.push_back(t.ok() ? t->data.ToString() : "EOS");
  });
  channel.AsyncPop(0, [&](Result<DataTask> t) {
    got.push_back(t.ok() ? t->data.ToString() : "EOS");
  });
  channel.AsyncPush(0, Task("first"), [](Status) {});
  channel.AsyncPush(1, Task("second"), [](Status) {});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
}

TEST(StreamChannelTest, CloseProducerDrainsThenEos) {
  StreamChannel channel(4);
  channel.AsyncPush(0, Task("last"), [](Status) {});
  channel.CloseProducer();
  std::vector<std::string> got;
  channel.AsyncPop(0, [&](Result<DataTask> t) {
    got.push_back(t.ok() ? t->data.ToString() : "EOS");
  });
  channel.AsyncPop(1, [&](Result<DataTask> t) {
    got.push_back(t.ok() ? t->data.ToString() : "EOS");
  });
  EXPECT_EQ(got, (std::vector<std::string>{"last", "EOS"}));
}

TEST(StreamChannelTest, AbortFailsEverybody) {
  StreamChannel channel(1);
  std::vector<StatusCode> admit_codes;
  std::vector<bool> pop_ok;
  channel.AsyncPush(0, Task("a"), [&](Status s) { admit_codes.push_back(s.code()); });
  channel.AsyncPush(1, Task("b"), [&](Status s) { admit_codes.push_back(s.code()); });
  channel.AsyncPop(5, [&](Result<DataTask> t) { pop_ok.push_back(t.ok()); });
  channel.Abort();
  // First push was admitted; the deferred second got kClosed; the parked
  // out-of-sequence consumer got kClosed.
  EXPECT_EQ(admit_codes,
            (std::vector<StatusCode>{StatusCode::kOk, StatusCode::kClosed}));
  EXPECT_EQ(pop_ok, (std::vector<bool>{false}));
  // Action-side ops fail fast after abort.
  EXPECT_EQ(channel.BlockingPush(Task("x"), nullptr).code(),
            StatusCode::kClosed);
}

TEST(StreamChannelTest, BlockingPushRespectsCapacityAndAbort) {
  StreamChannel channel(2);
  ASSERT_TRUE(channel.BlockingPush(Task("a"), nullptr).ok());
  ASSERT_TRUE(channel.BlockingPush(Task("b"), nullptr).ok());
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(channel.BlockingPush(Task("c"), nullptr).ok());
    third_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());  // full: producer blocked
  channel.AsyncPop(0, [](Result<DataTask>) {});
  producer.join();
  EXPECT_TRUE(third_done.load());
}

TEST(StreamChannelTest, AsyncPushAllAdmitsBatchWithSingleAck) {
  StreamChannel channel(8);
  int acks = 0;
  Status last;
  std::vector<DataTask> batch;
  batch.push_back(Task("a"));
  batch.push_back(Task("b"));
  batch.push_back(Task("c"));
  channel.AsyncPushAll(0, std::move(batch), [&](Status s) {
    ++acks;
    last = s;
  });
  EXPECT_EQ(acks, 1);  // one ack for the whole batch
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "a");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "b");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "c");
}

TEST(StreamChannelTest, AsyncPushAllOutOfOrderWaitsForHole) {
  StreamChannel channel(8);
  int acks = 0;
  std::vector<DataTask> tail;
  tail.push_back(Task("b"));
  tail.push_back(Task("c"));
  channel.AsyncPushAll(1, std::move(tail), [&](Status) { ++acks; });
  EXPECT_EQ(acks, 0);  // hole at seq 0: nothing admitted yet
  channel.AsyncPush(0, Task("a"), [](Status) {});
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "a");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "b");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "c");
}

TEST(StreamChannelTest, AsyncPushAllAckDeferredUntilLastAdmitted) {
  StreamChannel channel(2);
  int acks = 0;
  std::vector<DataTask> batch;
  batch.push_back(Task("a"));
  batch.push_back(Task("b"));
  batch.push_back(Task("c"));
  channel.AsyncPushAll(0, std::move(batch), [&](Status) { ++acks; });
  EXPECT_EQ(acks, 0);  // capacity 2: the last task is still waiting
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "a");
  EXPECT_EQ(acks, 1);  // pop freed a slot; "c" admitted, batch acked
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "b");
  EXPECT_EQ(channel.BlockingPop(nullptr)->data.ToString(), "c");
}

TEST(StreamChannelTest, AbortFailsPendingBatchAck) {
  StreamChannel channel(1);
  std::vector<StatusCode> codes;
  std::vector<DataTask> batch;
  batch.push_back(Task("a"));
  batch.push_back(Task("b"));
  channel.AsyncPushAll(0, std::move(batch),
                       [&](Status s) { codes.push_back(s.code()); });
  EXPECT_TRUE(codes.empty());  // "b" not admitted: ack pending
  channel.Abort();
  EXPECT_EQ(codes, (std::vector<StatusCode>{StatusCode::kClosed}));
}

TEST(StreamChannelTest, BlockingPopAllDrainsUpToMax) {
  StreamChannel channel(8);
  std::vector<DataTask> batch;
  for (const char* s : {"a", "b", "c", "d"}) batch.push_back(Task(s));
  channel.AsyncPushAll(0, std::move(batch), [](Status) {});
  auto first = channel.BlockingPopAll(nullptr, /*max_items=*/3);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 3u);
  EXPECT_EQ((*first)[0].data.ToString(), "a");
  EXPECT_EQ((*first)[2].data.ToString(), "c");
  auto rest = channel.BlockingPopAll(nullptr, /*max_items=*/16);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].data.ToString(), "d");
}

TEST(StreamChannelTest, BlockingPopAllWaitsForFirstItem) {
  StreamChannel channel(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.AsyncPush(0, Task("late"), [](Status) {});
  });
  auto batch = channel.BlockingPopAll(nullptr, /*max_items=*/4);
  producer.join();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].data.ToString(), "late");
}

TEST(StreamChannelTest, BlockingPopAllAfterAbortReportsClosed) {
  StreamChannel channel(4);
  channel.Abort();
  EXPECT_EQ(channel.BlockingPopAll(nullptr, 4).status().code(),
            StatusCode::kClosed);
}

TEST(StreamChannelTest, BlockingPopWaitsForData) {
  StreamChannel channel(4);
  std::string got;
  std::thread consumer([&] {
    auto t = channel.BlockingPop(nullptr);
    ASSERT_TRUE(t.ok());
    got = t->data.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.AsyncPush(0, Task("late"), [](Status) {});
  consumer.join();
  EXPECT_EQ(got, "late");
}

// ---- ActionMonitor -----------------------------------------------------------

TEST(ActionMonitorTest, MutualExclusion) {
  ActionMonitor monitor;
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        monitor.Enter();
        const int now = ++inside;
        int peak = max_inside.load();
        while (now > peak && !max_inside.compare_exchange_weak(peak, now)) {
        }
        --inside;
        monitor.Exit();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_inside.load(), 1);
}

TEST(StreamChannelTest, InterleavedPopYieldsMonitor) {
  // Method A holds the monitor and blocks on an empty channel with yield;
  // method B must be able to take the monitor meanwhile (turn taking).
  StreamChannel channel_a(4);
  ActionMonitor monitor;
  std::atomic<bool> b_ran{false};

  std::thread method_a([&] {
    monitor.Enter();
    auto task = channel_a.BlockingPop(&monitor);  // yields while waiting
    EXPECT_TRUE(task.ok());
    monitor.Exit();
  });
  std::thread method_b([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    monitor.Enter();  // must not deadlock: A yielded its turn
    b_ran = true;
    monitor.Exit();
    channel_a.AsyncPush(0, Task("resume-a"), [](Status) {});
  });
  method_a.join();
  method_b.join();
  EXPECT_TRUE(b_ran.load());
}

TEST(StreamChannelTest, NonInterleavedPopHoldsMonitor) {
  // Without yield, a method blocked on its stream keeps its turn: another
  // method cannot enter until the first completes.
  StreamChannel channel(4);
  ActionMonitor monitor;
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_entered{false};

  std::thread method_a([&] {
    monitor.Enter();
    auto task = channel.BlockingPop(nullptr);  // holds the turn
    EXPECT_TRUE(task.ok());
    a_done = true;
    monitor.Exit();
  });
  std::thread method_b([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    monitor.Enter();
    b_entered = true;
    EXPECT_TRUE(a_done.load());  // B may only run after A finished
    monitor.Exit();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(b_entered.load());
  channel.AsyncPush(0, Task("go"), [](Status) {});
  method_a.join();
  method_b.join();
  EXPECT_TRUE(b_entered.load());
}

}  // namespace
}  // namespace glider::core
