// Tests for cross-node trace assembly (DESIGN.md §11): RTT-midpoint clock
// offset estimation under skew + jitter, Chrome-JSON round-tripping,
// multi-node tree rebuild and critical-path attribution under injected
// clock skew, causal alignment of nodes without heartbeat samples, orphan
// grafting, and the live paths (MiniCluster end-to-end assembly and
// ClusterMonitor::AlignClocks over real sockets).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "common/trace_assemble.h"
#include "glider/client/action_node.h"
#include "glider/cluster_monitor.h"
#include "nodekernel/client/store_client.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

using obs::AssembledTrace;
using obs::ClockOffsetEstimator;
using obs::ClockSample;
using obs::SpanRecord;
using obs::TraceAssembler;

SpanRecord MakeSpan(const std::string& name, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent,
                    std::uint64_t start_us, std::uint64_t dur_us) {
  SpanRecord span;
  span.name = name;
  span.category = "test";
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent;
  span.start_us = start_us;
  span.dur_us = dur_us;
  return span;
}

std::uint64_t BucketSum(const AssembledTrace& trace) {
  std::uint64_t sum = 0;
  for (const auto& [bucket, us] : trace.bucket_us) sum += us;
  return sum;
}

// ---- Clock offset estimation ------------------------------------------------

// A remote clock skewed by a constant offset, probed through a network with
// jittery one-way delays: the min-RTT-filtered midpoint estimate must land
// within error_bound_us (= min_rtt / 2) of the true offset.
TEST(ClockOffsetEstimatorTest, ConvergesWithinMinRttBound) {
  constexpr std::int64_t kTrueOffset = 25'000'000;  // 25 s boot-time delta
  SplitMix64 rng(7);
  ClockOffsetEstimator estimator;
  std::uint64_t local = 1'000'000;
  for (int i = 0; i < 64; ++i) {
    // Asymmetric jitter: 30..530 us out, 30..1030 us back.
    const std::uint64_t out = 30 + rng.Next() % 500;
    const std::uint64_t back = 30 + rng.Next() % 1000;
    ClockSample sample;
    sample.send_us = local;
    sample.remote_us =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(local + out) +
                                   kTrueOffset);
    sample.recv_us = local + out + back;
    estimator.AddSample(sample);
    local += 10'000;
  }
  ASSERT_TRUE(estimator.has_estimate());
  EXPECT_EQ(estimator.samples(), 64);
  // 64 draws make a near-minimal RTT (~60 us floor) overwhelmingly likely.
  EXPECT_LT(estimator.min_rtt_us(), 300u);
  const std::int64_t error = estimator.offset_us() - kTrueOffset;
  EXPECT_LE(static_cast<std::uint64_t>(error < 0 ? -error : error),
            estimator.error_bound_us())
      << "offset " << estimator.offset_us() << " true " << kTrueOffset
      << " bound " << estimator.error_bound_us();
}

// Symmetric delays make the midpoint exact regardless of RTT.
TEST(ClockOffsetEstimatorTest, SymmetricDelayIsExact) {
  ClockOffsetEstimator estimator;
  ClockSample sample;
  sample.send_us = 1000;
  sample.recv_us = 1400;                 // rtt 400
  sample.remote_us = 1200 + 77'000'000;  // stamped exactly at the midpoint
  estimator.AddSample(sample);
  EXPECT_EQ(estimator.offset_us(), 77'000'000);
  EXPECT_EQ(estimator.min_rtt_us(), 400u);
  EXPECT_EQ(estimator.error_bound_us(), 200u);
}

// ---- Chrome JSON round trip -------------------------------------------------

TEST(ParseChromeTraceJsonTest, RoundTripsRecorderOutput) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();
  {
    obs::Span root = obs::Span::Root("test", "round_trip_root");
    obs::Span child("test", "round_trip_child");
  }
  const std::string json = obs::TraceRecorder::Global().ToChromeJson();
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(false);

  auto parsed = obs::ParseChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  const SpanRecord* root = nullptr;
  const SpanRecord* child = nullptr;
  for (const auto& span : *parsed) {
    if (span.name == "round_trip_root") root = &span;
    if (span.name == "round_trip_child") child = &span;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->trace_id, child->trace_id);
  EXPECT_EQ(child->parent_span_id, root->span_id);
  EXPECT_EQ(root->parent_span_id, 0u);
  EXPECT_STREQ(root->category, "test");
  EXPECT_GE(child->start_us, root->start_us);
}

TEST(ParseChromeTraceJsonTest, RejectsGarbageAndSkipsNonSpanEvents) {
  EXPECT_FALSE(obs::ParseChromeTraceJson("not json").ok());
  // Metadata rows (ph:"M") and spans without ids are skipped, not errors.
  auto parsed = obs::ParseChromeTraceJson(
      R"({"traceEvents":[)"
      R"({"ph":"M","pid":1,"name":"process_name"},)"
      R"({"ph":"X","pid":1,"tid":2,"name":"n","cat":"c","ts":5,"dur":3,)"
      R"("args":{"trace_id":"0000000000000000","span_id":"1"}}]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

// ---- Multi-node assembly under skew -----------------------------------------

// Three nodes with clocks ±50 ms apart, one RPC chain spanning them:
// client(load.req -> rpc.Get) -> mid(handle.Get -> rpc.Read) ->
// far(handle.Read). With explicit offsets the assembled trace must order
// every span on one timeline, keep the critical path monotone, and have
// its buckets partition the end-to-end window exactly.
TEST(TraceAssemblerTest, ThreeNodeSkewedCriticalPath) {
  constexpr std::uint64_t kTrace = 0xabc1;
  // True timeline (reference clock): root [1000, 9000).
  // Node clocks: mid runs 50 ms ahead, far 50 ms behind.
  constexpr std::int64_t kMidOffset = 50'000;
  constexpr std::int64_t kFarOffset = -50'000;

  TraceAssembler assembler;
  assembler.AddSpans(
      "client",
      {MakeSpan("load.req", kTrace, 1, 0, 1000, 8000),
       MakeSpan("rpc.Get", kTrace, 2, 1, 2000, 6000)},
      0);
  assembler.AddSpans(
      "mid",
      {MakeSpan("handle.Get", kTrace, 3, 2, 2500 + kMidOffset, 5000),
       MakeSpan("rpc.Read", kTrace, 4, 3, 3000 + kMidOffset, 3000)},
      kMidOffset);
  assembler.AddSpans(
      "far", {MakeSpan("handle.Read", kTrace, 5, 4, 3500 + kFarOffset, 2000)},
      kFarOffset);

  auto traces = assembler.Assemble();
  ASSERT_EQ(traces.size(), 1u);
  const AssembledTrace& trace = traces[0];
  EXPECT_EQ(trace.nodes, 3u);
  EXPECT_EQ(trace.orphans, 0u);
  ASSERT_EQ(trace.spans.size(), 5u);
  EXPECT_EQ(trace.spans[trace.root].span.name, "load.req");
  EXPECT_EQ(trace.total_us, 8000u);

  // Aligned: every child starts at or after its parent (offsets removed).
  for (const auto& span : trace.spans) {
    if (span.parent == obs::AssembledSpan::kNoParent) continue;
    EXPECT_GE(span.clamp_start_us, trace.spans[span.parent].clamp_start_us)
        << span.span.name;
    EXPECT_LE(span.clamp_end_us, trace.spans[span.parent].clamp_end_us)
        << span.span.name;
  }

  // The critical path partitions [root.start, root.end) monotonically.
  ASSERT_FALSE(trace.critical_path.empty());
  std::uint64_t cursor = trace.start_us;
  for (const auto& segment : trace.critical_path) {
    EXPECT_EQ(segment.start_us, cursor);
    EXPECT_GT(segment.end_us, segment.start_us);
    cursor = segment.end_us;
  }
  EXPECT_EQ(cursor, trace.start_us + trace.total_us);
  EXPECT_EQ(BucketSum(trace), trace.total_us);

  // The depth sweep charges the deepest covering span. Aligned timeline:
  // load.req [1000,9000) > rpc.Get [2000,8000) > handle.Get [2500,7500)
  // > rpc.Read [3000,6000) > handle.Read [3500,5500), so:
  //   server: handle.Get remainders (500+1500) + handle.Read (2000)
  //   net:    rpc.Get remainders (500+500) + rpc.Read remainders (500+500)
  //   client: load.req remainders (1000+1000)
  EXPECT_EQ(trace.bucket_us.at("server"), 4000u);
  EXPECT_EQ(trace.bucket_us.at("net"), 2000u);
  EXPECT_EQ(trace.bucket_us.at("client"), 2000u);
}

// A node with no explicit offset aligns causally: its handle.Get must sit
// inside the client's rpc.Get, and the recovered offset lands close enough
// to the truth that the critical path still partitions exactly.
TEST(TraceAssemblerTest, CausalFallbackAlignsUnsampledNode) {
  constexpr std::uint64_t kTrace = 0xdef2;
  constexpr std::int64_t kServerOffset = 30'000'000;  // 30 s, no sample

  TraceAssembler assembler;
  assembler.AddSpans(
      "client",
      {MakeSpan("cli.req", kTrace, 1, 0, 1000, 4000),
       MakeSpan("rpc.Get", kTrace, 2, 1, 1500, 3000)},
      0);
  // No offset passed: alignment must come from the rpc.Get/handle.Get pair.
  assembler.AddSpans(
      "server",
      {MakeSpan("handle.Get", kTrace, 3, 2, 2000 + kServerOffset, 2000)});

  auto traces = assembler.Assemble();
  ASSERT_EQ(traces.size(), 1u);
  const AssembledTrace& trace = traces[0];
  EXPECT_TRUE(assembler.unaligned_nodes().empty());
  const std::int64_t recovered = assembler.node_offsets().at("server");
  // Midpoint-of-midpoints: rpc.Get midpoint 3000 vs handle.Get midpoint
  // 3000 + offset; the estimate is exact here.
  EXPECT_NEAR(static_cast<double>(recovered),
              static_cast<double>(kServerOffset), 1500.0);
  EXPECT_EQ(trace.nodes, 2u);
  EXPECT_EQ(BucketSum(trace), trace.total_us);
  // handle.Get clamps inside rpc.Get on the aligned timeline.
  const obs::AssembledSpan* handle = nullptr;
  const obs::AssembledSpan* rpc = nullptr;
  for (const auto& span : trace.spans) {
    if (span.span.name == "handle.Get") handle = &span;
    if (span.span.name == "rpc.Get") rpc = &span;
  }
  ASSERT_NE(handle, nullptr);
  ASSERT_NE(rpc, nullptr);
  EXPECT_GE(handle->clamp_start_us, rpc->clamp_start_us);
  EXPECT_LE(handle->clamp_end_us, rpc->clamp_end_us);
}

// Dumps whose root lived in a process we never fetched become an orphan
// forest under a synthetic root spanning the forest.
TEST(TraceAssemblerTest, OrphanForestGetsSyntheticRoot) {
  constexpr std::uint64_t kTrace = 0x5417;
  TraceAssembler assembler;
  assembler.AddSpans(
      "server",
      {MakeSpan("handle.Put", kTrace, 10, 99, 1000, 500),   // parent missing
       MakeSpan("handle.Get", kTrace, 11, 99, 2000, 800),   // parent missing
       MakeSpan("storage.write", kTrace, 12, 10, 1100, 200)},
      0);
  auto traces = assembler.Assemble();
  ASSERT_EQ(traces.size(), 1u);
  const AssembledTrace& trace = traces[0];
  ASSERT_EQ(trace.spans.size(), 4u);  // 3 real + synthetic root
  EXPECT_TRUE(trace.spans[trace.root].synthetic);
  EXPECT_EQ(trace.orphans, 2u);
  EXPECT_EQ(trace.start_us, trace.spans[trace.root].span.start_us);
  EXPECT_EQ(trace.total_us, 1800u);  // [1000, 2800)
  EXPECT_EQ(BucketSum(trace), trace.total_us);
  ASSERT_FALSE(trace.critical_path.empty());
}

TEST(TraceAssemblerTest, BucketMapping) {
  EXPECT_STREQ(TraceAssembler::BucketFor("rpc.StreamWrite"), "net");
  EXPECT_STREQ(TraceAssembler::BucketFor("handle.Lookup"), "server");
  EXPECT_STREQ(TraceAssembler::BucketFor("meta.lookup"), "server");
  EXPECT_STREQ(TraceAssembler::BucketFor("storage.write"), "server");
  EXPECT_STREQ(TraceAssembler::BucketFor("action.onWrite.queue"), "queue");
  EXPECT_STREQ(TraceAssembler::BucketFor("action.onWrite.run"), "run");
  EXPECT_STREQ(TraceAssembler::BucketFor("channel.wait"), "channel");
  EXPECT_STREQ(TraceAssembler::BucketFor("channel.pop"), "channel");
  EXPECT_STREQ(TraceAssembler::BucketFor("load.sink"), "client");
  EXPECT_STREQ(TraceAssembler::BucketFor("cli.action-write"), "client");
  EXPECT_STREQ(TraceAssembler::BucketFor("anything.else"), "client");
}

TEST(PercentileUsTest, NearestRank) {
  EXPECT_EQ(obs::PercentileUs({}, 99), 0.0);
  EXPECT_EQ(obs::PercentileUs({7}, 50), 7.0);
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_EQ(obs::PercentileUs(v, 50), 50.0);
  EXPECT_EQ(obs::PercentileUs(v, 99), 99.0);
  EXPECT_EQ(obs::PercentileUs(v, 100), 100.0);
}

// ---- End-to-end over a MiniCluster ------------------------------------------

// A traced action-write workload through a MiniCluster: snapshotting the
// (shared, in-process) recorder and assembling must yield complete traces
// whose buckets partition the end-to-end window, with the action pipeline
// visible (queue/run spans parented under the handles, channel spans from
// the stream hops).
TEST(TraceAssembleE2ETest, MiniClusterActionWriteAssembles) {
  workloads::RegisterWorkloadActions();
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();

  testing::ClusterOptions options;
  options.data_servers = 1;
  options.active_servers = 1;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  {
    auto client = (*cluster)->NewInternalClient();
    ASSERT_TRUE(client.ok());
    auto node = core::ActionNode::Create(**client, "/ta-sink", "glider.merge");
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    for (int i = 0; i < 4; ++i) {
      obs::Span root = obs::Span::Root("test", "load.e2e");
      std::string batch;
      for (int k = 0; k < 32; ++k) {
        batch += std::to_string(i * 32 + k) + ",1\n";
      }
      auto writer = node->OpenWriter();
      ASSERT_TRUE(writer.ok());
      ASSERT_TRUE((*writer)->Write(batch).ok());
      ASSERT_TRUE((*writer)->Close().ok());
    }
  }

  TraceAssembler assembler;
  assembler.AddSpans("mini", obs::TraceRecorder::Global().Snapshot(), 0);
  auto traces = assembler.Assemble();
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(false);
  cluster->reset();

  std::size_t checked = 0;
  bool saw_queue = false, saw_run = false;
  for (const auto& trace : traces) {
    if (trace.spans[trace.root].span.name != "load.e2e") continue;
    ++checked;
    ASSERT_FALSE(trace.critical_path.empty());
    EXPECT_EQ(BucketSum(trace), trace.total_us);
    for (const auto& span : trace.spans) {
      if (span.span.name == "action.onWrite.queue") saw_queue = true;
      if (span.span.name == "action.onWrite.run") saw_run = true;
    }
  }
  EXPECT_EQ(checked, 4u);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_run);
}

// AlignClocks over real sockets: every discovered server answers, and since
// MiniCluster shares one process (one clock), each estimated offset must be
// within the estimator's own error bound of zero.
TEST(TraceAssembleE2ETest, AlignClocksOverTcpMiniCluster) {
  workloads::RegisterWorkloadActions();
  testing::ClusterOptions options;
  options.use_tcp = true;
  options.data_servers = 1;
  options.active_servers = 1;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  ClusterMonitor monitor(&(*cluster)->transport(),
                         (*cluster)->metadata_address());
  auto offsets = monitor.AlignClocks(/*samples_per_server=*/6);
  ASSERT_TRUE(offsets.ok()) << offsets.status().ToString();
  ASSERT_GE(offsets->size(), 1u);
  for (const auto& [address, offset] : *offsets) {
    EXPECT_EQ(offset.samples, 6) << address;
    const std::int64_t bound =
        static_cast<std::int64_t>(offset.min_rtt_us / 2 + 1);
    EXPECT_LE(offset.offset_us, bound) << address;
    EXPECT_GE(offset.offset_us, -bound) << address;
  }
  // The gauges landed in the global registry.
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  bool saw_gauge = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("clock.offset_us.", 0) == 0) saw_gauge = true;
  }
  EXPECT_TRUE(saw_gauge);
}

}  // namespace
}  // namespace glider
