// Unit tests of the metadata plane: namespace tree semantics, block
// manager allocation policy, and protocol encodings.
#include <gtest/gtest.h>

#include "nodekernel/block_manager.h"
#include "nodekernel/namespace_tree.h"
#include "nodekernel/protocol.h"

namespace glider::nk {
namespace {

// ---- path parsing -----------------------------------------------------------

TEST(PathTest, SplitsComponents) {
  auto parts = NamespaceTree::SplitPath("/a/b/c");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(*parts, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PathTest, RootIsEmptyList) {
  auto parts = NamespaceTree::SplitPath("/");
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

TEST(PathTest, TrailingSlashAllowed) {
  auto parts = NamespaceTree::SplitPath("/a/b/");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
}

TEST(PathTest, RelativeAndEmptyRejected) {
  EXPECT_FALSE(NamespaceTree::SplitPath("a/b").ok());
  EXPECT_FALSE(NamespaceTree::SplitPath("").ok());
  EXPECT_FALSE(NamespaceTree::SplitPath("/a//b").ok());
}

// ---- namespace tree ---------------------------------------------------------

TEST(NamespaceTreeTest, CreateLookupRemove) {
  NamespaceTree tree;
  auto created = tree.Create("/f", NodeType::kFile);
  ASSERT_TRUE(created.ok());
  const NodeId id = (*created)->id;
  EXPECT_GT(id, 0u);

  auto found = tree.Lookup("/f");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->id, id);

  auto removed = tree.Remove("/f");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->id, id);
  EXPECT_EQ(tree.Lookup("/f").status().code(), StatusCode::kNotFound);
}

TEST(NamespaceTreeTest, DuplicateCreateRejected) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.Create("/f", NodeType::kFile).ok());
  EXPECT_EQ(tree.Create("/f", NodeType::kFile).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(NamespaceTreeTest, ParentMustExist) {
  NamespaceTree tree;
  EXPECT_EQ(tree.Create("/no/such/parent", NodeType::kFile).status().code(),
            StatusCode::kNotFound);
}

TEST(NamespaceTreeTest, IdsAreUniqueAndMonotonic) {
  NamespaceTree tree;
  NodeId last = 0;
  for (int i = 0; i < 20; ++i) {
    auto created = tree.Create("/n" + std::to_string(i), NodeType::kFile);
    ASSERT_TRUE(created.ok());
    EXPECT_GT((*created)->id, last);
    last = (*created)->id;
  }
  EXPECT_EQ(tree.NodeCount(), 20u);
}

TEST(NamespaceTreeTest, DeepHierarchy) {
  NamespaceTree tree;
  std::string path;
  for (int depth = 0; depth < 32; ++depth) {
    path += "/d";
    ASSERT_TRUE(tree.Create(path, NodeType::kDirectory).ok()) << path;
  }
  EXPECT_TRUE(tree.Lookup(path).ok());
  // Remove must refuse while children exist.
  EXPECT_EQ(tree.Remove("/d").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NamespaceTreeTest, ContainerTypingEnforced) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.Create("/t", NodeType::kTable).ok());
  ASSERT_TRUE(tree.Create("/b", NodeType::kBag).ok());
  ASSERT_TRUE(tree.Create("/f", NodeType::kFile).ok());
  ASSERT_TRUE(tree.Create("/a", NodeType::kAction).ok());

  EXPECT_TRUE(tree.Create("/t/kv", NodeType::kKeyValue).ok());
  EXPECT_FALSE(tree.Create("/t/f", NodeType::kFile).ok());
  EXPECT_TRUE(tree.Create("/b/f", NodeType::kFile).ok());
  EXPECT_FALSE(tree.Create("/b/t", NodeType::kTable).ok());
  EXPECT_FALSE(tree.Create("/f/x", NodeType::kFile).ok());
  // Actions are leaves, not containers.
  EXPECT_FALSE(tree.Create("/a/x", NodeType::kFile).ok());
}

TEST(NamespaceTreeTest, ListChildren) {
  NamespaceTree tree;
  ASSERT_TRUE(tree.Create("/d", NodeType::kDirectory).ok());
  ASSERT_TRUE(tree.Create("/d/x", NodeType::kFile).ok());
  ASSERT_TRUE(tree.Create("/d/y", NodeType::kAction).ok());
  auto listing = tree.List("/d");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  EXPECT_EQ((*listing)[0].first, "x");
  EXPECT_EQ((*listing)[1].second, NodeType::kAction);
  // Root listing works too.
  auto root = tree.List("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->size(), 1u);
}

// ---- block manager ----------------------------------------------------------

TEST(BlockManagerTest, RoundRobinAcrossServers) {
  BlockManager manager;
  const ServerId s1 = manager.RegisterServer(kDefaultClass, "a", 4, 1024);
  const ServerId s2 = manager.RegisterServer(kDefaultClass, "b", 4, 1024);

  std::vector<ServerId> owners;
  for (int i = 0; i < 4; ++i) {
    auto loc = manager.Allocate(kDefaultClass);
    ASSERT_TRUE(loc.ok());
    owners.push_back(loc->server);
  }
  EXPECT_EQ(owners, (std::vector<ServerId>{s1, s2, s1, s2}));
}

TEST(BlockManagerTest, SkipsExhaustedServers) {
  BlockManager manager;
  manager.RegisterServer(kDefaultClass, "a", 1, 1024);
  const ServerId s2 = manager.RegisterServer(kDefaultClass, "b", 3, 1024);
  ASSERT_TRUE(manager.Allocate(kDefaultClass).ok());  // a's only block
  for (int i = 0; i < 3; ++i) {
    auto loc = manager.Allocate(kDefaultClass);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->server, s2);
  }
  EXPECT_EQ(manager.Allocate(kDefaultClass).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(BlockManagerTest, FreeMakesBlockReusable) {
  BlockManager manager;
  manager.RegisterServer(kDefaultClass, "a", 1, 1024);
  auto loc = manager.Allocate(kDefaultClass);
  ASSERT_TRUE(loc.ok());
  EXPECT_FALSE(manager.Allocate(kDefaultClass).ok());
  ASSERT_TRUE(manager.Free(*loc).ok());
  EXPECT_TRUE(manager.Allocate(kDefaultClass).ok());
}

TEST(BlockManagerTest, ClassesAreIsolated) {
  BlockManager manager;
  manager.RegisterServer(kDefaultClass, "data", 2, 1024);
  manager.RegisterServer(kActiveClass, "active", 2, 1024);
  auto data_loc = manager.Allocate(kDefaultClass);
  auto active_loc = manager.Allocate(kActiveClass);
  ASSERT_TRUE(data_loc.ok());
  ASSERT_TRUE(active_loc.ok());
  EXPECT_EQ(data_loc->address, "data");
  EXPECT_EQ(active_loc->address, "active");
  EXPECT_EQ(manager.Allocate(42).status().code(), StatusCode::kNotFound);
}

TEST(BlockManagerTest, CountsAndInvalidFrees) {
  BlockManager manager;
  manager.RegisterServer(kDefaultClass, "a", 8, 1024);
  EXPECT_EQ(manager.TotalBlockCount(kDefaultClass), 8u);
  EXPECT_EQ(manager.FreeBlockCount(kDefaultClass), 8u);
  (void)manager.Allocate(kDefaultClass);
  EXPECT_EQ(manager.FreeBlockCount(kDefaultClass), 7u);

  BlockLoc bogus;
  bogus.server = 99;
  EXPECT_EQ(manager.Free(bogus).code(), StatusCode::kNotFound);
  BlockLoc out_of_range;
  out_of_range.server = 1;
  out_of_range.block = 100;
  EXPECT_EQ(manager.Free(out_of_range).code(), StatusCode::kOutOfRange);
}

// ---- protocol encodings -----------------------------------------------------

TEST(ProtocolTest, NodeInfoRoundTrip) {
  NodeInfo info;
  info.id = 77;
  info.type = NodeType::kAction;
  info.size = 1234;
  info.block_size = 4096;
  info.storage_class = kActiveClass;
  info.action_type = "glider.merge";
  info.interleave = true;
  info.slot = {3, 9, "inproc://2"};

  NodeInfoResponse out{info};
  auto decoded = NodeInfoResponse::Decode(out.Encode().span());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->info.id, 77u);
  EXPECT_EQ(decoded->info.type, NodeType::kAction);
  EXPECT_EQ(decoded->info.action_type, "glider.merge");
  EXPECT_TRUE(decoded->info.interleave);
  EXPECT_EQ(decoded->info.slot, info.slot);
}

TEST(ProtocolTest, CreateNodeRequestRoundTrip) {
  CreateNodeRequest req;
  req.path = "/x/y";
  req.type = NodeType::kAction;
  req.storage_class = kActiveClass;
  req.action_type = "t";
  req.interleave = true;
  req.config = Buffer::FromString("cfg");
  auto decoded = CreateNodeRequest::Decode(req.Encode().span());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->path, "/x/y");
  EXPECT_EQ(decoded->config.ToString(), "cfg");
}

TEST(ProtocolTest, WriteBlockRequestRoundTrip) {
  WriteBlockRequest req;
  req.block = 5;
  req.offset = 100;
  req.data = Buffer::FromString("datadata");
  auto decoded = WriteBlockRequest::Decode(req.Encode().span());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->block, 5u);
  EXPECT_EQ(decoded->offset, 100u);
  EXPECT_EQ(decoded->data.ToString(), "datadata");
}

TEST(ProtocolTest, ListResponseRoundTrip) {
  ListResponse resp;
  resp.entries = {{"a", NodeType::kFile}, {"b", NodeType::kAction}};
  auto decoded = ListResponse::Decode(resp.Encode().span());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[1].name, "b");
  EXPECT_EQ(decoded->entries[1].type, NodeType::kAction);
}

TEST(ProtocolTest, GarbagePayloadRejected) {
  const std::uint8_t garbage[] = {0xFF, 0x01};
  EXPECT_FALSE(NodeInfoResponse::Decode(ByteSpan(garbage, 2)).ok());
  EXPECT_FALSE(CreateNodeRequest::Decode(ByteSpan(garbage, 2)).ok());
  EXPECT_FALSE(WriteBlockRequest::Decode(ByteSpan(garbage, 2)).ok());
}

}  // namespace
}  // namespace glider::nk
