// Unit tests of the workload data generators: determinism and the
// statistical properties the evaluation depends on.
#include <gtest/gtest.h>

#include <sstream>

#include "workloads/generators.h"

namespace glider::workloads {
namespace {

TEST(TextGeneratorTest, Deterministic) {
  std::string a, b;
  TextGenerator(1, 0.01).Generate(10'000, a);
  TextGenerator(1, 0.01).Generate(10'000, b);
  EXPECT_EQ(a, b);
  std::string c;
  TextGenerator(2, 0.01).Generate(10'000, c);
  EXPECT_NE(a, c);
}

TEST(TextGeneratorTest, MarkerRateApproximatelyHolds) {
  std::string text;
  TextGenerator gen(7, 0.02, "NEEDLE");
  gen.Generate(400'000, text);
  std::istringstream in(text);
  std::string line;
  std::size_t total = 0, marked = 0;
  while (std::getline(in, line)) {
    ++total;
    if (line.find("NEEDLE") != std::string::npos) ++marked;
  }
  ASSERT_GT(total, 1000u);
  const double rate = static_cast<double>(marked) / static_cast<double>(total);
  EXPECT_GT(rate, 0.008);
  EXPECT_LT(rate, 0.05);
}

TEST(TextGeneratorTest, ProducesWholeLines) {
  std::string text;
  TextGenerator(3, 0.0).Generate(5'000, text);
  EXPECT_EQ(text.back(), '\n');
}

TEST(PairGeneratorTest, FormatAndKeyRange) {
  std::string out;
  PairGenerator gen(5, 16);
  gen.Generate(1000, out);
  std::istringstream in(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    const int key = std::stoi(line.substr(0, comma));
    const long long value = std::stoll(line.substr(comma + 1));
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 16);
    EXPECT_GE(value, 0);
    ++count;
  }
  EXPECT_EQ(count, 1000u);
}

TEST(PairGeneratorTest, CoversAllKeysEventually) {
  std::string out;
  PairGenerator gen(5, 8);
  gen.Generate(1000, out);
  std::set<int> keys;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    keys.insert(std::stoi(line.substr(0, line.find(','))));
  }
  EXPECT_EQ(keys.size(), 8u);
}

TEST(SortRecordGeneratorTest, FixedWidthSortableRecords) {
  std::string out;
  SortRecordGenerator gen(9);
  gen.Generate(4'000, out);
  std::istringstream in(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.size(), 78u);  // 20 key + tab + 57 payload
    const std::uint64_t key = SortRecordGenerator::KeyOf(line);
    // Lexicographic comparison of the zero-padded key field must equal
    // numeric comparison: re-format and compare.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(key));
    EXPECT_EQ(line.substr(0, 20), buf);
    ++count;
  }
  EXPECT_GT(count, 40u);
}

TEST(AlignedReadGeneratorTest, PositionsWithinRange) {
  std::string out;
  AlignedReadGenerator gen(11, 1000, 2000);
  gen.Generate(500, out);
  std::istringstream in(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const std::uint64_t pos = AlignedReadGenerator::PosOf(line);
    EXPECT_GE(pos, 1000u);
    EXPECT_LT(pos, 2000u);
    // Record shape: 12-digit position, tab, 36 bases.
    ASSERT_EQ(line.size(), 12u + 1 + 36);
    for (const char base : line.substr(13)) {
      EXPECT_TRUE(base == 'A' || base == 'C' || base == 'G' || base == 'T');
    }
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

}  // namespace
}  // namespace glider::workloads
