// Measurement-correctness tests: the paper's indicators are only as good
// as their accounting. These pin down what the metrics layer counts for
// known traffic: per-link attribution, storage accesses, stored bytes, and
// the storage-internal traffic of actions (which must NOT count as
// compute<->storage transfer — that separation is the whole point).
#include <gtest/gtest.h>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"
#include "workloads/stats.h"

namespace glider {
namespace {

class MetricsAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterWorkloadActions();
    testing::ClusterOptions options;
    options.chunk_size = 64 * 1024;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
};

TEST_F(MetricsAccountingTest, FaasWriteCountsPayloadPlusFraming) {
  auto client = cluster_->NewFaasClient();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->CreateNode("/f", nk::NodeType::kFile).ok());

  const auto before = workloads::MetricsSnapshot::Take(*cluster_->metrics());
  constexpr std::size_t kBytes = 300 * 1024;
  {
    auto writer = nk::FileWriter::Open(**client, "/f");
    ASSERT_TRUE(writer.ok());
    Buffer data(kBytes);
    ASSERT_TRUE((*writer)->Write(data.span()).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  const auto delta =
      workloads::MetricsSnapshot::Take(*cluster_->metrics()).Since(before);
  // Sent bytes = payload + per-op headers: strictly more than the payload,
  // well under double.
  EXPECT_GE(cluster_->metrics()->BytesSent(LinkClass::kFaas), kBytes);
  EXPECT_LT(delta.faas_bytes, kBytes * 2);
  // One logical storage access: the stream open.
  EXPECT_EQ(delta.accesses, 1u);
  // Stored bytes match the file extent.
  EXPECT_EQ(delta.stored, static_cast<std::int64_t>(kBytes));
  EXPECT_EQ(delta.peak_stored, static_cast<std::int64_t>(kBytes));
}

TEST_F(MetricsAccountingTest, InternalClientTrafficIsNotFaasTraffic) {
  auto client = cluster_->NewInternalClient();
  ASSERT_TRUE(client.ok());
  const auto faas_before = cluster_->metrics()->FaasTransferBytes();
  ASSERT_TRUE((*client)->PutValue("/kv", AsBytes(std::string(50'000, 'x'))).ok());
  EXPECT_EQ(cluster_->metrics()->FaasTransferBytes(), faas_before);
  EXPECT_GT(cluster_->metrics()->BytesSent(LinkClass::kInternal), 50'000u);
}

TEST_F(MetricsAccountingTest, ActionProxyReadCountsOnlyShippedBytes) {
  // A filter action reads a 200 KiB backing file internally but ships only
  // the matching lines to the FaaS worker: compute<->storage transfer must
  // reflect the small result, internal traffic the full file.
  {
    auto internal = cluster_->NewInternalClient();
    ASSERT_TRUE((*internal)->CreateNode("/data", nk::NodeType::kFile).ok());
    auto writer = nk::FileWriter::Open(**internal, "/data");
    std::string text;
    for (int i = 0; i < 4000; ++i) {
      text += (i % 100 == 0) ? "KEEP line\n" : "drop line number xx\n";
    }
    ASSERT_TRUE((*writer)->Write(text).ok());
    ASSERT_TRUE((*writer)->Close().ok());
    ASSERT_TRUE(core::ActionNode::Create(**internal, "/flt", "glider.filter",
                                         false, AsBytes("/data\nKEEP"))
                    .ok());
  }
  auto worker = cluster_->NewFaasClient();
  ASSERT_TRUE(worker.ok());
  const auto before = workloads::MetricsSnapshot::Take(*cluster_->metrics());
  auto node = core::ActionNode::Lookup(**worker, "/flt");
  ASSERT_TRUE(node.ok());
  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::size_t shipped = 0;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    shipped += chunk->size();
  }
  ASSERT_TRUE((*reader)->Close().ok());
  const auto delta =
      workloads::MetricsSnapshot::Take(*cluster_->metrics()).Since(before);

  EXPECT_EQ(shipped, 40u * 10);  // 40 matching lines of 10 bytes
  EXPECT_LT(delta.faas_bytes, 10'000u);      // result + framing only
  EXPECT_GT(delta.internal_bytes, 70'000u);  // the full backing file
}

TEST_F(MetricsAccountingTest, RdmaClassAttributionFlowsThrough) {
  testing::ClusterOptions options;
  options.internal_link_class = LinkClass::kRdma;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto internal = (*cluster)->NewInternalClient();
  ASSERT_TRUE((*internal)->CreateNode("/d", nk::NodeType::kFile).ok());
  {
    auto writer = nk::FileWriter::Open(**internal, "/d");
    ASSERT_TRUE((*writer)->Write(std::string(20'000, 'y')).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  ASSERT_TRUE(core::ActionNode::Create(**internal, "/flt", "glider.filter",
                                       false, AsBytes("/d\ny"))
                  .ok());
  auto node = core::ActionNode::Lookup(**internal, "/flt");
  auto reader = node->OpenReader();
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
  }
  ASSERT_TRUE((*reader)->Close().ok());
  // The action's backing-file read travelled on the RDMA-class link.
  EXPECT_GT((*cluster)->metrics()->BytesReceived(LinkClass::kRdma), 19'000u);
}

TEST_F(MetricsAccountingTest, EveryActionStreamOpenIsOneAccess) {
  auto internal = cluster_->NewInternalClient();
  ASSERT_TRUE(core::ActionNode::Create(**internal, "/m", "glider.merge",
                                       /*interleave=*/true)
                  .ok());
  auto worker = cluster_->NewFaasClient();
  ASSERT_TRUE(worker.ok());
  const auto before = cluster_->metrics()->StorageAccesses();
  auto node = core::ActionNode::Lookup(**worker, "/m");
  ASSERT_TRUE(node.ok());
  for (int i = 0; i < 3; ++i) {
    auto writer = node->OpenWriter();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write("1,1\n").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  (void)(*reader)->ReadChunk();
  ASSERT_TRUE((*reader)->Close().ok());
  EXPECT_EQ(cluster_->metrics()->StorageAccesses() - before, 4u);
}

}  // namespace
}  // namespace glider
