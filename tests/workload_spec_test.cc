// Spec-format and graph-builder tests: every error must name the offending
// spec location (origin:line, section, key), and every spec shipped under
// examples/specs/ must parse and build a graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>

#include "workloads/graph.h"
#include "workloads/spec.h"

namespace glider::workloads {
namespace {

::testing::AssertionResult ErrorMentions(
    const Status& status, std::initializer_list<const char*> bits) {
  if (status.ok()) return ::testing::AssertionFailure() << "expected an error";
  for (const char* bit : bits) {
    if (status.ToString().find(bit) == std::string::npos) {
      return ::testing::AssertionFailure()
             << "error '" << status.ToString() << "' does not mention '" << bit
             << "'";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(SpecParseTest, SectionsGlobalsRepeatsAndComments) {
  constexpr std::string_view kText = R"(
# a comment
name = demo

[node writers]
type = action.create
config = first
config = second

[cluster]
slots_per_server = 8
)";
  auto spec = ParseSpec(kText, "demo.spec");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->Name(), "demo");
  const auto* node = spec->Find("node", "writers");
  ASSERT_NE(node, nullptr);
  // Repeated keys join with '\n' (multi-line action configs).
  auto config = node->GetString("config");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config, "first\nsecond");
  ASSERT_NE(spec->Find("cluster"), nullptr);
  EXPECT_EQ(spec->Find("load"), nullptr);
}

TEST(SpecParseTest, ErrorsCarryOriginAndLine) {
  // Line 3 has no '=': the error must cite file:line and the bad text.
  auto spec = ParseSpec("name = x\n[node a]\nbogus line\n", "bad.spec");
  EXPECT_TRUE(ErrorMentions(spec.status(), {"bad.spec:3", "bogus line"}));

  spec = ParseSpec("[node]\n", "bad.spec");
  EXPECT_TRUE(ErrorMentions(spec.status(), {"bad.spec:1", "[node <name>]"}));

  spec = ParseSpec("[node a]\n[node a]\n", "bad.spec");
  EXPECT_TRUE(
      ErrorMentions(spec.status(), {"bad.spec:2", "duplicate node name 'a'"}));

  spec = ParseSpec("[wibble]\n", "bad.spec");
  EXPECT_TRUE(ErrorMentions(spec.status(), {"bad.spec:1", "[wibble]"}));

  spec = ParseSpec("[cluster]\n[cluster]\n", "bad.spec");
  EXPECT_TRUE(ErrorMentions(spec.status(), {"bad.spec:2", "duplicate"}));

  spec = ParseSpec("[node a\n", "bad.spec");
  EXPECT_TRUE(ErrorMentions(spec.status(), {"bad.spec:1", "unterminated"}));
}

TEST(SpecBuildTest, UnknownNodeTypeNamesNodeAndListsRegistered) {
  auto spec = ParseSpec("[node mystery]\ntype = no.such.node\n", "t.spec");
  ASSERT_TRUE(spec.ok());
  auto graph = BuildGraph(*spec);
  EXPECT_TRUE(ErrorMentions(graph.status(),
                            {"mystery", "no.such.node", "registered",
                             "faas.count_lines"}));
}

TEST(SpecBuildTest, MissingRequiredKeyNamesSectionAndKey) {
  // text.files requires `path`.
  auto spec = ParseSpec(
      "[node input]\ntype = text.files\ncount = 2\nbytes_each = 64\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  auto graph = BuildGraph(*spec);
  EXPECT_TRUE(ErrorMentions(graph.status(), {"input", "'path'"}));
}

TEST(SpecBuildTest, UnknownKeyNamesNodeAndKey) {
  // A typo ("marker_rat") must be rejected, not silently ignored.
  auto spec = ParseSpec(
      "[node input]\ntype = text.files\npath = /x_{i}\ncount = 1\n"
      "bytes_each = 64\nmarker_rat = 0.5\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  auto graph = BuildGraph(*spec);
  EXPECT_TRUE(
      ErrorMentions(graph.status(), {"input", "marker_rat", "text.files"}));
}

TEST(SpecBuildTest, MalformedNumberWithFallbackStillErrors) {
  auto spec = ParseSpec(
      "[node input]\ntype = text.files\npath = /x_{i}\ncount = banana\n"
      "bytes_each = 64\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  auto graph = BuildGraph(*spec);
  EXPECT_TRUE(ErrorMentions(graph.status(), {"'count'", "banana"}));
}

TEST(SpecBuildTest, UnknownClusterAndGlobalKeysRejected) {
  auto spec = ParseSpec(
      "[cluster]\nslotz = 4\n[node d]\ntype = file.delete\npath = /x\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ErrorMentions(BuildGraph(*spec).status(), {"slotz"}));

  spec = ParseSpec("nmae = typo\n[node d]\ntype = file.delete\npath = /x\n",
                   "t.spec");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ErrorMentions(BuildGraph(*spec).status(), {"nmae"}));
}

TEST(SpecBuildTest, GraphNeedsNodesAndLoadNeedsAKnownRequestNode) {
  auto spec = ParseSpec("name = empty\n", "t.spec");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ErrorMentions(BuildGraph(*spec).status(), {"no [node]"}));

  spec = ParseSpec(
      "[node d]\ntype = file.delete\npath = /x\n"
      "[load]\nrequest = ghost\nrates = 10\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ErrorMentions(BuildGraph(*spec).status(), {"ghost"}));

  spec = ParseSpec(
      "[node d]\ntype = file.delete\npath = /x\n"
      "[load]\nrequest = d\nrates = 10,zero\n",
      "t.spec");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ErrorMentions(BuildGraph(*spec).status(), {"rates"}));
}

TEST(SpecBuildTest, BuildsAValidGraphWithLoadAndChecks) {
  constexpr std::string_view kText = R"(
name = mini
[cluster]
slots_per_server = 8

[node sink]
type = request.action_write
path = /s

[node teardown]
type = file.delete
measured = 0
path = /s
action = 1

[load]
request = sink
rates = 50,100,200,400
schedule = poisson
duration_s = 0.5
workers = 4

[check]
equal = entries,checksum
)";
  auto spec = ParseSpec(kText, "t.spec");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto graph = BuildGraph(*spec);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->name, "mini");
  EXPECT_EQ(graph->cluster_options.slots_per_server, 8u);
  ASSERT_EQ(graph->nodes.size(), 2u);
  EXPECT_TRUE(graph->nodes[0]->measured());
  EXPECT_FALSE(graph->nodes[1]->measured());
  ASSERT_TRUE(graph->load.has_value());
  EXPECT_EQ(graph->load->request_node, "sink");
  EXPECT_EQ(graph->load->rates.size(), 4u);
  EXPECT_TRUE(graph->load->poisson);
  ASSERT_EQ(graph->check_equal.size(), 2u);
  EXPECT_EQ(graph->check_equal[0], "entries");
}

// Every spec shipped with the repo must parse and build. GLIDER_SPEC_DIR is
// injected by the build (tests/CMakeLists.txt).
TEST(SpecExamplesTest, EveryShippedSpecParsesAndBuilds) {
  const std::filesystem::path dir(GLIDER_SPEC_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t specs = 0;
  bool saw_load_curve = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".spec") continue;
    ++specs;
    auto spec = ParseSpecFile(entry.path().string());
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    auto graph = BuildGraph(*spec);
    ASSERT_TRUE(graph.ok()) << entry.path() << ": "
                            << graph.status().ToString();
    EXPECT_FALSE(graph->nodes.empty()) << entry.path();
    if (entry.path().filename() == "load_curve.spec") {
      saw_load_curve = true;
      // The committed load curve must sweep >= 4 offered rates.
      ASSERT_TRUE(graph->load.has_value());
      EXPECT_GE(graph->load->rates.size(), 4u);
      EXPECT_TRUE(std::is_sorted(graph->load->rates.begin(),
                                 graph->load->rates.end()));
    }
  }
  EXPECT_GE(specs, 11u);  // the four paper workloads + load specs
  EXPECT_TRUE(saw_load_curve);
}

}  // namespace
}  // namespace glider::workloads
