// Property tests of action I/O streams: byte-exact echo round-trips across
// a sweep of (payload size, chunk size, window, interleave, channel
// capacity) shapes, ordering under pipelining, and multi-stream isolation.
#include <gtest/gtest.h>

#include "common/random.h"
#include "glider/client/action_node.h"
#include "nodekernel/client/file_streams.h"
#include "testing/cluster.h"

namespace glider {
namespace {

// Stores everything written to it; replays the bytes on read. The identity
// function through the full stack: any reordering, loss, duplication or
// splitting bug shows up as a mismatch.
class EchoAction : public core::Action {
 public:
  void onWrite(core::ActionInputStream& in, core::ActionContext&) override {
    while (true) {
      auto chunk = in.ReadChunk();
      if (!chunk.ok() || chunk->empty()) break;
      stored_.Append(chunk->span());
    }
  }
  void onRead(core::ActionOutputStream& out, core::ActionContext&) override {
    // Emit in awkward 100000-byte slices to decouple the reply chunking
    // from the request chunking.
    std::size_t off = 0;
    while (off < stored_.size()) {
      const std::size_t n = std::min<std::size_t>(100'000, stored_.size() - off);
      if (!out.Write(ByteSpan(stored_.data() + off, n)).ok()) return;
      off += n;
    }
    out.Close();
  }
  std::uint64_t StateBytes() const override { return stored_.size(); }

 private:
  Buffer stored_;
};
GLIDER_REGISTER_ACTION("prop.echo", EchoAction);

struct EchoShape {
  std::size_t payload;
  std::size_t chunk_size;
  std::size_t window;
  bool interleave;
  std::size_t channel_capacity;
};

class ActionStreamPropertyTest : public ::testing::TestWithParam<EchoShape> {};

TEST_P(ActionStreamPropertyTest, EchoRoundTripIsByteExact) {
  const EchoShape shape = GetParam();
  testing::ClusterOptions options;
  options.chunk_size = shape.chunk_size;
  options.inflight_window = shape.window;
  options.channel_capacity = shape.channel_capacity;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  auto node = core::ActionNode::Create(**client, "/echo", "prop.echo",
                                       shape.interleave);
  ASSERT_TRUE(node.ok());

  std::vector<std::uint8_t> payload(shape.payload);
  SplitMix64 rng(shape.payload ^ shape.chunk_size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());

  {
    auto writer = node->OpenWriter();
    ASSERT_TRUE(writer.ok());
    // Random split points exercise client-side chunk assembly.
    std::size_t off = 0;
    SplitMix64 sizes(3);
    while (off < payload.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + sizes.NextBelow(2 * shape.chunk_size), payload.size() - off);
      ASSERT_TRUE((*writer)->Write(ByteSpan(payload.data() + off, n)).ok());
      off += n;
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }

  auto state = node->StateBytes();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, payload.size());

  std::vector<std::uint8_t> echoed;
  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    echoed.insert(echoed.end(), chunk->data(), chunk->data() + chunk->size());
  }
  ASSERT_TRUE((*reader)->Close().ok());
  EXPECT_EQ(echoed, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ActionStreamPropertyTest,
    ::testing::Values(EchoShape{0, 8192, 4, false, 8},          // empty stream
                      EchoShape{1, 8192, 4, false, 8},          // single byte
                      EchoShape{8192, 8192, 1, false, 1},       // sync, cap 1
                      EchoShape{100'000, 4096, 8, false, 2},    // deep pipeline
                      EchoShape{100'000, 4096, 8, true, 2},     // + interleave
                      EchoShape{1 << 20, 64 * 1024, 4, true, 8},
                      EchoShape{3 << 20, 256 * 1024, 8, false, 4},
                      EchoShape{777'777, 10'000, 3, true, 3}),  // odd everything
    [](const auto& info) {
      const auto& s = info.param;
      return "p" + std::to_string(s.payload) + "_c" +
             std::to_string(s.chunk_size) + "_w" + std::to_string(s.window) +
             (s.interleave ? "_il" : "_ni") + "_q" +
             std::to_string(s.channel_capacity);
    });

// ---- block-boundary straddling ---------------------------------------------
//
// Small blocks + chunk sizes that are not divisors of the block size force
// nearly every chunk to straddle a block boundary, exercising the zero-copy
// sub-chunk split on the write path and the per-block snapshot slices on the
// read path. Round-trips must stay byte-exact.

struct BoundaryShape {
  std::uint64_t block_size;
  std::size_t chunk_size;
  std::size_t data_size;
  std::uint64_t seed;
};

class BlockBoundaryPropertyTest : public ::testing::TestWithParam<BoundaryShape> {
};

TEST_P(BlockBoundaryPropertyTest, StraddlingChunksRoundTripByteExact) {
  const BoundaryShape shape = GetParam();
  testing::ClusterOptions options;
  options.block_size = shape.block_size;
  options.blocks_per_server = 1024;
  options.chunk_size = shape.chunk_size;
  options.inflight_window = 4;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  std::vector<std::uint8_t> data(shape.data_size);
  SplitMix64 rng(shape.seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());

  ASSERT_TRUE((*client)->CreateNode("/straddle", nk::NodeType::kFile).ok());
  {
    auto writer = nk::FileWriter::Open(**client, "/straddle");
    ASSERT_TRUE(writer.ok());
    // Randomized write sizes around the chunk size: some writes span
    // several chunks (and thus several blocks), some leave a pending tail.
    std::size_t off = 0;
    SplitMix64 sizes(shape.seed ^ 0x9E3779B97F4A7C15ull);
    while (off < data.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + sizes.NextBelow(3 * shape.chunk_size), data.size() - off);
      ASSERT_TRUE((*writer)->Write(ByteSpan(data.data() + off, n)).ok());
      off += n;
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }

  auto reader = nk::FileReader::Open(**client, "/straddle");
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ((*reader)->size(), data.size());
  // Read back in randomized sizes too, so delivery offsets land mid-slice.
  std::vector<std::uint8_t> echoed;
  echoed.reserve(data.size());
  SplitMix64 reads(shape.seed + 1);
  std::vector<std::uint8_t> scratch(2 * shape.chunk_size + 16);
  while (true) {
    const std::size_t want = 1 + reads.NextBelow(scratch.size());
    auto n = (*reader)->Read(MutableByteSpan(scratch.data(), want));
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    echoed.insert(echoed.end(), scratch.data(), scratch.data() + *n);
  }
  EXPECT_EQ(echoed, data);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, BlockBoundaryPropertyTest,
    ::testing::Values(
        // chunk > block: every chunk splits across >= 2 blocks.
        BoundaryShape{4096, 10'000, 200'000, 11},
        // coprime chunk/block: boundary drifts through every offset.
        BoundaryShape{4097, 4096, 150'000, 22},
        // tiny odd blocks, larger chunks, odd total.
        BoundaryShape{1000, 3333, 123'457, 33},
        // chunk divides block exactly (no straddle control case).
        BoundaryShape{8192, 2048, 100'000, 44},
        // sub-byte-scale blocks stress per-block bookkeeping.
        BoundaryShape{128, 300, 40'001, 55}),
    [](const auto& info) {
      const auto& s = info.param;
      return "b" + std::to_string(s.block_size) + "_c" +
             std::to_string(s.chunk_size) + "_n" + std::to_string(s.data_size);
    });

TEST(ActionStreamIsolationTest, ParallelStreamsToDistinctActionsDontMix) {
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  constexpr int kActions = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int a = 0; a < kActions; ++a) {
    threads.emplace_back([&, a] {
      auto client = (*cluster)->NewInternalClient();
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto node = core::ActionNode::Create(
          **client, "/iso" + std::to_string(a), "prop.echo");
      if (!node.ok()) {
        ++failures;
        return;
      }
      const std::string mine(5000, static_cast<char>('A' + a));
      auto writer = node->OpenWriter();
      if (!writer.ok() || !(*writer)->Write(mine).ok() ||
          !(*writer)->Close().ok()) {
        ++failures;
        return;
      }
      auto reader = node->OpenReader();
      std::string back;
      while (true) {
        auto chunk = (*reader)->ReadChunk();
        if (!chunk.ok()) {
          ++failures;
          return;
        }
        if (chunk->empty()) break;
        back += chunk->ToString();
      }
      if (back != mine) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace glider
