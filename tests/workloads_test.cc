// Workload-equivalence tests: for every evaluation workload, the Glider
// implementation must produce exactly the same answer as the data-shipping
// baseline, while moving (substantially) fewer bytes over the
// compute<->storage link.
#include <gtest/gtest.h>

#include "faas/s3like.h"
#include "workloads/genomics.h"
#include "workloads/graph.h"
#include "workloads/sort.h"

namespace glider {
namespace {

using testing::ClusterOptions;
using testing::MiniCluster;

std::unique_ptr<MiniCluster> SmallCluster(std::size_t active = 2) {
  ClusterOptions options;
  options.data_servers = 2;
  options.active_servers = active;
  options.slots_per_server = 32;
  options.blocks_per_server = 256;
  options.chunk_size = 64 * 1024;
  auto cluster = MiniCluster::Start(options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return std::move(cluster).value();
}

// Builds + runs a graph from inline spec text against `cluster`.
workloads::GraphReport RunSpecText(MiniCluster& cluster,
                                   std::string_view text) {
  auto spec = workloads::ParseSpec(text, "<test>");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto graph = workloads::BuildGraph(*spec);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  workloads::MiniClusterHandle handle(cluster);
  auto report = workloads::RunGraph(*graph, handle);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : workloads::GraphReport{};
}

std::uint64_t ExportInt(const workloads::GraphReport& report,
                        const std::string& key) {
  const auto it = report.exports.find(key);
  EXPECT_NE(it, report.exports.end()) << "missing export " << key;
  return it == report.exports.end() ? 0 : std::stoull(it->second);
}

TEST(WordcountWorkload, GliderMatchesBaselineAndCutsIngest) {
  auto cluster = SmallCluster();
  // Shared input (skip_existing makes the second run reuse it).
  constexpr std::string_view kInput = R"(
[node input]
type = text.files
measured = 0
mkdir = /wc
path = /wc/in_{i}
count = 4
bytes_each = 524288
marker_rate = 0.01
seed = 7
)";
  const std::string baseline_spec = std::string(kInput) + R"(
[node count]
type = faas.count_lines
workers = 4
input = /wc/in_{i}
marker = NEEDLE
)";
  const std::string glider_spec = std::string(kInput) + R"(
[node filters]
type = action.create
path = /wc/filter_{i}
count = 4
action = glider.filter
config = /wc/in_{i}
config = NEEDLE

[node count]
type = faas.count_lines
workers = 4
input = /wc/filter_{i}
source = action
raw = /wc/in_{i}
)";

  const auto baseline = RunSpecText(*cluster, baseline_spec);
  const auto glider = RunSpecText(*cluster, glider_spec);

  EXPECT_GT(ExportInt(baseline, "matched"), 0u);
  EXPECT_EQ(ExportInt(glider, "matched"), ExportInt(baseline, "matched"));
  EXPECT_EQ(ExportInt(glider, "words"), ExportInt(baseline, "words"));
  // The filter passes ~1% of lines: ingest must collapse by >10x.
  EXPECT_LT(glider.faas_bytes, baseline.faas_bytes / 10);
}

TEST(ReduceWorkload, GliderMatchesBaselineAndHalvesTransfer) {
  auto cluster = SmallCluster();
  constexpr std::string_view kBaseline = R"(
[node produce]
type = faas.generate_pairs
workers = 4
pairs_per_worker = 20000
path = /red_part_{i}
target = file

[node reduce]
type = faas.reduce_files
input = /red_part_{i}
inputs = 4
output = /red_result

[node verify]
type = sink.dictionary
measured = 0
path = /red_result

[node cleanup_parts]
type = file.delete
measured = 0
path = /red_part_{i}
count = 4

[node cleanup_result]
type = file.delete
measured = 0
path = /red_result
)";
  constexpr std::string_view kGlider = R"(
[node merge]
type = action.create
path = /red_merge
action = glider.merge
interleave = 1

[node produce]
type = faas.generate_pairs
workers = 4
pairs_per_worker = 20000
path = /red_merge
target = action

[node verify]
type = sink.dictionary
measured = 0
path = /red_merge
source = action

[node cleanup]
type = file.delete
measured = 0
path = /red_merge
action = 1
)";

  const auto baseline = RunSpecText(*cluster, kBaseline);
  const auto glider = RunSpecText(*cluster, kGlider);

  EXPECT_EQ(ExportInt(baseline, "entries"), 1024u);
  EXPECT_EQ(ExportInt(glider, "entries"), ExportInt(baseline, "entries"));
  EXPECT_EQ(glider.exports.at("checksum"), baseline.exports.at("checksum"));
  // Baseline ships the pairs twice (write + reduce read); Glider once.
  EXPECT_LT(glider.faas_bytes, baseline.faas_bytes * 6 / 10);
  // Storage accesses halve (paper: 50%).
  EXPECT_LT(glider.accesses, baseline.accesses);
  // Utilization collapses: only the dictionary is stored.
  ASSERT_GT(baseline.peak_stored, 0);
  EXPECT_LT(glider.action_state_bytes,
            static_cast<std::uint64_t>(baseline.peak_stored) / 50);
}

TEST(SortWorkload, GliderMatchesBaselineAndIsVerifiedSorted) {
  auto cluster = SmallCluster();
  workloads::SortParams params;
  params.workers = 4;
  params.bytes_per_partition = 256 * 1024;
  ASSERT_TRUE(SetupSortInput(*cluster, params).ok());

  auto baseline = RunSortBaseline(*cluster, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunSortGlider(*cluster, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  EXPECT_TRUE(baseline->verified);
  EXPECT_TRUE(glider->verified);
  EXPECT_GT(baseline->records, 0u);
  EXPECT_EQ(glider->records, baseline->records);
  // Baseline transfers ~4x the dataset; Glider ~2x (half the movement).
  EXPECT_LT(glider->transfer_bytes, baseline->transfer_bytes * 7 / 10);
  EXPECT_LT(glider->accesses, baseline->accesses);
}

TEST(GenomicsWorkload, GliderMatchesBaseline) {
  auto cluster = SmallCluster(/*active=*/2);
  faas::S3Like::Options s3opts;
  s3opts.op_latency = std::chrono::microseconds(500);
  faas::S3Like s3(s3opts, cluster->metrics());

  workloads::GenomicsParams params;
  params.fasta_chunks = 2;
  params.fastq_chunks = 4;
  params.reducers_per_chunk = 2;
  params.records_per_mapper = 2000;

  auto baseline = RunGenomicsBaseline(*cluster, s3, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunGenomicsGlider(*cluster, s3, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  // Every record must be reduced exactly once in both approaches.
  EXPECT_EQ(baseline->records_reduced,
            params.fasta_chunks * params.fastq_chunks *
                params.records_per_mapper);
  EXPECT_EQ(glider->records_reduced, baseline->records_reduced);
  // Same deterministic data => identical variant calls.
  EXPECT_GT(baseline->variants, 0u);
  EXPECT_EQ(glider->variants, baseline->variants);
}

}  // namespace
}  // namespace glider
