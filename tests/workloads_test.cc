// Workload-equivalence tests: for every evaluation workload, the Glider
// implementation must produce exactly the same answer as the data-shipping
// baseline, while moving (substantially) fewer bytes over the
// compute<->storage link.
#include <gtest/gtest.h>

#include "faas/s3like.h"
#include "workloads/genomics.h"
#include "workloads/reduce.h"
#include "workloads/sort.h"
#include "workloads/wordcount.h"

namespace glider {
namespace {

using testing::ClusterOptions;
using testing::MiniCluster;

std::unique_ptr<MiniCluster> SmallCluster(std::size_t active = 2) {
  ClusterOptions options;
  options.data_servers = 2;
  options.active_servers = active;
  options.slots_per_server = 32;
  options.blocks_per_server = 256;
  options.chunk_size = 64 * 1024;
  auto cluster = MiniCluster::Start(options);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  return std::move(cluster).value();
}

TEST(WordcountWorkload, GliderMatchesBaselineAndCutsIngest) {
  auto cluster = SmallCluster();
  workloads::WordcountParams params;
  params.workers = 4;
  params.bytes_per_worker = 512 * 1024;
  params.marker_rate = 0.01;
  ASSERT_TRUE(SetupWordcountInput(*cluster, params).ok());

  auto baseline = RunWordcountBaseline(*cluster, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunWordcountGlider(*cluster, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  EXPECT_GT(baseline->matched_lines, 0u);
  EXPECT_EQ(glider->matched_lines, baseline->matched_lines);
  EXPECT_EQ(glider->total_words, baseline->total_words);
  // The filter passes ~1% of lines: ingest must collapse by >10x.
  EXPECT_LT(glider->ingested_bytes, baseline->ingested_bytes / 10);
}

TEST(ReduceWorkload, GliderMatchesBaselineAndHalvesTransfer) {
  auto cluster = SmallCluster();
  workloads::ReduceParams params;
  params.workers = 4;
  params.pairs_per_worker = 20'000;

  auto baseline = RunReduceBaseline(*cluster, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunReduceGlider(*cluster, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  EXPECT_EQ(baseline->result_entries, params.distinct_keys);
  EXPECT_EQ(glider->result_entries, baseline->result_entries);
  EXPECT_EQ(glider->checksum, baseline->checksum);
  // Baseline ships the pairs twice (write + reduce read); Glider once.
  EXPECT_LT(glider->transfer_bytes, baseline->transfer_bytes * 6 / 10);
  // Storage accesses halve (paper: 50%).
  EXPECT_LT(glider->accesses, baseline->accesses);
  // Utilization collapses: only the dictionary is stored.
  EXPECT_LT(glider->intermediate_stored_bytes,
            baseline->intermediate_stored_bytes / 50);
}

TEST(SortWorkload, GliderMatchesBaselineAndIsVerifiedSorted) {
  auto cluster = SmallCluster();
  workloads::SortParams params;
  params.workers = 4;
  params.bytes_per_partition = 256 * 1024;
  ASSERT_TRUE(SetupSortInput(*cluster, params).ok());

  auto baseline = RunSortBaseline(*cluster, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunSortGlider(*cluster, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  EXPECT_TRUE(baseline->verified);
  EXPECT_TRUE(glider->verified);
  EXPECT_GT(baseline->records, 0u);
  EXPECT_EQ(glider->records, baseline->records);
  // Baseline transfers ~4x the dataset; Glider ~2x (half the movement).
  EXPECT_LT(glider->transfer_bytes, baseline->transfer_bytes * 7 / 10);
  EXPECT_LT(glider->accesses, baseline->accesses);
}

TEST(GenomicsWorkload, GliderMatchesBaseline) {
  auto cluster = SmallCluster(/*active=*/2);
  faas::S3Like::Options s3opts;
  s3opts.op_latency = std::chrono::microseconds(500);
  faas::S3Like s3(s3opts, cluster->metrics());

  workloads::GenomicsParams params;
  params.fasta_chunks = 2;
  params.fastq_chunks = 4;
  params.reducers_per_chunk = 2;
  params.records_per_mapper = 2000;

  auto baseline = RunGenomicsBaseline(*cluster, s3, params);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto glider = RunGenomicsGlider(*cluster, s3, params);
  ASSERT_TRUE(glider.ok()) << glider.status().ToString();

  // Every record must be reduced exactly once in both approaches.
  EXPECT_EQ(baseline->records_reduced,
            params.fasta_chunks * params.fastq_chunks *
                params.records_per_mapper);
  EXPECT_EQ(glider->records_reduced, baseline->records_reduced);
  // Same deterministic data => identical variant calls.
  EXPECT_GT(baseline->variants, 0u);
  EXPECT_EQ(glider->variants, baseline->variants);
}

}  // namespace
}  // namespace glider
