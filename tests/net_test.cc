// Unit tests of the network plane: message framing, both transports,
// deferred responders, link shaping, metric attribution, and the typed
// service router / client stub.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <thread>

#include "common/serde.h"
#include "common/stopwatch.h"
#include "net/inproc_transport.h"
#include "net/rpc_client.h"
#include "net/service_router.h"
#include "net/tcp_transport.h"

namespace glider::net {
namespace {

// ---- Message framing --------------------------------------------------------

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m;
  m.opcode = 7;
  m.status = StatusCode::kNotFound;
  m.request_id = 0xCAFEBABE12345678ull;
  m.payload = Buffer::FromString("payload-bytes");

  auto decoded = Message::Decode(m.Encode().span());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->opcode, 7);
  EXPECT_EQ(decoded->status, StatusCode::kNotFound);
  EXPECT_EQ(decoded->request_id, m.request_id);
  EXPECT_EQ(decoded->payload, m.payload);
}

TEST(MessageTest, DecodeRejectsTruncatedFrame) {
  Message m;
  m.payload = Buffer::FromString("0123456789");
  Buffer frame = m.Encode();
  auto decoded = Message::Decode(ByteSpan(frame.data(), frame.size() - 4));
  EXPECT_FALSE(decoded.ok());
}

TEST(MessageTest, ErrorResponseCarriesStatus) {
  Message req;
  req.opcode = 3;
  req.request_id = 55;
  const Message resp = ErrorResponse(req, Status::Timeout("slow"));
  EXPECT_EQ(resp.request_id, 55u);
  auto result = ToResult(resp);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(result.status().message(), "slow");
}

// ---- Transports (parameterized) ---------------------------------------------

// Echo service: returns the payload; opcode 99 responds from a detached
// thread after a delay (deferred responder); opcode 98 never responds
// (dropped responder).
class EchoService : public Service {
 public:
  void Handle(Message request, Responder responder) override {
    if (request.opcode == 99) {
      std::thread([request, responder]() mutable {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        responder.SendOk(request, Buffer::FromString("deferred"));
      }).detach();
      return;
    }
    if (request.opcode == 98) {
      return;  // drop: transport must fail the call, not hang it
    }
    ++calls;
    responder.SendOk(request, std::move(request.payload));
  }
  std::atomic<int> calls{0};
};

class TransportTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      transport_ = std::make_unique<TcpTransport>(4);
    } else {
      transport_ = std::make_unique<InProcTransport>(4);
    }
    service_ = std::make_shared<EchoService>();
    auto listener = transport_->Listen("", service_);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).value();
  }

  std::unique_ptr<Transport> transport_;
  std::shared_ptr<EchoService> service_;
  std::unique_ptr<Listener> listener_;
};

TEST_P(TransportTest, EchoRoundTrip) {
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  auto result = (*conn)->CallSync(1, Buffer::FromString("ping"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ToString(), "ping");
}

TEST_P(TransportTest, ManyPipelinedCallsComplete) {
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  std::vector<std::future<Result<Message>>> futures;
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.opcode = 1;
    m.payload = Buffer::FromString(std::to_string(i));
    futures.push_back((*conn)->Call(std::move(m)));
  }
  for (int i = 0; i < 200; ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->payload.ToString(), std::to_string(i));
  }
  EXPECT_EQ(service_->calls.load(), 200);
}

TEST_P(TransportTest, DeferredResponderWorks) {
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  auto result = (*conn)->CallSync(99, Buffer{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "deferred");
}

TEST_P(TransportTest, ConcurrentClients) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto conn = transport_->Connect(listener_->address(), nullptr);
      ASSERT_TRUE(conn.ok());
      for (int i = 0; i < 50; ++i) {
        auto result = (*conn)->CallSync(1, Buffer::FromString("x"));
        ASSERT_TRUE(result.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(service_->calls.load(), kClients * 50);
}

TEST_P(TransportTest, ConnectToUnknownAddressFails) {
  auto conn = transport_->Connect(GetParam() ? "127.0.0.1:1" : "inproc://nope",
                                  nullptr);
  if (conn.ok()) {
    // TCP may connect-refuse on Call instead of Connect on some systems.
    auto result = (*conn)->CallSync(1, Buffer{});
    EXPECT_FALSE(result.ok());
  } else {
    EXPECT_FALSE(conn.ok());
  }
}

TEST_P(TransportTest, LargePayloadRoundTrip) {
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  Buffer big(4 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big.data()[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto result = (*conn)->CallSync(1, Buffer(big.data(), big.size()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, big);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportTest, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Tcp" : "InProc";
                         });

// Dropped responders must fail the call (in-process transport guarantees
// this; TCP clients would see it as a connection-level timeout in a real
// deployment, so the guarantee is inproc-only).
TEST(InProcTransportTest, DroppedResponderFailsCall) {
  InProcTransport transport(2);
  auto service = std::make_shared<EchoService>();
  auto listener = transport.Listen("", service);
  ASSERT_TRUE(listener.ok());
  auto conn = transport.Connect((*listener)->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  auto result = (*conn)->CallSync(98, Buffer{});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(InProcTransportTest, AddressCollisionRejected) {
  InProcTransport transport(1);
  auto service = std::make_shared<EchoService>();
  auto l1 = transport.Listen("inproc://same", service);
  ASSERT_TRUE(l1.ok());
  auto l2 = transport.Listen("inproc://same", service);
  EXPECT_EQ(l2.status().code(), StatusCode::kAlreadyExists);
  // Address is reusable after the listener goes away.
  l1->reset();
  auto l3 = transport.Listen("inproc://same", service);
  EXPECT_TRUE(l3.ok());
}

// ---- TCP batching: torn frames, zero-copy bypass, deadline flush ------------

// Serializes a frame the way the transport's send side does: 40-byte header
// followed by the raw payload bytes.
std::vector<std::uint8_t> WireFrame(std::uint16_t opcode,
                                    std::uint64_t request_id,
                                    const std::string& payload) {
  Message m;
  m.opcode = opcode;
  m.request_id = request_id;
  m.payload = Buffer::FromString(payload);
  std::uint8_t header[kFrameHeaderSize];
  m.EncodeHeader(header);
  std::vector<std::uint8_t> out(header, header + kFrameHeaderSize);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// Raw client socket speaking the frame protocol directly, so tests control
// exactly how bytes land on the server's recv boundary. Performs the wire
// preamble exchange on connect (unless told not to, for handshake tests).
class RawClient {
 public:
  explicit RawClient(const std::string& address, bool send_preamble = true) {
    const auto colon = address.rfind(':');
    const std::string host = address.substr(0, colon);
    const int port = std::atoi(address.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    if (connected_ && send_preamble) {
      std::uint8_t preamble[kWirePreambleSize];
      EncodeWirePreamble(preamble);
      SendBytes(preamble, sizeof(preamble));
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendBytes(const std::uint8_t* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::send(fd_, data + off, size - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  // Reads one response frame (responses may arrive coalesced or in any
  // completion order; the caller matches by request id). The server's own
  // preamble is consumed and checked before the first frame.
  void ReadResponse(std::uint64_t& request_id, std::string& payload) {
    if (!server_preamble_read_) {
      std::uint8_t preamble[kWirePreambleSize];
      ASSERT_NO_FATAL_FAILURE(ReadExactly(preamble, sizeof(preamble)));
      ASSERT_TRUE(CheckWirePreamble(preamble).ok());
      server_preamble_read_ = true;
    }
    std::uint8_t header[kFrameHeaderSize];
    ASSERT_NO_FATAL_FAILURE(ReadExactly(header, sizeof(header)));
    request_id = 0;
    for (int i = 0; i < 8; ++i) {
      request_id |= static_cast<std::uint64_t>(header[4 + i]) << (8 * i);
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(header[kFrameHeaderSize - 4 + i])
             << (8 * i);
    }
    payload.resize(len);
    if (len > 0) {
      ASSERT_NO_FATAL_FAILURE(
          ReadExactly(reinterpret_cast<std::uint8_t*>(payload.data()), len));
    }
  }

  // Blocking read of up to `size` bytes; returns recv's result (0 = the
  // server closed the connection).
  ssize_t ReadRaw(std::uint8_t* data, std::size_t size) {
    for (;;) {
      const ssize_t n = ::recv(fd_, data, size, 0);
      if (n < 0 && errno == EINTR) continue;
      return n;
    }
  }

 private:
  void ReadExactly(std::uint8_t* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::recv(fd_, data + off, size - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  bool server_preamble_read_ = false;
};

class TcpBatchingTest : public ::testing::Test {
 protected:
  void StartServer(TcpOptions options = {}) {
    transport_ = std::make_unique<TcpTransport>(4, options);
    service_ = std::make_shared<EchoService>();
    auto listener = transport_->Listen("", service_);
    ASSERT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = std::move(listener).value();
  }

  std::unique_ptr<TcpTransport> transport_;
  std::shared_ptr<EchoService> service_;
  std::unique_ptr<Listener> listener_;
};

// A batch of frames dribbled onto the wire in 7-byte writes lands torn
// across every recv boundary the decoder has: each partial must be
// reassembled and every frame answered.
TEST_F(TcpBatchingTest, TornFramesAcrossRecvBoundaries) {
  StartServer();
  RawClient client(listener_->address());
  ASSERT_TRUE(client.connected());

  std::map<std::uint64_t, std::string> expected;
  std::vector<std::uint8_t> wire;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const std::string payload = "torn-payload-" + std::to_string(id);
    expected[id] = payload;
    const auto frame = WireFrame(/*opcode=*/1, id, payload);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  for (std::size_t off = 0; off < wire.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - off);
    ASSERT_NO_FATAL_FAILURE(client.SendBytes(wire.data() + off, n));
    // Yield so the server's reader observes many short recvs, not one big
    // buffered one.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  std::map<std::uint64_t, std::string> got;
  for (int i = 0; i < 5; ++i) {
    std::uint64_t id = 0;
    std::string payload;
    ASSERT_NO_FATAL_FAILURE(client.ReadResponse(id, payload));
    got[id] = payload;
  }
  EXPECT_EQ(got, expected);
}

// One send carrying many whole frames: the decode loop must drain them all
// from the buffered recv (the server dispatches them as one doorbell batch).
TEST_F(TcpBatchingTest, ManyFramesInOneSendAllAnswered) {
  StartServer();
  RawClient client(listener_->address());
  ASSERT_TRUE(client.connected());

  std::vector<std::uint8_t> wire;
  constexpr int kFrames = 40;
  for (std::uint64_t id = 1; id <= kFrames; ++id) {
    const auto frame = WireFrame(1, id, "x" + std::to_string(id));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  ASSERT_NO_FATAL_FAILURE(client.SendBytes(wire.data(), wire.size()));
  std::map<std::uint64_t, std::string> got;
  for (int i = 0; i < kFrames; ++i) {
    std::uint64_t id = 0;
    std::string payload;
    ASSERT_NO_FATAL_FAILURE(client.ReadResponse(id, payload));
    got[id] = payload;
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (std::uint64_t id = 1; id <= kFrames; ++id) {
    EXPECT_EQ(got[id], "x" + std::to_string(id));
  }
}

// Corked burst interleaving small frames with payloads above the
// inline-copy threshold: the large ones ride the same flush as their own
// zero-copy iovecs and every byte must survive the gather.
TEST_F(TcpBatchingTest, InterleavedLargeZeroCopyFrames) {
  TcpOptions options;
  options.inline_copy_bytes = 1024;  // force the zero-copy path early
  StartServer(options);
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());

  std::vector<Buffer> payloads;
  for (int i = 0; i < 8; ++i) {
    const std::size_t size = (i % 2 == 0) ? 64 : 128 * 1024;
    Buffer b(size);
    for (std::size_t j = 0; j < size; ++j) {
      b.data()[j] = static_cast<std::uint8_t>(i * 31 + j * 7);
    }
    payloads.push_back(std::move(b));
  }
  std::vector<std::future<Result<Message>>> futures;
  {
    CorkGuard cork(**conn);
    for (const Buffer& p : payloads) {
      Message m;
      m.opcode = 1;
      m.payload = p;
      futures.push_back((*conn)->Call(std::move(m)));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->payload, payloads[i]) << "frame " << i;
  }
}

// Deadline mode: a lone frame has no peers to coalesce with, so only the
// flush_us timer can emit it — completion proves the deadline path fires.
TEST_F(TcpBatchingTest, FlushOnDeadlineDeliversLoneFrame) {
  TcpOptions options;
  options.flush_us = 2000;
  StartServer(options);
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 3; ++i) {
    auto result = (*conn)->CallSync(1, Buffer::FromString("tick"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->ToString(), "tick");
  }
}

// Deadline mode under a pipelined burst: the frame-count budget (not the
// timer) should flush, and every response must still match its request.
TEST_F(TcpBatchingTest, DeadlineModePipelinedBurst) {
  TcpOptions options;
  options.flush_us = 50;
  options.coalesce_frames = 8;
  StartServer(options);
  auto conn = transport_->Connect(listener_->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  std::vector<std::future<Result<Message>>> futures;
  for (int i = 0; i < 64; ++i) {
    Message m;
    m.opcode = 1;
    m.payload = Buffer::FromString(std::to_string(i));
    futures.push_back((*conn)->Call(std::move(m)));
  }
  for (int i = 0; i < 64; ++i) {
    auto response = futures[i].get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->payload.ToString(), std::to_string(i));
  }
}

// ---- Wire preamble (version handshake) --------------------------------------

// A peer that never sends the 8-byte preamble (e.g. an old node whose
// frames used the 32-byte header) is rejected at connection setup: the
// server closes the socket instead of misreading payload_len at the wrong
// offset and hanging on a garbage frame length.
TEST_F(TcpBatchingTest, PeerWithoutPreambleIsRejected) {
  StartServer();
  RawClient client(listener_->address(), /*send_preamble=*/false);
  ASSERT_TRUE(client.connected());
  // Looks like the start of an old-format frame, not a preamble.
  const auto frame = WireFrame(/*opcode=*/1, /*request_id=*/1, "stale");
  ASSERT_NO_FATAL_FAILURE(client.SendBytes(frame.data(), frame.size()));
  // The server sends its own preamble, then detects the mismatch and
  // closes; drain until EOF instead of ever seeing a response frame.
  std::uint8_t buf[256];
  ssize_t n;
  while ((n = client.ReadRaw(buf, sizeof(buf))) > 0) {
  }
  EXPECT_EQ(n, 0);  // clean close, no frames
}

// A future wire version is refused with a version-mismatch error rather
// than being misframed.
TEST_F(TcpBatchingTest, PeerWithFutureVersionIsRejected) {
  StartServer();
  RawClient client(listener_->address(), /*send_preamble=*/false);
  ASSERT_TRUE(client.connected());
  std::uint8_t preamble[kWirePreambleSize];
  EncodeWirePreamble(preamble);
  preamble[4] = static_cast<std::uint8_t>(kWireVersion + 1);
  ASSERT_NO_FATAL_FAILURE(client.SendBytes(preamble, sizeof(preamble)));
  std::uint8_t buf[256];
  ssize_t n;
  while ((n = client.ReadRaw(buf, sizeof(buf))) > 0) {
  }
  EXPECT_EQ(n, 0);
}

TEST(WirePreambleTest, CheckReportsMagicAndVersionMismatch) {
  std::uint8_t good[kWirePreambleSize];
  EncodeWirePreamble(good);
  EXPECT_TRUE(CheckWirePreamble(good).ok());

  std::uint8_t bad_magic[kWirePreambleSize];
  EncodeWirePreamble(bad_magic);
  bad_magic[0] = 'X';
  const Status magic = CheckWirePreamble(bad_magic);
  EXPECT_EQ(magic.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(magic.message().find("magic"), std::string::npos);

  std::uint8_t bad_version[kWirePreambleSize];
  EncodeWirePreamble(bad_version);
  bad_version[4] = static_cast<std::uint8_t>(kWireVersion + 1);
  const Status version = CheckWirePreamble(bad_version);
  EXPECT_EQ(version.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(version.message().find("version mismatch"), std::string::npos)
      << version.ToString();
}

// ---- ServiceRouter / typed client stub --------------------------------------

struct PairRequest {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  Buffer Encode() const {
    BinaryWriter w;
    w.PutU32(a);
    w.PutU32(b);
    return std::move(w).Finish();
  }
  static Result<PairRequest> Decode(ByteSpan bytes) {
    BinaryReader r(bytes);
    PairRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.a, r.U32());
    GLIDER_ASSIGN_OR_RETURN(req.b, r.U32());
    return req;
  }
};

struct SumResponse {
  std::uint64_t sum = 0;
  Buffer Encode() const {
    BinaryWriter w;
    w.PutU64(sum);
    return std::move(w).Finish();
  }
  static Result<SumResponse> Decode(ByteSpan bytes) {
    BinaryReader r(bytes);
    SumResponse resp;
    GLIDER_ASSIGN_OR_RETURN(resp.sum, r.U64());
    return resp;
  }
};

// Four routes exercising each router path: a typed struct response, a raw
// Buffer response, a handler error, and a deferred responder.
class MathService : public ServiceRouter {
 public:
  MathService() : ServiceRouter("math") {
    Route<PairRequest>(1, "Add", [](const PairRequest& req) -> Result<SumResponse> {
      return SumResponse{static_cast<std::uint64_t>(req.a) + req.b};
    });
    Route<PairRequest>(2, "EchoRaw", [](const PairRequest& req) -> Result<Buffer> {
      return Buffer::FromString(std::to_string(req.a));
    });
    Route<PairRequest>(3, "AlwaysFails", [](const PairRequest&) -> Result<Buffer> {
      return Status::WrongNodeType("teapot");
    });
    RouteDeferred<PairRequest>(
        4, "AddLater",
        [](PairRequest req, Message request, Responder responder) {
          std::thread([req, request, responder = std::move(responder)]() mutable {
            responder.SendOk(request, SumResponse{req.a + req.b}.Encode());
          }).detach();
        });
  }
};

class ServiceRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_shared<MathService>();
    auto listener = transport_.Listen("", service_);
    ASSERT_TRUE(listener.ok());
    listener_ = std::move(listener).value();
    auto conn = transport_.Connect(listener_->address(), nullptr);
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(conn).value();
  }

  InProcTransport transport_{2};
  std::shared_ptr<MathService> service_;
  std::unique_ptr<Listener> listener_;
  std::shared_ptr<Connection> conn_;
};

TEST_F(ServiceRouterTest, TypedRoundTripThroughClientStub) {
  auto resp = Call<SumResponse>(*conn_, 1, PairRequest{40, 2});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->sum, 42u);
}

TEST_F(ServiceRouterTest, BufferResponsePassesThrough) {
  auto raw = conn_->CallSync(2, PairRequest{123, 0}.Encode());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->ToString(), "123");
}

TEST_F(ServiceRouterTest, HandlerErrorTravelsBack) {
  auto resp = Call<SumResponse>(*conn_, 3, PairRequest{});
  EXPECT_EQ(resp.status().code(), StatusCode::kWrongNodeType);
  EXPECT_EQ(resp.status().message(), "teapot");
}

TEST_F(ServiceRouterTest, DeferredRouteRespondsFromAnotherThread) {
  auto resp = Call<SumResponse>(*conn_, 4, PairRequest{20, 22});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->sum, 42u);
}

TEST_F(ServiceRouterTest, DecodeFailureNamesTheOpcode) {
  // A 3-byte payload cannot hold two u32 fields.
  auto result = conn_->CallSync(1, Buffer::FromString("xyz"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("Add"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("bad request"), std::string::npos);
}

TEST_F(ServiceRouterTest, UnroutedOpcodeIsUnimplemented) {
  auto result = conn_->CallSync(9, Buffer{});
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(result.status().message().find("math"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ServiceRouterTest, OpNameLookup) {
  EXPECT_STREQ(service_->OpName(1), "Add");
  EXPECT_EQ(service_->OpName(9), nullptr);
  EXPECT_EQ(service_->OpName(63), nullptr);
}

TEST_F(ServiceRouterTest, ObsOpcodesAnsweredBeforeDispatch) {
  // kStatsDump is handled by the router's shared obs interception even
  // though MathService never registered it.
  auto result = conn_->CallSync(kStatsDump, Buffer{});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

// Pipelined typed stubs: all request frames share one corked flush over
// TCP, and the decoded responses come back in request order even though
// the pool may complete the handlers out of order.
TEST(ServiceRouterTcpTest, CallBatchPreservesRequestOrder) {
  TcpTransport transport(4);
  auto service = std::make_shared<MathService>();
  auto listener = transport.Listen("", service);
  ASSERT_TRUE(listener.ok());
  auto conn = transport.Connect((*listener)->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  std::vector<PairRequest> reqs;
  for (std::uint32_t i = 0; i < 50; ++i) reqs.push_back(PairRequest{i, 1000});
  auto resps = CallBatch<SumResponse>(**conn, 1, reqs);
  ASSERT_TRUE(resps.ok()) << resps.status().ToString();
  ASSERT_EQ(resps->size(), 50u);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*resps)[i].sum, i + 1000u);
  }
}

TEST(ServiceRouterTcpTest, CallVoidBatchSurfacesHandlerError) {
  TcpTransport transport(2);
  auto service = std::make_shared<MathService>();
  auto listener = transport.Listen("", service);
  ASSERT_TRUE(listener.ok());
  auto conn = transport.Connect((*listener)->address(), nullptr);
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(CallVoidBatch(**conn, 1,
                            std::vector<PairRequest>{{1, 2}, {3, 4}})
                  .ok());
  // Route 3 always fails: the batch must report it even though the other
  // calls succeed, and every future must still have been awaited.
  EXPECT_EQ(CallVoidBatch(**conn, 3,
                          std::vector<PairRequest>{{1, 2}, {3, 4}})
                .code(),
            StatusCode::kWrongNodeType);
}

// ---- Link model --------------------------------------------------------------

TEST(LinkModelTest, ShapesBandwidthAndCountsBytes) {
  auto metrics = std::make_shared<Metrics>();
  // 10 MB/s with a 1 MiB burst: 2 MiB takes >= ~100 ms.
  LinkModel link(LinkClass::kFaas, 10'000'000, std::chrono::microseconds(0),
                 metrics);
  Stopwatch timer;
  link.OnSend(2 << 20);
  link.OnSend(1);
  EXPECT_GT(timer.Seconds(), 0.08);
  EXPECT_EQ(metrics->BytesSent(LinkClass::kFaas), (2u << 20) + 1);
  EXPECT_EQ(metrics->Operations(LinkClass::kFaas), 2u);
}

TEST(LinkModelTest, LatencyAppliedOnDeliveryNotOnSend) {
  auto metrics = std::make_shared<Metrics>();
  auto link = std::make_shared<LinkModel>(LinkClass::kControl, 0,
                                          std::chrono::microseconds(20'000),
                                          metrics);
  // OnSend itself must not pay propagation latency (it would serialize
  // pipelined ops)...
  Stopwatch send_timer;
  link->OnSend(1);
  EXPECT_LT(send_timer.Seconds(), 0.01);

  // ...but an end-to-end call over the in-process transport does.
  InProcTransport transport(2);
  auto service = std::make_shared<EchoService>();
  auto listener = transport.Listen("", service);
  ASSERT_TRUE(listener.ok());
  auto conn = transport.Connect((*listener)->address(), link);
  ASSERT_TRUE(conn.ok());
  Stopwatch rt_timer;
  ASSERT_TRUE((*conn)->CallSync(1, Buffer{}).ok());
  EXPECT_GT(rt_timer.Seconds(), 0.015);

  // Pipelined calls overlap their latencies: 8 calls in flight take far
  // less than 8 serial round-trips.
  Stopwatch pipe_timer;
  std::vector<std::future<Result<Message>>> futures;
  for (int i = 0; i < 8; ++i) {
    Message m;
    m.opcode = 1;
    futures.push_back((*conn)->Call(std::move(m)));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  EXPECT_LT(pipe_timer.Seconds(), 8 * 0.02 * 0.8);
}

TEST(LinkModelTest, ShapedEndToEndTransferIsSlower) {
  InProcTransport transport(2);
  auto service = std::make_shared<EchoService>();
  auto listener = transport.Listen("", service);
  ASSERT_TRUE(listener.ok());

  auto metrics = std::make_shared<Metrics>();
  auto fast = transport.Connect((*listener)->address(),
                                LinkModel::Unshaped(LinkClass::kFaas, metrics));
  auto slow = transport.Connect(
      (*listener)->address(),
      std::make_shared<LinkModel>(LinkClass::kFaas, 5'000'000,
                                  std::chrono::microseconds(0), metrics));
  ASSERT_TRUE(fast.ok() && slow.ok());

  const Buffer payload(1 << 20);
  Stopwatch t1;
  ASSERT_TRUE((*fast)->CallSync(1, Buffer(payload.data(), payload.size())).ok());
  const double fast_s = t1.Seconds();
  Stopwatch t2;
  ASSERT_TRUE((*slow)->CallSync(1, Buffer(payload.data(), payload.size())).ok());
  const double slow_s = t2.Seconds();
  EXPECT_GT(slow_s, fast_s * 2);
}

}  // namespace
}  // namespace glider::net
