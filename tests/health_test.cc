// Tests of the cluster health plane (DESIGN.md "Cluster health plane"):
// the structured event journal (ring bounds, cross-thread merge, JSON),
// phi-accrual failure detection under synthetic clocks (growth, the
// three-window detection bound, dead-state stickiness, zero false positives
// over a jittered 10s steady state), the load/hotspot tracker, the
// kHeartbeat/kHealthDump/kEventDump opcodes, and end-to-end ClusterMonitor
// behavior over a MiniCluster: degraded polling when the metadata server is
// partitioned away, and alive -> suspect -> dead detection after a hard
// server kill.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/event_journal.h"
#include "common/health.h"
#include "common/load.h"
#include "common/metrics_registry.h"
#include "common/prometheus.h"
#include "common/trace.h"
#include "glider/cluster_monitor.h"
#include "net/rpc_client.h"
#include "net/rpc_obs.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

using obs::EventJournal;
using obs::EventType;
using obs::HealthDetector;
using obs::PeerState;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::vector<obs::Event> EventsFor(EventType type, const std::string& scope) {
  std::vector<obs::Event> out;
  for (const auto& event : EventJournal::Global().Snapshot()) {
    if (event.type == type && event.scope == scope) out.push_back(event);
  }
  return out;
}

// ---- Event journal ----------------------------------------------------------

TEST(EventJournalTest, RecordSnapshotClear) {
  auto& journal = EventJournal::Global();
  journal.Clear();
  journal.Record(EventType::kServerUp, "addr:1", "storage");
  journal.Record(EventType::kSlotStall, "slot3", "glider.merge", 1234);

  const auto events = journal.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by timestamp; both recorded on this thread in order.
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_EQ(events[0].type, EventType::kServerUp);
  EXPECT_EQ(events[0].scope, "addr:1");
  EXPECT_EQ(events[0].detail, "storage");
  EXPECT_EQ(events[1].value, 1234);
  EXPECT_EQ(journal.Overwritten(), 0u);

  journal.Clear();
  EXPECT_TRUE(journal.Snapshot().empty());
}

TEST(EventJournalTest, RingBoundsRetainedEventsAndCountsOverwrites) {
  auto& journal = EventJournal::Global();
  journal.Clear();
  const std::size_t total = EventJournal::kRingCapacity + 50;
  for (std::size_t i = 0; i < total; ++i) {
    journal.Record(EventType::kFlushStorm, "tcp", "",
                   static_cast<std::int64_t>(i));
  }
  const auto events = journal.Snapshot();
  EXPECT_EQ(events.size(), EventJournal::kRingCapacity);
  EXPECT_EQ(journal.Overwritten(), 50u);
  // The newest events win: the highest value recorded must survive.
  std::int64_t max_value = -1;
  for (const auto& event : events) max_value = std::max(max_value, event.value);
  EXPECT_EQ(max_value, static_cast<std::int64_t>(total - 1));
  journal.Clear();
}

TEST(EventJournalTest, MergesThreadRingsSortedByTime) {
  auto& journal = EventJournal::Global();
  journal.Clear();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Record(EventType::kPoolExhausted,
                       "thread" + std::to_string(t), "", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto events = journal.Snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
  }
  journal.Clear();
}

TEST(EventJournalTest, JsonShape) {
  auto& journal = EventJournal::Global();
  journal.Clear();
  journal.Record(EventType::kPeerDead, "10.0.0.1:7000", "from suspect", 9500);
  const std::string json = journal.ToJson();
  EXPECT_TRUE(Contains(json, "\"events\":["));
  EXPECT_TRUE(Contains(json, "\"type\":\"peer_dead\""));
  EXPECT_TRUE(Contains(json, "\"scope\":\"10.0.0.1:7000\""));
  EXPECT_TRUE(Contains(json, "\"detail\":\"from suspect\""));
  EXPECT_TRUE(Contains(json, "\"value\":9500"));
  EXPECT_TRUE(Contains(json, "\"overwritten\":0"));
  journal.Clear();
}

// ---- Phi-accrual failure detection (synthetic clocks) -----------------------

constexpr std::uint64_t kBeat = 100 * 1000;  // 100ms heartbeat cadence

// Feeds `beats` regular heartbeats starting at t=kBeat and returns the time
// of the last one.
std::uint64_t FeedRegular(HealthDetector& detector, const std::string& addr,
                          int beats) {
  std::uint64_t t = 0;
  for (int i = 1; i <= beats; ++i) {
    t = static_cast<std::uint64_t>(i) * kBeat;
    detector.Heartbeat(addr, t);
  }
  return t;
}

TEST(HealthDetectorTest, FirstHeartbeatMarksAlive) {
  HealthDetector detector;
  EXPECT_EQ(detector.State("a", 1), PeerState::kUnknown);
  EXPECT_EQ(detector.Phi("a", 1), 0.0);
  detector.Heartbeat("a", kBeat);
  EXPECT_EQ(detector.State("a", kBeat + 1), PeerState::kAlive);
}

TEST(HealthDetectorTest, PhiGrowsMonotonicallyWithSilence) {
  HealthDetector detector;
  const std::uint64_t last = FeedRegular(detector, "a", 20);
  double prev = -1.0;
  for (int step = 1; step <= 10; ++step) {
    const double phi = detector.Phi("a", last + step * kBeat);
    EXPECT_GE(phi, prev);
    prev = phi;
  }
  // Right after a heartbeat suspicion is ~0; after 10 silent intervals the
  // peer is far beyond any plausible gap.
  EXPECT_LT(detector.Phi("a", last + kBeat / 10), 0.5);
  EXPECT_GT(prev, detector.options().phi_dead);
}

// The acceptance bound: a silent peer reaches dead within 3 heartbeat
// windows of its last heartbeat (with the default sigma floor of mean/3 and
// phi_dead = 8, the math says ~2.9 windows).
TEST(HealthDetectorTest, DeclaresDeadWithinThreeWindows) {
  EventJournal::Global().Clear();
  HealthDetector detector;
  const std::uint64_t last = FeedRegular(detector, "a", 20);
  // Not a false positive within the first window after the last beat.
  EXPECT_EQ(detector.State("a", last + kBeat), PeerState::kAlive);
  std::uint64_t dead_at = 0;
  for (std::uint64_t t = last; t <= last + 4 * kBeat; t += kBeat / 20) {
    if (detector.State("a", t) == PeerState::kDead) {
      dead_at = t;
      break;
    }
  }
  ASSERT_NE(dead_at, 0u) << "peer never declared dead";
  EXPECT_LE(dead_at, last + 3 * kBeat);
  // And it went through suspect on the way (phi_suspect < phi_dead).
  const auto suspects = EventsFor(EventType::kPeerSuspect, "a");
  const auto deads = EventsFor(EventType::kPeerDead, "a");
  EXPECT_FALSE(suspects.empty());
  EXPECT_FALSE(deads.empty());
}

TEST(HealthDetectorTest, DeadIsStickyUntilAHeartbeatHeals) {
  HealthDetector detector;
  const std::uint64_t last = FeedRegular(detector, "a", 20);
  ASSERT_EQ(detector.State("a", last + 10 * kBeat), PeerState::kDead);
  // Evaluating again, even at a moment whose phi alone would only say
  // "suspect", keeps the peer dead.
  EXPECT_EQ(detector.State("a", last + 10 * kBeat + 1), PeerState::kDead);
  // A fresh heartbeat heals.
  detector.Heartbeat("a", last + 20 * kBeat);
  EXPECT_EQ(detector.State("a", last + 20 * kBeat + 1), PeerState::kAlive);
}

// Zero false positives across a simulated 10s steady state with +/-20%
// jitter on the heartbeat cadence (deterministic LCG, so the test is
// reproducible).
TEST(HealthDetectorTest, NoFalsePositivesUnderJitteredSteadyState) {
  HealthDetector detector;
  std::uint64_t t = kBeat;
  std::uint32_t rng = 12345;
  detector.Heartbeat("jitter-peer", t);
  for (int beat = 0; beat < 100; ++beat) {  // 100 beats x ~100ms = ~10s
    rng = rng * 1664525u + 1013904223u;
    // interval in [80ms, 120ms]
    const std::uint64_t interval = kBeat * 80 / 100 + rng % (kBeat * 40 / 100);
    // Probe mid-gap too: the detector must stay quiet between beats.
    EXPECT_EQ(detector.State("jitter-peer", t + interval / 2),
              PeerState::kAlive)
        << "false positive mid-gap at beat " << beat;
    t += interval;
    detector.Heartbeat("jitter-peer", t);
    EXPECT_EQ(detector.State("jitter-peer", t), PeerState::kAlive)
        << "false positive at beat " << beat;
  }
  EXPECT_TRUE(EventsFor(EventType::kPeerSuspect, "jitter-peer").empty());
}

TEST(HealthDetectorTest, JournalsEveryTransition) {
  EventJournal::Global().Clear();
  HealthDetector detector;
  const std::uint64_t last = FeedRegular(detector, "peer-x", 20);
  ASSERT_EQ(detector.State("peer-x", last + 10 * kBeat), PeerState::kDead);
  detector.Heartbeat("peer-x", last + 20 * kBeat);

  EXPECT_EQ(EventsFor(EventType::kPeerDead, "peer-x").size(), 1u);
  // kPeerAlive twice: unknown -> alive on first beat, dead -> alive on heal.
  EXPECT_EQ(EventsFor(EventType::kPeerAlive, "peer-x").size(), 2u);
  EventJournal::Global().Clear();
}

TEST(HealthDetectorTest, SnapshotCarriesLoadReports) {
  HealthDetector detector;
  FeedRegular(detector, "a", 3);
  detector.ReportLoad("a", 2.5, 1);
  detector.ReportLoad("ghost", 9.0, 2);  // unknown peer: dropped

  const auto board = detector.Snapshot(3 * kBeat + 1);
  ASSERT_EQ(board.size(), 1u);
  EXPECT_EQ(board[0].address, "a");
  EXPECT_EQ(board[0].state, PeerState::kAlive);
  EXPECT_DOUBLE_EQ(board[0].load_index, 2.5);
  EXPECT_EQ(board[0].hotspot_slots, 1);
  EXPECT_EQ(board[0].heartbeats, 3u);
  EXPECT_EQ(board[0].mean_interval_us, kBeat);

  detector.Forget("a");
  EXPECT_TRUE(detector.Snapshot(3 * kBeat + 2).empty());
}

TEST(HealthBoardTest, PublishAndJson) {
  HealthDetector detector;
  FeedRegular(detector, "10.0.0.2:7001", 5);
  obs::HealthBoard board;
  EXPECT_FALSE(board.running());
  board.Publish(detector.Snapshot(5 * kBeat + 1));
  EXPECT_TRUE(board.running());

  const std::string json = board.ToJson();
  EXPECT_TRUE(Contains(json, "\"running\":true"));
  EXPECT_TRUE(Contains(
      json, "\"address\":\"10.0.0.2:7001\",\"state\":\"alive\""));
  EXPECT_TRUE(Contains(json, "\"phi\":"));

  board.SetRunning(false);
  EXPECT_TRUE(Contains(board.ToJson(), "\"running\":false,\"peers\":[]"));
}

TEST(HealthMetricsTest, PhiGaugesExportAsGliderHealthPhi) {
  obs::MetricsRegistry registry;
  registry.GetGauge("health.phi.10.0.0.1:7000").Set(8123);
  const std::string text = obs::PrometheusText(registry);
  EXPECT_TRUE(Contains(text, "glider_health_phi_10_0_0_1:7000 8123\n"));
}

// ---- Load / hotspot tracking ------------------------------------------------

TEST(LoadTrackerTest, BlendsInputsAndFlagsHotspots) {
  auto& registry = obs::MetricsRegistry::Global();
  EventJournal::Global().Clear();

  obs::LoadTracker::Options opts;
  opts.min_window_us = 0;          // every Update recomputes
  opts.hotspot_multiple = 1.5;     // reachable with two slots
  opts.hotspot_min_utilization = 0.01;
  obs::LoadTracker tracker(opts);

  registry.GetGauge("active.queue_depth").Set(3);
  auto& slot0 = registry.GetCounter("active.slot0.cpu_us");
  registry.GetCounter("active.slot1.cpu_us").Add(0);

  // First call arms the baseline; rates are unknown.
  auto first = tracker.Update();
  EXPECT_EQ(first.window_us, 0u);
  EXPECT_GE(first.queue_depth, 3.0);

  // Burn CPU on slot 0 only: it takes ~100% of the windowed slot CPU.
  slot0.Add(200 * 1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto second = tracker.Update();
  ASSERT_GT(second.window_us, 0u);
  EXPECT_GT(second.cpu_utilization, 0.0);
  EXPECT_GT(second.load_index, 0.0);
  ASSERT_FALSE(second.hotspots.empty());
  EXPECT_EQ(second.hotspots.front(), 0u);
  // Published back into the registry for /metrics and glider_top.
  const auto snap = registry.Snapshot();
  const std::int64_t* hot = snap.FindGauge("active.slot0.hot");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(*hot, 1);
  const std::int64_t* load = snap.FindGauge("load_index");
  ASSERT_NE(load, nullptr);
  EXPECT_GT(*load, 0);
  EXPECT_FALSE(EventsFor(EventType::kHotspot, "slot0").empty());

  // No further CPU: the slot cools down and its flag clears.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto third = tracker.Update();
  EXPECT_TRUE(third.hotspots.empty());
  const auto cooled = registry.Snapshot();
  const std::int64_t* hot2 = cooled.FindGauge("active.slot0.hot");
  ASSERT_NE(hot2, nullptr);
  EXPECT_EQ(*hot2, 0);

  registry.GetGauge("active.queue_depth").Set(0);
  EventJournal::Global().Clear();
}

// ---- Health-plane RPCs over a MiniCluster -----------------------------------

testing::ClusterOptions SmallCluster() {
  testing::ClusterOptions options;
  options.data_servers = 1;
  options.active_servers = 1;
  options.blocks_per_server = 16;
  options.slots_per_server = 4;
  return options;
}

TEST(HealthRpcTest, HeartbeatHealthAndEventDumps) {
  workloads::RegisterWorkloadActions();
  auto cluster_or = testing::MiniCluster::Start(SmallCluster());
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto& cluster = **cluster_or;

  auto conn = cluster.transport().Connect(cluster.metadata_address(), nullptr);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  // kHeartbeat: cheap probe answered by any server.
  auto beat = net::Call<net::HeartbeatResponse>(**conn, net::kHeartbeat,
                                                Buffer{});
  ASSERT_TRUE(beat.ok()) << beat.status().ToString();
  EXPECT_GT(beat->server_time_us, 0u);

  // kHealthDump: valid board JSON even when no monitor runs here.
  auto health = (*conn)->CallSync(net::kHealthDump, Buffer{});
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  const std::string health_json(
      reinterpret_cast<const char*>(health->data()), health->size());
  EXPECT_TRUE(Contains(health_json, "\"running\":"));
  EXPECT_TRUE(Contains(health_json, "\"peers\":["));

  // kEventDump with the clear flag drains the journal.
  EventJournal::Global().Clear();
  obs::JournalEvent(EventType::kFlushStorm, "tcp", "test", 64);
  Buffer clear;
  clear.Resize(1);
  clear.mutable_span()[0] = 1;
  auto events = (*conn)->CallSync(net::kEventDump, std::move(clear));
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  const std::string events_json(
      reinterpret_cast<const char*>(events->data()), events->size());
  EXPECT_TRUE(Contains(events_json, "\"type\":\"flush_storm\""));
  EXPECT_TRUE(EventJournal::Global().Snapshot().empty());
}

// Satellite fix: a partitioned/refused metadata server degrades Poll() to
// the cached server list instead of failing the whole round.
TEST(ClusterMonitorHealthTest, DegradesWhenMetadataUnreachable) {
  workloads::RegisterWorkloadActions();
  auto cluster_or = testing::MiniCluster::Start(SmallCluster());
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto& cluster = **cluster_or;

  ClusterMonitor monitor(&cluster.transport(), cluster.metadata_address());
  auto healthy = monitor.Poll();
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_FALSE(healthy->stale_discovery);
  const std::size_t rows = healthy->servers.size();
  ASSERT_GE(rows, 2u);  // metadata + registered servers

  ASSERT_TRUE(
      cluster.SetPartitioned(cluster.metadata_address(), true).ok());
  auto degraded = monitor.Poll();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->stale_discovery);
  EXPECT_EQ(degraded->servers.size(), rows);
  bool metadata_row_failed = false;
  for (const auto& server : degraded->servers) {
    if (server.is_metadata) metadata_row_failed = !server.status.ok();
  }
  EXPECT_TRUE(metadata_row_failed);

  // A monitor with no cached discovery still fails outright — there is
  // nothing to degrade to.
  ClusterMonitor fresh(&cluster.transport(), cluster.metadata_address());
  EXPECT_FALSE(fresh.Poll().ok());

  ASSERT_TRUE(
      cluster.SetPartitioned(cluster.metadata_address(), false).ok());
  auto healed = monitor.Poll();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_FALSE(healed->stale_discovery);
}

// End-to-end failure detection: hard-kill the active server mid-polling and
// watch the monitor's detector walk alive -> suspect -> dead, with the
// transitions recorded in the event journal.
TEST(ClusterMonitorHealthTest, KillActiveWalksAliveSuspectDead) {
  workloads::RegisterWorkloadActions();
  auto cluster_or = testing::MiniCluster::Start(SmallCluster());
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto& cluster = **cluster_or;
  const std::string victim = cluster.active(0).address();

  EventJournal::Global().Clear();
  // A low suspect threshold widens the suspect band to ~1.7 mean intervals,
  // so even coarse polling observes the intermediate state.
  HealthDetector::Options hopts;
  hopts.phi_suspect = 0.5;
  ClusterMonitor monitor(&cluster.transport(), cluster.metadata_address(),
                         nullptr, hopts);

  auto poll_victim = [&]() -> ClusterMonitor::ServerSample {
    auto sample = monitor.Poll();
    EXPECT_TRUE(sample.ok()) << sample.status().ToString();
    for (auto& server : sample->servers) {
      if (server.server.address == victim) return server;
    }
    ADD_FAILURE() << "victim row missing";
    return {};
  };

  // Steady state: several polls, always alive, zero false positives.
  for (int i = 0; i < 8; ++i) {
    const auto row = poll_victim();
    EXPECT_TRUE(row.status.ok()) << row.status.ToString();
    if (i > 0) EXPECT_EQ(row.health, PeerState::kAlive) << "poll " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::uint64_t killed_at = obs::TraceNowMicros();
  std::uint64_t mean_interval = 0;
  for (const auto& peer : monitor.health().Snapshot()) {
    if (peer.address == victim) mean_interval = peer.mean_interval_us;
  }
  ASSERT_GT(mean_interval, 0u);

  ASSERT_TRUE(cluster.KillActive(0).ok());

  bool saw_suspect = false;
  std::uint64_t dead_at = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto row = poll_victim();
    // The killed server's registration dangles in the metadata server, so
    // its row persists — unreachable, with the detector verdict attached.
    if (row.health == PeerState::kSuspect) saw_suspect = true;
    if (row.health == PeerState::kDead) {
      dead_at = obs::TraceNowMicros();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_NE(dead_at, 0u) << "killed server never declared dead";
  EXPECT_TRUE(saw_suspect) << "dead without passing through suspect";
  // Detection bound: the phi math crosses phi_dead at ~2.9 mean intervals;
  // allow one extra poll period plus sanitizer slack for observing it.
  EXPECT_LE(dead_at - killed_at, 4 * mean_interval + 1000 * 1000)
      << "detection took " << (dead_at - killed_at) << "us at mean interval "
      << mean_interval << "us";

  EXPECT_FALSE(EventsFor(EventType::kPeerSuspect, victim).empty());
  EXPECT_FALSE(EventsFor(EventType::kPeerDead, victim).empty());
  EventJournal::Global().Clear();
}

// Wall-clock steady-state soak: nothing dies, nothing may be suspected.
// Default 2s keeps the suite fast; set GLIDER_HEALTH_SOAK_MS=10000 for the
// full acceptance run.
TEST(ClusterMonitorHealthTest, SteadyStateHasNoFalsePositives) {
  workloads::RegisterWorkloadActions();
  auto cluster_or = testing::MiniCluster::Start(SmallCluster());
  ASSERT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  auto& cluster = **cluster_or;

  long soak_ms = 2000;
  if (const char* env = std::getenv("GLIDER_HEALTH_SOAK_MS")) {
    soak_ms = std::atol(env);
  }
  ClusterMonitor monitor(&cluster.transport(), cluster.metadata_address());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(soak_ms);
  int polls = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto sample = monitor.Poll();
    ASSERT_TRUE(sample.ok()) << sample.status().ToString();
    for (const auto& server : sample->servers) {
      ASSERT_TRUE(server.status.ok())
          << server.server.address << ": " << server.status.ToString();
      EXPECT_NE(server.health, PeerState::kSuspect)
          << server.server.address << " falsely suspected at poll " << polls;
      EXPECT_NE(server.health, PeerState::kDead)
          << server.server.address << " falsely declared dead at poll "
          << polls;
    }
    ++polls;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GT(polls, 5);
}

}  // namespace
}  // namespace glider
