// Open-loop load-generator tests: schedule accuracy, coordinated-omission
// safety (the latency clock starts at the *scheduled* arrival time), and
// bounded-backlog shedding.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "common/random.h"
#include "workloads/loadgen.h"

namespace glider::workloads {
namespace {

TEST(ArrivalScheduleTest, FixedGapsAreExact) {
  auto schedule = ArrivalSchedule::Fixed(1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(schedule.NextGap(), std::chrono::microseconds(1000));
  }
}

TEST(ArrivalScheduleTest, PoissonGapsAverageToRate) {
  auto schedule = ArrivalSchedule::Poisson(250, /*seed=*/3);
  double total_s = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const auto gap = schedule.NextGap();
    EXPECT_GE(gap.count(), 0);
    total_s += std::chrono::duration<double>(gap).count();
  }
  // Mean gap must converge to 1/rate (= 4 ms) within a few percent.
  const double mean_s = total_s / kDraws;
  EXPECT_NEAR(mean_s, 1.0 / 250, 0.2 / 250);
}

TEST(ArrivalScheduleTest, PoissonIsDeterministicPerSeed) {
  auto a = ArrivalSchedule::Poisson(100, 42);
  auto b = ArrivalSchedule::Poisson(100, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextGap(), b.NextGap());
}

TEST(OpenLoopTest, ArrivalRateUnaffectedByServiceJitter) {
  // Open loop means the arrival schedule does NOT depend on service times:
  // with heavy injected jitter the scheduled count must still match the
  // rate * duration product of a jitter-free run.
  OpenLoopOptions options;
  options.rate_per_s = 500;
  options.poisson = false;  // fixed: deterministic arrival count
  options.duration_s = 0.5;
  options.workers = 8;

  SplitMix64 rng(9);
  std::mutex mu;
  auto jittery = RunOpenLoop(options, [&](std::size_t, std::uint64_t) {
    std::uint64_t us;
    {
      std::scoped_lock lock(mu);
      us = rng.Next() % 4000;  // 0-4 ms of service jitter
    }
    std::this_thread::sleep_for(std::chrono::microseconds(us));
    return Status::Ok();
  });
  ASSERT_TRUE(jittery.ok()) << jittery.status().ToString();

  // Fixed 2 ms gaps over 0.5 s: ~249 arrivals; allow slack for a slow,
  // heavily-shared host where the pacer itself gets descheduled.
  EXPECT_GE(jittery->scheduled, 200u);
  EXPECT_LE(jittery->scheduled, 250u);
  EXPECT_EQ(jittery->completed + jittery->shed, jittery->scheduled);
  EXPECT_EQ(jittery->errors, 0u);
}

TEST(OpenLoopTest, LatencyIncludesQueueingDelay) {
  // Coordinated-omission check: one worker with a 10 ms service time at an
  // offered rate 5x its capacity. A closed-loop harness (or one that stamps
  // latency at dequeue) would report ~10 ms; the CO-safe clock charges the
  // queueing delay to the requests, so median latency must be far above
  // the service time.
  OpenLoopOptions options;
  options.rate_per_s = 500;
  options.poisson = false;
  options.duration_s = 0.4;
  options.workers = 1;

  auto result = RunOpenLoop(options, [](std::size_t, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->recorded, 0u);
  // ~200 arrivals into a 100/s server: most of the queue drains after the
  // arrival window, so median latency is hundreds of ms, not 10.
  EXPECT_GT(result->p50_ms, 100.0);
  EXPECT_GT(result->max_ms, result->p50_ms * 0.99);
  EXPECT_EQ(result->completed + result->shed, result->scheduled);
}

TEST(OpenLoopTest, BoundedBacklogShedsAndCounts) {
  OpenLoopOptions options;
  options.rate_per_s = 2000;
  options.poisson = false;
  options.duration_s = 0.3;
  options.workers = 1;
  options.max_backlog = 16;

  auto result = RunOpenLoop(options, [](std::size_t, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // ~600 arrivals into a 200/s server with a 16-deep queue: most must be
  // shed, never silently dropped, and the backlog never exceeds the bound.
  EXPECT_GT(result->shed, 0u);
  EXPECT_LE(result->peak_backlog, options.max_backlog);
  EXPECT_EQ(result->completed + result->shed, result->scheduled);
}

TEST(OpenLoopTest, ErrorsAreCountedAndStillComplete) {
  OpenLoopOptions options;
  options.rate_per_s = 1000;
  options.poisson = false;
  options.duration_s = 0.2;
  options.workers = 4;

  auto result = RunOpenLoop(options, [](std::size_t, std::uint64_t id) {
    return id % 3 == 0 ? Status::Internal("boom") : Status::Ok();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->errors, 0u);
  EXPECT_LT(result->errors, result->completed);
  EXPECT_EQ(result->completed + result->shed, result->scheduled);
}

TEST(OpenLoopTest, WarmupArrivalsAreNotRecorded) {
  OpenLoopOptions options;
  options.rate_per_s = 1000;
  options.poisson = false;
  options.duration_s = 0.4;
  options.warmup_s = 0.2;
  options.workers = 4;

  auto result = RunOpenLoop(options,
                            [](std::size_t, std::uint64_t) { return Status::Ok(); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->recorded, 0u);
  // Roughly half the arrivals land in the warmup window.
  EXPECT_LT(result->recorded, result->completed * 3 / 4);
}

TEST(OpenLoopTest, RejectsNonsenseOptions) {
  OpenLoopOptions options;
  options.rate_per_s = 0;
  auto r = RunOpenLoop(options, [](std::size_t, std::uint64_t) {
    return Status::Ok();
  });
  EXPECT_FALSE(r.ok());
  options.rate_per_s = 10;
  options.workers = 0;
  r = RunOpenLoop(options, [](std::size_t, std::uint64_t) {
    return Status::Ok();
  });
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace glider::workloads
