// Tests of the evaluation action library (workloads/actions.*) running on a
// live cluster: merge, filter, noop, sorter, sampler+manager (including the
// action-to-action stream), reader, and checkpointing merge.
#include <gtest/gtest.h>

#include <sstream>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"
#include "workloads/generators.h"

namespace glider::workloads {
namespace {

class WorkloadActionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterWorkloadActions();
    testing::ClusterOptions options;
    options.data_servers = 1;
    options.active_servers = 1;
    options.slots_per_server = 16;
    options.chunk_size = 16 * 1024;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  std::string ReadAll(core::ActionNode& node) {
    auto reader = node.OpenReader();
    EXPECT_TRUE(reader.ok());
    std::string out;
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      EXPECT_TRUE(chunk.ok());
      if (!chunk.ok() || chunk->empty()) break;
      out += chunk->ToString();
    }
    EXPECT_TRUE((*reader)->Close().ok());
    return out;
  }

  Status WriteAll(core::ActionNode& node, std::string_view data) {
    GLIDER_ASSIGN_OR_RETURN(auto writer, node.OpenWriter());
    GLIDER_RETURN_IF_ERROR(writer->Write(data));
    return writer->Close();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

TEST_F(WorkloadActionsTest, MergeAggregatesAndToleratesJunk) {
  auto node = core::ActionNode::Create(*client_, "/m", "glider.merge");
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(WriteAll(*node, "5,5\nnot-a-pair\n5,-2\n-3,7\n").ok());
  EXPECT_EQ(ReadAll(*node), "-3,7\n5,3\n");
}

TEST_F(WorkloadActionsTest, FilterProxiesBackingFile) {
  ASSERT_TRUE(client_->CreateNode("/data", nk::NodeType::kFile).ok());
  {
    auto writer = nk::FileWriter::Open(*client_, "/data");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write("keep A\nskip B\nkeep C\n").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto node = core::ActionNode::Create(*client_, "/f", "glider.filter",
                                       /*interleave=*/false,
                                       AsBytes("/data\nkeep"));
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(ReadAll(*node), "keep A\nkeep C\n");
  // Stateless proxy: reading twice re-filters.
  EXPECT_EQ(ReadAll(*node), "keep A\nkeep C\n");
}

TEST_F(WorkloadActionsTest, NoopReadEmitsExactByteCount) {
  auto node = core::ActionNode::Create(*client_, "/n", "glider.noop",
                                       /*interleave=*/false,
                                       AsBytes("100000"));
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(ReadAll(*node).size(), 100'000u);
  ASSERT_TRUE(WriteAll(*node, std::string(50'000, 'x')).ok());  // discarded
  auto state = node->StateBytes();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, 0u);
}

TEST_F(WorkloadActionsTest, SorterSortsAndWritesRunInStorage) {
  auto node = core::ActionNode::Create(*client_, "/s", "glider.sorter",
                                       /*interleave=*/true,
                                       AsBytes("/sorted_out"));
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(WriteAll(*node, "ccc\naaa\n").ok());
  ASSERT_TRUE(WriteAll(*node, "bbb\n").ok());
  EXPECT_EQ(ReadAll(*node), "3\n");  // record count reply

  auto run = client_->GetValue("/sorted_out");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->ToString(), "aaa\nbbb\nccc\n");
}

TEST_F(WorkloadActionsTest, SamplerPersistsStreamsAndFeedsManager) {
  ASSERT_TRUE(core::ActionNode::Create(*client_, "/mgr", "glider.manager",
                                       /*interleave=*/true, AsBytes("2"))
                  .ok());
  auto sampler = core::ActionNode::Create(
      *client_, "/smp", "glider.sampler", /*interleave=*/true,
      AsBytes("/gtmp\n2\n/mgr"));
  ASSERT_TRUE(sampler.ok());

  // Two mapper streams.
  std::string records1, records2;
  AlignedReadGenerator(1, 0, 1000).Generate(50, records1);
  AlignedReadGenerator(2, 0, 1000).Generate(50, records2);
  ASSERT_TRUE(WriteAll(*sampler, records1).ok());
  ASSERT_TRUE(WriteAll(*sampler, records2).ok());

  // Trigger: pushes samples to the manager, returns the file list.
  const std::string listing = ReadAll(*sampler);
  EXPECT_NE(listing.find("F /gtmp_0"), std::string::npos);
  EXPECT_NE(listing.find("F /gtmp_1"), std::string::npos);

  // The persisted ephemeral files hold the full streams.
  auto file0 = client_->GetValue("/gtmp_0");
  ASSERT_TRUE(file0.ok());
  EXPECT_EQ(file0->ToString(), records1);

  // The manager received samples (action-to-action) and computes 2 ranges
  // covering the space contiguously.
  auto manager = core::ActionNode::Lookup(*client_, "/mgr");
  ASSERT_TRUE(manager.ok());
  const std::string ranges = ReadAll(*manager);
  std::istringstream in(ranges);
  std::string line;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> parsed;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    parsed.emplace_back(std::stoull(line.substr(0, comma)),
                        std::stoull(line.substr(comma + 1)));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].first, 0u);
  EXPECT_EQ(parsed[0].second, parsed[1].first);  // contiguous
  EXPECT_EQ(parsed[1].second, 1ull << 63);
}

TEST_F(WorkloadActionsTest, ReaderMergesRangeScopedRecords) {
  // Two unsorted ephemeral files; the reader must return only records in
  // [100, 200), sorted.
  for (int f = 0; f < 2; ++f) {
    const std::string path = "/rf_" + std::to_string(f);
    ASSERT_TRUE(client_->CreateNode(path, nk::NodeType::kFile).ok());
    std::string records;
    AlignedReadGenerator(100 + f, 0, 300).Generate(100, records);
    auto writer = nk::FileWriter::Open(*client_, path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write(records).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto node = core::ActionNode::Create(
      *client_, "/rdr", "glider.reader", /*interleave=*/false,
      AsBytes("100,200\n/rf_0\n/rf_1"));
  ASSERT_TRUE(node.ok());
  const std::string merged = ReadAll(*node);
  std::istringstream in(merged);
  std::string line, prev;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const std::uint64_t pos = AlignedReadGenerator::PosOf(line);
    EXPECT_GE(pos, 100u);
    EXPECT_LT(pos, 200u);
    EXPECT_LE(prev, line);  // sorted
    prev = line;
    ++count;
  }
  EXPECT_GT(count, 20u);  // ~1/3 of 200 records fall in range
}

TEST_F(WorkloadActionsTest, CheckpointMergeSurvivesRecreation) {
  const auto config = AsBytes("/ckpt_kv");
  auto node = core::ActionNode::Create(*client_, "/cm", "glider.ckpt-merge",
                                       /*interleave=*/false, config);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(WriteAll(*node, "1,5\n!checkpoint\n2,9\n").ok());
  // 2,9 arrived after the checkpoint: present live...
  EXPECT_EQ(ReadAll(*node), "1,5\n2,9\n");
  // ...but lost across object re-creation; the checkpoint restores 1,5.
  ASSERT_TRUE(node->DeleteObject().ok());
  ASSERT_TRUE(client_->Delete("/cm").ok());
  auto revived = core::ActionNode::Create(*client_, "/cm", "glider.ckpt-merge",
                                          /*interleave=*/false, config);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(ReadAll(*revived), "1,5\n");
}

}  // namespace
}  // namespace glider::workloads
