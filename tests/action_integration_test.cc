// End-to-end tests of Glider storage actions: lifecycle, stateful
// aggregation across streams, read streaming, interleaving, concurrency
// model, error paths. Runs on both transports.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>

#include "glider/client/action_node.h"
#include "testing/cluster.h"

namespace glider {
namespace {

using core::Action;
using core::ActionContext;
using core::ActionInputStream;
using core::ActionNode;
using core::ActionOutputStream;
using testing::ClusterOptions;
using testing::MiniCluster;

// Counts lines written into it; serves the total on read. The word-count
// merger of the paper's Listing 1, reduced to its essence.
class LineCountAction : public Action {
 public:
  void onWrite(ActionInputStream& in, ActionContext&) override {
    auto lines = in.Lines();
    std::string line;
    while (true) {
      auto more = lines.NextLine(line);
      if (!more.ok() || !*more) break;
      ++count_;
    }
  }
  void onRead(ActionOutputStream& out, ActionContext&) override {
    (void)out.Write(std::to_string(count_));
  }
  std::uint64_t StateBytes() const override { return sizeof(count_); }

 private:
  std::uint64_t count_ = 0;
};
GLIDER_REGISTER_ACTION("test.linecount", LineCountAction);

// The paper's Listing 1: merges "key,value" pairs into a dictionary.
class MergeAction : public Action {
 public:
  void onWrite(ActionInputStream& in, ActionContext&) override {
    auto lines = in.Lines();
    std::string line;
    while (true) {
      auto more = lines.NextLine(line);
      if (!more.ok() || !*more) break;
      const auto comma = line.find(',');
      if (comma == std::string::npos) continue;
      const int key = std::stoi(line.substr(0, comma));
      const long long value = std::stoll(line.substr(comma + 1));
      result_[key] += value;
    }
  }
  void onRead(ActionOutputStream& out, ActionContext&) override {
    std::ostringstream s;
    for (const auto& [k, v] : result_) s << k << "," << v << "\n";
    (void)out.Write(s.str());
    out.Close();
  }
  std::uint64_t StateBytes() const override {
    return result_.size() * (sizeof(int) + sizeof(long long));
  }

 private:
  std::map<int, long long> result_;
};
GLIDER_REGISTER_ACTION("test.merge", MergeAction);

// Emits n lines "gen-i" on read; n parsed from creation config.
class GeneratorAction : public Action {
 public:
  void onCreate(ActionContext& ctx) override {
    n_ = std::stoul(std::string(AsText(ctx.config())));
  }
  void onRead(ActionOutputStream& out, ActionContext&) override {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!out.Write("gen-" + std::to_string(i) + "\n").ok()) return;
    }
  }

 private:
  std::size_t n_ = 0;
};
GLIDER_REGISTER_ACTION("test.generator", GeneratorAction);

// Tracks lifecycle calls through process-wide counters.
std::atomic<int> g_creates{0};
std::atomic<int> g_deletes{0};
class LifecycleAction : public Action {
 public:
  void onCreate(ActionContext&) override { ++g_creates; }
  void onDelete(ActionContext&) override { ++g_deletes; }
};
GLIDER_REGISTER_ACTION("test.lifecycle", LifecycleAction);

class ActionIntegrationTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.use_tcp = GetParam();
    options.active_servers = 2;
    options.slots_per_server = 8;
    options.chunk_size = 8 * 1024;
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  std::string ReadAll(ActionNode& node) {
    auto reader = node.OpenReader();
    EXPECT_TRUE(reader.ok()) << reader.status().ToString();
    std::string out;
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (!chunk.ok() || chunk->empty()) break;
      out += chunk->ToString();
    }
    EXPECT_TRUE((*reader)->Close().ok());
    return out;
  }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

TEST_P(ActionIntegrationTest, CreateWriteReadDelete) {
  auto node = ActionNode::Create(*client_, "/counter", "test.linecount");
  ASSERT_TRUE(node.ok()) << node.status().ToString();

  auto writer = node->OpenWriter();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write("one\ntwo\nthree\n").ok());
  ASSERT_TRUE((*writer)->Close().ok());

  EXPECT_EQ(ReadAll(*node), "3");

  ASSERT_TRUE(ActionNode::Delete(*client_, "/counter").ok());
  EXPECT_EQ(client_->Lookup("/counter").status().code(),
            StatusCode::kNotFound);
}

TEST_P(ActionIntegrationTest, StateAccumulatesAcrossStreams) {
  auto node = ActionNode::Create(*client_, "/merge", "test.merge");
  ASSERT_TRUE(node.ok());

  for (int round = 0; round < 3; ++round) {
    auto writer = node->OpenWriter();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write("1,10\n2,20\n").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  EXPECT_EQ(ReadAll(*node), "1,30\n2,60\n");

  auto state = node->StateBytes();
  ASSERT_TRUE(state.ok());
  EXPECT_GT(*state, 0u);
}

TEST_P(ActionIntegrationTest, ConcurrentWritersInterleaved) {
  auto node =
      ActionNode::Create(*client_, "/merge", "test.merge", /*interleave=*/true);
  ASSERT_TRUE(node.ok());

  constexpr int kWriters = 8;
  constexpr int kPairsEach = 2000;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<nk::StoreClient>> clients;
  for (int w = 0; w < kWriters; ++w) {
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    clients.push_back(std::move(client).value());
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto n = ActionNode::Lookup(*clients[w], "/merge");
      ASSERT_TRUE(n.ok());
      auto writer = n->OpenWriter();
      ASSERT_TRUE(writer.ok());
      std::string batch;
      for (int i = 0; i < kPairsEach; ++i) {
        batch += std::to_string(i % 16) + ",1\n";
        if (batch.size() > 4096) {
          ASSERT_TRUE((*writer)->Write(batch).ok());
          batch.clear();
        }
      }
      ASSERT_TRUE((*writer)->Write(batch).ok());
      ASSERT_TRUE((*writer)->Close().ok());
    });
  }
  for (auto& t : threads) t.join();

  // Every key 0..15 must have been counted exactly kWriters*kPairsEach/16.
  const std::string result = ReadAll(*node);
  std::istringstream in(result);
  std::string line;
  int keys = 0;
  long long total = 0;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    total += std::stoll(line.substr(comma + 1));
    ++keys;
  }
  EXPECT_EQ(keys, 16);
  EXPECT_EQ(total, static_cast<long long>(kWriters) * kPairsEach);
}

TEST_P(ActionIntegrationTest, GeneratorReadStreaming) {
  auto node = ActionNode::Create(*client_, "/gen", "test.generator",
                                 /*interleave=*/false, AsBytes("5000"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  const std::string out = ReadAll(*node);
  std::istringstream in(out);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line, "gen-" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

TEST_P(ActionIntegrationTest, EarlyReaderCloseUnblocksAction) {
  auto node = ActionNode::Create(*client_, "/gen", "test.generator",
                                 /*interleave=*/false, AsBytes("1000000"));
  ASSERT_TRUE(node.ok());
  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  auto chunk = (*reader)->ReadChunk();
  ASSERT_TRUE(chunk.ok());
  EXPECT_FALSE(chunk->empty());
  // Abandon the stream long before the generator finishes; the action's
  // writes must fail with kClosed instead of hanging.
  ASSERT_TRUE((*reader)->Close().ok());
  // The slot must become available for the next method promptly.
  auto state = node->StateBytes();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
}

TEST_P(ActionIntegrationTest, LifecycleHooksRun) {
  const int creates_before = g_creates.load();
  const int deletes_before = g_deletes.load();
  auto node = ActionNode::Create(*client_, "/life", "test.lifecycle");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(g_creates.load(), creates_before + 1);

  // DeleteObject runs onDelete but keeps the node.
  ASSERT_TRUE(node->DeleteObject().ok());
  EXPECT_EQ(g_deletes.load(), deletes_before + 1);
  ASSERT_TRUE(client_->Lookup("/life").ok());
  ASSERT_TRUE(client_->Delete("/life").ok());
}

TEST_P(ActionIntegrationTest, UnknownActionTypeFailsCleanly) {
  auto node = ActionNode::Create(*client_, "/nope", "test.does-not-exist");
  EXPECT_EQ(node.status().code(), StatusCode::kNotFound);
  // The node must have been rolled back.
  EXPECT_EQ(client_->Lookup("/nope").status().code(), StatusCode::kNotFound);
}

TEST_P(ActionIntegrationTest, ActionsDistributeAcrossActiveServers) {
  // With two active servers and round-robin slot allocation, consecutive
  // actions land on alternating servers.
  std::set<std::string> addresses;
  for (int i = 0; i < 4; ++i) {
    auto node = ActionNode::Create(*client_, "/d" + std::to_string(i),
                                   "test.linecount");
    ASSERT_TRUE(node.ok());
    addresses.insert(node->info().slot.address);
  }
  EXPECT_EQ(addresses.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Transports, ActionIntegrationTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Tcp" : "InProc";
                         });

}  // namespace
}  // namespace glider
