// Property-style tests of the buffered file streams: round-trips across a
// sweep of (block size, chunk size, data size) shapes, plus LineScanner.
#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/cluster.h"

namespace glider::nk {
namespace {

struct StreamShape {
  std::uint64_t block_size;
  std::size_t chunk_size;
  std::size_t data_size;
  std::size_t window;
};

class FileStreamPropertyTest : public ::testing::TestWithParam<StreamShape> {};

TEST_P(FileStreamPropertyTest, RoundTripPreservesBytes) {
  const StreamShape shape = GetParam();
  testing::ClusterOptions options;
  options.block_size = shape.block_size;
  options.blocks_per_server = 512;
  options.chunk_size = shape.chunk_size;
  options.inflight_window = shape.window;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  std::vector<std::uint8_t> data(shape.data_size);
  SplitMix64 rng(shape.data_size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());

  ASSERT_TRUE((*client)->CreateNode("/p", NodeType::kFile).ok());
  {
    auto writer = FileWriter::Open(**client, "/p");
    ASSERT_TRUE(writer.ok());
    // Random-sized writes.
    std::size_t off = 0;
    SplitMix64 sizes(7);
    while (off < data.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + sizes.NextBelow(3 * shape.chunk_size), data.size() - off);
      ASSERT_TRUE((*writer)->Write(ByteSpan(data.data() + off, n)).ok());
      off += n;
    }
    ASSERT_TRUE((*writer)->Close().ok());
    EXPECT_EQ((*writer)->bytes_written(), data.size());
  }

  auto reader = FileReader::Open(**client, "/p");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->size(), data.size());
  std::vector<std::uint8_t> read_back(data.size() + 16);
  auto n = (*reader)->Read(MutableByteSpan(read_back.data(), read_back.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  read_back.resize(data.size());
  EXPECT_EQ(read_back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FileStreamPropertyTest,
    ::testing::Values(
        StreamShape{16 * 1024, 4 * 1024, 100 * 1024, 4},   // many blocks
        StreamShape{16 * 1024, 24 * 1024, 70 * 1024, 2},   // chunk > block
        StreamShape{1 << 20, 64 * 1024, 1, 4},             // single byte
        StreamShape{1 << 20, 64 * 1024, 0, 4},             // empty file
        StreamShape{64 * 1024, 64 * 1024, 64 * 1024, 1},   // exact fit, W=1
        StreamShape{32 * 1024, 10 * 1024, 333 * 1024, 8},  // odd sizes
        StreamShape{1 << 20, 256 * 1024, 3 << 20, 4}),     // multi-MiB
    [](const auto& info) {
      const auto& s = info.param;
      return "b" + std::to_string(s.block_size / 1024) + "k_c" +
             std::to_string(s.chunk_size / 1024) + "k_d" +
             std::to_string(s.data_size) + "_w" + std::to_string(s.window);
    });

TEST(FileStreamsTest, AppendLikeSequentialWriters) {
  // Two writers in sequence: the second starts at offset 0 (streams are
  // whole-object, like the paper's ephemeral files) and overwrites.
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->CreateNode("/f", NodeType::kFile).ok());
  {
    auto writer = FileWriter::Open(**client, "/f");
    ASSERT_TRUE((*writer)->Write("AAAA").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  {
    auto writer = FileWriter::Open(**client, "/f");
    ASSERT_TRUE((*writer)->Write("BB").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // Size is the max extent (sizes only grow); content prefix is overwritten.
  auto value = (*client)->GetValue("/f");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->ToString(), "BBAA");
}

TEST(LineScannerTest, CarriesPartialLinesAcrossChunks) {
  // Feed "abc\ndef\ngh" in 4-byte chunks.
  const std::string text = "abc\ndef\ngh";
  std::size_t pos = 0;
  LineScanner scanner([&]() -> Result<Buffer> {
    if (pos >= text.size()) return Buffer{};
    const std::size_t n = std::min<std::size_t>(4, text.size() - pos);
    Buffer chunk(AsBytes(text.substr(pos, n)).data(), n);
    pos += n;
    return chunk;
  });
  std::string line;
  std::vector<std::string> lines;
  while (true) {
    auto more = scanner.NextLine(line);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    lines.push_back(line);
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"abc", "def", "gh"}));
}

TEST(LineScannerTest, EmptyInputAndBlankLines) {
  {
    LineScanner scanner([]() -> Result<Buffer> { return Buffer{}; });
    std::string line;
    auto more = scanner.NextLine(line);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(*more);
  }
  {
    bool served = false;
    LineScanner scanner([&]() -> Result<Buffer> {
      if (served) return Buffer{};
      served = true;
      return Buffer::FromString("\n\nx\n");
    });
    std::string line;
    std::vector<std::string> lines;
    while (true) {
      auto more = scanner.NextLine(line);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      lines.push_back(line);
    }
    EXPECT_EQ(lines, (std::vector<std::string>{"", "", "x"}));
  }
}

}  // namespace
}  // namespace glider::nk
