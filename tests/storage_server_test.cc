// Unit tests of the DRAM storage server: block addressing, bounds, the
// high-water-mark accounting behind the utilization metric, and resets.
#include <gtest/gtest.h>

#include "net/inproc_transport.h"
#include "nodekernel/metadata_server.h"
#include "nodekernel/storage_server.h"

namespace glider::nk {
namespace {

class StorageServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    transport_ = std::make_unique<net::InProcTransport>(2);
    metrics_ = std::make_shared<Metrics>();
    metadata_ = std::make_shared<MetadataServer>(transport_.get(), metrics_);
    auto listener = transport_->Listen("", metadata_);
    ASSERT_TRUE(listener.ok());
    meta_listener_ = std::move(listener).value();

    StorageServer::Options options;
    options.num_blocks = 4;
    options.block_size = 1024;
    server_ = std::make_shared<StorageServer>(options, metrics_);
    ASSERT_TRUE(server_->Start(*transport_, meta_listener_->address()).ok());
    auto conn = transport_->Connect(server_->address(), nullptr);
    ASSERT_TRUE(conn.ok());
    conn_ = std::move(conn).value();
  }

  // The listener holds a shared_ptr to the server; stop explicitly so the
  // server object is actually released at the end of the test.
  void TearDown() override { server_->Stop(); }

  Status Write(std::uint32_t block, std::uint32_t offset,
               std::string_view data) {
    WriteBlockRequest req;
    req.block = block;
    req.offset = offset;
    req.data = Buffer::FromString(data);
    return conn_->CallSync(kWriteBlock, req.Encode()).status();
  }

  Result<std::string> Read(std::uint32_t block, std::uint32_t offset,
                           std::uint32_t length) {
    ReadBlockRequest req;
    req.block = block;
    req.offset = offset;
    req.length = length;
    GLIDER_ASSIGN_OR_RETURN(auto payload,
                            conn_->CallSync(kReadBlock, req.Encode()));
    return payload.ToString();
  }

  std::unique_ptr<net::InProcTransport> transport_;
  std::shared_ptr<Metrics> metrics_;
  std::shared_ptr<MetadataServer> metadata_;
  std::unique_ptr<net::Listener> meta_listener_;
  std::shared_ptr<StorageServer> server_;
  std::shared_ptr<net::Connection> conn_;
};

TEST_F(StorageServerTest, RegistersWithMetadata) {
  EXPECT_GT(server_->server_id(), 0u);
  EXPECT_EQ(metadata_->FreeBlocks(kDefaultClass), 4u);
}

TEST_F(StorageServerTest, WriteReadRoundTrip) {
  ASSERT_TRUE(Write(0, 0, "hello").ok());
  auto read = Read(0, 0, 5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello");
  // Sub-range reads.
  EXPECT_EQ(*Read(0, 1, 3), "ell");
}

TEST_F(StorageServerTest, OffsetWritesExtendHighWaterMark) {
  ASSERT_TRUE(Write(1, 100, "abc").ok());
  EXPECT_EQ(server_->UsedBytes(), 103u);
  EXPECT_EQ(metrics_->StoredBytes(), 103);
  // Overwrite inside the extent does not grow usage.
  ASSERT_TRUE(Write(1, 0, "zz").ok());
  EXPECT_EQ(server_->UsedBytes(), 103u);
}

TEST_F(StorageServerTest, BoundsEnforced) {
  EXPECT_EQ(Write(9, 0, "x").code(), StatusCode::kOutOfRange);     // bad block
  EXPECT_EQ(Write(0, 1022, "xyz").code(), StatusCode::kOutOfRange);  // past end
  ASSERT_TRUE(Write(0, 0, "abc").ok());
  EXPECT_EQ(Read(0, 0, 10).status().code(),
            StatusCode::kOutOfRange);  // read past written extent
  EXPECT_EQ(Read(7, 0, 1).status().code(), StatusCode::kOutOfRange);
}

TEST_F(StorageServerTest, ResetReleasesBytes) {
  ASSERT_TRUE(Write(2, 0, "0123456789").ok());
  EXPECT_EQ(metrics_->StoredBytes(), 10);
  ResetBlockRequest req;
  req.block = 2;
  ASSERT_TRUE(conn_->CallSync(kResetBlock, req.Encode()).ok());
  EXPECT_EQ(metrics_->StoredBytes(), 0);
  EXPECT_EQ(Read(2, 0, 1).status().code(), StatusCode::kOutOfRange);
}

TEST_F(StorageServerTest, ConcurrentDisjointWriters) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 32; ++i) {
        const std::string data(8, static_cast<char>('a' + t));
        ASSERT_TRUE(Write(3, static_cast<std::uint32_t>(t * 256 + i * 8),
                          data)
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server_->UsedBytes(), 4u * 256);
  for (int t = 0; t < 4; ++t) {
    auto read = Read(3, static_cast<std::uint32_t>(t * 256), 256);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, std::string(256, static_cast<char>('a' + t)));
  }
}

}  // namespace
}  // namespace glider::nk
