// Tests of the resource attribution plane (DESIGN.md §12): principal tag
// pack/unpack and propagation, the sharded resource ledger, space-saving
// heavy-hitter sketches (Zipf accuracy, merge associativity, bounded
// memory), histogram exemplars (capture + OpenMetrics exposition + trace
// resolution), empty-histogram exposition regressions, and a two-tenant
// end-to-end over a MiniCluster where the ledger's action-plane charges
// must sum exactly to the per-slot accounting.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/attribution.h"
#include "common/metrics_registry.h"
#include "common/prometheus.h"
#include "common/trace.h"
#include "glider/client/action_node.h"
#include "glider/cluster_monitor.h"
#include "net/rpc_obs.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

using obs::LedgerCell;
using obs::LedgerEntry;
using obs::MetricsRegistry;
using obs::PrincipalFromName;
using obs::PrincipalName;
using obs::ResourceLedger;
using obs::SpaceSavingTopK;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- Principal tag ----------------------------------------------------------

TEST(PrincipalTest, PacksAndUnpacksNames) {
  EXPECT_EQ(PrincipalName(PrincipalFromName("alpha")), "alpha");
  EXPECT_EQ(PrincipalName(PrincipalFromName("a")), "a");
  EXPECT_EQ(PrincipalName(PrincipalFromName("eightchr")), "eightchr");
  // Longer names truncate deterministically.
  EXPECT_EQ(PrincipalFromName("tenant-alpha"), PrincipalFromName("tenant-a"));
  EXPECT_EQ(PrincipalName(PrincipalFromName("tenant-alpha")), "tenant-a");
  // 0 is "unattributed".
  EXPECT_EQ(PrincipalFromName(""), 0u);
  EXPECT_EQ(PrincipalName(0), "-");
  // Distinct short names map to distinct ids.
  EXPECT_NE(PrincipalFromName("alpha"), PrincipalFromName("beta"));
}

TEST(PrincipalTest, StampedIntoFrameEvenWithObservabilityOff) {
  // A client with the obs switch off must still tag its requests: servers
  // whose attribution IS on would otherwise bill its work to "-". This is
  // what makes `glider_load` (no --trace) bill tenants correctly against
  // daemons started with --trace 1.
  obs::SetEnabled(false);
  obs::PrincipalScope scope(PrincipalFromName("alpha"));
  net::Message request;
  request.opcode = 1;
  const net::ClientCallTrace trace =
      net::ClientCallTrace::Begin(request, /*transport_index=*/0);
  EXPECT_FALSE(trace.active);
  EXPECT_EQ(request.principal, PrincipalFromName("alpha"));
  EXPECT_EQ(request.trace_id, 0u);
}

TEST(PrincipalTest, NonPrintableIdsRenderAsHex) {
  // An id that decodes to non-printable bytes renders as p<hex>, never as
  // garbage bytes.
  const obs::PrincipalId weird = 0x01ff02u;
  const std::string name = PrincipalName(weird);
  EXPECT_EQ(name.rfind("p", 0), 0u) << name;
  for (const char c : name) {
    EXPECT_TRUE(c >= 0x20 && c < 0x7f) << static_cast<int>(c);
  }
}

TEST(PrincipalTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(obs::CurrentPrincipal(), 0u);
  {
    obs::PrincipalScope outer(PrincipalFromName("alpha"));
    EXPECT_EQ(obs::CurrentPrincipal(), PrincipalFromName("alpha"));
    {
      obs::PrincipalScope inner(PrincipalFromName("beta"));
      EXPECT_EQ(obs::CurrentPrincipal(), PrincipalFromName("beta"));
    }
    EXPECT_EQ(obs::CurrentPrincipal(), PrincipalFromName("alpha"));
  }
  EXPECT_EQ(obs::CurrentPrincipal(), 0u);
}

// ---- Resource ledger --------------------------------------------------------

TEST(ResourceLedgerTest, ChargesAcrossThreadsAndSnapshotsExactly) {
  auto& ledger = ResourceLedger::Global();
  ledger.Clear();
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const obs::PrincipalId who =
          PrincipalFromName(t % 2 == 0 ? "alpha" : "beta");
      for (int i = 0; i < kChargesPerThread; ++i) {
        LedgerCell cell;
        cell.cpu_us = 2;
        cell.bytes_in = 10;
        cell.invocations = 1;
        ResourceLedger::Global().Charge(who, "op.x", cell);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto entries = ledger.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  std::uint64_t cpu = 0, bytes = 0, calls = 0;
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.op, "op.x");
    cpu += entry.cell.cpu_us;
    bytes += entry.cell.bytes_in;
    calls += entry.cell.invocations;
  }
  // Exact: nothing sampled, nothing lost.
  EXPECT_EQ(calls, static_cast<std::uint64_t>(kThreads * kChargesPerThread));
  EXPECT_EQ(cpu, 2u * kThreads * kChargesPerThread);
  EXPECT_EQ(bytes, 10u * kThreads * kChargesPerThread);
  ledger.Clear();
  EXPECT_TRUE(ledger.Snapshot().empty());
}

LedgerEntry MakeEntry(const std::string& who, const std::string& op,
                      std::uint64_t cpu) {
  LedgerEntry e;
  e.principal = PrincipalFromName(who);
  e.op = op;
  e.cell.cpu_us = cpu;
  e.cell.invocations = 1;
  return e;
}

TEST(ResourceLedgerTest, MergeIsExactAndAssociative) {
  const std::vector<LedgerEntry> a = {MakeEntry("alpha", "op.x", 10),
                                      MakeEntry("beta", "op.x", 5)};
  const std::vector<LedgerEntry> b = {MakeEntry("alpha", "op.x", 7),
                                      MakeEntry("alpha", "op.y", 3)};
  const std::vector<LedgerEntry> c = {MakeEntry("beta", "op.y", 4)};

  const auto ab_c = obs::MergeLedgerEntries(obs::MergeLedgerEntries(a, b), c);
  const auto a_bc = obs::MergeLedgerEntries(a, obs::MergeLedgerEntries(b, c));
  ASSERT_EQ(ab_c.size(), a_bc.size());
  for (std::size_t i = 0; i < ab_c.size(); ++i) {
    EXPECT_EQ(ab_c[i].principal, a_bc[i].principal);
    EXPECT_EQ(ab_c[i].op, a_bc[i].op);
    EXPECT_EQ(ab_c[i].cell.cpu_us, a_bc[i].cell.cpu_us);
    EXPECT_EQ(ab_c[i].cell.invocations, a_bc[i].cell.invocations);
  }
  // Spot-check the sums.
  for (const auto& entry : ab_c) {
    if (entry.principal == PrincipalFromName("alpha") && entry.op == "op.x") {
      EXPECT_EQ(entry.cell.cpu_us, 17u);
      EXPECT_EQ(entry.cell.invocations, 2u);
    }
  }
}

// ---- Space-saving sketch ----------------------------------------------------

// A deterministic Zipf-ish stream: key r (rank 1..kKeys) appears
// floor(kBase / r) times. Keys are offered round-robin (worst case for the
// sketch: every key keeps coming back while heavy keys accumulate).
std::vector<std::pair<std::string, std::uint64_t>> ZipfCounts(int keys,
                                                              int base) {
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  for (int r = 1; r <= keys; ++r) {
    counts.emplace_back("key" + std::to_string(r),
                        static_cast<std::uint64_t>(base / r));
  }
  return counts;
}

void OfferRoundRobin(SpaceSavingTopK& sketch,
                     std::vector<std::pair<std::string, std::uint64_t>> left) {
  bool any = true;
  while (any) {
    any = false;
    for (auto& [key, remaining] : left) {
      if (remaining == 0) continue;
      sketch.Offer(key);
      --remaining;
      any = true;
    }
  }
}

TEST(SpaceSavingTopKTest, ZipfHeavyHittersWithinErrorBound) {
  SpaceSavingTopK sketch(16);
  const auto truth = ZipfCounts(/*keys=*/200, /*base=*/10000);
  std::uint64_t total = 0;
  for (const auto& [key, count] : truth) total += count;
  OfferRoundRobin(sketch, truth);

  EXPECT_EQ(sketch.Total(), total);
  EXPECT_LE(sketch.size(), 16u);

  const auto entries = sketch.Entries();
  std::map<std::string, SpaceSavingTopK::Entry> by_key;
  for (const auto& entry : entries) by_key[entry.key] = entry;

  // Space-saving guarantee: every key with true count > total/capacity is
  // tracked, and its estimate brackets the truth: true <= count <=
  // true + error.
  for (const auto& [key, true_count] : truth) {
    if (true_count <= total / 16) continue;
    ASSERT_TRUE(by_key.count(key)) << key << " (true " << true_count
                                   << ") missing from sketch";
    const auto& entry = by_key[key];
    EXPECT_GE(entry.count, true_count) << key;
    EXPECT_LE(entry.count - entry.error, true_count) << key;
  }
  // The top of the ranking is right: key1 dominates.
  ASSERT_FALSE(entries.empty());
  EXPECT_EQ(entries.front().key, "key1");
}

TEST(SpaceSavingTopKTest, MergeIsAssociativeOnClearMargins) {
  // Three shards over the same heavy keys with clear margins between
  // ranks: union-then-trim merging is order-independent here.
  auto make = [](int base) {
    SpaceSavingTopK sketch(16);
    OfferRoundRobin(sketch, ZipfCounts(/*keys=*/30, base));
    return sketch.Entries();
  };
  const auto a = make(8000);
  const auto b = make(4000);
  const auto c = make(2000);

  const auto ab_c = SpaceSavingTopK::MergeEntries(
      SpaceSavingTopK::MergeEntries(a, b, 16), c, 16);
  const auto a_bc = SpaceSavingTopK::MergeEntries(
      a, SpaceSavingTopK::MergeEntries(b, c, 16), 16);
  ASSERT_EQ(ab_c.size(), a_bc.size());
  for (std::size_t i = 0; i < ab_c.size(); ++i) {
    EXPECT_EQ(ab_c[i].key, a_bc[i].key) << i;
    EXPECT_EQ(ab_c[i].count, a_bc[i].count) << ab_c[i].key;
  }
  // Shared keys sum across shards: key1 saw 8000 + 4000 + 2000.
  EXPECT_EQ(ab_c.front().key, "key1");
  EXPECT_GE(ab_c.front().count, 14000u);
}

TEST(SpaceSavingTopKTest, BoundedMemoryUnderChurn) {
  // 100k distinct keys churn through a 32-entry sketch: size never
  // exceeds capacity, totals stay exact.
  SpaceSavingTopK sketch(32);
  for (int i = 0; i < 100000; ++i) {
    sketch.Offer("churn" + std::to_string(i));
    ASSERT_LE(sketch.size(), 32u);
  }
  EXPECT_EQ(sketch.Total(), 100000u);
  // Every surviving entry's count is bounded by the worst-case inherited
  // minimum; errors never exceed counts.
  for (const auto& entry : sketch.Entries()) {
    EXPECT_LE(entry.error, entry.count);
  }
  sketch.Clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.Total(), 0u);
}

// ---- Histogram exemplars ----------------------------------------------------

TEST(ExemplarTest, CapturedAndExposedAndResolvable) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();

  MetricsRegistry registry;
  auto& hist = registry.GetHistogram("test.lat_us");
  std::uint64_t trace_id = 0;
  {
    obs::Span root = obs::Span::Root("test", "test.request");
    trace_id = obs::CurrentTraceContext().trace_id;
    hist.Record(42);
  }
  ASSERT_NE(trace_id, 0u);

  // The bucket holding 42 retained (trace_id, value).
  const auto snap = hist.Snapshot();
  bool found = false;
  for (std::size_t i = 0; i < snap.exemplar_trace.size(); ++i) {
    if (snap.exemplar_trace[i] == trace_id) {
      EXPECT_EQ(snap.exemplar_value[i], 42u);
      EXPECT_GT(snap.buckets[i], 0u);  // exemplars only in populated buckets
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // OpenMetrics exposition: the bucket line carries the exemplar with the
  // same hex trace id the trace JSON uses, and the body is terminated by
  // the mandatory "# EOF".
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%" PRIx64, trace_id);
  const std::string text = obs::PrometheusText(
      registry, {}, obs::PrometheusFormat::kOpenMetrics);
  EXPECT_TRUE(Contains(text, "# {trace_id=\"" + std::string(hex) + "\"} 42"))
      << text;
  EXPECT_TRUE(text.size() >= 6 && text.compare(text.size() - 6, 6, "# EOF\n") == 0)
      << text;

  // The classic 0.0.4 format must stay exemplar-free — its parser rejects
  // the ` # {...}` suffix, which would fail the entire scrape.
  const std::string classic = obs::PrometheusText(registry);
  EXPECT_FALSE(Contains(classic, "# {trace_id=")) << classic;
  EXPECT_FALSE(Contains(classic, "# EOF"));

  // The exemplar's trace id resolves: the recorder holds its spans.
  bool resolved = false;
  for (const auto& span : obs::TraceRecorder::Global().Snapshot()) {
    if (span.trace_id == trace_id) resolved = true;
  }
  EXPECT_TRUE(resolved);
  obs::SetEnabled(false);
}

TEST(ExemplarTest, MergeKeepsFirstNonEmptyAndDeltaTracksGrowth) {
  obs::SetEnabled(true);
  MetricsRegistry registry;
  auto& a = registry.GetHistogram("test.a");
  auto& b = registry.GetHistogram("test.b");
  std::uint64_t ta = 0, tb = 0;
  {
    obs::Span root = obs::Span::Root("test", "a");
    ta = obs::CurrentTraceContext().trace_id;
    a.Record(5);
  }
  {
    obs::Span root = obs::Span::Root("test", "b");
    tb = obs::CurrentTraceContext().trace_id;
    b.Record(5);
  }
  auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  sa.Merge(sb);
  // Same bucket in both: the first non-empty exemplar wins (stable under
  // server ordering).
  bool saw = false;
  for (std::size_t i = 0; i < sa.exemplar_trace.size(); ++i) {
    if (sa.buckets[i] != 0) {
      EXPECT_EQ(sa.exemplar_trace[i], ta);
      EXPECT_NE(sa.exemplar_trace[i], tb);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
  obs::SetEnabled(false);
}

TEST(ExemplarTest, NoExemplarWithoutActiveTrace) {
  obs::SetEnabled(true);
  MetricsRegistry registry;
  auto& hist = registry.GetHistogram("test.untraced");
  hist.Record(7);  // no Span active: nothing to link to
  const auto snap = hist.Snapshot();
  for (std::size_t i = 0; i < snap.exemplar_trace.size(); ++i) {
    EXPECT_EQ(snap.exemplar_trace[i], 0u);
  }
  EXPECT_FALSE(Contains(
      obs::PrometheusText(registry, {}, obs::PrometheusFormat::kOpenMetrics),
      "# {trace_id="));
  obs::SetEnabled(false);
}

// ---- Empty-histogram regressions (never NaN / garbage) ----------------------

TEST(EmptyHistogramTest, PercentilesAreZeroAndExpositionIsClean) {
  MetricsRegistry registry;
  auto& hist = registry.GetHistogram("test.never_recorded");
  EXPECT_EQ(hist.Percentile(0), 0u);
  EXPECT_EQ(hist.Percentile(50), 0u);
  EXPECT_EQ(hist.Percentile(100), 0u);
  // Out-of-range p clamps instead of reading past the bucket table.
  EXPECT_EQ(hist.Percentile(-5), 0u);
  EXPECT_EQ(hist.Percentile(400), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), 0u);

  const auto snap = hist.Snapshot();
  EXPECT_EQ(snap.Percentile(50), 0u);
  EXPECT_EQ(snap.Percentile(99), 0u);
  EXPECT_EQ(snap.Mean(), 0.0);

  // Neither exposition format leaks NaN or inf for the empty family.
  const std::string json = registry.ToJson();
  EXPECT_FALSE(Contains(json, "nan"));
  EXPECT_FALSE(Contains(json, "inf"));
  const std::string prom = obs::PrometheusText(registry);
  EXPECT_FALSE(Contains(prom, "nan"));
  EXPECT_TRUE(Contains(prom, "glider_test_never_recorded_count 0\n"));
}

// ---- Prometheus HELP metadata (satellite: every family documented) ----------

TEST(PrometheusHelpTest, EveryFamilyGetsHelpBeforeType) {
  MetricsRegistry registry;
  registry.GetCounter("test.requests").Add(1);
  registry.GetGauge("test.depth").Set(2);
  registry.GetHistogram("test.lat_us").Record(3);
  const std::string text = obs::PrometheusText(registry);
  EXPECT_TRUE(Contains(
      text, "# HELP glider_test_requests_total Glider metric "
            "'test.requests'.\n# TYPE glider_test_requests_total counter\n"))
      << text;
  EXPECT_TRUE(Contains(text,
                       "# HELP glider_test_depth Glider metric 'test.depth'."
                       "\n# TYPE glider_test_depth gauge\n"));
  EXPECT_TRUE(Contains(
      text, "# HELP glider_test_lat_us Glider metric 'test.lat_us'.\n"
            "# TYPE glider_test_lat_us histogram\n"));

  // OpenMetrics names counter families without the _total suffix (samples
  // keep it) and terminates the exposition with "# EOF".
  const std::string om =
      obs::PrometheusText(registry, {}, obs::PrometheusFormat::kOpenMetrics);
  EXPECT_TRUE(Contains(om, "# TYPE glider_test_requests counter\n"
                           "glider_test_requests_total 1\n"))
      << om;
  EXPECT_TRUE(om.size() >= 6 && om.compare(om.size() - 6, 6, "# EOF\n") == 0);
}

// ---- Ledger dump wire format ------------------------------------------------

TEST(LedgerDumpTest, EncodeDecodeRoundTripAndMerge) {
  net::LedgerDumpResponse resp;
  resp.entries = {MakeEntry("alpha", "op.x", 10), MakeEntry("beta", "op.y", 5)};
  net::LedgerDumpResponse::Sketch sketch;
  sketch.name = "keys";
  sketch.total = 15;
  SpaceSavingTopK::Entry e;
  e.key = "/hot/path";
  e.count = 15;
  e.error = 0;
  sketch.entries.push_back(e);
  resp.sketches.push_back(sketch);

  const Buffer wire = resp.Encode();
  auto decoded = net::LedgerDumpResponse::Decode(wire.span());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].principal, PrincipalFromName("alpha"));
  EXPECT_EQ(decoded->entries[0].op, "op.x");
  EXPECT_EQ(decoded->entries[0].cell.cpu_us, 10u);
  ASSERT_EQ(decoded->sketches.size(), 1u);
  EXPECT_EQ(decoded->sketches[0].name, "keys");
  EXPECT_EQ(decoded->sketches[0].total, 15u);
  ASSERT_EQ(decoded->sketches[0].entries.size(), 1u);
  EXPECT_EQ(decoded->sketches[0].entries[0].key, "/hot/path");

  // Merging two decoded dumps sums cells and sketch totals. (Merged
  // entries come back sorted by packed (principal, op) key, not insertion
  // order, so look the cells up by principal.)
  net::LedgerDumpResponse merged = *decoded;
  merged.Merge(*decoded);
  ASSERT_EQ(merged.entries.size(), 2u);
  for (const auto& entry : merged.entries) {
    if (entry.principal == PrincipalFromName("alpha")) {
      EXPECT_EQ(entry.cell.cpu_us, 20u);
    } else {
      EXPECT_EQ(entry.principal, PrincipalFromName("beta"));
      EXPECT_EQ(entry.cell.cpu_us, 10u);
    }
  }
  EXPECT_EQ(merged.sketches[0].total, 30u);
  EXPECT_EQ(merged.sketches[0].entries[0].count, 30u);

  // Truncated payloads fail cleanly instead of reading out of bounds.
  Buffer truncated;
  truncated.Resize(3);
  EXPECT_FALSE(net::LedgerDumpResponse::Decode(truncated.span()).ok());
}

// ---- Two-tenant end-to-end --------------------------------------------------

TEST(AttributionE2ETest, TwoTenantsBillSeparatelyAndSumToSlotAccounting) {
  workloads::RegisterWorkloadActions();
  obs::SetEnabled(true);
  ResourceLedger::Global().Clear();
  obs::KeySketch().Clear();
  obs::MethodSketch().Clear();
  obs::PrincipalSketch().Clear();
  MetricsRegistry::Global().ResetAll();

  testing::ClusterOptions options;
  options.use_tcp = true;  // principals must survive real frame encoding
  options.data_servers = 1;
  options.active_servers = 1;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Two tenants, each writing a merge workload through its own action and
  // reading the result back (the read forces onWrite completion).
  auto run_tenant = [&](const std::string& who, const std::string& path) {
    obs::PrincipalScope scope(PrincipalFromName(who));
    auto client = (*cluster)->NewFaasClient();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto node = core::ActionNode::Create(**client, path, "glider.merge");
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    auto writer = node->OpenWriter();
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    std::string batch;
    for (int i = 0; i < 2000; ++i) {
      batch += std::to_string(i % 97) + "," + std::to_string(i) + "\n";
    }
    ASSERT_TRUE((*writer)->Write(batch).ok());
    ASSERT_TRUE((*writer)->Close().ok());
    auto reader = node->OpenReader();
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk->empty()) break;
    }
    ASSERT_TRUE((*reader)->Close().ok());
  };
  run_tenant("alpha", "/attr-alpha");
  run_tenant("beta", "/attr-beta");

  // --- Per-principal ledger content (MiniCluster shares one process-global
  // ledger, so the local snapshot is the cluster truth).
  const auto entries = ResourceLedger::Global().Snapshot();
  std::map<obs::PrincipalId, LedgerCell> per_principal;
  LedgerCell action_total;  // all "action.*" ops across principals
  std::uint64_t action_queue_us = 0;
  std::uint64_t stream_bytes_in = 0;
  for (const auto& entry : entries) {
    per_principal[entry.principal].Merge(entry.cell);
    if (entry.op.rfind("action.", 0) == 0) {
      action_total.Merge(entry.cell);
      action_queue_us += entry.cell.queue_us;
    }
    if (entry.op == "stream.channel") stream_bytes_in += entry.cell.bytes_in;
  }
  const obs::PrincipalId alpha = PrincipalFromName("alpha");
  const obs::PrincipalId beta = PrincipalFromName("beta");
  ASSERT_TRUE(per_principal.count(alpha));
  ASSERT_TRUE(per_principal.count(beta));
  for (const obs::PrincipalId who : {alpha, beta}) {
    EXPECT_GT(per_principal[who].invocations, 0u) << PrincipalName(who);
    EXPECT_GT(per_principal[who].bytes_in, 0u) << PrincipalName(who);
    EXPECT_GT(per_principal[who].cpu_us, 0u) << PrincipalName(who);
  }

  // --- The acceptance sum: the ledger's action-plane CPU equals the
  // per-slot accounting exactly (both sides add the same ThreadCpuMicros
  // delta), and its queue time equals the queue histograms' sums.
  const auto metrics = MetricsRegistry::Global().Snapshot();
  std::uint64_t slot_cpu_us = 0, slot_bytes_in = 0, slot_bytes_out = 0;
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("active.slot", 0) != 0) continue;
    if (name.size() >= 7 && name.compare(name.size() - 7, 7, ".cpu_us") == 0) {
      slot_cpu_us += value;
    }
    if (name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".bytes_in") == 0) {
      slot_bytes_in += value;
    }
    if (name.size() >= 10 &&
        name.compare(name.size() - 10, 10, ".bytes_out") == 0) {
      slot_bytes_out += value;
    }
  }
  EXPECT_EQ(action_total.cpu_us, slot_cpu_us);
  std::uint64_t queue_hist_sum = 0;
  for (const auto& [name, hist] : metrics.histograms) {
    if (name.rfind("action.", 0) == 0 &&
        name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".queue_us") == 0) {
      queue_hist_sum += hist.sum;
    }
  }
  EXPECT_EQ(action_queue_us, queue_hist_sum);
  // Stream-channel push bytes billed to tenants match the slots' stream
  // bytes exactly: write-side pushes are the slots' bytes_in, and the
  // action's onRead pushes equal the slots' delivered bytes_out (the test
  // drains every read stream).
  EXPECT_EQ(stream_bytes_in, slot_bytes_in + slot_bytes_out);

  // --- The wire: one kLedgerDump against the metadata address returns
  // exactly the process-global snapshot (same process, mgmt opcodes are
  // never charged, so nothing moves between dump and local snapshot).
  {
    auto conn = (*cluster)->transport().Connect((*cluster)->metadata_address(),
                                                nullptr);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    auto raw = (*conn)->CallSync(net::kLedgerDump, Buffer{});
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    auto dump =
        net::LedgerDumpResponse::Decode(ByteSpan(raw->data(), raw->size()));
    ASSERT_TRUE(dump.ok()) << dump.status().ToString();
    const auto local = ResourceLedger::Global().Snapshot();
    ASSERT_EQ(dump->entries.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      EXPECT_EQ(dump->entries[i].principal, local[i].principal);
      EXPECT_EQ(dump->entries[i].op, local[i].op);
      EXPECT_EQ(dump->entries[i].cell.cpu_us, local[i].cell.cpu_us);
      EXPECT_EQ(dump->entries[i].cell.bytes_in, local[i].cell.bytes_in);
      EXPECT_EQ(dump->entries[i].cell.invocations,
                local[i].cell.invocations);
    }
    // The dump carries all three sketches; methods saw the action methods
    // and principals saw both tenants.
    ASSERT_EQ(dump->sketches.size(), 3u);
    std::set<std::string> names;
    for (const auto& sketch : dump->sketches) names.insert(sketch.name);
    EXPECT_TRUE(names.count("keys"));
    EXPECT_TRUE(names.count("methods"));
    EXPECT_TRUE(names.count("principals"));
    for (const auto& sketch : dump->sketches) {
      if (sketch.name != "principals") continue;
      std::set<std::string> seen;
      for (const auto& entry : sketch.entries) seen.insert(entry.key);
      EXPECT_TRUE(seen.count("alpha")) << "principals sketch missing alpha";
      EXPECT_TRUE(seen.count("beta")) << "principals sketch missing beta";
    }
  }

  // --- The cluster poll path works end to end (MiniCluster's servers share
  // one ledger, so the merged totals are multiples of the local ones; we
  // assert reachability and presence, not exact sums, here).
  ClusterMonitor monitor(&(*cluster)->transport(),
                         (*cluster)->metadata_address());
  auto polled = monitor.PollLedgers();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  std::set<obs::PrincipalId> polled_principals;
  for (const auto& entry : polled->entries) {
    polled_principals.insert(entry.principal);
  }
  EXPECT_TRUE(polled_principals.count(alpha));
  EXPECT_TRUE(polled_principals.count(beta));

  cluster->reset();
  ResourceLedger::Global().Clear();
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace glider
