// End-to-end tests of the NodeKernel store: namespace operations, file
// streaming across block boundaries, KV/Table/Bag semantics, on both the
// in-process and the TCP transport.
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "testing/cluster.h"

namespace glider {
namespace {

using testing::ClusterOptions;
using testing::MiniCluster;

class StoreIntegrationTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.use_tcp = GetParam();
    options.data_servers = 2;
    options.blocks_per_server = 64;
    options.block_size = 64 * 1024;  // small blocks force chaining
    options.chunk_size = 24 * 1024;  // chunks not aligned to block size
    auto cluster = MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(client).value();
  }

  std::unique_ptr<MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

TEST_P(StoreIntegrationTest, CreateLookupDelete) {
  auto created = client_->CreateNode("/a", nk::NodeType::kFile);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->type, nk::NodeType::kFile);

  auto found = client_->Lookup("/a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->id, created->id);

  auto removed = client_->Delete("/a");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(client_->Lookup("/a").status().code(), StatusCode::kNotFound);
}

TEST_P(StoreIntegrationTest, WriteReadRoundTripAcrossBlocks) {
  ASSERT_TRUE(client_->CreateNode("/f", nk::NodeType::kFile).ok());

  // 300 KiB of deterministic bytes: spans ~5 blocks of 64 KiB.
  std::vector<std::uint8_t> data(300 * 1024);
  SplitMix64 rng(42);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());

  {
    auto writer = nk::FileWriter::Open(*client_, "/f");
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    // Write in awkward sizes to exercise chunking.
    std::size_t off = 0;
    std::size_t step = 1;
    while (off < data.size()) {
      const std::size_t n = std::min(step, data.size() - off);
      ASSERT_TRUE((*writer)->Write(ByteSpan(data.data() + off, n)).ok());
      off += n;
      step = step * 7 % 40000 + 1;
    }
    ASSERT_TRUE((*writer)->Close().ok());
  }

  auto info = client_->Lookup("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, data.size());

  auto reader = nk::FileReader::Open(*client_, "/f");
  ASSERT_TRUE(reader.ok());
  std::vector<std::uint8_t> read_back(data.size());
  auto n = (*reader)->Read(MutableByteSpan(read_back));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(read_back, data);

  // EOF afterwards.
  std::uint8_t one;
  auto eof = (*reader)->Read(MutableByteSpan(&one, 1));
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);
}

TEST_P(StoreIntegrationTest, KeyValueRoundTrip) {
  const std::string value = "hello ephemeral world";
  ASSERT_TRUE(client_->PutValue("/kv", AsBytes(value)).ok());
  auto got = client_->GetValue("/kv");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), value);
}

TEST_P(StoreIntegrationTest, ContainerTypingRules) {
  ASSERT_TRUE(client_->CreateNode("/t", nk::NodeType::kTable).ok());
  // Tables hold only KeyValue nodes.
  EXPECT_EQ(client_->CreateNode("/t/f", nk::NodeType::kFile).status().code(),
            StatusCode::kWrongNodeType);
  EXPECT_TRUE(client_->CreateNode("/t/kv", nk::NodeType::kKeyValue).ok());

  ASSERT_TRUE(client_->CreateNode("/b", nk::NodeType::kBag).ok());
  EXPECT_EQ(
      client_->CreateNode("/b/kv", nk::NodeType::kKeyValue).status().code(),
      StatusCode::kWrongNodeType);
  EXPECT_TRUE(client_->CreateNode("/b/f", nk::NodeType::kFile).ok());

  // Files cannot hold children.
  EXPECT_EQ(client_->CreateNode("/b/f/x", nk::NodeType::kFile).status().code(),
            StatusCode::kWrongNodeType);

  // Non-empty containers cannot be removed.
  EXPECT_EQ(client_->Delete("/t").status().code(),
            StatusCode::kFailedPrecondition);

  auto listing = client_->List("/t");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->entries.size(), 1u);
  EXPECT_EQ(listing->entries[0].name, "kv");
}

TEST_P(StoreIntegrationTest, DeleteFreesBlocksAndStorage) {
  ASSERT_TRUE(client_->CreateNode("/big", nk::NodeType::kFile).ok());
  {
    auto writer = nk::FileWriter::Open(*client_, "/big");
    ASSERT_TRUE(writer.ok());
    std::vector<std::uint8_t> chunk(128 * 1024, 0xAB);
    ASSERT_TRUE((*writer)->Write(ByteSpan(chunk)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  EXPECT_GE(cluster_->metrics()->StoredBytes(), 128 * 1024);
  const auto free_before = cluster_->metadata().FreeBlocks(nk::kDefaultClass);
  ASSERT_TRUE(client_->Delete("/big").ok());
  EXPECT_GT(cluster_->metadata().FreeBlocks(nk::kDefaultClass), free_before);
  EXPECT_EQ(cluster_->metrics()->StoredBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Transports, StoreIntegrationTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Tcp" : "InProc";
                         });

}  // namespace
}  // namespace glider
