// Tests of the continuous profiling plane (DESIGN.md "Continuous
// profiling"): attribution tag scopes, wait-sample folding, the collapsed
// stack export, the kProfileDump RPC protocol, end-to-end per-action
// attribution over a MiniCluster, and the slot-stall watchdog.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <string>

#include "common/metrics_registry.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "glider/client/action_node.h"
#include "net/rpc_obs.h"
#include "testing/cluster.h"

namespace glider {
namespace {

using core::Action;
using core::ActionContext;
using core::ActionNode;
using core::ActionOutputStream;
using obs::ProfileTagScope;
using obs::SamplingProfiler;
using testing::ClusterOptions;
using testing::MiniCluster;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Burns CPU until `ms` of wall time elapsed — work the SIGPROF sampler
// (which counts process CPU time) can see.
std::uint64_t SpinFor(std::chrono::milliseconds ms) {
  const auto until = std::chrono::steady_clock::now() + ms;
  std::uint64_t acc = 1469598103934665603ull;
  while (std::chrono::steady_clock::now() < until) {
    for (std::uint64_t i = 0; i < 4096; ++i) acc = (acc ^ i) * 1099511628211ull;
  }
  return acc;
}

// Per-tag total over a folded dump: "tag;frame;... N" summed by tag (lines
// without a ';' are whole-line tags, which the exporter never emits).
std::map<std::string, std::uint64_t> WeightByTag(const std::string& folded) {
  std::map<std::string, std::uint64_t> weights;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    const std::string line =
        folded.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? folded.size() : eol + 1;
    const std::size_t space = line.rfind(' ');
    const std::size_t semi = line.find(';');
    if (space == std::string::npos || semi == std::string::npos) continue;
    weights[line.substr(0, semi)] +=
        std::stoull(line.substr(space + 1));
  }
  return weights;
}

// ---- Tag scopes -------------------------------------------------------------

TEST(ProfileTagScopeTest, InstallsRestoresAndTruncates) {
  auto& profiler = SamplingProfiler::Global();
  ASSERT_TRUE(profiler.Start({}).ok());

  EXPECT_STREQ(obs::CurrentProfileTag(), "");
  {
    ProfileTagScope outer("rpc.Get");
    EXPECT_STREQ(obs::CurrentProfileTag(), "rpc.Get");
    {
      ProfileTagScope inner("slot1:merge.onWrite");
      EXPECT_STREQ(obs::CurrentProfileTag(), "slot1:merge.onWrite");
    }
    EXPECT_STREQ(obs::CurrentProfileTag(), "rpc.Get");
    {
      ProfileTagScope noop(nullptr);  // null tag: keep the current one
      EXPECT_STREQ(obs::CurrentProfileTag(), "rpc.Get");
    }
  }
  EXPECT_STREQ(obs::CurrentProfileTag(), "");

  {
    const std::string long_tag(200, 'x');
    ProfileTagScope scope(long_tag.c_str());
    EXPECT_EQ(std::strlen(obs::CurrentProfileTag()),
              obs::ProfileSample::kMaxTag - 1);
  }
  EXPECT_STREQ(obs::CurrentProfileTag(), "");

  profiler.Stop();
  // Inactive profiler: scopes cost nothing and install nothing.
  ProfileTagScope idle("ignored");
  EXPECT_STREQ(obs::CurrentProfileTag(), "");
}

// ---- Lifecycle --------------------------------------------------------------

TEST(SamplingProfilerTest, StartValidatesAndRejectsDoubleStart) {
  auto& profiler = SamplingProfiler::Global();
  SamplingProfiler::Options bad;
  bad.hz = 0;
  EXPECT_EQ(profiler.Start(bad).code(), StatusCode::kInvalidArgument);
  bad.hz = 100000;
  EXPECT_EQ(profiler.Start(bad).code(), StatusCode::kInvalidArgument);
  bad = {};
  bad.ring_capacity = 0;
  EXPECT_EQ(profiler.Start(bad).code(), StatusCode::kInvalidArgument);

  SamplingProfiler::Options options;
  options.hz = 251;
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(SamplingProfiler::ActiveFast());
  EXPECT_EQ(profiler.hz(), 251);
  EXPECT_EQ(profiler.Start(options).code(), StatusCode::kAlreadyExists);
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(SamplingProfiler::ActiveFast());
  profiler.Stop();  // idempotent
}

// ---- Wait samples -----------------------------------------------------------

TEST(SamplingProfilerTest, WaitSamplesFoldAtTheSamplingRate) {
  auto& profiler = SamplingProfiler::Global();
  SamplingProfiler::Options options;
  options.hz = 100;
  ASSERT_TRUE(profiler.Start(options).ok());
  {
    ProfileTagScope tag("slot0:merge.onWrite");
    // 250 ms of blocked time at 100 Hz folds to 25 synthetic samples.
    profiler.AddWaitSample("channel.pop", 250'000);
  }
  profiler.AddWaitSample("action.queue", 40'000);  // untagged: 4 samples
  profiler.AddWaitSample(nullptr, 1000);           // ignored
  profiler.AddWaitSample("zero", 0);               // ignored
  profiler.Stop();

  const std::string folded = profiler.CollectFolded(/*clear=*/true);
  EXPECT_TRUE(
      Contains(folded, "slot0:merge.onWrite;[wait];channel.pop 25\n"));
  EXPECT_TRUE(Contains(folded, "untagged;[wait];action.queue 4\n"));
  EXPECT_FALSE(Contains(folded, "zero"));
  // clear=true reset the window.
  EXPECT_FALSE(Contains(profiler.CollectFolded(), "[wait]"));
}

// ---- CPU sampling -----------------------------------------------------------

TEST(SamplingProfilerTest, CapturesSpinSamplesUnderTheTag) {
  if (!SamplingProfiler::SignalSamplingSupported()) {
    GTEST_SKIP() << "SIGPROF sampling unavailable (sanitizer build)";
  }
  auto& profiler = SamplingProfiler::Global();
  SamplingProfiler::Options options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options).ok());
  {
    ProfileTagScope tag("spin.test");
    SpinFor(std::chrono::milliseconds(300));
  }
  profiler.Stop();
  EXPECT_GT(profiler.SampleCount(), 20u);
  const std::string folded = profiler.CollectFolded(/*clear=*/true);
  const auto weights = WeightByTag(folded);
  const auto it = weights.find("spin.test");
  ASSERT_NE(it, weights.end()) << folded;
  EXPECT_GT(it->second, 10u);
}

// ---- kProfileDump RPC protocol ---------------------------------------------

Buffer CmdPayload(net::ProfileCmd cmd) {
  Buffer payload;
  payload.Resize(1);
  payload.mutable_span()[0] = static_cast<std::uint8_t>(cmd);
  return payload;
}

Buffer StartPayload(std::uint32_t hz) {
  Buffer payload;
  payload.Resize(5);
  payload.mutable_span()[0] =
      static_cast<std::uint8_t>(net::ProfileCmd::kStart);
  std::memcpy(payload.mutable_span().data() + 1, &hz, sizeof(hz));
  return payload;
}

TEST(ProfileDumpRpcTest, StartDumpStopAgainstMiniCluster) {
  ClusterOptions options;
  auto cluster = MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto conn = (*cluster)->transport().Connect(
      (*cluster)->metadata_address(), nullptr);
  ASSERT_TRUE(conn.ok());

  auto started = (*conn)->CallSync(net::kProfileDump, StartPayload(151));
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  ASSERT_GE(started->size(), 1u);
  EXPECT_EQ(started->data()[0], 1);  // started by this call
  EXPECT_TRUE(SamplingProfiler::Global().running());
  EXPECT_EQ(SamplingProfiler::Global().hz(), 151);

  // A second start reports "already running" instead of failing, so a CLI
  // session never tears down another operator's window.
  auto again = (*conn)->CallSync(net::kProfileDump, StartPayload(99));
  ASSERT_TRUE(again.ok());
  ASSERT_GE(again->size(), 1u);
  EXPECT_EQ(again->data()[0], 0);
  EXPECT_EQ(SamplingProfiler::Global().hz(), 151);  // unchanged

  {
    ProfileTagScope tag("rpc.test");
    SamplingProfiler::Global().AddWaitSample("queue", 1'000'000);
  }

  // Empty payload is a plain dump; the window survives it.
  auto dump = (*conn)->CallSync(net::kProfileDump, Buffer());
  ASSERT_TRUE(dump.ok());
  const std::string folded(reinterpret_cast<const char*>(dump->data()),
                           dump->size());
  EXPECT_TRUE(Contains(folded, "rpc.test;[wait];queue"));

  auto stopped =
      (*conn)->CallSync(net::kProfileDump, CmdPayload(net::ProfileCmd::kStop));
  ASSERT_TRUE(stopped.ok());
  EXPECT_FALSE(SamplingProfiler::Global().running());

  // Dump-and-clear drains the window.
  auto cleared = (*conn)->CallSync(net::kProfileDump,
                                   CmdPayload(net::ProfileCmd::kDumpClear));
  ASSERT_TRUE(cleared.ok());
  auto empty = (*conn)->CallSync(net::kProfileDump,
                                 CmdPayload(net::ProfileCmd::kDump));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
}

// ---- End-to-end per-action attribution --------------------------------------

// A spin-heavy action: onRead burns CPU, then answers. With the profiler
// on, its slot tag must dominate the folded stacks (the acceptance check).
class SpinAction : public Action {
 public:
  void onRead(ActionOutputStream& out, ActionContext&) override {
    const std::uint64_t acc = SpinFor(std::chrono::milliseconds(400));
    (void)out.Write("spun:" + std::to_string(acc % 10));
  }
};
GLIDER_REGISTER_ACTION("test.spin", SpinAction);

std::string ReadAll(ActionNode& node) {
  auto reader = node.OpenReader();
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  if (!reader.ok()) return {};
  std::string out;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    EXPECT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (!chunk.ok() || chunk->empty()) break;
    out += chunk->ToString();
  }
  EXPECT_TRUE((*reader)->Close().ok());
  return out;
}

TEST(ProfilerClusterTest, SpinActionSlotDominatesFoldedStacks) {
  if (!SamplingProfiler::SignalSamplingSupported()) {
    GTEST_SKIP() << "SIGPROF sampling unavailable (sanitizer build)";
  }
  ClusterOptions options;
  options.profile_hz = 997;
  options.slots_per_server = 4;
  auto cluster = MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  auto node = ActionNode::Create(**client, "/spin", "test.spin");
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ(ReadAll(*node).rfind("spun:", 0), 0u);

  const std::string folded =
      SamplingProfiler::Global().CollectFolded(/*clear=*/true);
  const auto weights = WeightByTag(folded);
  ASSERT_FALSE(weights.empty()) << folded;
  std::string dominant;
  std::uint64_t best = 0;
  for (const auto& [tag, weight] : weights) {
    if (weight > best) {
      best = weight;
      dominant = tag;
    }
  }
  // The 400 ms spin at ~1 kHz dwarfs everything else in the process: the
  // heaviest tag is the spin action's slot.
  EXPECT_EQ(dominant.rfind("slot", 0), 0u) << folded;
  EXPECT_TRUE(Contains(dominant, "test.spin.onRead")) << folded;
}

// ---- Slot-stall watchdog ----------------------------------------------------

// Burns CPU without ever touching its streams — with interleaving this
// would starve the slot's other methods, which is what the watchdog flags.
class NonYieldingAction : public Action {
 public:
  void onRead(ActionOutputStream& out, ActionContext&) override {
    SpinFor(std::chrono::milliseconds(250));
    (void)out.Write("done");
  }
};
GLIDER_REGISTER_ACTION("test.nonyielding", NonYieldingAction);

TEST(StallWatchdogTest, NonYieldingMethodTripsWatchdog) {
  auto& stalls = obs::MetricsRegistry::Global().GetCounter("active.stalls");
  const std::uint64_t stalls_before = stalls.value();
  obs::SlowTraceStore::Global().Clear();

  ClusterOptions options;
  options.slots_per_server = 2;
  // 2 x 10 ms quantum = 20 ms of CPU without a channel touch trips it; the
  // 250 ms spin exceeds that many times over.
  options.interleave_quantum = std::chrono::milliseconds(10);
  options.stall_multiple = 2.0;
  options.watchdog_interval = std::chrono::milliseconds(5);
  auto cluster = MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  auto node = ActionNode::Create(**client, "/stall", "test.nonyielding");
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ(ReadAll(*node), "done");

  EXPECT_GT(stalls.value(), stalls_before);

  // The watchdog also files a slow-trace entry naming slot and method.
  bool saw_stall_trace = false;
  for (const auto& trace : obs::SlowTraceStore::Global().Snapshot()) {
    if (trace.root.name.rfind("stall.slot", 0) == 0 &&
        Contains(trace.root.name, "onRead")) {
      saw_stall_trace = true;
    }
  }
  EXPECT_TRUE(saw_stall_trace);
  obs::SlowTraceStore::Global().Clear();
}

// A well-behaved action under the same aggressive thresholds: frequent
// stream writes count as progress, so the watchdog must stay quiet.
class YieldingAction : public Action {
 public:
  void onRead(ActionOutputStream& out, ActionContext&) override {
    for (int i = 0; i < 20; ++i) {
      SpinFor(std::chrono::milliseconds(2));
      if (!out.Write("tick\n").ok()) return;
    }
  }
};
GLIDER_REGISTER_ACTION("test.yielding", YieldingAction);

TEST(StallWatchdogTest, ProgressingMethodIsNotFlagged) {
  auto& stalls = obs::MetricsRegistry::Global().GetCounter("active.stalls");
  const std::uint64_t stalls_before = stalls.value();

  ClusterOptions options;
  options.slots_per_server = 2;
  options.interleave_quantum = std::chrono::milliseconds(10);
  options.stall_multiple = 2.0;
  options.watchdog_interval = std::chrono::milliseconds(5);
  auto cluster = MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  auto node = ActionNode::Create(**client, "/yield", "test.yielding");
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ(ReadAll(*node).size(), 20u * 5u);

  EXPECT_EQ(stalls.value(), stalls_before);
}

}  // namespace
}  // namespace glider
