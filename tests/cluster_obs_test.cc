// Tests of the cluster observability plane (DESIGN.md "Cluster
// observability"): Prometheus text exposition conformance, time-series ring
// wraparound and rate computation, the MetricsRegistry::ResetAll() vs
// concurrent-sampler regression, slow-trace retention (bounds + adaptive
// threshold), the /metrics HTTP responder, and an end-to-end ClusterMonitor
// merge over a MiniCluster.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/prometheus.h"
#include "common/time_series.h"
#include "common/trace.h"
#include "glider/cluster_monitor.h"
#include "net/http_metrics.h"
#include "nodekernel/client/store_client.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::SlowTraceStore;
using obs::SpanRecord;
using obs::TimeSeries;
using obs::TimeSeriesSampler;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- Prometheus exposition --------------------------------------------------

TEST(PrometheusTest, SanitizeNames) {
  EXPECT_EQ(obs::PrometheusSanitize("rpc.latency.Get"), "rpc_latency_Get");
  EXPECT_EQ(obs::PrometheusSanitize("already_fine"), "already_fine");
  EXPECT_EQ(obs::PrometheusSanitize("weird-chars!here"), "weird_chars_here");
  // Leading digits and empty names are not valid metric names.
  EXPECT_EQ(obs::PrometheusSanitize("1abc"), "_1abc");
  EXPECT_EQ(obs::PrometheusSanitize(""), "_");
}

TEST(PrometheusTest, CounterAndGaugeExposition) {
  MetricsRegistry registry;
  registry.GetCounter("test.requests").Add(7);
  registry.GetGauge("test.depth").Set(-3);

  const std::string text = obs::PrometheusText(registry);
  EXPECT_TRUE(Contains(text, "# TYPE glider_test_requests_total counter\n"));
  EXPECT_TRUE(Contains(text, "glider_test_requests_total 7\n"));
  EXPECT_TRUE(Contains(text, "# TYPE glider_test_depth gauge\n"));
  EXPECT_TRUE(Contains(text, "glider_test_depth -3\n"));
  // The format requires a trailing newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusTest, HistogramExpositionIsCumulative) {
  MetricsRegistry registry;
  auto& hist = registry.GetHistogram("test.lat_us");
  hist.Record(1);   // bucket le="1"
  hist.Record(1);
  hist.Record(10);  // bucket le="15"

  const std::string text = obs::PrometheusText(registry);
  EXPECT_TRUE(Contains(text, "# TYPE glider_test_lat_us histogram\n"));
  // Cumulative counts: 2 at le=1, 3 by le=15 and at +Inf.
  EXPECT_TRUE(Contains(text, "glider_test_lat_us_bucket{le=\"1\"} 2\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_us_bucket{le=\"15\"} 3\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_us_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_us_sum 12\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_us_count 3\n"));
  // Empty buckets are elided: nothing between le=1 and le=15.
  EXPECT_FALSE(Contains(text, "le=\"3\""));
  EXPECT_FALSE(Contains(text, "le=\"7\""));
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("line\nbreak"), "line\\nbreak");

  MetricsRegistry registry;
  registry.GetCounter("test.ops").Add(1);
  registry.GetGauge("test.depth").Set(2);
  registry.GetHistogram("test.lat").Record(1);
  const std::string text = obs::PrometheusText(
      registry, {{"role", "active"}, {"note", "a\"b\\c\nd"}});
  const std::string block = "{role=\"active\",note=\"a\\\"b\\\\c\\nd\"}";
  EXPECT_TRUE(Contains(text, "glider_test_ops_total" + block + " 1\n"));
  EXPECT_TRUE(Contains(text, "glider_test_depth" + block + " 2\n"));
  // Histogram series carry the labels too; le is appended last so the
  // shared label prefix stays byte-identical across the family.
  EXPECT_TRUE(Contains(text, "glider_test_lat_bucket{role=\"active\",note="
                             "\"a\\\"b\\\\c\\nd\",le=\"1\"} 1\n"));
  EXPECT_TRUE(Contains(text, ",le=\"+Inf\"} 1\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_sum" + block + " 1\n"));
  EXPECT_TRUE(Contains(text, "glider_test_lat_count" + block + " 1\n"));
  // TYPE comments name the bare metric, never a labeled series.
  EXPECT_TRUE(Contains(text, "# TYPE glider_test_ops_total counter\n"));
}

TEST(PrometheusTest, HistogramInfStaysConsistentWithBuckets) {
  // An event beyond the last finite bound lands in the overflow bucket: it
  // appears only in the +Inf series, which must still equal _count.
  MetricsRegistry registry;
  auto& hist = registry.GetHistogram("test.big");
  hist.Record(std::uint64_t{1} << 63);
  hist.Record(1);
  std::string text = obs::PrometheusText(registry);
  EXPECT_TRUE(Contains(text, "glider_test_big_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(Contains(text, "glider_test_big_bucket{le=\"+Inf\"} 2\n"));
  EXPECT_TRUE(Contains(text, "glider_test_big_count 2\n"));

  // A snapshot torn across relaxed loads (buckets incremented, count not
  // yet) must still satisfy +Inf == _count >= every finite le bucket.
  obs::MetricsSnapshot snapshot;
  obs::HistogramSnapshot torn;
  torn.buckets[1] = 3;  // three events visible in the le="1" bucket...
  torn.count = 1;       // ...but the count load saw only one
  torn.sum = 3;
  snapshot.histograms = {{"torn", torn}};
  text = obs::PrometheusText(snapshot);
  EXPECT_TRUE(Contains(text, "glider_torn_bucket{le=\"1\"} 3\n"));
  EXPECT_TRUE(Contains(text, "glider_torn_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(Contains(text, "glider_torn_count 3\n"));
}

// ---- TimeSeries ring --------------------------------------------------------

TEST(TimeSeriesTest, RingWrapsAroundKeepingNewest) {
  TimeSeries ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ring.Push({i * 100, static_cast<double>(i)});
  }
  EXPECT_EQ(ring.size(), 4u);
  const auto samples = ring.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest -> newest, the two earliest pushes evicted.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].value, static_cast<double>(i + 3));
    EXPECT_EQ(samples[i].t_us, (i + 3) * 100);
  }
}

// ---- TimeSeriesSampler ------------------------------------------------------

TEST(TimeSeriesSamplerTest, CounterRatesAndWindowedPercentiles) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(registry);
  auto& counter = registry.GetCounter("ops");
  auto& gauge = registry.GetGauge("depth");
  auto& hist = registry.GetHistogram("lat_us");

  counter.Add(10);
  gauge.Set(5);
  hist.Record(100);
  sampler.SampleOnce(1'000'000);  // baseline only: no points yet
  for (const auto& series : sampler.Snapshot()) {
    EXPECT_TRUE(series.samples.empty()) << series.name;
  }

  counter.Add(50);          // +50 over 2 seconds -> 25/s
  gauge.Set(9);
  for (int i = 0; i < 10; ++i) hist.Record(40);  // window: 10 records at 40
  sampler.SampleOnce(3'000'000);

  double rate = -1, depth = -1, p50 = -1, hist_rate = -1;
  for (const auto& series : sampler.Snapshot()) {
    ASSERT_EQ(series.samples.size(), 1u) << series.name;
    const double v = series.samples.back().value;
    if (series.name == "ops.rate") rate = v;
    if (series.name == "depth") depth = v;
    if (series.name == "lat_us.p50") p50 = v;
    if (series.name == "lat_us.rate") hist_rate = v;
  }
  EXPECT_NEAR(rate, 25.0, 0.01);
  EXPECT_EQ(depth, 9.0);
  EXPECT_NEAR(hist_rate, 5.0, 0.01);
  // The windowed p50 reflects only the 40s recorded inside the window, not
  // the 100 from before the baseline: 40 lands in bucket [32, 63].
  EXPECT_GE(p50, 40.0);
  EXPECT_LE(p50, 63.0);
}

// Regression test: benches call ResetAll() while the sampler thread reads.
// The sampler must rebaseline on a generation change — never emit a rate
// point computed across the reset (which would underflow to garbage).
TEST(TimeSeriesSamplerTest, ResetAllRebaselinesInsteadOfBogusRates) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(registry);
  auto& counter = registry.GetCounter("ops");

  counter.Add(1000);
  sampler.SampleOnce(1'000'000);
  counter.Add(10);
  sampler.SampleOnce(2'000'000);  // honest point: 10/s

  registry.ResetAll();            // counter back to 0: below the baseline
  counter.Add(3);
  sampler.SampleOnce(3'000'000);  // must rebaseline, not emit (3-1010)/1s

  counter.Add(8);
  sampler.SampleOnce(4'000'000);  // honest again: 8/s

  EXPECT_EQ(sampler.rebaselines(), 1u);
  std::vector<double> rates;
  for (const auto& series : sampler.Snapshot()) {
    if (series.name != "ops.rate") continue;
    for (const auto& sample : series.samples) rates.push_back(sample.value);
  }
  ASSERT_EQ(rates.size(), 2u);  // the reset tick emitted nothing
  EXPECT_NEAR(rates[0], 10.0, 0.01);
  EXPECT_NEAR(rates[1], 8.0, 0.01);
  for (double r : rates) EXPECT_GE(r, 0.0);
}

// The same property with the real background thread and the global
// registry: hammer ResetAll() against a fast sampler and require every
// emitted rate to be finite and non-negative.
TEST(TimeSeriesSamplerTest, ConcurrentResetAllNeverEmitsNegativeRates) {
  auto& registry = MetricsRegistry::Global();
  auto& counter = registry.GetCounter("test.reset_race");
  TimeSeriesSampler sampler(registry);
  TimeSeriesSampler::Options options;
  options.interval = std::chrono::milliseconds(1);
  ASSERT_TRUE(sampler.Start(options).ok());

  std::thread resetter([&] {
    for (int i = 0; i < 50; ++i) {
      registry.ResetAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 5000; ++i) counter.Increment();
  resetter.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.Stop();

  for (const auto& series : sampler.Snapshot()) {
    for (const auto& sample : series.samples) {
      EXPECT_GE(sample.value, 0.0) << series.name;
    }
  }
}

TEST(TimeSeriesSamplerTest, StartStopLifecycle) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(registry);
  TimeSeriesSampler::Options options;
  options.interval = std::chrono::milliseconds(5);
  ASSERT_TRUE(sampler.Start(options).ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start(options).ok());  // double-start rejected
  registry.GetCounter("ticks").Add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent
}

// ---- Slow-trace retention ---------------------------------------------------

SpanRecord MakeRoot(const std::string& name, std::uint64_t dur_us,
                    std::uint64_t trace_id) {
  SpanRecord root;
  root.name = name;
  root.category = "test";
  root.trace_id = trace_id;
  root.span_id = trace_id * 10;
  root.parent_span_id = 0;
  root.start_us = 1000;
  root.dur_us = dur_us;
  return root;
}

TEST(SlowTraceStoreTest, MinThresholdFiltersFastSpans) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 100;
  options.multiplier = 3.0;
  options.capacity = 8;
  SlowTraceStore store(options);

  // Below the floor: never slow, whatever the (empty) p99 says.
  store.OnRootSpanEnd(MakeRoot("op", 50, 1), /*recorder=*/nullptr);
  EXPECT_EQ(store.size(), 0u);
  // Above the floor with no history for this op: retained at the floor.
  store.OnRootSpanEnd(MakeRoot("op2", 500, 2), /*recorder=*/nullptr);
  ASSERT_EQ(store.size(), 1u);
  const auto traces = store.Snapshot();
  EXPECT_EQ(traces[0].root.dur_us, 500u);
  EXPECT_EQ(traces[0].threshold_us, 100u);
}

TEST(SlowTraceStoreTest, AdaptiveThresholdTracksLiveP99) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 10;
  options.multiplier = 2.0;
  options.capacity = 64;
  SlowTraceStore store(options);

  // Build history: 100 spans of ~1000us. Every record's threshold is
  // computed from the samples *before* it, so the p99 converges to the
  // 1000us bucket and the adaptive threshold to ~2 * p99.
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.OnRootSpanEnd(MakeRoot("op", 1000, 100 + i), nullptr);
  }
  store.Clear();  // drop retained traces, but Clear drops histograms too —
  // rebuild the history without retention by staying under the threshold.
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.OnRootSpanEnd(MakeRoot("op", 9, 300 + i), nullptr);
  }
  EXPECT_EQ(store.size(), 0u);  // all below min_threshold_us

  // p99 of the history is in the 9us bucket (upper bound 15): the adaptive
  // threshold is about 2 * 9..15 = 18..30us. A 25..31us span may straddle;
  // a 100us span must be retained, a 10us span must not.
  store.OnRootSpanEnd(MakeRoot("op", 10, 500), nullptr);
  EXPECT_EQ(store.size(), 0u);
  store.OnRootSpanEnd(MakeRoot("op", 100, 501), nullptr);
  EXPECT_EQ(store.size(), 1u);

  // A different op name has its own histogram and threshold.
  store.OnRootSpanEnd(MakeRoot("other", 11, 502), nullptr);
  EXPECT_EQ(store.size(), 2u);  // fresh history: floor applies, 11 > 10
}

TEST(SlowTraceStoreTest, RingIsBoundedOldestEvicted) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 1;
  // Zero multiplier keeps the threshold at the 1us floor so every span is
  // retained and the ring actually fills past capacity.
  options.multiplier = 0.0;
  options.capacity = 4;
  SlowTraceStore store(options);

  for (std::uint64_t i = 0; i < 10; ++i) {
    store.OnRootSpanEnd(MakeRoot("op" + std::to_string(i), 100 + i, i + 1),
                        nullptr);
  }
  EXPECT_EQ(store.size(), 4u);
  const auto traces = store.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  // The four newest survive, oldest first.
  EXPECT_EQ(traces[0].root.name, "op6");
  EXPECT_EQ(traces[3].root.name, "op9");
}

TEST(SlowTraceStoreTest, JsonContainsOnlyRetainedTraces) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 100;
  options.capacity = 8;
  SlowTraceStore store(options);
  store.OnRootSpanEnd(MakeRoot("fast_op", 5, 1), nullptr);
  store.OnRootSpanEnd(MakeRoot("slow_op", 5000, 2), nullptr);

  const std::string json = store.ToJson();
  EXPECT_TRUE(Contains(json, "\"slowTraces\""));
  EXPECT_TRUE(Contains(json, "slow_op"));
  EXPECT_TRUE(Contains(json, "\"threshold_us\""));
  EXPECT_FALSE(Contains(json, "fast_op"));

  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(Contains(store.ToJson(), "slow_op"));
}

// The watchdog path: Flag() retains unconditionally, bypassing both the
// floor and the adaptive threshold, but honors the same ring bound.
TEST(SlowTraceStoreTest, FlagBypassesAdaptiveJudgement) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 1'000'000;  // nothing qualifies organically
  options.capacity = 2;
  SlowTraceStore store(options);

  store.OnRootSpanEnd(MakeRoot("fast", 5, 1), nullptr);
  EXPECT_EQ(store.size(), 0u);
  store.Flag(MakeRoot("stall.slot0.run", 777, 2), /*threshold_us=*/123);
  ASSERT_EQ(store.size(), 1u);
  const auto traces = store.Snapshot();
  EXPECT_EQ(traces[0].root.name, "stall.slot0.run");
  EXPECT_EQ(traces[0].threshold_us, 123u);
  EXPECT_TRUE(Contains(store.ToJson(), "stall.slot0.run"));

  for (std::uint64_t i = 0; i < 5; ++i) {
    store.Flag(MakeRoot("s" + std::to_string(i), 10, 10 + i), 1);
  }
  EXPECT_EQ(store.size(), 2u);  // ring bound applies to flagged entries too
}

// Hammer record/Flag from several threads while dump/clear readers run: the
// per-op threshold histograms adapt under the same mutex as retention, the
// ring must never exceed capacity, and no dump may observe a torn trace.
TEST(SlowTraceStoreTest, ConcurrentRecordAndDumpStaysBounded) {
  SlowTraceStore::Options options;
  options.min_threshold_us = 1;
  options.multiplier = 2.0;  // adaptive: recording also mutates histograms
  options.capacity = 16;
  SlowTraceStore store(options);

  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto traces = store.Snapshot();
      EXPECT_LE(traces.size(), 16u);
      for (const auto& trace : traces) {
        EXPECT_FALSE(trace.root.name.empty());
      }
      const std::string json = store.ToJson();
      EXPECT_TRUE(Contains(json, "\"slowTraces\""));
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, t] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(t) * 100000 + i;
        if (i % 3 == 0) {
          store.Flag(MakeRoot("flagged" + std::to_string(t), 50, id), 42);
        } else {
          // Durations spread across buckets so each op's p99 keeps moving
          // while other threads read it.
          store.OnRootSpanEnd(
              MakeRoot("op" + std::to_string(t), 1 + (i % 512), id), nullptr);
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  EXPECT_LE(store.size(), 16u);
  EXPECT_GT(store.size(), 0u);  // flagged entries guarantee retention
}

// End-to-end: a real traced span over the global store. Root spans flow
// through SlowTraceStore::Global() on End(); only over-threshold ones stay.
TEST(SlowTraceStoreTest, RootSpansFeedTheGlobalStore) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Clear();
  auto& store = SlowTraceStore::Global();
  const SlowTraceStore::Options saved = store.options();
  SlowTraceStore::Options options;
  options.min_threshold_us = 1000;  // 1ms floor
  options.capacity = 8;
  store.SetOptions(options);
  store.Clear();

  {
    obs::Span fast = obs::Span::Root("test", "instant_root");
  }
  {
    obs::Span slow = obs::Span::Root("test", "slept_root");
    obs::Span child("test", "slept_child");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto traces = store.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].root.name, "slept_root");
  // The retained trace carries its span tree (root excluded).
  ASSERT_EQ(traces[0].spans.size(), 1u);
  EXPECT_EQ(traces[0].spans[0].name, "slept_child");

  store.Clear();
  store.SetOptions(saved);
  obs::SetEnabled(false);
}

// ---- /metrics HTTP responder ------------------------------------------------

// Minimal blocking HTTP GET against 127.0.0.1:<port>; returns the raw
// response (headers + body).
std::string HttpGet(const std::string& address, const std::string& target,
                    const std::string& extra_headers = {}) {
  const auto colon = address.rfind(':');
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.substr(colon + 1).c_str());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\n" + extra_headers + "\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpMetricsTest, MetricsEndpointAndNotFound) {
  MetricsRegistry registry;
  registry.GetCounter("http.test_counter").Add(42);
  auto server = net::HttpMetricsServer::Listen("127.0.0.1:0", registry);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const std::string ok = HttpGet((*server)->address(), "/metrics");
  EXPECT_TRUE(Contains(ok, "HTTP/1.1 200"));
  EXPECT_TRUE(Contains(ok, "text/plain; version=0.0.4"));
  EXPECT_TRUE(Contains(ok, "glider_http_test_counter_total 42"));
  EXPECT_FALSE(Contains(ok, "# EOF"));

  // Scrapers that ask for OpenMetrics (the exemplar-capable format) get it,
  // with the matching content type and the mandatory "# EOF" terminator.
  const std::string om =
      HttpGet((*server)->address(), "/metrics",
              "Accept: application/openmetrics-text; version=1.0.0\r\n");
  EXPECT_TRUE(Contains(om, "HTTP/1.1 200"));
  EXPECT_TRUE(Contains(om, "application/openmetrics-text; version=1.0.0"));
  EXPECT_TRUE(Contains(om, "glider_http_test_counter_total 42"));
  EXPECT_TRUE(Contains(om, "# EOF"));

  const std::string missing = HttpGet((*server)->address(), "/nope");
  EXPECT_TRUE(Contains(missing, "HTTP/1.1 404"));
}

// ---- ClusterMonitor over a MiniCluster --------------------------------------

TEST(ClusterMonitorTest, MergeSumsCountersAndHistograms) {
  obs::MetricsSnapshot a, b;
  a.counters = {{"ops", 10}, {"only_a", 1}};
  b.counters = {{"ops", 32}};
  a.gauges = {{"depth", 2}};
  b.gauges = {{"depth", 3}};
  obs::HistogramSnapshot ha, hb;
  ha.buckets[4] = 5;  // five events in [8, 15]
  ha.count = 5;
  ha.sum = 50;
  ha.min = 8;
  ha.max = 15;
  hb.buckets[10] = 1;  // one event in [512, 1023]
  hb.count = 1;
  hb.sum = 600;
  hb.min = 600;
  hb.max = 600;
  a.histograms = {{"lat", ha}};
  b.histograms = {{"lat", hb}};

  const auto merged = ClusterMonitor::Merge({&a, &b});
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].first, "ops");
  EXPECT_EQ(merged.counters[0].second, 42u);
  EXPECT_EQ(merged.counters[1].first, "only_a");
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 5);
  ASSERT_EQ(merged.histograms.size(), 1u);
  const auto& h = merged.histograms[0].second;
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum, 650u);
  // Percentiles over merged buckets are cluster-exact: p50 in [8, 15],
  // p99+ reaches the slow server's bucket.
  EXPECT_LE(h.Percentile(50), 15u);
  EXPECT_GE(h.Percentile(99), 512u);
}

TEST(ClusterMonitorTest, PollsAndMergesLiveMiniCluster) {
  workloads::RegisterWorkloadActions();
  obs::SetEnabled(true);
  obs::TimeSeriesSampler::Global().Clear();

  testing::ClusterOptions options;
  options.use_tcp = true;  // monitoring runs over real sockets
  options.data_servers = 2;
  options.active_servers = 1;
  options.sample_interval = std::chrono::milliseconds(20);
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  // Generate some traffic so counters and histograms have content.
  {
    auto client = (*cluster)->NewInternalClient();
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->CreateNode("/obs-dir", nk::NodeType::kDirectory).ok());
    ASSERT_TRUE((*client)->Lookup("/obs-dir").ok());
  }
  // Let the sampler take at least two ticks (first one is baseline-only).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  ClusterMonitor monitor(&(*cluster)->transport(),
                         (*cluster)->metadata_address());
  auto sample = monitor.Poll();
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();

  // metadata + 2 data + 1 active = 4 targets discovered...
  ASSERT_EQ(sample->servers.size(), 4u);
  EXPECT_TRUE(sample->servers[0].is_metadata);
  // ...but MiniCluster runs in one process: the metadata poll succeeds and
  // the rest either succeed or are deduped, never hard-fail.
  std::size_t polled = 0;
  for (const auto& server : sample->servers) {
    if (server.status.ok()) ++polled;
  }
  ASSERT_GE(polled, 1u);

  // The merged snapshot saw the RPC server histograms from the traffic.
  bool saw_rpc_hist = false;
  for (const auto& [name, hist] : sample->merged.histograms) {
    if (name.rfind("rpc.server.", 0) == 0 && hist.count > 0) {
      saw_rpc_hist = true;
    }
  }
  EXPECT_TRUE(saw_rpc_hist);

  // The sampler produced series, and the dump carried its interval.
  bool saw_series = false;
  for (const auto& server : sample->servers) {
    if (!server.status.ok()) continue;
    EXPECT_EQ(server.dump.sampler_interval_ms, 20u);
    if (!server.dump.series.empty()) saw_series = true;
  }
  EXPECT_TRUE(saw_series);

  // A second poll over the cached connections still works.
  auto again = monitor.Poll();
  ASSERT_TRUE(again.ok()) << again.status().ToString();

  cluster->reset();  // stops the sampler it started
  EXPECT_FALSE(obs::TimeSeriesSampler::Global().running());
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace glider
