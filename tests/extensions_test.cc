// Tests of the extension features: tiered storage classes with fallback,
// Table/Bag container clients, the reduction-tree merge (§6.3) and the
// interactive-query index action (§3.1), and elastic storage-space join.
#include <gtest/gtest.h>

#include "glider/client/action_node.h"
#include "nodekernel/client/containers.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

constexpr nk::StorageClassId kNvmeClass = 1;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterWorkloadActions();
    testing::ClusterOptions options;
    options.blocks_per_server = 4;  // tiny DRAM tier: forces spills
    options.block_size = 64 * 1024;
    options.slots_per_server = 16;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  std::string ReadAll(core::ActionNode& node) {
    auto reader = node.OpenReader();
    EXPECT_TRUE(reader.ok());
    std::string out;
    while (true) {
      auto chunk = (*reader)->ReadChunk();
      EXPECT_TRUE(chunk.ok());
      if (!chunk.ok() || chunk->empty()) break;
      out += chunk->ToString();
    }
    EXPECT_TRUE((*reader)->Close().ok());
    return out;
  }

  Status WriteAll(core::ActionNode& node, std::string_view data) {
    GLIDER_ASSIGN_OR_RETURN(auto writer, node.OpenWriter());
    GLIDER_RETURN_IF_ERROR(writer->Write(data));
    return writer->Close();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

// ---- tiered storage ----------------------------------------------------------

TEST_F(ExtensionsTest, FileSpillsToFallbackClassWhenPreferredIsFull) {
  // Join an "NVMe" storage space and declare DRAM -> NVMe fallback.
  auto nvme = cluster_->AddStorageServer(kNvmeClass, 16, 64 * 1024);
  ASSERT_TRUE(nvme.ok());
  cluster_->metadata().SetClassFallback(nk::kDefaultClass, kNvmeClass);

  // 4 DRAM blocks x 64 KiB = 256 KiB; write 512 KiB -> half spills.
  ASSERT_TRUE(client_->CreateNode("/spill", nk::NodeType::kFile).ok());
  {
    auto writer = nk::FileWriter::Open(*client_, "/spill");
    ASSERT_TRUE(writer.ok());
    std::vector<std::uint8_t> data(512 * 1024);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i % 251);
    }
    ASSERT_TRUE((*writer)->Write(ByteSpan(data)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  EXPECT_EQ(cluster_->metadata().FreeBlocks(nk::kDefaultClass), 0u);
  EXPECT_EQ(cluster_->metadata().FreeBlocks(kNvmeClass), 12u);
  EXPECT_GT((*nvme)->UsedBytes(), 0u);

  // Reads stitch the tiers back together transparently.
  auto value = client_->GetValue("/spill");
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value->size(), 512u * 1024);
  for (std::size_t i = 0; i < value->size(); ++i) {
    ASSERT_EQ(value->span()[i], static_cast<std::uint8_t>(i % 251)) << i;
  }
}

TEST_F(ExtensionsTest, WithoutFallbackTheClassExhausts) {
  ASSERT_TRUE(client_->CreateNode("/nofall", nk::NodeType::kFile).ok());
  auto writer = nk::FileWriter::Open(*client_, "/nofall");
  ASSERT_TRUE(writer.ok());
  const std::string chunk(64 * 1024, 'x');
  Status status;
  for (int i = 0; i < 10 && status.ok(); ++i) status = (*writer)->Write(chunk);
  const Status close_status = (*writer)->Close();
  EXPECT_TRUE(!status.ok() || !close_status.ok());
}

TEST_F(ExtensionsTest, ElasticJoinGrowsCapacityImmediately) {
  const auto before = cluster_->metadata().FreeBlocks(nk::kDefaultClass);
  ASSERT_TRUE(cluster_->AddStorageServer(nk::kDefaultClass, 8, 64 * 1024).ok());
  EXPECT_EQ(cluster_->metadata().FreeBlocks(nk::kDefaultClass), before + 8);
}

// ---- containers ---------------------------------------------------------------

TEST_F(ExtensionsTest, TablePutGetRemoveKeys) {
  auto table = nk::TableClient::Open(*client_, "/tbl");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Put("alpha", "1").ok());
  ASSERT_TRUE(table->Put("beta", "2").ok());
  ASSERT_TRUE(table->Put("alpha", "one").ok());  // upsert

  auto got = table->Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToString(), "one");

  auto keys = table->Keys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"alpha", "beta"}));

  ASSERT_TRUE(table->Remove("alpha").ok());
  EXPECT_EQ(table->Get("alpha").status().code(), StatusCode::kNotFound);
}

TEST_F(ExtensionsTest, TableOpenRejectsWrongType) {
  ASSERT_TRUE(client_->CreateNode("/f", nk::NodeType::kFile).ok());
  EXPECT_EQ(nk::TableClient::Open(*client_, "/f").status().code(),
            StatusCode::kWrongNodeType);
}

TEST_F(ExtensionsTest, BagAppendsAndConcatenates) {
  auto bag = nk::BagClient::Open(*client_, "/bag");
  ASSERT_TRUE(bag.ok());
  for (const std::string part : {"one ", "two ", "three"}) {
    auto writer = bag->Append();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write(part).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto files = bag->Files();
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 3u);

  auto all = bag->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->ToString(), "one two three");

  // Re-opening resumes numbering.
  auto bag2 = nk::BagClient::Open(*client_, "/bag");
  ASSERT_TRUE(bag2.ok());
  EXPECT_EQ(bag2->next_index(), 3u);
}

// ---- reduction tree ------------------------------------------------------------

TEST_F(ExtensionsTest, ReductionTreeCombinesInsideStorage) {
  // Root + two leaves; each leaf aggregates two worker streams; leaf
  // results are pushed to the root through action-to-action streams.
  ASSERT_TRUE(
      core::ActionNode::Create(*client_, "/root", "glider.tree-merge",
                               /*interleave=*/true)
          .ok());
  for (int leaf = 0; leaf < 2; ++leaf) {
    ASSERT_TRUE(core::ActionNode::Create(
                    *client_, "/leaf" + std::to_string(leaf),
                    "glider.tree-merge", /*interleave=*/true, AsBytes("/root"))
                    .ok());
  }
  for (int leaf = 0; leaf < 2; ++leaf) {
    auto node =
        core::ActionNode::Lookup(*client_, "/leaf" + std::to_string(leaf));
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE(WriteAll(*node, "1,10\n2,1\n").ok());
    ASSERT_TRUE(WriteAll(*node, "1,5\n").ok());
  }
  // Trigger the leaves: each flushes its dictionary into the root.
  for (int leaf = 0; leaf < 2; ++leaf) {
    auto node =
        core::ActionNode::Lookup(*client_, "/leaf" + std::to_string(leaf));
    ASSERT_TRUE(node.ok());
    EXPECT_EQ(ReadAll(*node), "2\n");  // forwarded 2 entries
  }
  auto root = core::ActionNode::Lookup(*client_, "/root");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(ReadAll(*root), "1,30\n2,2\n");
}

// ---- interactive queries --------------------------------------------------------

TEST_F(ExtensionsTest, QueryableIndexAnswersAcrossStreams) {
  auto node = core::ActionNode::Create(*client_, "/idx", "glider.index");
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(WriteAll(*node, "put a 1\nput b 2\n").ok());
  ASSERT_TRUE(WriteAll(*node, "get a\nget zz\ncount\n").ok());
  EXPECT_EQ(ReadAll(*node), "a=1\nzz!missing\ncount=2\n");
  // Answers drained; state persists.
  EXPECT_EQ(ReadAll(*node), "");
  ASSERT_TRUE(WriteAll(*node, "get b\n").ok());
  EXPECT_EQ(ReadAll(*node), "b=2\n");
}

}  // namespace
}  // namespace glider
