// Stress / concurrency tests: many clients hammering the namespace, mixed
// read+write streams on one interleaved action, action churn, and a full
// workload over TCP.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "faas/invoker.h"
#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"
#include "workloads/graph.h"

namespace glider {
namespace {

// The Fig. 5 reduce as inline graph specs (shared with the partitioned
// metadata test): a small producer gang vs one interleaved merge action.
constexpr std::string_view kReduceBaselineSpec = R"(
[node produce]
type = faas.generate_pairs
workers = 3
pairs_per_worker = 5000
path = /red_part_{i}
target = file

[node reduce]
type = faas.reduce_files
input = /red_part_{i}
inputs = 3
output = /red_result

[node verify]
type = sink.dictionary
measured = 0
path = /red_result

[node cleanup_parts]
type = file.delete
measured = 0
path = /red_part_{i}
count = 3

[node cleanup_result]
type = file.delete
measured = 0
path = /red_result
)";

constexpr std::string_view kReduceGliderSpec = R"(
[node merge]
type = action.create
path = /red_merge
action = glider.merge
interleave = 1

[node produce]
type = faas.generate_pairs
workers = 3
pairs_per_worker = 5000
path = /red_merge
target = action

[node verify]
type = sink.dictionary
measured = 0
path = /red_merge
source = action

[node cleanup]
type = file.delete
measured = 0
path = /red_merge
action = 1
)";

workloads::GraphReport RunSpecText(testing::MiniCluster& cluster,
                                   std::string_view text) {
  auto spec = workloads::ParseSpec(text, "<test>");
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  auto graph = workloads::BuildGraph(*spec);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  workloads::MiniClusterHandle handle(cluster);
  auto report = workloads::RunGraph(*graph, handle);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : workloads::GraphReport{};
}

TEST(StressTest, ConcurrentNamespaceChurn) {
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  constexpr int kThreads = 8;
  constexpr int kOpsEach = 60;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = (*cluster)->NewInternalClient();
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsEach; ++i) {
        const std::string path =
            "/churn_" + std::to_string(t) + "_" + std::to_string(i % 5);
        auto created = (*client)->CreateNode(path, nk::NodeType::kFile);
        if (!created.ok() &&
            created.status().code() != StatusCode::kAlreadyExists) {
          ++failures;
        }
        if (i % 3 == 0) {
          auto removed = (*client)->Delete(path);
          if (!removed.ok() &&
              removed.status().code() != StatusCode::kNotFound) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every block allocated during churn was freed or is reachable: free
  // count is consistent (no double-free or leak panics by this point).
}

TEST(StressTest, ManyActionsChurnAcrossSlots) {
  workloads::RegisterWorkloadActions();
  testing::ClusterOptions options;
  options.active_servers = 2;
  options.slots_per_server = 4;  // 8 slots, heavily reused
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());

  for (int round = 0; round < 30; ++round) {
    std::vector<std::string> paths;
    for (int i = 0; i < 8; ++i) {
      const std::string path =
          "/churn_a" + std::to_string(round) + "_" + std::to_string(i);
      auto node = core::ActionNode::Create(**client, path, "glider.merge");
      ASSERT_TRUE(node.ok()) << node.status().ToString();
      auto writer = node->OpenWriter();
      ASSERT_TRUE(writer.ok());
      ASSERT_TRUE((*writer)->Write("1,1\n").ok());
      ASSERT_TRUE((*writer)->Close().ok());
      paths.push_back(path);
    }
    for (const auto& path : paths) {
      ASSERT_TRUE(core::ActionNode::Delete(**client, path).ok());
    }
  }
  EXPECT_EQ((*cluster)->active(0).LiveActions(), 0u);
  EXPECT_EQ((*cluster)->active(1).LiveActions(), 0u);
}

TEST(StressTest, MixedReadersAndWritersOnInterleavedAction) {
  workloads::RegisterWorkloadActions();
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(core::ActionNode::Create(**client, "/mix", "glider.merge",
                                       /*interleave=*/true)
                  .ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto c = (*cluster)->NewInternalClient();
      auto node = core::ActionNode::Lookup(**c, "/mix");
      for (int round = 0; round < 10; ++round) {
        auto writer = node->OpenWriter();
        if (!writer.ok() ||
            !(*writer)->Write(std::to_string(w) + ",1\n").ok() ||
            !(*writer)->Close().ok()) {
          ++failures;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      auto c = (*cluster)->NewInternalClient();
      auto node = core::ActionNode::Lookup(**c, "/mix");
      for (int round = 0; round < 10; ++round) {
        auto reader = node->OpenReader();
        if (!reader.ok()) {
          ++failures;
          continue;
        }
        while (true) {
          auto chunk = (*reader)->ReadChunk();
          if (!chunk.ok()) {
            ++failures;
            break;
          }
          if (chunk->empty()) break;
        }
        if (!(*reader)->Close().ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Final state: every writer stream contributed exactly once per round.
  auto node = core::ActionNode::Lookup(**client, "/mix");
  auto reader = node->OpenReader();
  std::string dict;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    dict += chunk->ToString();
  }
  long long total = 0;
  std::istringstream in(dict);
  std::string line;
  while (std::getline(in, line)) {
    total += std::stoll(line.substr(line.find(',') + 1));
  }
  EXPECT_EQ(total, kWriters * 10);
}

TEST(StressTest, ReduceWorkloadOverTcp) {
  // The full Fig. 5 workload, small, over real sockets, built from the
  // declarative specs.
  testing::ClusterOptions options;
  options.use_tcp = true;
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  const auto baseline = RunSpecText(**cluster, kReduceBaselineSpec);
  const auto glider = RunSpecText(**cluster, kReduceGliderSpec);
  EXPECT_EQ(glider.exports.at("checksum"), baseline.exports.at("checksum"));
  EXPECT_EQ(glider.exports.at("entries"), baseline.exports.at("entries"));
}

TEST(StressTest, InvokerPropagatesWorkerFailuresAndRunsAll) {
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  faas::Invoker invoker(**cluster);
  std::atomic<int> ran{0};
  const Status status =
      invoker.RunStage(16, [&](faas::WorkerContext& ctx) -> Status {
        ++ran;
        if (ctx.worker_id == 7) return Status::Internal("worker 7 died");
        return Status::Ok();
      });
  EXPECT_EQ(ran.load(), 16);  // a failure does not cancel the stage
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace glider
