// Tests of namespace partitioning (paper §4.1 fn. 4): multiple metadata
// servers, each owning the subtrees hashed to it together with the storage
// servers registered there; clients route transparently.
#include <gtest/gtest.h>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"
#include "workloads/graph.h"

namespace glider {
namespace {

class PartitionedMetadataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterWorkloadActions();
    testing::ClusterOptions options;
    options.metadata_servers = 3;
    // Every partition needs storage + active capacity.
    options.data_servers = 3;
    options.active_servers = 3;
    options.blocks_per_server = 64;
    options.block_size = 64 * 1024;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

TEST_F(PartitionedMetadataTest, NodesSpreadAcrossPartitions) {
  // Many top-level subtrees must not all land on one partition.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client_
                    ->CreateNode("/part" + std::to_string(i),
                                 nk::NodeType::kFile)
                    .ok());
  }
  std::size_t populated = 0;
  std::size_t total_nodes = 0;
  for (std::size_t p = 0; p < cluster_->num_metadata(); ++p) {
    const std::size_t n = cluster_->metadata(p).NodeCount();
    total_nodes += n;
    if (n > 0) ++populated;
  }
  EXPECT_EQ(total_nodes, 30u);
  EXPECT_GE(populated, 2u);
}

TEST_F(PartitionedMetadataTest, NodeIdsCarryThePartitionTag) {
  // Ids from different partitions must differ in the top bits so block
  // operations route back correctly.
  std::set<std::uint64_t> tags;
  for (int i = 0; i < 30; ++i) {
    auto info = client_->CreateNode("/t" + std::to_string(i),
                                    nk::NodeType::kFile);
    ASSERT_TRUE(info.ok());
    tags.insert(info->id >> 56);
  }
  EXPECT_GE(tags.size(), 2u);
}

TEST_F(PartitionedMetadataTest, FileRoundTripOnEveryPartition) {
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/rt" + std::to_string(i);
    ASSERT_TRUE(client_->CreateNode(path, nk::NodeType::kFile).ok());
    const std::string payload = "payload-" + std::to_string(i);
    auto writer = nk::FileWriter::Open(*client_, path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write(payload).ok());
    ASSERT_TRUE((*writer)->Close().ok());
    auto value = client_->GetValue(path);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->ToString(), payload);
  }
}

TEST_F(PartitionedMetadataTest, HashedPartitionMatchesIdTag) {
  // The client routes by hash(first path component) % partitions; the
  // partition stamps its index into the top id byte. The two must agree,
  // or block operations would route to a partition that never saw the node.
  for (int i = 0; i < 20; ++i) {
    const std::string component = "h" + std::to_string(i);
    const std::size_t expected =
        std::hash<std::string_view>{}(component) % cluster_->num_metadata();
    auto info = client_->CreateNode("/" + component, nk::NodeType::kFile);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->id >> 56, expected) << component;
  }
}

TEST_F(PartitionedMetadataTest, CrossPartitionDeleteFreesEverything) {
  const std::size_t nodes_before = [&] {
    std::size_t n = 0;
    for (std::size_t p = 0; p < cluster_->num_metadata(); ++p) {
      n += cluster_->metadata(p).NodeCount();
    }
    return n;
  }();
  std::size_t free_before = 0;
  for (std::size_t p = 0; p < cluster_->num_metadata(); ++p) {
    free_before += cluster_->metadata(p).FreeBlocks(nk::kDefaultClass);
  }

  // Files with data land blocks on whichever partition owns them.
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/del" + std::to_string(i);
    ASSERT_TRUE(client_->PutValue(path, Buffer::FromString("x").span()).ok());
  }
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/del" + std::to_string(i);
    ASSERT_TRUE(client_->Delete(path).ok());
    EXPECT_EQ(client_->Lookup(path).status().code(), StatusCode::kNotFound);
  }

  std::size_t nodes_after = 0;
  std::size_t free_after = 0;
  for (std::size_t p = 0; p < cluster_->num_metadata(); ++p) {
    nodes_after += cluster_->metadata(p).NodeCount();
    free_after += cluster_->metadata(p).FreeBlocks(nk::kDefaultClass);
  }
  EXPECT_EQ(nodes_after, nodes_before);
  EXPECT_EQ(free_after, free_before);
}

TEST_F(PartitionedMetadataTest, SubtreeStaysTogether) {
  // Children route with their root component, so parent/child operations
  // hit the same partition.
  ASSERT_TRUE(client_->CreateNode("/tree", nk::NodeType::kDirectory).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_
                    ->CreateNode("/tree/child" + std::to_string(i),
                                 nk::NodeType::kFile)
                    .ok());
  }
  auto listing = client_->List("/tree");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->entries.size(), 5u);
}

TEST_F(PartitionedMetadataTest, ActionsWorkAcrossPartitions) {
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/act" + std::to_string(i);
    auto node = core::ActionNode::Create(*client_, path, "glider.merge");
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    auto writer = node->OpenWriter();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Write("1," + std::to_string(i) + "\n").ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  for (int i = 0; i < 6; ++i) {
    auto node = core::ActionNode::Lookup(*client_, "/act" + std::to_string(i));
    ASSERT_TRUE(node.ok());
    auto reader = node->OpenReader();
    ASSERT_TRUE(reader.ok());
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk->ToString(), "1," + std::to_string(i) + "\n");
    ASSERT_TRUE((*reader)->Close().ok());
  }
}

TEST_F(PartitionedMetadataTest, WholeWorkloadRunsPartitioned) {
  // The Fig. 5 reduce from declarative specs, on a 3-partition namespace.
  const auto run = [&](std::string_view text) {
    auto spec = workloads::ParseSpec(text, "<test>");
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    auto graph = workloads::BuildGraph(*spec);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    workloads::MiniClusterHandle handle(*cluster_);
    auto report = workloads::RunGraph(*graph, handle);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : workloads::GraphReport{};
  };
  constexpr std::string_view kBaseline = R"(
[node produce]
type = faas.generate_pairs
workers = 3
pairs_per_worker = 5000
path = /red_part_{i}
target = file

[node reduce]
type = faas.reduce_files
input = /red_part_{i}
inputs = 3
output = /red_result

[node verify]
type = sink.dictionary
measured = 0
path = /red_result
)";
  constexpr std::string_view kGlider = R"(
[node merge]
type = action.create
path = /red_merge
action = glider.merge
interleave = 1

[node produce]
type = faas.generate_pairs
workers = 3
pairs_per_worker = 5000
path = /red_merge
target = action

[node verify]
type = sink.dictionary
measured = 0
path = /red_merge
source = action
)";
  const auto baseline = run(kBaseline);
  const auto glider = run(kGlider);
  EXPECT_EQ(glider.exports.at("checksum"), baseline.exports.at("checksum"));
}

}  // namespace
}  // namespace glider
