// Unit tests for the common substrate: Status/Result, serde, queues,
// thread pool, rate limiter, metrics, generators' building blocks.
#include <gtest/gtest.h>

#include <future>
#include <numeric>
#include <thread>

#include "common/blocking_queue.h"
#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/rate_limiter.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace glider {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("missing node");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing node");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 12; ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, ValueAccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Result<int> Doubler(Result<int> in) {
  GLIDER_ASSIGN_OR_RETURN(auto v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Timeout("t")).status().code(),
            StatusCode::kTimeout);
}

// ---- Buffer -----------------------------------------------------------------

TEST(BufferTest, RoundTripText) {
  Buffer b = Buffer::FromString("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.ToString(), "hello");
  b.Append(std::string_view(" world"));
  EXPECT_EQ(b.ToString(), "hello world");
}

TEST(BufferTest, SpanViewsShareBytes) {
  Buffer b(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(b.span()[1], 2);
  b.mutable_span()[1] = 9;
  EXPECT_EQ(b.span()[1], 9);
}

TEST(BufferTest, SliceIsZeroCopyView) {
  Buffer b = Buffer::FromString("hello world");
  Buffer s = b.Slice(6, 5);
  EXPECT_EQ(s.ToString(), "world");
  // Same underlying bytes: the slice's data pointer aliases the parent.
  EXPECT_EQ(s.span().data(), b.span().data() + 6);
  EXPECT_FALSE(b.unique());
  EXPECT_FALSE(s.unique());
}

TEST(BufferTest, SliceClampsToBounds) {
  Buffer b = Buffer::FromString("abcdef");
  EXPECT_EQ(b.Slice(4, 100).ToString(), "ef");
  EXPECT_EQ(b.Slice(100, 5).size(), 0u);
  EXPECT_EQ(b.Slice(2).ToString(), "cdef");
  EXPECT_EQ(b.Slice(0, 0).size(), 0u);
}

TEST(BufferTest, SliceOutlivesParent) {
  Buffer s;
  const std::uint8_t* parent_data = nullptr;
  {
    Buffer b = Buffer::FromString("persistent bytes");
    parent_data = b.span().data();
    s = b.Slice(11, 5);
  }  // parent destroyed; storage kept alive by the slice
  EXPECT_EQ(s.ToString(), "bytes");
  EXPECT_EQ(s.span().data(), parent_data + 11);
}

TEST(BufferTest, MutationDetachesWhenShared) {
  Buffer b = Buffer::FromString("shared");
  Buffer s = b.Slice(0, 6);
  // Mutating through b must not change what s observes (copy-on-write).
  b.mutable_span()[0] = 'S';
  EXPECT_EQ(b.ToString(), "Shared");
  EXPECT_EQ(s.ToString(), "shared");
  EXPECT_TRUE(b.unique());
}

TEST(BufferTest, AppendAfterSliceDoesNotDisturbSlice) {
  Buffer b = Buffer::FromString("head");
  Buffer s = b.Slice(0, 4);
  b.Append(std::string_view("+tail"));
  EXPECT_EQ(b.ToString(), "head+tail");
  EXPECT_EQ(s.ToString(), "head");
}

TEST(BufferTest, SliceOfSliceComposes) {
  Buffer b = Buffer::FromString("0123456789");
  Buffer s = b.Slice(2, 6);   // "234567"
  Buffer t = s.Slice(1, 3);   // "345"
  EXPECT_EQ(t.ToString(), "345");
  EXPECT_EQ(t.span().data(), b.span().data() + 3);
}

TEST(BufferTest, CopySemanticsAreValueLike) {
  Buffer a = Buffer::FromString("value");
  Buffer b = a;  // O(1): shares storage
  EXPECT_EQ(a.span().data(), b.span().data());
  b.mutable_span()[0] = 'V';
  EXPECT_EQ(a.ToString(), "value");
  EXPECT_EQ(b.ToString(), "Value");
  EXPECT_TRUE(a == Buffer::FromString("value"));
  EXPECT_FALSE(a == b);
}

TEST(BufferTest, UniqueBufferMutatesInPlace) {
  Buffer b = Buffer::FromString("abc");
  const std::uint8_t* before = b.span().data();
  b.mutable_span()[0] = 'A';  // unique: no detach
  EXPECT_EQ(b.span().data(), before);
}

// ---- BufferPool -------------------------------------------------------------

TEST(BufferPoolTest, RecyclesStorage) {
  BufferPool pool;
  const std::uint8_t* first = nullptr;
  {
    Buffer b = pool.Acquire(4096);
    ASSERT_EQ(b.size(), 4096u);
    first = b.span().data();
  }  // released back to the pool
  Buffer c = pool.Acquire(4096);
  EXPECT_EQ(c.span().data(), first);  // same storage came back
}

TEST(BufferPoolTest, LiveSliceBlocksRecycling) {
  BufferPool pool;
  Buffer slice;
  const std::uint8_t* first = nullptr;
  {
    Buffer b = pool.Acquire(1024);
    first = b.span().data();
    b.mutable_span()[10] = 42;
    slice = b.Slice(10, 1);
  }  // b gone, but `slice` still pins the storage
  Buffer c = pool.Acquire(1024);
  EXPECT_NE(c.span().data(), first);  // pool had to allocate fresh storage
  EXPECT_EQ(slice.span()[0], 42);     // slice bytes untouched
  slice = Buffer{};                   // last reference: now it recycles
  Buffer d = pool.Acquire(1024);
  EXPECT_EQ(d.span().data(), first);
}

TEST(BufferPoolTest, ReusesLargerCachedEntry) {
  BufferPool pool;
  { Buffer b = pool.Acquire(8192); }
  EXPECT_GE(pool.CachedBytes(), 8192u);
  Buffer c = pool.Acquire(100);  // first-fit: served from the 8 KiB entry
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(pool.CachedBytes(), 0u);
}

TEST(BufferPoolTest, RespectsCacheCaps) {
  BufferPool pool(/*max_cached_bytes=*/1000, /*max_entries=*/2);
  { Buffer b = pool.Acquire(600); }
  { Buffer b = pool.Acquire(600); }  // would exceed 1000 cached bytes
  EXPECT_LE(pool.CachedBytes(), 1000u);
}

TEST(BufferPoolTest, CountersTrackHitsAndMisses) {
  const std::uint64_t hits0 = data_plane::PoolHits();
  const std::uint64_t miss0 = data_plane::PoolMisses();
  BufferPool pool;
  { Buffer b = pool.Acquire(256); }  // miss + release
  Buffer c = pool.Acquire(256);      // hit
  EXPECT_GE(data_plane::PoolMisses(), miss0 + 1);
  EXPECT_GE(data_plane::PoolHits(), hits0 + 1);
}

// ---- serde ------------------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutDouble(3.25);
  w.PutString("xyz");
  const Buffer buf = std::move(w).Finish();

  BinaryReader r(buf.span());
  EXPECT_EQ(*r.U8(), 0xAB);
  EXPECT_EQ(*r.U16(), 0x1234);
  EXPECT_EQ(*r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.I64(), -42);
  EXPECT_EQ(*r.Bool(), true);
  EXPECT_EQ(*r.Double(), 3.25);
  EXPECT_EQ(*r.String(), "xyz");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedReadsFailCleanly) {
  BinaryWriter w;
  w.PutU64(1);
  const Buffer buf = std::move(w).Finish();
  BinaryReader r(ByteSpan(buf.data(), 3));  // cut mid-integer
  EXPECT_EQ(r.U64().status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, OversizedStringLengthRejected) {
  BinaryWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutRaw(AsBytes("short"));
  const Buffer buf = std::move(w).Finish();
  BinaryReader r(buf.span());
  EXPECT_EQ(r.String().status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, RestConsumesRemainder) {
  BinaryWriter w;
  w.PutU8(1);
  w.PutRaw(AsBytes("tail"));
  const Buffer buf = std::move(w).Finish();
  BinaryReader r(buf.span());
  ASSERT_TRUE(r.U8().ok());
  EXPECT_EQ(AsText(r.Rest()), "tail");
  EXPECT_TRUE(r.AtEnd());
}

// ---- BlockingQueue ----------------------------------------------------------

class BlockingQueueTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockingQueueTest, FifoUnderConcurrency) {
  BlockingQueue<int> q(GetParam());
  constexpr int kItems = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i).ok());
    q.Close();
  });
  int expected = 0;
  while (true) {
    auto item = q.Pop();
    if (!item.ok()) break;
    EXPECT_EQ(*item, expected++);
  }
  EXPECT_EQ(expected, kItems);
  producer.join();
}

TEST_P(BlockingQueueTest, CloseDrainsThenReportsClosed) {
  BlockingQueue<int> q(GetParam());
  ASSERT_TRUE(q.Push(1).ok());
  q.Close();
  EXPECT_EQ(q.Push(2).code(), StatusCode::kClosed);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(q.Pop().status().code(), StatusCode::kClosed);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BlockingQueueTest,
                         ::testing::Values(1, 2, 16, 1024));

TEST(BlockingQueueTest, TryVariantsReportState) {
  BlockingQueue<int> q(1);
  EXPECT_EQ(q.TryPop().status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(q.TryPush(1).ok());
  EXPECT_EQ(q.TryPush(2).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(*q.TryPop(), 1);
}

TEST(BlockingQueueTest, PushAllPopAllRoundTrip) {
  BlockingQueue<int> q(8);
  ASSERT_TRUE(q.PushAll({1, 2, 3, 4, 5}).ok());
  auto batch = q.PopAll();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueueTest, PopAllHonorsMaxItems) {
  BlockingQueue<int> q(8);
  ASSERT_TRUE(q.PushAll({1, 2, 3, 4, 5}).ok());
  auto first = q.PopAll(/*max_items=*/2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (std::vector<int>{1, 2}));
  auto rest = q.PopAll(/*max_items=*/16);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(*rest, (std::vector<int>{3, 4, 5}));
}

TEST(BlockingQueueTest, PushAllLargerThanCapacityAdmitsInWaves) {
  BlockingQueue<int> q(4);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  std::thread producer([&] {
    EXPECT_TRUE(q.PushAll(items).ok());
    q.Close();
  });
  std::vector<int> got;
  while (true) {
    auto batch = q.PopAll();
    if (!batch.ok()) {
      EXPECT_EQ(batch.status().code(), StatusCode::kClosed);
      break;
    }
    got.insert(got.end(), batch->begin(), batch->end());
  }
  producer.join();
  EXPECT_EQ(got, items);  // FIFO survives the wave-by-wave admission
}

TEST(BlockingQueueTest, PopAllBlocksUntilItemsArrive) {
  BlockingQueue<int> q(8);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    auto batch = q.PopAll();
    popped = true;
    ASSERT_TRUE(batch.ok());
    EXPECT_FALSE(batch->empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());  // empty queue: consumer parked
  ASSERT_TRUE(q.PushAll({7, 8}).ok());
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BlockingQueueTest, PushAllAfterCloseReportsClosed) {
  BlockingQueue<int> q(4);
  q.Close();
  EXPECT_EQ(q.PushAll({1, 2}).code(), StatusCode::kClosed);
  EXPECT_EQ(q.PopAll().status().code(), StatusCode::kClosed);
}

TEST(BlockingQueueTest, WouldBlockOnPopPredicate) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.WouldBlockOnPop());
  ASSERT_TRUE(q.Push(1).ok());
  EXPECT_FALSE(q.WouldBlockOnPop());
  (void)q.Pop();
  q.Close();
  EXPECT_FALSE(q.WouldBlockOnPop());  // closed never blocks
}

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.Submit([&] { ++count; }).ok());
    }
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_EQ(pool.Submit([] {}).code(), StatusCode::kClosed);
  EXPECT_EQ(pool.SubmitAll({[] {}}).code(), StatusCode::kClosed);
}

TEST(ThreadPoolTest, SubmitAllRunsWholeBatch) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::function<void()>> batch;
    for (int i = 0; i < 64; ++i) batch.push_back([&] { ++count; });
    ASSERT_TRUE(pool.SubmitAll(std::move(batch)).ok());
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 64);
}

// spin_budget=0 sends every idle worker straight to its condvar, so each
// Submit below lands on a fully parked pool: a single lost wakeup in the
// notify-after-unlock / poked-flag protocol hangs the fut.wait() forever.
TEST(ThreadPoolTest, ParkedWorkersWakeOnEverySubmit) {
  ThreadPool pool(2, /*spin_budget=*/0);
  for (int i = 0; i < 200; ++i) {
    std::promise<void> done;
    auto fut = done.get_future();
    ASSERT_TRUE(pool.Submit([&] { done.set_value(); }).ok());
    fut.wait();
  }
}

// A doorbell batch into one shard must poke parked peers to steal the
// surplus: with sleeping tasks, overlap proves more than one worker ran.
TEST(ThreadPoolTest, SubmitAllPokesParkedPeersToSteal) {
  ThreadPool pool(4, /*spin_budget=*/0);
  // Let all four workers reach their condvar park before the doorbell, so
  // the batch's wakeups must come from the poke protocol alone.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back([&] {
      const int now = ++running;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --running;
    });
  }
  ASSERT_TRUE(pool.SubmitAll(std::move(batch)).ok());
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2);
}

// ---- RateLimiter ------------------------------------------------------------

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  RateLimiter limiter(0);
  Stopwatch timer;
  limiter.Acquire(1ull << 30);
  EXPECT_LT(timer.Seconds(), 0.05);
}

TEST(RateLimiterTest, ThrottlesToConfiguredRate) {
  // 10 MB/s, 512 KiB after the burst => ~50 ms minimum.
  RateLimiter limiter(10'000'000, /*burst_bytes=*/1024);
  Stopwatch timer;
  limiter.Acquire(512 * 1024);
  limiter.Acquire(1);  // forces waiting out the reservation
  EXPECT_GT(timer.Seconds(), 0.04);
}

TEST(RateLimiterTest, ConcurrentAcquirersShareTheRate) {
  // 4 threads x 250 KiB at 10 MB/s must take ~100 ms in total, not ~25 ms
  // (the bug the reservation design prevents).
  RateLimiter limiter(10'000'000, /*burst_bytes=*/1024);
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { limiter.Acquire(250 * 1024); });
  }
  for (auto& t : threads) t.join();
  limiter.Acquire(1);
  EXPECT_GT(timer.Seconds(), 0.08);
}

// ---- Metrics ----------------------------------------------------------------

TEST(MetricsTest, AttributesTrafficPerLink) {
  Metrics m;
  m.RecordSend(LinkClass::kFaas, 100);
  m.RecordReceive(LinkClass::kFaas, 50);
  m.RecordSend(LinkClass::kInternal, 999);
  EXPECT_EQ(m.FaasTransferBytes(), 150u);
  EXPECT_EQ(m.Operations(LinkClass::kFaas), 1u);
  EXPECT_EQ(m.BytesSent(LinkClass::kInternal), 999u);
}

TEST(MetricsTest, StoredBytesTracksPeak) {
  Metrics m;
  m.RecordStoredBytes(100);
  m.RecordStoredBytes(200);
  m.RecordStoredBytes(-250);
  EXPECT_EQ(m.StoredBytes(), 50);
  EXPECT_EQ(m.PeakStoredBytes(), 300);
  m.Reset();
  EXPECT_EQ(m.PeakStoredBytes(), 0);
}

// ---- random -----------------------------------------------------------------

TEST(RandomTest, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, NextBelowRespectsBound) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 1.1, 42);
  std::size_t low = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // The 10 hottest ranks of 1000 must take far more than their uniform
  // share (1%); with s=1.1 it is ~45%.
  EXPECT_GT(low, kDraws / 5);
}

// ---- stats ------------------------------------------------------------------

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_EQ(stats.Min(), 1);
  EXPECT_EQ(stats.Max(), 100);
  EXPECT_DOUBLE_EQ(stats.Mean(), 50.5);
  EXPECT_NEAR(stats.Percentile(50), 50, 1);
  EXPECT_NEAR(stats.Percentile(99), 99, 1);
  // Population stddev of 1..100 is sqrt((100^2 - 1) / 12).
  EXPECT_NEAR(stats.Stddev(), 28.866, 0.001);
}

TEST(SampleStatsTest, PercentileIsNonMutating) {
  SampleStats stats;
  stats.Add(30);
  stats.Add(10);
  stats.Add(20);
  // Percentile is const and must not reorder the samples; interleaved
  // Add/Percentile keeps answers consistent with all data seen so far.
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 30);
  stats.Add(40);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 40);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 10);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 20);
}

}  // namespace
}  // namespace glider
