// Failure-injection and robustness tests: misbehaving actions, wrong-type
// operations, resource exhaustion, mid-stream teardown, unknown opcodes.
#include <gtest/gtest.h>

#include "glider/client/action_node.h"
#include "testing/cluster.h"

namespace glider {
namespace {

using core::Action;
using core::ActionContext;
using core::ActionInputStream;
using core::ActionNode;
using core::ActionOutputStream;

// Throws from every hook.
class ThrowingAction : public Action {
 public:
  void onCreate(ActionContext&) override {
    if (throw_on_create) throw std::runtime_error("create boom");
  }
  void onWrite(ActionInputStream& in, ActionContext&) override {
    (void)in.ReadChunk();
    throw std::runtime_error("write boom");
  }
  void onRead(ActionOutputStream& out, ActionContext&) override {
    (void)out.Write("partial");
    throw std::runtime_error("read boom");
  }
  static inline bool throw_on_create = false;
};
GLIDER_REGISTER_ACTION("fail.throwing", ThrowingAction);

// Returns from onWrite immediately, never consuming the stream.
class IgnoringAction : public Action {
 public:
  void onWrite(ActionInputStream&, ActionContext&) override {}
};
GLIDER_REGISTER_ACTION("fail.ignoring", IgnoringAction);

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::ClusterOptions options;
    options.slots_per_server = 2;  // small: tests slot exhaustion
    options.blocks_per_server = 8;
    options.block_size = 64 * 1024;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    auto client = cluster_->NewInternalClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).value();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
  std::unique_ptr<nk::StoreClient> client_;
};

TEST_F(FailureTest, ThrowingOnCreateFailsCreation) {
  ThrowingAction::throw_on_create = true;
  auto node = ActionNode::Create(*client_, "/t", "fail.throwing");
  EXPECT_EQ(node.status().code(), StatusCode::kInternal);
  ThrowingAction::throw_on_create = false;
  // Node was rolled back; the path is reusable.
  EXPECT_FALSE(client_->Lookup("/t").ok());
  EXPECT_TRUE(ActionNode::Create(*client_, "/t", "fail.throwing").ok());
}

TEST_F(FailureTest, ThrowingOnWriteStillCompletesClose) {
  ThrowingAction::throw_on_create = false;
  auto node = ActionNode::Create(*client_, "/t", "fail.throwing");
  ASSERT_TRUE(node.ok());
  auto writer = node->OpenWriter();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write("data\n").ok());
  // The method threw server-side; the close must not hang and the action
  // must remain usable for subsequent streams.
  EXPECT_TRUE((*writer)->Close().ok());
  auto writer2 = node->OpenWriter();
  ASSERT_TRUE(writer2.ok());
  ASSERT_TRUE((*writer2)->Write("again\n").ok());
  EXPECT_TRUE((*writer2)->Close().ok());
}

TEST_F(FailureTest, ThrowingOnReadEndsStream) {
  ThrowingAction::throw_on_create = false;
  auto node = ActionNode::Create(*client_, "/t", "fail.throwing");
  ASSERT_TRUE(node.ok());
  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::string out;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    out += chunk->ToString();
  }
  EXPECT_EQ(out, "partial");  // data before the throw arrives; then EOS
  EXPECT_TRUE((*reader)->Close().ok());
}

TEST_F(FailureTest, MethodIgnoringItsStreamStillAcksWrites) {
  auto node = ActionNode::Create(*client_, "/i", "fail.ignoring");
  ASSERT_TRUE(node.ok());
  auto writer = node->OpenWriter();
  ASSERT_TRUE(writer.ok());
  // Far more data than the per-stream channel buffers: the server-side
  // drain must keep acknowledging after the method returned.
  const std::string chunk(64 * 1024, 'x');
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*writer)->Write(chunk).ok()) << i;
  }
  EXPECT_TRUE((*writer)->Close().ok());
}

TEST_F(FailureTest, SlotExhaustionReportsResourceExhausted) {
  // 1 active server x 2 slots.
  ASSERT_TRUE(ActionNode::Create(*client_, "/a0", "fail.ignoring").ok());
  ASSERT_TRUE(ActionNode::Create(*client_, "/a1", "fail.ignoring").ok());
  auto third = ActionNode::Create(*client_, "/a2", "fail.ignoring");
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // Deleting one frees its slot for reuse.
  ASSERT_TRUE(ActionNode::Delete(*client_, "/a0").ok());
  EXPECT_TRUE(ActionNode::Create(*client_, "/a2", "fail.ignoring").ok());
}

TEST_F(FailureTest, BlockExhaustionSurfacesOnWrite) {
  // 8 blocks x 64 KiB = 512 KiB capacity.
  ASSERT_TRUE(client_->CreateNode("/big", nk::NodeType::kFile).ok());
  auto writer = nk::FileWriter::Open(*client_, "/big");
  ASSERT_TRUE(writer.ok());
  const std::string chunk(64 * 1024, 'x');
  // Write enough to exceed capacity; the error must surface on a Write or
  // at the latest on Close (writes complete asynchronously).
  Status status;
  for (int i = 0; i < 20 && status.ok(); ++i) status = (*writer)->Write(chunk);
  const Status close_status = (*writer)->Close();
  EXPECT_TRUE(!status.ok() || !close_status.ok());
  EXPECT_EQ((!status.ok() ? status : close_status).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FailureTest, FileOpsOnActionNodeRejected) {
  auto node = ActionNode::Create(*client_, "/a", "fail.ignoring");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(nk::FileWriter::Open(*client_, "/a").status().code(),
            StatusCode::kWrongNodeType);
  EXPECT_EQ(nk::FileReader::Open(*client_, "/a").status().code(),
            StatusCode::kWrongNodeType);
}

TEST_F(FailureTest, ActionOpsOnFileNodeRejected) {
  ASSERT_TRUE(client_->CreateNode("/f", nk::NodeType::kFile).ok());
  EXPECT_EQ(ActionNode::Lookup(*client_, "/f").status().code(),
            StatusCode::kWrongNodeType);
}

TEST_F(FailureTest, DataClassCannotHostActions) {
  // Directly asking the metadata server to create an action works only in
  // the active class; a plain node cannot claim the active class either.
  auto node = client_->CreateNode("/x", nk::NodeType::kFile, nk::kActiveClass);
  EXPECT_EQ(node.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FailureTest, UnknownOpcodeRejected) {
  auto conn = cluster_->transport().Connect(cluster_->metadata_address(),
                                            nullptr);
  ASSERT_TRUE(conn.ok());
  auto result = (*conn)->CallSync(0x7777, Buffer{});
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(FailureTest, DoubleCloseAndUseAfterCloseAreSafe) {
  auto node = ActionNode::Create(*client_, "/i", "fail.ignoring");
  ASSERT_TRUE(node.ok());
  auto writer = node->OpenWriter();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Write("x").ok());
  EXPECT_TRUE((*writer)->Close().ok());
  EXPECT_TRUE((*writer)->Close().ok());  // idempotent
  EXPECT_EQ((*writer)->Write("y").code(), StatusCode::kClosed);
}

TEST_F(FailureTest, DeleteWhileNotStreamingIsClean) {
  auto node = ActionNode::Create(*client_, "/d", "fail.ignoring");
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(ActionNode::Delete(*client_, "/d").ok());
  // Operations on the stale proxy fail cleanly.
  auto writer = node->OpenWriter();
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace glider
