// Protocol robustness: decoding never crashes or over-reads on corrupted,
// truncated or adversarial payloads (sweep-style "fuzz lite" with
// deterministic mutations), and servers reject garbage cleanly.
#include <gtest/gtest.h>

#include "common/random.h"
#include "glider/protocol.h"
#include "net/message.h"
#include "nodekernel/protocol.h"
#include "testing/cluster.h"

namespace glider {
namespace {

// Every prefix of a valid frame must decode-fail gracefully, never crash.
TEST(RobustnessTest, MessageDecodeAllTruncations) {
  net::Message m;
  m.opcode = 42;
  m.request_id = 77;
  m.payload = Buffer::FromString("some payload content here");
  const Buffer frame = m.Encode();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    auto decoded = net::Message::Decode(ByteSpan(frame.data(), cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << cut << " decoded";
  }
  EXPECT_TRUE(net::Message::Decode(frame.span()).ok());
}

TEST(RobustnessTest, MessageDecodeRandomBytes) {
  SplitMix64 rng(99);
  for (int round = 0; round < 200; ++round) {
    Buffer junk(rng.NextBelow(200));
    for (std::size_t i = 0; i < junk.size(); ++i) {
      junk.data()[i] = static_cast<std::uint8_t>(rng.Next());
    }
    // Must not crash; may or may not decode (random bytes can form a
    // valid tiny frame).
    (void)net::Message::Decode(junk.span());
  }
}

TEST(RobustnessTest, MessageDecodeBitFlips) {
  net::Message m;
  m.opcode = 7;
  m.payload = Buffer::FromString("abcdefgh");
  const Buffer frame = m.Encode();
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    Buffer mutated(frame.data(), frame.size());
    mutated.data()[byte] ^= 0xFF;
    auto decoded = net::Message::Decode(mutated.span());
    if (decoded.ok()) {
      // A flip in opcode/status/id decodes fine; payload length flips must
      // have been caught.
      EXPECT_LE(decoded->payload.size(), frame.size());
    }
  }
}

template <typename T>
void TruncationSweep(const Buffer& encoded) {
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    (void)T::Decode(ByteSpan(encoded.data(), cut));  // must not crash
  }
  EXPECT_TRUE(T::Decode(encoded.span()).ok());
}

TEST(RobustnessTest, ProtocolStructsSurviveTruncation) {
  {
    nk::CreateNodeRequest req;
    req.path = "/x/y/z";
    req.type = nk::NodeType::kAction;
    req.action_type = "some.action";
    req.config = Buffer::FromString("config-bytes");
    TruncationSweep<nk::CreateNodeRequest>(req.Encode());
  }
  {
    nk::NodeInfoResponse resp;
    resp.info.action_type = "t";
    resp.info.slot = {1, 2, "addr:1234"};
    TruncationSweep<nk::NodeInfoResponse>(resp.Encode());
  }
  {
    nk::WriteBlockRequest req;
    req.data = Buffer::FromString("0123456789");
    TruncationSweep<nk::WriteBlockRequest>(req.Encode());
  }
  {
    core::StreamWriteRequest req;
    req.stream_id = 9;
    req.seq = 3;
    req.data = Buffer::FromString("abc");
    TruncationSweep<core::StreamWriteRequest>(req.Encode());
  }
  {
    core::ActionCreateRequest req;
    req.action_type = "x";
    req.config = Buffer::FromString("cfg");
    TruncationSweep<core::ActionCreateRequest>(req.Encode());
  }
}

// Live servers must answer malformed payloads with errors, not crash.
TEST(RobustnessTest, ServersRejectGarbagePayloads) {
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());

  SplitMix64 rng(7);
  const std::vector<std::string> addresses = {
      (*cluster)->metadata_address(), (*cluster)->data(0).address(),
      (*cluster)->active(0).address()};
  const std::vector<std::uint16_t> opcodes = {
      nk::kCreateNode, nk::kLookup,       nk::kGetBlock,
      nk::kWriteBlock, nk::kReadBlock,    core::kActionCreate,
      core::kStreamOpen, core::kStreamWrite, core::kStreamRead};
  for (const auto& address : addresses) {
    auto conn = (*cluster)->transport().Connect(address, nullptr);
    ASSERT_TRUE(conn.ok());
    for (const std::uint16_t opcode : opcodes) {
      Buffer junk(rng.NextBelow(40));
      for (std::size_t i = 0; i < junk.size(); ++i) {
        junk.data()[i] = static_cast<std::uint8_t>(rng.Next());
      }
      auto result = (*conn)->CallSync(opcode, std::move(junk));
      // Either a clean decode error or (rarely) a valid-looking request
      // that fails on semantics; never a hang or crash.
      if (result.ok()) continue;
      EXPECT_NE(result.status().code(), StatusCode::kOk);
    }
  }
  // The cluster must still be fully functional afterwards.
  auto client = (*cluster)->NewInternalClient();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->CreateNode("/after", nk::NodeType::kFile).ok());
  EXPECT_TRUE((*client)->PutValue("/after_kv", AsBytes("v")).ok());
}

// Stream operations referencing unknown streams / slots fail cleanly.
TEST(RobustnessTest, UnknownStreamAndSlotIdsRejected) {
  auto cluster = testing::MiniCluster::Start({});
  ASSERT_TRUE(cluster.ok());
  auto conn =
      (*cluster)->transport().Connect((*cluster)->active(0).address(), nullptr);
  ASSERT_TRUE(conn.ok());

  core::StreamWriteRequest write;
  write.stream_id = 424242;
  write.data = Buffer::FromString("x");
  EXPECT_EQ((*conn)->CallSync(core::kStreamWrite, write.Encode())
                .status()
                .code(),
            StatusCode::kNotFound);

  core::StreamReadRequest read;
  read.stream_id = 424242;
  EXPECT_EQ(
      (*conn)->CallSync(core::kStreamRead, read.Encode()).status().code(),
      StatusCode::kNotFound);

  core::StreamOpenRequest open;
  open.slot = 12345;
  EXPECT_FALSE((*conn)->CallSync(core::kStreamOpen, open.Encode()).ok());

  core::SlotRequest stat;
  stat.slot = 3;  // in range but empty
  EXPECT_EQ(
      (*conn)->CallSync(core::kActionStat, stat.Encode()).status().code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace glider
