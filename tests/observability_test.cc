// Tests of the observability layer (DESIGN.md "Observability"): latency
// histogram bucketing and merge, concurrent MetricsRegistry updates, span
// parent/child linkage, trace-context propagation across both transports,
// and the end-to-end FaaS -> RPC -> action-method trace tree.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "faas/invoker.h"
#include "glider/client/action_node.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::SpanRecord;
using obs::TraceRecorder;

// Global trace state is per-process; this binary owns it.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override { obs::SetEnabled(false); }

  static std::vector<SpanRecord> SpansNamed(
      const std::vector<SpanRecord>& spans, const std::string& name) {
    std::vector<SpanRecord> out;
    for (const auto& s : spans) {
      if (s.name == name) out.push_back(s);
    }
    return out;
  }
};

// ---- Histogram buckets ------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i>=1 holds [2^(i-1), 2^i-1].
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ull),
            LatencyHistogram::kNumBuckets - 1);

  EXPECT_EQ(LatencyHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(LatencyHistogram::BucketUpperBound(3), 7u);
  // Every representable value falls inside its bucket's bounds.
  for (std::uint64_t v : {1ull, 5ull, 100ull, 4096ull, 1234567ull}) {
    const std::size_t b = LatencyHistogram::BucketIndex(v);
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(b));
    EXPECT_GT(v, LatencyHistogram::BucketUpperBound(b - 1));
  }
}

TEST(LatencyHistogramTest, RecordAndPercentiles) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(50), 0u);
  for (int i = 0; i < 100; ++i) hist.Record(10);
  hist.Record(1000);

  EXPECT_EQ(hist.Count(), 101u);
  EXPECT_EQ(hist.Min(), 10u);
  EXPECT_EQ(hist.Max(), 1000u);
  EXPECT_EQ(hist.Sum(), 100u * 10 + 1000);
  // p50 lands in 10's bucket [8, 15]; the report is the upper bound,
  // clamped to the observed extremes.
  EXPECT_GE(hist.Percentile(50), 10u);
  EXPECT_LE(hist.Percentile(50), 15u);
  EXPECT_EQ(hist.Percentile(100), 1000u);

  // A single-valued distribution reports exactly that value.
  LatencyHistogram exact;
  for (int i = 0; i < 10; ++i) exact.Record(37);
  EXPECT_EQ(exact.Percentile(50), 37u);
  EXPECT_EQ(exact.Percentile(99), 37u);
}

TEST(LatencyHistogramTest, MergeAddsBucketsAndExtremes) {
  LatencyHistogram a, b;
  a.Record(4);
  a.Record(5);
  b.Record(1000);

  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Min(), 4u);
  EXPECT_EQ(a.Max(), 1000u);
  EXPECT_EQ(a.BucketCount(LatencyHistogram::BucketIndex(1000)), 1u);
  EXPECT_EQ(a.BucketCount(LatencyHistogram::BucketIndex(4)), 2u);

  // Merging an empty histogram must not disturb min/max.
  LatencyHistogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.Min(), 4u);
  EXPECT_EQ(a.Max(), 1000u);
}

// ---- Registry under concurrency ---------------------------------------------

TEST(MetricsRegistryTest, ConcurrentUpdatesUnderThreadPool) {
  auto& registry = MetricsRegistry::Global();
  auto& counter = registry.GetCounter("test.concurrent_counter");
  auto& hist = registry.GetHistogram("test.concurrent_hist");
  counter.Reset();
  hist.Reset();

  constexpr int kTasks = 64;
  constexpr int kIterations = 1000;
  ThreadPool pool(8);
  std::atomic<int> done{0};
  for (int t = 0; t < kTasks; ++t) {
    ASSERT_TRUE(pool.Submit([&registry, &done] {
                      // Resolve by name concurrently too: same handle back.
                      auto& c = registry.GetCounter("test.concurrent_counter");
                      auto& h = registry.GetHistogram("test.concurrent_hist");
                      for (int i = 0; i < kIterations; ++i) {
                        c.Increment();
                        h.Record(static_cast<std::uint64_t>(i));
                      }
                      done.fetch_add(1);
                    })
                    .ok());
  }
  pool.Shutdown();
  ASSERT_EQ(done.load(), kTasks);
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kIterations);
  EXPECT_EQ(hist.Count(), static_cast<std::uint64_t>(kTasks) * kIterations);
  EXPECT_EQ(hist.Min(), 0u);
  EXPECT_EQ(hist.Max(), kIterations - 1);
}

// ---- Span linkage -----------------------------------------------------------

TEST_F(ObservabilityTest, SpanParentChildLinkage) {
  std::uint64_t root_id = 0, child_id = 0;
  {
    obs::Span root = obs::Span::Root("test", "root");
    ASSERT_TRUE(root.active());
    root_id = root.span_id();
    {
      obs::Span child("test", "child");
      ASSERT_TRUE(child.active());
      child_id = child.span_id();
      EXPECT_EQ(child.trace_id(), root.trace_id());
    }
  }
  const auto spans = TraceRecorder::Global().Snapshot();
  const auto roots = SpansNamed(spans, "root");
  const auto children = SpansNamed(spans, "child");
  ASSERT_EQ(roots.size(), 1u);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(roots[0].span_id, root_id);
  EXPECT_EQ(roots[0].parent_span_id, 0u);
  EXPECT_EQ(children[0].span_id, child_id);
  EXPECT_EQ(children[0].parent_span_id, root_id);
  EXPECT_EQ(children[0].trace_id, roots[0].trace_id);

  // Spans outside any trace are inert and record nothing.
  TraceRecorder::Global().Clear();
  { obs::Span orphan("test", "orphan"); }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(ObservabilityTest, ChromeJsonExport) {
  {
    obs::Span root = obs::Span::Root("test", "json-span");
  }
  const std::string json = TraceRecorder::Global().ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"json-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

// ---- Trace propagation over RPC (both transports) ---------------------------

class RecordingService : public net::Service {
 public:
  void Handle(net::Message request, net::Responder responder) override {
    // The transport's HandleWithObs wrapper installed the frame's trace
    // context before calling us.
    last_context = obs::CurrentTraceContext();
    responder.SendOk(request, std::move(request.payload));
  }
  obs::TraceContext last_context;
};

class TransportTraceTest : public ObservabilityTest,
                           public ::testing::WithParamInterface<bool> {};

TEST_P(TransportTraceTest, ContextCrossesTheWire) {
  std::unique_ptr<net::Transport> transport;
  if (GetParam()) {
    transport = std::make_unique<net::TcpTransport>(2);
  } else {
    transport = std::make_unique<net::InProcTransport>(2);
  }
  auto service = std::make_shared<RecordingService>();
  auto listener = transport->Listen("", service);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto conn = transport->Connect((*listener)->address(), nullptr);
  ASSERT_TRUE(conn.ok());

  std::uint64_t trace_id = 0;
  std::uint64_t root_span_id = 0;
  {
    obs::Span root = obs::Span::Root("test", "client-root");
    trace_id = root.trace_id();
    root_span_id = root.span_id();
    auto result = (*conn)->CallSync(3, Buffer::FromString("x"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  // The handler observed the caller's trace id even though it ran on a
  // different thread (and, for TCP, decoded it from the wire frame).
  EXPECT_EQ(service->last_context.trace_id, trace_id);
  EXPECT_NE(service->last_context.span_id, 0u);

  const auto spans = TraceRecorder::Global().Snapshot();
  const auto client = SpansNamed(spans, "rpc.Lookup");
  const auto server = SpansNamed(spans, "handle.Lookup");
  ASSERT_EQ(client.size(), 1u);
  ASSERT_EQ(server.size(), 1u);
  // One trace: client span under the root, server span under the client
  // span (its id crossed the wire in the frame header).
  EXPECT_EQ(client[0].trace_id, trace_id);
  EXPECT_EQ(server[0].trace_id, trace_id);
  EXPECT_EQ(client[0].parent_span_id, root_span_id);
  EXPECT_EQ(server[0].parent_span_id, client[0].span_id);
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportTraceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tcp" : "InProc";
                         });

// ---- End-to-end: FaaS invocation -> RPC -> action method --------------------

class EndToEndTraceTest : public ObservabilityTest,
                          public ::testing::WithParamInterface<bool> {};

TEST_P(EndToEndTraceTest, InvocationTreeSpansAllPlanes) {
  workloads::RegisterWorkloadActions();
  testing::ClusterOptions options;
  options.use_tcp = GetParam();
  auto cluster = testing::MiniCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  {
    auto driver = (*cluster)->NewInternalClient();
    ASSERT_TRUE(driver.ok());
    auto node = core::ActionNode::Create(**driver, "/merge", "glider.merge",
                                         /*interleave=*/true);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
  }

  TraceRecorder::Global().Clear();
  faas::Invoker invoker(**cluster);
  const Status ran =
      invoker.RunStage(1, [](faas::WorkerContext& ctx) -> Status {
        GLIDER_ASSIGN_OR_RETURN(auto node,
                                core::ActionNode::Lookup(*ctx.store, "/merge"));
        GLIDER_ASSIGN_OR_RETURN(auto writer, node.OpenWriter());
        GLIDER_RETURN_IF_ERROR(writer->Write("alpha 1\nbeta 2\n"));
        return writer->Close();
      });
  ASSERT_TRUE(ran.ok()) << ran.ToString();

  const auto spans = TraceRecorder::Global().Snapshot();
  const auto roots = SpansNamed(spans, "faas.invoke.w0");
  ASSERT_EQ(roots.size(), 1u);
  const std::uint64_t trace_id = roots[0].trace_id;

  // Child RPC spans from the worker's clients, in the same trace.
  std::size_t rpc_children = 0;
  for (const auto& s : spans) {
    if (s.trace_id == trace_id && std::string(s.category) == "rpc" &&
        s.parent_span_id == roots[0].span_id) {
      ++rpc_children;
    }
  }
  EXPECT_GT(rpc_children, 0u) << "no RPC spans under the invocation root";

  // The action method executed under the same trace id, with queue-wait
  // and run recorded separately.
  const auto queue = SpansNamed(spans, "action.onWrite.queue");
  const auto run = SpansNamed(spans, "action.onWrite.run");
  ASSERT_EQ(queue.size(), 1u);
  ASSERT_EQ(run.size(), 1u);
  EXPECT_EQ(queue[0].trace_id, trace_id);
  EXPECT_EQ(run[0].trace_id, trace_id);
  EXPECT_GE(run[0].start_us, queue[0].start_us);

  // The histograms were fed too.
  auto& registry = MetricsRegistry::Global();
  EXPECT_GT(registry.GetHistogram("action.onWrite.queue_us").Count(), 0u);
  EXPECT_GT(registry.GetHistogram("action.onWrite.run_us").Count(), 0u);
  EXPECT_GT(registry.GetHistogram("faas.invoke_us").Count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, EndToEndTraceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tcp" : "InProc";
                         });

// Disabled mode: spans must record nothing (the overhead-free default).
TEST(TraceDisabledTest, NothingRecordedWhenDisabled) {
  obs::SetEnabled(false);
  TraceRecorder::Global().Clear();
  {
    obs::Span root = obs::Span::Root("test", "off");
    EXPECT_FALSE(root.active());
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

}  // namespace
}  // namespace glider
