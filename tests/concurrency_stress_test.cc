// Threaded stress of the fine-grained server concurrency model: the
// metadata server's shared_mutex read path, the active server's striped
// stream table and per-slot locking, and MethodRunner's thread reaping.
// Iteration counts are sized so the suite stays fast under ASan and TSan
// (ci/check.sh runs both); the value of these tests is the sanitizer run.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "glider/client/action_node.h"
#include "testing/cluster.h"
#include "workloads/actions.h"

namespace glider {
namespace {

constexpr std::size_t kThreads = 8;
constexpr int kIterations = 20;

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workloads::RegisterWorkloadActions();
    testing::ClusterOptions options;
    options.data_servers = 2;
    options.active_servers = 2;
    options.slots_per_server = 32;
    options.blocks_per_server = 256;
    auto cluster = testing::MiniCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  std::unique_ptr<nk::StoreClient> NewClient() {
    auto client = cluster_->NewInternalClient();
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  std::unique_ptr<testing::MiniCluster> cluster_;
};

// Readers (lookup + list) run against the shared_mutex read path while
// writers create and delete nodes on the same server.
TEST_F(ConcurrencyStressTest, MetadataReadersOverlapWriters) {
  {
    auto setup = NewClient();
    ASSERT_TRUE(setup->CreateNode("/shared", nk::NodeType::kFile).ok());
    ASSERT_TRUE(setup->CreateNode("/dir", nk::NodeType::kDirectory).ok());
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      auto client = NewClient();
      for (int i = 0; i < kIterations; ++i) {
        if (t % 2 == 0) {
          ASSERT_TRUE(client->Lookup("/shared").ok());
          ASSERT_TRUE(client->List("/dir").ok());
        } else {
          const std::string path =
              "/dir/t" + std::to_string(t) + "_" + std::to_string(i);
          ASSERT_TRUE(client->CreateNode(path, nk::NodeType::kFile).ok());
          ASSERT_TRUE(client->Delete(path).ok());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto client = NewClient();
  auto listing = client->List("/dir");
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->entries.empty());
}

// Racing creates of one path must elect exactly one winner per round; the
// path is deleted between rounds so every round races afresh.
TEST_F(ConcurrencyStressTest, CreateRaceElectsOneWinner) {
  auto cleaner = NewClient();
  for (int round = 0; round < 6; ++round) {
    const std::string path = "/race" + std::to_string(round);
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([this, &path, &winners] {
        auto client = NewClient();
        auto created = client->CreateNode(path, nk::NodeType::kFile);
        if (created.ok()) {
          winners.fetch_add(1);
        } else {
          EXPECT_EQ(created.status().code(), StatusCode::kAlreadyExists);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(winners.load(), 1) << path;
    ASSERT_TRUE(cleaner->Delete(path).ok());
  }
}

// Each thread repeatedly creates its own action, streams through it, reads
// the result back and deletes it. Exercises slot reuse under the per-slot
// locks, the striped stream table, and MethodRunner reaping (every stream
// open spawns a method thread).
TEST_F(ConcurrencyStressTest, ActionStreamChurn) {
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      auto client = NewClient();
      for (int i = 0; i < kIterations / 4; ++i) {
        const std::string path =
            "/act" + std::to_string(t) + "_" + std::to_string(i);
        const std::string line = "1," + std::to_string(t) + "\n";
        auto node = core::ActionNode::Create(*client, path, "glider.merge");
        ASSERT_TRUE(node.ok()) << node.status().ToString();
        auto writer = node->OpenWriter();
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE((*writer)->Write(line).ok());
        ASSERT_TRUE((*writer)->Close().ok());
        auto reader = node->OpenReader();
        ASSERT_TRUE(reader.ok());
        auto chunk = (*reader)->ReadChunk();
        ASSERT_TRUE(chunk.ok());
        EXPECT_EQ(chunk->ToString(), line);
        ASSERT_TRUE((*reader)->Close().ok());
        ASSERT_TRUE(core::ActionNode::Delete(*client, path).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
}

// Concurrent writers to ONE interleaved action: per-slot locking must let
// all streams make progress and deliver every chunk exactly once.
TEST_F(ConcurrencyStressTest, SharedActionConcurrentWriters) {
  auto setup = NewClient();
  auto node =
      core::ActionNode::Create(*setup, "/merge", "glider.merge",
                               /*interleave=*/true);
  ASSERT_TRUE(node.ok()) << node.status().ToString();

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      auto client = NewClient();
      auto mine = core::ActionNode::Lookup(*client, "/merge");
      ASSERT_TRUE(mine.ok());
      auto writer = mine->OpenWriter();
      ASSERT_TRUE(writer.ok());
      for (int i = 0; i < kIterations; ++i) {
        const std::string line =
            std::to_string(t) + "," + std::to_string(i) + "\n";
        ASSERT_TRUE((*writer)->Write(line).ok());
      }
      ASSERT_TRUE((*writer)->Close().ok());
    });
  }
  for (auto& t : threads) t.join();

  auto reader = node->OpenReader();
  ASSERT_TRUE(reader.ok());
  std::string merged;
  while (true) {
    auto chunk = (*reader)->ReadChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    merged += chunk->ToString();
  }
  ASSERT_TRUE((*reader)->Close().ok());

  // The merge aggregates per key: one line per writer, each value the sum
  // of that writer's 0..kIterations-1. A lost or doubled chunk shows up as
  // a wrong sum.
  const long expected_sum = kIterations * (kIterations - 1) / 2;
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < merged.size()) {
    const std::size_t eol = merged.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = merged.substr(pos, eol - pos);
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    EXPECT_EQ(std::stol(line.substr(comma + 1)), expected_sum) << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, kThreads);
}

}  // namespace
}  // namespace glider
