// Unit tests of the S3-like object store, its SELECT emulation, and the
// S3Service/S3Client RPC front.
#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "faas/s3_service.h"
#include "faas/s3like.h"
#include "net/inproc_transport.h"

namespace glider::faas {
namespace {

S3Like::Options FastOptions() {
  S3Like::Options options;
  options.op_latency = std::chrono::microseconds(0);
  options.select_scan_bps = 0;
  return options;
}

TEST(S3LikeTest, PutGetRoundTrip) {
  S3Like s3(FastOptions(), nullptr);
  ASSERT_TRUE(s3.Put("k", "value", nullptr).ok());
  auto got = s3.Get("k", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
  EXPECT_EQ(s3.Get("missing", nullptr).status().code(),
            StatusCode::kNotFound);
}

TEST(S3LikeTest, OverwriteAdjustsStoredBytes) {
  auto metrics = std::make_shared<Metrics>();
  S3Like s3(FastOptions(), metrics);
  ASSERT_TRUE(s3.Put("k", "1234567890", nullptr).ok());
  EXPECT_EQ(metrics->StoredBytes(), 10);
  ASSERT_TRUE(s3.Put("k", "123", nullptr).ok());
  EXPECT_EQ(metrics->StoredBytes(), 3);
  ASSERT_TRUE(s3.Delete("k").ok());
  EXPECT_EQ(metrics->StoredBytes(), 0);
  EXPECT_EQ(s3.TotalStoredBytes(), 0u);
}

TEST(S3LikeTest, SelectLinesShipsOnlyMatches) {
  auto metrics = std::make_shared<Metrics>();
  S3Like s3(FastOptions(), metrics);
  ASSERT_TRUE(s3.Put("o", "keep 1\ndrop 2\nkeep 3\n", nullptr).ok());

  auto link = net::LinkModel::Unshaped(LinkClass::kFaas, metrics);
  auto out = s3.SelectLines(
      "o", [](std::string_view line) { return line.starts_with("keep"); },
      link);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "keep 1\nkeep 3\n");
  // Network carried only the matches; the scan covered the whole object.
  EXPECT_EQ(metrics->BytesReceived(LinkClass::kFaas), out->size());
  EXPECT_EQ(s3.ScannedBytes(), 21u);
}

TEST(S3LikeTest, SelectSampleEveryNth) {
  S3Like s3(FastOptions(), nullptr);
  std::string object;
  for (int i = 0; i < 10; ++i) object += "line" + std::to_string(i) + "\n";
  ASSERT_TRUE(s3.Put("o", object, nullptr).ok());
  auto sampled = s3.SelectSample("o", 3, nullptr);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(*sampled, "line0\nline3\nline6\nline9\n");
}

TEST(S3LikeTest, ScanBandwidthCostsTime) {
  S3Like::Options options = FastOptions();
  options.select_scan_bps = 10'000'000;  // 10 MB/s
  S3Like s3(options, nullptr);
  ASSERT_TRUE(s3.Put("big", std::string(1 << 20, 'x'), nullptr).ok());
  Stopwatch timer;
  ASSERT_TRUE(s3.SelectLines("big", [](std::string_view) { return false; },
                             nullptr)
                  .ok());
  EXPECT_GT(timer.Seconds(), 0.08);  // ~100 ms to scan 1 MiB at 10 MB/s
}

TEST(S3LikeTest, OpLatencyApplies) {
  S3Like::Options options = FastOptions();
  options.op_latency = std::chrono::microseconds(30'000);
  S3Like s3(options, nullptr);
  Stopwatch timer;
  ASSERT_TRUE(s3.Put("k", "v", nullptr).ok());
  EXPECT_GT(timer.Seconds(), 0.025);
}

TEST(S3LikeTest, ConcurrentPutsAreAtomic) {
  S3Like s3(FastOptions(), nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(s3.Put("key_" + std::to_string(t) + "_" +
                               std::to_string(i),
                           std::string(100, 'x'), nullptr)
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s3.TotalStoredBytes(), 8u * 50 * 100);
}

// ---- RPC front (S3Service / S3Client) ---------------------------------------

class S3ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<S3Like>(FastOptions(), nullptr);
    service_ = std::make_shared<S3Service>(store_.get(), nullptr);
    ASSERT_TRUE(service_->Start(transport_).ok());
    auto conn = transport_.Connect(service_->address(), nullptr);
    ASSERT_TRUE(conn.ok());
    client_ = std::make_unique<S3Client>(std::move(conn).value());
  }

  // The listener holds a shared_ptr to the service; stop explicitly so the
  // service (and the raw store pointer it captured) is actually released.
  void TearDown() override { service_->Stop(); }

  net::InProcTransport transport_{2};
  std::unique_ptr<S3Like> store_;
  std::shared_ptr<S3Service> service_;
  std::unique_ptr<S3Client> client_;
};

TEST_F(S3ServiceTest, PutGetDeleteOverRpc) {
  ASSERT_TRUE(client_->Put("k", "remote-value").ok());
  auto got = client_->Get("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "remote-value");

  auto size = client_->Size("k");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 12u);

  ASSERT_TRUE(client_->Delete("k").ok());
  EXPECT_EQ(client_->Get("k").status().code(), StatusCode::kNotFound);
}

TEST_F(S3ServiceTest, ErrorsTravelBackTyped) {
  EXPECT_EQ(client_->Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client_->Size("missing").status().code(), StatusCode::kNotFound);
}

TEST_F(S3ServiceTest, SelectSampleOverRpc) {
  std::string object;
  for (int i = 0; i < 6; ++i) object += "line" + std::to_string(i) + "\n";
  ASSERT_TRUE(client_->Put("o", object).ok());
  auto sampled = client_->SelectSample("o", 2);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(*sampled, "line0\nline2\nline4\n");
  // The sampled bytes came over the wire; the scan stayed server-side.
  EXPECT_EQ(store_->ScannedBytes(), object.size());
}

TEST_F(S3ServiceTest, WritesVisibleToDirectStoreAccess) {
  ASSERT_TRUE(client_->Put("shared", "via-rpc").ok());
  auto direct = store_->Get("shared", nullptr);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*direct, "via-rpc");
}

}  // namespace
}  // namespace glider::faas
