#include "glider/health_monitor.h"

#include <algorithm>
#include <utility>

#include "common/metrics_registry.h"
#include "net/rpc_client.h"
#include "net/rpc_obs.h"
#include "nodekernel/protocol.h"

namespace glider {

HealthMonitor::HealthMonitor(net::Transport* transport,
                             std::string metadata_address)
    : HealthMonitor(transport, std::move(metadata_address), Options{}) {}

HealthMonitor::HealthMonitor(net::Transport* transport,
                             std::string metadata_address, Options options)
    : transport_(transport), metadata_address_(std::move(metadata_address)),
      options_(options), detector_(options.detector) {}

HealthMonitor::~HealthMonitor() { Stop(); }

Result<std::shared_ptr<net::Connection>> HealthMonitor::Conn(
    const std::string& address) {
  auto it = conns_.find(address);
  if (it != conns_.end()) return it->second;
  GLIDER_ASSIGN_OR_RETURN(auto conn, transport_->Connect(address, nullptr));
  conns_[address] = conn;
  return conn;
}

void HealthMonitor::TickOnce() {
  // Refresh the target set on the first tick and every discover_every
  // after; a failed discovery keeps heartbeating the last-known set.
  if (ticks_until_discover_ == 0 || targets_.empty()) {
    ticks_until_discover_ = std::max<std::uint32_t>(options_.discover_every, 1);
    auto conn = Conn(metadata_address_);
    if (conn.ok()) {
      auto resp = net::Call<nk::ListServersResponse>(
          **conn, nk::kListServers, nk::EmptyRequest{});
      if (resp.ok()) {
        std::vector<std::string> targets;
        targets.push_back(metadata_address_);
        for (const auto& server : resp.value().servers) {
          if (std::find(targets.begin(), targets.end(), server.address) ==
              targets.end()) {
            targets.push_back(server.address);
          }
        }
        targets_ = std::move(targets);
      } else {
        conns_.erase(metadata_address_);
        if (targets_.empty()) targets_.push_back(metadata_address_);
      }
    } else if (targets_.empty()) {
      targets_.push_back(metadata_address_);
    }
  }
  --ticks_until_discover_;

  for (const std::string& address : targets_) {
    auto conn = Conn(address);
    if (!conn.ok()) continue;  // detector's phi keeps rising on its own
    obs::ClockSample clock_sample;
    clock_sample.send_us = obs::TraceNowMicros();
    auto resp = net::Call<net::HeartbeatResponse>(**conn, net::kHeartbeat,
                                                  Buffer{});
    clock_sample.recv_us = obs::TraceNowMicros();
    if (!resp.ok()) {
      conns_.erase(address);  // reconnect on the next tick
      continue;
    }
    // Every heartbeat doubles as an RTT-midpoint clock sample: the reply
    // already carries the peer's TraceNowMicros, so offset tracking is
    // free and converges as min-RTT ticks accumulate.
    clock_sample.remote_us = resp.value().server_time_us;
    clock_[address].AddSample(clock_sample);
    detector_.Heartbeat(address);
    detector_.ReportLoad(address, resp.value().load_index,
                         static_cast<std::int64_t>(resp.value().hotspot_slots));
  }
  Publish();
}

void HealthMonitor::Publish() {
  auto peers = detector_.Snapshot();
  if (options_.publish_metrics) {
    auto& registry = obs::MetricsRegistry::Global();
    for (const auto& peer : peers) {
      registry.GetGauge("health.phi." + peer.address)
          .Set(static_cast<std::int64_t>(peer.phi * 1000.0));
    }
    for (const auto& [address, estimator] : clock_) {
      if (!estimator.has_estimate()) continue;
      registry.GetGauge("clock.offset_us." + address)
          .Set(estimator.offset_us());
    }
  }
  if (options_.publish_board) {
    obs::HealthBoard::Global().Publish(std::move(peers));
  }
}

Status HealthMonitor::Start() {
  if (running_.exchange(true)) {
    return Status::AlreadyExists("health monitor already running");
  }
  {
    std::scoped_lock lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] {
    while (true) {
      TickOnce();
      std::unique_lock lock(stop_mu_);
      if (stop_cv_.wait_for(lock, options_.interval,
                            [this] { return stop_; })) {
        return;
      }
    }
  });
  return Status::Ok();
}

void HealthMonitor::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::scoped_lock lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (options_.publish_board) obs::HealthBoard::Global().SetRunning(false);
}

}  // namespace glider
