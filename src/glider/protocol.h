// Wire protocol of the active storage server (opcodes 30..49).
//
// Stream data operations carry a sequence number: network workers may pick
// up two operations of one stream concurrently, and the per-stream channel
// releases them in sequence order so the byte stream stays ordered (the
// paper's "each method execution is assigned an id and sequence number",
// §5).
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.h"
#include "nodekernel/types.h"

namespace glider::core {

enum Opcode : std::uint16_t {
  kActionCreate = 30,
  kActionDelete = 31,
  kStreamOpen = 32,
  kStreamWrite = 33,
  kStreamRead = 34,
  kStreamClose = 35,
  kActionStat = 36,
  kStreamWriteBatch = 37,
};

enum class StreamMode : std::uint8_t { kRead = 0, kWrite = 1 };

struct ActionCreateRequest {
  std::uint32_t slot = 0;
  std::string action_type;
  bool interleave = false;
  Buffer config;  // opaque creation parameters, delivered to onCreate

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU32(slot);
    w.PutString(action_type);
    w.PutBool(interleave);
    w.PutBytes(config.span());
    return std::move(w).Finish();
  }
  static Result<ActionCreateRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    ActionCreateRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.slot, r.U32());
    GLIDER_ASSIGN_OR_RETURN(req.action_type, r.String());
    GLIDER_ASSIGN_OR_RETURN(req.interleave, r.Bool());
    GLIDER_ASSIGN_OR_RETURN(auto config, r.Bytes());
    req.config = Buffer(config.data(), config.size());
    return req;
  }
  static Result<ActionCreateRequest> Decode(const Buffer& b) {
    BinaryReader r(b.span());
    ActionCreateRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.slot, r.U32());
    GLIDER_ASSIGN_OR_RETURN(req.action_type, r.String());
    GLIDER_ASSIGN_OR_RETURN(req.interleave, r.Bool());
    GLIDER_ASSIGN_OR_RETURN(req.config, GetBytesSlice(r, b));
    return req;
  }
};

struct SlotRequest {  // kActionDelete, kActionStat
  std::uint32_t slot = 0;

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU32(slot);
    return std::move(w).Finish();
  }
  static Result<SlotRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    SlotRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.slot, r.U32());
    return req;
  }
};

struct StreamOpenRequest {
  std::uint32_t slot = 0;
  StreamMode mode = StreamMode::kRead;

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU32(slot);
    w.PutU8(static_cast<std::uint8_t>(mode));
    return std::move(w).Finish();
  }
  static Result<StreamOpenRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamOpenRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.slot, r.U32());
    GLIDER_ASSIGN_OR_RETURN(auto mode_raw, r.U8());
    req.mode = static_cast<StreamMode>(mode_raw);
    return req;
  }
};

struct StreamOpenResponse {
  std::uint64_t stream_id = 0;

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU64(stream_id);
    return std::move(w).Finish();
  }
  static Result<StreamOpenResponse> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamOpenResponse resp;
    GLIDER_ASSIGN_OR_RETURN(resp.stream_id, r.U64());
    return resp;
  }
};

struct StreamWriteRequest {
  std::uint64_t stream_id = 0;
  std::uint64_t seq = 0;
  Buffer data;

  std::size_t WireBytes() const { return 8 + 8 + 4 + data.size(); }

  void Put(BinaryWriter& w) const {
    w.PutU64(stream_id);
    w.PutU64(seq);
    w.PutBytes(data.span());
  }
  Buffer Encode() const {
    BinaryWriter w(WireBytes());
    Put(w);
    return std::move(w).Finish();
  }
  // Hot-path encode backed by pooled chunk-sized storage.
  Buffer Encode(BufferPool& pool) const {
    BinaryWriter w(pool, WireBytes());
    Put(w);
    return std::move(w).Finish();
  }
  static Result<StreamWriteRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamWriteRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.seq, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto data, r.Bytes());
    req.data = Buffer(data.data(), data.size());
    return req;
  }
  // Zero-copy decode: `data` becomes a slice of the request payload, which
  // rides the stream channel to the action without further copies.
  static Result<StreamWriteRequest> Decode(const Buffer& b) {
    BinaryReader r(b.span());
    StreamWriteRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.seq, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.data, GetBytesSlice(r, b));
    return req;
  }
};

// Doorbell write: N contiguous stream operations (first_seq .. first_seq +
// chunks.size() - 1) in one frame, admitted to the stream channel under one
// lock with one wakeup and acknowledged as a unit once the LAST chunk is
// admitted. Client-side batching gathers small writes into this (see
// StoreClient::Options::write_batch_chunks); the chunk count is implicit —
// decoders read length-prefixed chunks until the payload ends, so encoders
// can stream chunks straight into the frame without backpatching a count.
struct StreamWriteBatchRequest {
  std::uint64_t stream_id = 0;
  std::uint64_t first_seq = 0;
  std::vector<Buffer> chunks;

  std::size_t WireBytes() const {
    std::size_t total = 8 + 8;
    for (const auto& c : chunks) total += 4 + c.size();
    return total;
  }

  Buffer Encode() const {
    BinaryWriter w(WireBytes());
    w.PutU64(stream_id);
    w.PutU64(first_seq);
    for (const auto& c : chunks) w.PutBytes(c.span());
    return std::move(w).Finish();
  }
  // Zero-copy decode: every chunk becomes a slice of the request payload,
  // riding the stream channel to the action without further copies.
  static Result<StreamWriteBatchRequest> Decode(const Buffer& b) {
    BinaryReader r(b.span());
    StreamWriteBatchRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.first_seq, r.U64());
    while (!r.AtEnd()) {
      GLIDER_ASSIGN_OR_RETURN(auto chunk, GetBytesSlice(r, b));
      req.chunks.push_back(std::move(chunk));
    }
    return req;
  }
  static Result<StreamWriteBatchRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamWriteBatchRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.first_seq, r.U64());
    while (!r.AtEnd()) {
      GLIDER_ASSIGN_OR_RETURN(auto chunk, r.Bytes());
      req.chunks.emplace_back(chunk.data(), chunk.size());
    }
    return req;
  }
};

struct StreamReadRequest {
  std::uint64_t stream_id = 0;
  std::uint64_t seq = 0;  // readers pipeline requests; served in order

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU64(stream_id);
    w.PutU64(seq);
    return std::move(w).Finish();
  }
  static Result<StreamReadRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamReadRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.seq, r.U64());
    return req;
  }
};

struct StreamCloseRequest {
  std::uint64_t stream_id = 0;
  // For write streams: total data operations sent, so the server can order
  // the end-of-stream after the last write.
  std::uint64_t seq = 0;

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU64(stream_id);
    w.PutU64(seq);
    return std::move(w).Finish();
  }
  static Result<StreamCloseRequest> Decode(ByteSpan b) {
    BinaryReader r(b);
    StreamCloseRequest req;
    GLIDER_ASSIGN_OR_RETURN(req.stream_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(req.seq, r.U64());
    return req;
  }
};

struct ActionStatResponse {
  std::uint64_t state_bytes = 0;

  Buffer Encode() const {
    BinaryWriter w;
    w.PutU64(state_bytes);
    return std::move(w).Finish();
  }
  static Result<ActionStatResponse> Decode(ByteSpan b) {
    BinaryReader r(b);
    ActionStatResponse resp;
    GLIDER_ASSIGN_OR_RETURN(resp.state_bytes, r.U64());
    return resp;
  }
};

}  // namespace glider::core
