#include "glider/action.h"

namespace glider::core {

void ActionRegistry::Register(const std::string& name, Factory factory) {
  std::scoped_lock lock(mu_);
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Action>> ActionRegistry::Create(
    const std::string& name) const {
  Factory factory;
  {
    std::scoped_lock lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("no action definition named '" + name + "'");
    }
    factory = it->second;
  }
  return factory();
}

bool ActionRegistry::Contains(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return factories_.contains(name);
}

ActionRegistry& ActionRegistry::Global() {
  static ActionRegistry registry;
  return registry;
}

}  // namespace glider::core
