#include "glider/stream_channel.h"

#include <utility>

#include "common/metrics_registry.h"
#include "common/profiler.h"
#include "common/trace.h"

namespace glider::core {

namespace {

// Off-CPU attribution: reports one channel-block episode to the profiler as
// a wait sample under the blocking thread's tag. `start_us` is 0 when the
// profiler was inactive at block time.
void ReportChannelWait(const char* kind, std::uint64_t start_us) {
  if (start_us == 0) return;
  obs::SamplingProfiler::Global().AddWaitSample(
      kind, obs::TraceNowMicros() - start_us);
}

std::uint64_t WaitStart() {
  return obs::SamplingProfiler::ActiveFast() ? obs::TraceNowMicros() : 0;
}

// Stamps the producer's trace context + enqueue time onto a task about to
// enter the queue (the push side runs under the producing span: a network
// worker inside HandleWithObs, or an action thread under its run span).
// The producer's principal is stamped and charged (push-side bytes) even
// when no trace is active — attribution works untraced.
void StampTask(DataTask& task) {
  if (!obs::Enabled()) return;
  task.principal = obs::CurrentPrincipal();
  task.enqueue_us = obs::TraceNowMicros();
  obs::LedgerCell push;
  push.bytes_in = task.data.size();
  push.invocations = 1;
  obs::ResourceLedger::Global().Charge(task.principal, "stream.channel", push);
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id == 0) return;
  task.ctx = ctx;
}

// Dequeue side of the stamp: one "channel.wait" transit span per task,
// parented to the producer's context, covering enqueue -> dequeue (only
// when traced). The pop-side ledger charge — transit time and delivered
// bytes billed to the producer's tenant — happens regardless. Safe from
// any thread (RecordSpan never touches thread-local trace state).
void RecordTransit(const DataTask& task) {
  if (task.enqueue_us == 0 || !obs::Enabled()) return;
  const std::uint64_t now = obs::TraceNowMicros();
  obs::LedgerCell pop;
  pop.queue_us = now - task.enqueue_us;
  pop.bytes_out = task.data.size();
  obs::ResourceLedger::Global().Charge(task.principal, "stream.channel", pop);
  if (task.ctx.trace_id == 0) return;
  obs::RecordSpan("channel", "channel.wait", task.ctx, obs::NewSpanId(),
                  task.enqueue_us, now);
}

// Counts monitor-yield events (the action gave up its execution turn while
// blocked on channel capacity/data — the interleaving mechanism of §4.3).
obs::Counter& YieldCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("channel.interleave_yields");
  return counter;
}

// Queue depth sampled after each enqueue: how full channels run under load.
obs::LatencyHistogram& OccupancyHist() {
  static obs::LatencyHistogram& hist =
      obs::MetricsRegistry::Global().GetHistogram("channel.occupancy");
  return hist;
}

// Callbacks collected under the lock, fired after release. Invoking client
// acks or deliveries under the channel lock could re-enter the channel or
// sleep inside link shaping, so they always run outside.
struct FireList {
  std::vector<std::pair<StreamChannel::AdmitFn, Status>> admits;
  std::vector<std::pair<StreamChannel::ConsumeFn, Result<DataTask>>> deliveries;

  // Null admit fns (batch interiors — only the last task of an
  // AsyncPushAll carries the ack) are dropped here, not earlier: the
  // promote fixpoint counts promoted items, not callbacks.
  void Add(std::vector<StreamChannel::AdmitFn> admit_fns) {
    for (auto& fn : admit_fns) {
      if (fn) admits.emplace_back(std::move(fn), Status::Ok());
    }
  }

  void FireAll() {
    for (auto& [fn, status] : admits) fn(status);
    for (auto& [fn, result] : deliveries) {
      if (result.ok()) RecordTransit(*result);
      fn(std::move(result));
    }
  }
};

}  // namespace

std::vector<StreamChannel::AdmitFn> StreamChannel::PromoteLocked() {
  // One entry per promoted item (entries may be null batch interiors), so
  // callers can use emptiness as the fixpoint progress signal.
  std::vector<AdmitFn> fired;
  while (!aborted_) {
    auto it = pushes_.find(next_push_seq_);
    if (it == pushes_.end()) break;
    // Admit while below capacity, or when the next read op is already
    // parked (the item will drain immediately in the match step).
    const bool drains_now = consumers_.contains(next_pop_seq_);
    if (items_.size() >= capacity_ && !drains_now) break;
    items_.push_back(std::move(it->second.task));
    if (obs::Enabled()) OccupancyHist().Record(items_.size());
    fired.push_back(std::move(it->second.on_admitted));
    pushes_.erase(it);
    ++next_push_seq_;
    // At capacity: let the caller's promote/match fixpoint loop drain into
    // parked consumers before admitting more.
    if (items_.size() >= capacity_) break;
  }
  return fired;
}

std::vector<std::pair<StreamChannel::ConsumeFn, Result<DataTask>>>
StreamChannel::MatchLocked() {
  std::vector<std::pair<ConsumeFn, Result<DataTask>>> fired;
  while (true) {
    auto it = consumers_.find(next_pop_seq_);
    if (it == consumers_.end()) break;
    if (!items_.empty()) {
      fired.emplace_back(std::move(it->second), std::move(items_.front()));
      items_.pop_front();
    } else if (producer_closed_ || aborted_) {
      fired.emplace_back(std::move(it->second),
                         Status::Closed("end of stream"));
    } else {
      break;  // no data yet; stay parked
    }
    consumers_.erase(it);
    ++next_pop_seq_;
  }
  return fired;
}

void StreamChannel::AsyncPush(std::uint64_t seq, DataTask task,
                              AdmitFn on_admitted) {
  StampTask(task);
  FireList fire;
  bool wake = false;
  {
    std::scoped_lock lock(mu_);
    if (aborted_) {
      fire.admits.emplace_back(std::move(on_admitted),
                               Status::Closed("stream aborted"));
    } else if (seq == next_push_seq_ && pushes_.empty() &&
               (items_.size() < capacity_ ||
                consumers_.contains(next_pop_seq_))) {
      // In-order fast path (the expected case): admit directly, skipping
      // the out-of-order buffering map.
      items_.push_back(std::move(task));
      if (obs::Enabled()) OccupancyHist().Record(items_.size());
      ++next_push_seq_;
      fire.admits.emplace_back(std::move(on_admitted), Status::Ok());
      for (auto& d : MatchLocked()) fire.deliveries.push_back(std::move(d));
    } else {
      pushes_.emplace(seq, PendingPush{std::move(task), std::move(on_admitted)});
      // Alternate promote/match until nothing moves.
      while (true) {
        auto admits = PromoteLocked();
        auto deliveries = MatchLocked();
        if (admits.empty() && deliveries.empty()) break;
        fire.Add(std::move(admits));
        for (auto& d : deliveries) fire.deliveries.push_back(std::move(d));
      }
    }
    PublishHintLocked();
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
  fire.FireAll();
}

void StreamChannel::AsyncPushAll(std::uint64_t first_seq,
                                 std::vector<DataTask> tasks,
                                 AdmitFn on_admitted) {
  if (tasks.empty()) {
    if (on_admitted) on_admitted(Status::Ok());
    return;
  }
  for (DataTask& task : tasks) StampTask(task);
  FireList fire;
  bool wake = false;
  {
    std::scoped_lock lock(mu_);
    if (aborted_) {
      fire.admits.emplace_back(std::move(on_admitted),
                               Status::Closed("stream aborted"));
    } else {
      std::size_t i = 0;
      if (first_seq == next_push_seq_ && pushes_.empty()) {
        // In-order fast path: admit the prefix that fits directly.
        while (i < tasks.size() &&
               (items_.size() < capacity_ ||
                consumers_.contains(next_pop_seq_))) {
          items_.push_back(std::move(tasks[i]));
          if (obs::Enabled()) OccupancyHist().Record(items_.size());
          ++next_push_seq_;
          ++i;
          if (items_.size() >= capacity_) {
            // Drain into parked consumers before admitting more.
            for (auto& d : MatchLocked()) {
              fire.deliveries.push_back(std::move(d));
            }
          }
        }
      }
      if (i == tasks.size()) {
        if (on_admitted) {
          fire.admits.emplace_back(std::move(on_admitted), Status::Ok());
        }
      } else {
        // Defer the remainder; only the batch's last task carries the ack,
        // which therefore fires once the WHOLE batch is admitted.
        for (; i < tasks.size(); ++i) {
          const bool last = i + 1 == tasks.size();
          pushes_.emplace(
              first_seq + i,
              PendingPush{std::move(tasks[i]),
                          last ? std::move(on_admitted) : AdmitFn{}});
        }
        while (true) {
          auto admits = PromoteLocked();
          auto deliveries = MatchLocked();
          if (admits.empty() && deliveries.empty()) break;
          fire.Add(std::move(admits));
          for (auto& d : deliveries) fire.deliveries.push_back(std::move(d));
        }
      }
      for (auto& d : MatchLocked()) fire.deliveries.push_back(std::move(d));
    }
    PublishHintLocked();
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
  fire.FireAll();
}

void StreamChannel::AsyncPop(std::uint64_t seq, ConsumeFn consumer) {
  FireList fire;
  bool wake = false;
  {
    std::scoped_lock lock(mu_);
    consumers_.emplace(seq, std::move(consumer));
    while (true) {
      auto deliveries = MatchLocked();
      auto admits = PromoteLocked();
      if (admits.empty() && deliveries.empty()) break;
      fire.Add(std::move(admits));
      for (auto& d : deliveries) fire.deliveries.push_back(std::move(d));
    }
    PublishHintLocked();
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
  fire.FireAll();
}

void StreamChannel::ParkLocked(std::unique_lock<std::mutex>& lock,
                               ActionMonitor* monitor, const char* wait_kind) {
  const std::uint64_t wait_start = WaitStart();
  // Blocking-wait span for the *consumer's* trace (the action's run span):
  // an action stalled on channel data/space shows up as "channel" time on
  // the critical path, not as opaque run time.
  const obs::TraceContext trace_ctx =
      obs::Enabled() ? obs::CurrentTraceContext() : obs::TraceContext{};
  const std::uint64_t trace_start =
      trace_ctx.trace_id != 0 ? obs::TraceNowMicros() : 0;
  ++waiters_;
  if (monitor != nullptr) {
    if (obs::Enabled()) YieldCounter().Increment();
    monitor->Exit();
    cv_.wait(lock);
    --waiters_;
    lock.unlock();
    monitor->Enter();
    lock.lock();
  } else {
    cv_.wait(lock);
    --waiters_;
  }
  ReportChannelWait(wait_kind, wait_start);
  if (trace_start != 0) {
    obs::RecordSpan("channel", wait_kind, trace_ctx, obs::NewSpanId(),
                    trace_start, obs::TraceNowMicros());
  }
}

Result<DataTask> StreamChannel::BlockingPop(ActionMonitor* monitor) {
  SpinForItems();
  std::unique_lock lock(mu_);
  while (true) {
    if (!items_.empty()) {
      DataTask task = std::move(items_.front());
      items_.pop_front();
      FireList fire;
      fire.Add(PromoteLocked());
      PublishHintLocked();
      lock.unlock();
      RecordTransit(task);
      fire.FireAll();
      return task;
    }
    if (aborted_ || producer_closed_) {
      // For write streams the end arrives in-band (eos task); reaching here
      // closed means teardown.
      return Status::Closed("stream closed");
    }
    ParkLocked(lock, monitor, "channel.pop");
  }
}

Result<std::vector<DataTask>> StreamChannel::BlockingPopAll(
    ActionMonitor* monitor, std::size_t max_items) {
  if (max_items == 0) max_items = 1;
  SpinForItems();
  std::unique_lock lock(mu_);
  while (true) {
    if (!items_.empty()) {
      std::vector<DataTask> batch;
      const std::size_t take =
          items_.size() < max_items ? items_.size() : max_items;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      FireList fire;
      fire.Add(PromoteLocked());
      PublishHintLocked();
      lock.unlock();
      for (const DataTask& task : batch) RecordTransit(task);
      fire.FireAll();
      return batch;
    }
    if (aborted_ || producer_closed_) {
      return Status::Closed("stream closed");
    }
    ParkLocked(lock, monitor, "channel.pop");
  }
}

Status StreamChannel::BlockingPush(DataTask task, ActionMonitor* monitor) {
  StampTask(task);
  // Spin hint: wait for space (or closure) before taking the lock.
  if (const std::size_t h = size_hint_.load(std::memory_order_acquire);
      h >= capacity_ && h != kClosedHint) {
    spin_.SpinUntil([this] {
      const std::size_t hint = size_hint_.load(std::memory_order_acquire);
      return hint < capacity_ || hint == kClosedHint;
    });
  }
  std::unique_lock lock(mu_);
  while (true) {
    if (aborted_) return Status::Closed("reader abandoned the stream");
    if (items_.size() < capacity_ || !consumers_.empty()) {
      items_.push_back(std::move(task));
      if (obs::Enabled()) OccupancyHist().Record(items_.size());
      FireList fire;
      for (auto& d : MatchLocked()) fire.deliveries.push_back(std::move(d));
      PublishHintLocked();
      const bool wake = waiters_ > 0;
      lock.unlock();
      if (wake) cv_.notify_all();
      fire.FireAll();
      return Status::Ok();
    }
    ParkLocked(lock, monitor, "channel.push");
  }
}

void StreamChannel::CloseProducer() {
  FireList fire;
  bool wake = false;
  {
    std::scoped_lock lock(mu_);
    producer_closed_ = true;
    for (auto& d : MatchLocked()) fire.deliveries.push_back(std::move(d));
    PublishHintLocked();
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
  fire.FireAll();
}

void StreamChannel::Abort() {
  FireList fire;
  bool wake = false;
  {
    std::scoped_lock lock(mu_);
    aborted_ = true;
    for (auto& [seq, push] : pushes_) {
      if (push.on_admitted) {
        fire.admits.emplace_back(std::move(push.on_admitted),
                                 Status::Closed("stream aborted"));
      }
    }
    pushes_.clear();
    for (auto& [seq, consumer] : consumers_) {
      fire.deliveries.emplace_back(std::move(consumer),
                                   Status::Closed("stream aborted"));
    }
    consumers_.clear();
    PublishHintLocked();
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
  fire.FireAll();
}

}  // namespace glider::core
