// The active storage server (paper §4.2 "The active storage server", §5).
//
// An active server is a storage space contributing *action slots* instead of
// data blocks: it registers its slots with the metadata server under the
// dedicated active storage class, so the storage kernel allocates action
// nodes only here. Each slot hosts one live action object.
//
// Execution follows the paper's decoupling of network work from action work:
//   * network workers (the transport's handler pool) decode stream
//     operations and move them onto per-stream channels — never blocking;
//   * action threads (one per running method, reaped as methods finish)
//     consume the channels by running action methods, one method at a time
//     per action (ActionMonitor), with optional interleaving.
//
// Locking is per-object so concurrent streams to different actions never
// contend: the slot vector is preallocated and immutable, each slot guards
// its live-object pointer with its own mutex (method execution order is the
// monitor's job), and open streams live in a striped table keyed by stream
// id. There is no server-wide lock on any request path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "glider/action.h"
#include "glider/protocol.h"
#include "glider/stream_channel.h"
#include "net/service_router.h"
#include "nodekernel/protocol.h"

namespace glider::core {

class ActiveServer : public net::ServiceRouter,
                     public std::enable_shared_from_this<ActiveServer> {
 public:
  struct Options {
    std::uint32_t num_slots = 16;
    // Nominal slot capacity registered with the metadata server; a resource
    // management knob (paper: "the size of an active server and the number
    // of slots it registers determine the capacity ... of its actions").
    std::uint64_t slot_bytes = 64ull << 20;
    // Hint for the nominal action-thread capacity registered with resource
    // management. Execution itself is one dedicated thread per running
    // method: methods are long-lived and may open streams to *other*
    // actions (e.g. the genomics sampler feeding the manager), which a
    // fixed pool can deadlock on when every pool thread blocks waiting for
    // a method that cannot be scheduled.
    std::size_t num_action_threads = 4;
    std::size_t channel_capacity = 8;  // in-flight ops buffered per stream
    std::string preferred_address;
    // Link class for the server's internal store client (actions reaching
    // other nodes): kInternal, or kRdma when the deployment gives the
    // storage tier a fast fabric (§7.1 "RDMA" row).
    LinkClass internal_link_class = LinkClass::kInternal;
    // Bandwidth of the internal link (0 = unshaped).
    std::uint64_t internal_link_bps = 0;

    // Slot-stall watchdog (DESIGN.md "Continuous profiling"): a method that
    // burns more than stall_multiple × interleave_quantum of CPU without
    // yielding (touching its stream channel) is flagged — "active.stalls"
    // counter + slow-trace entry + kWarn log. The stall measure is the
    // method thread's CPU clock, so a method legitimately parked on a
    // channel is never flagged. stall_multiple = 0 disables the watchdog.
    std::chrono::milliseconds interleave_quantum{50};
    double stall_multiple = 8.0;
    std::chrono::milliseconds watchdog_interval{10};
  };

  ActiveServer(Options options, std::shared_ptr<ActionRegistry> registry,
               std::shared_ptr<Metrics> metrics);
  ~ActiveServer() override;

  // Binds, registers the slots with the metadata server, and builds the
  // internal store client handed to actions.
  Status Start(net::Transport& transport, const std::string& metadata_address);

  // Stops accepting requests and joins every action-method thread.
  // Idempotent. Owners must call this (directly or via the destructor of
  // the last external reference being unreachable — the transport's
  // listener entry holds a shared_ptr back to the service, so the server
  // cannot be destroyed while it is still listening).
  void Stop();

  const std::string& address() const { return address_; }

  // Sum of self-reported action state (storage-utilization metric).
  std::uint64_t UsedBytes() const;
  std::size_t LiveActions() const;

 private:
  struct Slot;
  struct Stream;

  void DoActionCreate(ActionCreateRequest req, net::Message request,
                      net::Responder responder);
  void DoActionDelete(SlotRequest req, net::Message request,
                      net::Responder responder);
  void DoActionStat(SlotRequest req, net::Message request,
                    net::Responder responder);
  void DoStreamOpen(StreamOpenRequest req, net::Message request,
                    net::Responder responder);
  void DoStreamWrite(StreamWriteRequest req, net::Message request,
                     net::Responder responder);
  void DoStreamWriteBatch(StreamWriteBatchRequest req, net::Message request,
                          net::Responder responder);
  void DoStreamRead(StreamReadRequest req, net::Message request,
                    net::Responder responder);
  void DoStreamClose(StreamCloseRequest req, net::Message request,
                     net::Responder responder);

  Result<std::shared_ptr<Slot>> GetSlot(std::uint32_t index,
                                        bool must_have_object);

  // Runs one stream's action method on the action pool.
  void RunMethod(std::shared_ptr<Slot> slot, std::shared_ptr<Stream> stream);

  // Slot-stall watchdog body: scans slots every watchdog_interval and flags
  // methods that exceeded the CPU budget without yielding.
  void WatchdogLoop();

  const Options options_;
  std::shared_ptr<ActionRegistry> registry_;
  std::shared_ptr<Metrics> metrics_;

  // Spawns one tracked thread per action-method execution. Threads report
  // completion so later Submits reap (join) them incrementally instead of
  // accumulating one joinable thread per method until shutdown.
  class MethodRunner {
   public:
    ~MethodRunner() { Shutdown(); }
    Status Submit(std::function<void()> task);
    void Shutdown();

   private:
    std::mutex mu_;
    std::uint64_t next_id_ = 0;
    std::map<std::uint64_t, std::thread> threads_;
    std::vector<std::uint64_t> finished_;  // ids whose bodies completed
    bool shutdown_ = false;
  };

  // Open streams, striped by id so concurrent lookups and inserts on
  // different streams take different mutexes.
  class StreamTable {
   public:
    void Insert(std::uint64_t id, std::shared_ptr<Stream> stream);
    Result<std::shared_ptr<Stream>> Find(std::uint64_t id) const;
    void Erase(std::uint64_t id);
    // Aborts every open stream's channel, waking method threads blocked on
    // a stream the client abandoned without closing (shutdown path).
    void AbortAll();

   private:
    static constexpr std::size_t kStripes = 16;  // power of two
    struct Stripe {
      mutable std::mutex mu;
      std::map<std::uint64_t, std::shared_ptr<Stream>> streams;
    };
    const Stripe& StripeFor(std::uint64_t id) const {
      return stripes_[id & (kStripes - 1)];
    }
    Stripe& StripeFor(std::uint64_t id) {
      return stripes_[id & (kStripes - 1)];
    }
    std::array<Stripe, kStripes> stripes_;
  };

  std::unique_ptr<net::Listener> listener_;
  std::string address_;
  std::unique_ptr<nk::StoreClient> internal_client_;
  std::unique_ptr<MethodRunner> action_pool_;

  // Preallocated at construction, immutable afterwards: slot lookup takes
  // no lock. Per-slot state is guarded inside Slot.
  std::vector<std::shared_ptr<Slot>> slots_;
  StreamTable streams_;
  std::atomic<std::uint64_t> next_stream_id_{1};

  // Server-wide action queue depth ("active.queue_depth"): methods
  // submitted to the action pool but not yet admitted by their slot's
  // monitor. Updated alongside the per-slot gauges.
  obs::Gauge* total_queue_depth_ = nullptr;

  // Stall watchdog state; the thread runs between Start() and Stop().
  obs::Counter* total_stalls_ = nullptr;
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace glider::core
