// The active storage server (paper §4.2 "The active storage server", §5).
//
// An active server is a storage space contributing *action slots* instead of
// data blocks: it registers its slots with the metadata server under the
// dedicated active storage class, so the storage kernel allocates action
// nodes only here. Each slot hosts one live action object.
//
// Two decoupled thread pools, as in the paper:
//   * network workers (the transport's handler pool) decode stream
//     operations and move them onto per-stream channels — never blocking;
//   * action threads consume the channels by running action methods, one
//     method at a time per action (ActionMonitor), with optional
//     interleaving.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "glider/action.h"
#include "glider/protocol.h"
#include "glider/stream_channel.h"
#include "net/transport.h"
#include "nodekernel/protocol.h"

namespace glider::core {

class ActiveServer : public net::Service,
                     public std::enable_shared_from_this<ActiveServer> {
 public:
  struct Options {
    std::uint32_t num_slots = 16;
    // Nominal slot capacity registered with the metadata server; a resource
    // management knob (paper: "the size of an active server and the number
    // of slots it registers determine the capacity ... of its actions").
    std::uint64_t slot_bytes = 64ull << 20;
    // Hint for the nominal action-thread capacity registered with resource
    // management. Execution itself is one dedicated thread per running
    // method: methods are long-lived and may open streams to *other*
    // actions (e.g. the genomics sampler feeding the manager), which a
    // fixed pool can deadlock on when every pool thread blocks waiting for
    // a method that cannot be scheduled.
    std::size_t num_action_threads = 4;
    std::size_t channel_capacity = 8;  // in-flight ops buffered per stream
    std::string preferred_address;
    // Link class for the server's internal store client (actions reaching
    // other nodes): kInternal, or kRdma when the deployment gives the
    // storage tier a fast fabric (§7.1 "RDMA" row).
    LinkClass internal_link_class = LinkClass::kInternal;
    // Bandwidth of the internal link (0 = unshaped).
    std::uint64_t internal_link_bps = 0;
  };

  ActiveServer(Options options, std::shared_ptr<ActionRegistry> registry,
               std::shared_ptr<Metrics> metrics);
  ~ActiveServer() override;

  // Binds, registers the slots with the metadata server, and builds the
  // internal store client handed to actions.
  Status Start(net::Transport& transport, const std::string& metadata_address);

  void Handle(net::Message request, net::Responder responder) override;

  const std::string& address() const { return address_; }

  // Sum of self-reported action state (storage-utilization metric).
  std::uint64_t UsedBytes() const;
  std::size_t LiveActions() const;

 private:
  struct Slot;
  struct Stream;

  void HandleActionCreate(net::Message request, net::Responder responder);
  void HandleActionDelete(net::Message request, net::Responder responder);
  void HandleActionStat(net::Message request, net::Responder responder);
  void HandleStreamOpen(net::Message request, net::Responder responder);
  void HandleStreamWrite(net::Message request, net::Responder responder);
  void HandleStreamRead(net::Message request, net::Responder responder);
  void HandleStreamClose(net::Message request, net::Responder responder);

  Result<std::shared_ptr<Slot>> GetSlot(std::uint32_t index,
                                        bool must_have_object);
  Result<std::shared_ptr<Stream>> GetStream(std::uint64_t id);

  // Runs one stream's action method on the action pool.
  void RunMethod(std::shared_ptr<Slot> slot, std::shared_ptr<Stream> stream);

  const Options options_;
  std::shared_ptr<ActionRegistry> registry_;
  std::shared_ptr<Metrics> metrics_;

  // Spawns one tracked thread per action-method execution; joins all at
  // shutdown.
  class MethodRunner {
   public:
    ~MethodRunner() { Shutdown(); }
    Status Submit(std::function<void()> task);
    void Shutdown();

   private:
    std::mutex mu_;
    std::vector<std::thread> threads_;
    bool shutdown_ = false;
  };

  std::unique_ptr<net::Listener> listener_;
  std::string address_;
  std::unique_ptr<nk::StoreClient> internal_client_;
  std::unique_ptr<MethodRunner> action_pool_;

  mutable std::mutex mu_;
  std::map<std::uint32_t, std::shared_ptr<Slot>> slots_;
  std::map<std::uint64_t, std::shared_ptr<Stream>> streams_;
  std::atomic<std::uint64_t> next_stream_id_{1};
};

}  // namespace glider::core
