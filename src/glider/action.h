// The storage-action developer interface (paper §6.2, Table 1 "Action
// Object").
//
// Programmers specialize Action and implement any of the four methods; all
// are optional. onWrite receives a readable stream of what a client writes
// into the action; onRead receives a writable stream it should populate.
// Methods of one action execute as if single-threaded (paper §4.2 "Actions
// and concurrency"); with interleaving enabled, a method waiting on its
// stream yields its turn to another method of the same action.
//
// Action state lives in ordinary object fields. Through ActionContext an
// action gets a store client to reach other storage nodes — including other
// actions — to build processing patterns inside the ephemeral store.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "nodekernel/client/file_streams.h"
#include "nodekernel/client/store_client.h"

namespace glider::core {

// Server-side view of a stream a client is writing into the action.
class ActionInputStream {
 public:
  virtual ~ActionInputStream() = default;

  // Next chunk of data in stream order; empty buffer when the client closed
  // the stream (end of stream).
  virtual Result<Buffer> ReadChunk() = 0;

  // Convenience: a LineScanner over this stream.
  nk::LineScanner Lines() {
    return nk::LineScanner([this] { return ReadChunk(); });
  }
};

// Server-side view of a stream a client is reading from the action.
class ActionOutputStream {
 public:
  virtual ~ActionOutputStream() = default;

  // Appends a chunk; blocks (yielding, if interleaved) while the client is
  // behind. Returns kClosed if the client abandoned the stream.
  virtual Status Write(ByteSpan data) = 0;
  Status Write(std::string_view text) { return Write(AsBytes(text)); }

  // Ends the stream early; the method may keep running. Implicit when the
  // method returns.
  virtual void Close() = 0;
};

// What an action sees of its hosting environment.
class ActionContext {
 public:
  virtual ~ActionContext() = default;

  // A store client connected to this namespace over the storage-internal
  // link (paper §6.2: "action objects get a store client, by default, to
  // access other storage nodes, including other actions").
  virtual nk::StoreClient& store() = 0;

  // Creation parameters passed by the application (paper §3.2 "the service
  // may also allow certain action configuration parameters").
  virtual ByteSpan config() const = 0;
};

class Action {
 public:
  virtual ~Action() = default;

  // Lifecycle hooks; run when the action object is instantiated / removed.
  virtual void onCreate(ActionContext& ctx) { (void)ctx; }
  virtual void onDelete(ActionContext& ctx) { (void)ctx; }

  // Data hooks; run once per stream opened on the action.
  virtual void onRead(ActionOutputStream& out, ActionContext& ctx) {
    (void)out;
    (void)ctx;
  }
  virtual void onWrite(ActionInputStream& in, ActionContext& ctx) {
    (void)in;
    (void)ctx;
  }

  // Approximate bytes of state held by this action. Feeds the storage
  // utilization metric (paper §7.1 "Impact of actions on storage
  // utilization").
  virtual std::uint64_t StateBytes() const { return 0; }
};

// Registry of deployed action definitions ("uploading the package", paper
// §6.2): maps a definition name to a factory.
class ActionRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Action>()>;

  void Register(const std::string& name, Factory factory);
  Result<std::unique_ptr<Action>> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // Process-wide registry used by GLIDER_REGISTER_ACTION.
  static ActionRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

namespace internal {
struct ActionRegistrar {
  ActionRegistrar(const std::string& name, ActionRegistry::Factory factory) {
    ActionRegistry::Global().Register(name, std::move(factory));
  }
};
}  // namespace internal

// Registers `Type` under `name` in the global registry at startup:
//   GLIDER_REGISTER_ACTION("merge", MergeAction);
#define GLIDER_REGISTER_ACTION(name, Type)                               \
  static const ::glider::core::internal::ActionRegistrar                 \
      gl_action_registrar_##Type{                                        \
          (name), [] { return std::make_unique<Type>(); }}

}  // namespace glider::core
