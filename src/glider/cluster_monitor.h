// ClusterMonitor: the client side of the cluster observability plane
// (DESIGN.md "Cluster observability").
//
// Given one metadata address it discovers every registered server via
// kListServers, polls each (plus the metadata server itself) with the
// typed kSeriesDump stub, and merges the per-process registry snapshots
// into one cluster-wide MetricsSnapshot: counters and gauges sum, log2
// histograms merge bucket-wise — percentiles over the merged buckets are
// exact cluster percentiles, not averages of per-server percentiles.
//
// glider_top and `glider_cli cluster-stats` are thin views over Poll();
// the monitor keeps cached connections so a 1-second poll loop costs one
// RPC per server per tick.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/rpc_obs.h"
#include "net/transport.h"
#include "nodekernel/protocol.h"

namespace glider {

class ClusterMonitor {
 public:
  // One polled server. `status` is per-server: a dead server marks its
  // entry unavailable without failing the whole poll.
  struct ServerSample {
    nk::ListServersResponse::Entry server;
    bool is_metadata = false;
    Status status = Status::Ok();
    net::SeriesDumpResponse dump;  // valid when status.ok()
  };

  struct ClusterSample {
    std::vector<ServerSample> servers;
    obs::MetricsSnapshot merged;  // across all reachable servers
  };

  // `transport` must outlive the monitor; `link` (nullable) shapes the
  // monitoring connections (control-class traffic).
  ClusterMonitor(net::Transport* transport, std::string metadata_address,
                 std::shared_ptr<net::LinkModel> link = nullptr);

  // Re-reads the server list from the metadata server. Called implicitly
  // by Poll(); exposed so tools can list without polling.
  Result<nk::ListServersResponse> Discover();

  // One poll across the cluster: discover + kSeriesDump everyone. Fails
  // only when the metadata server itself is unreachable.
  Result<ClusterSample> Poll();

  // Bucket-wise merge of per-server snapshots (sum counters/gauges, merge
  // histograms). Public + static: tests and offline tooling merge dumps
  // without a live cluster.
  static obs::MetricsSnapshot Merge(
      const std::vector<const obs::MetricsSnapshot*>& snapshots);

 private:
  Result<std::shared_ptr<net::Connection>> Conn(const std::string& address);

  net::Transport* transport_;
  std::string metadata_address_;
  std::shared_ptr<net::LinkModel> link_;
  std::map<std::string, std::shared_ptr<net::Connection>> conns_;
};

}  // namespace glider
