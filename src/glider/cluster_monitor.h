// ClusterMonitor: the client side of the cluster observability plane
// (DESIGN.md "Cluster observability").
//
// Given one metadata address it discovers every registered server via
// kListServers, polls each (plus the metadata server itself) with the
// typed kSeriesDump stub, and merges the per-process registry snapshots
// into one cluster-wide MetricsSnapshot: counters and gauges sum, log2
// histograms merge bucket-wise — percentiles over the merged buckets are
// exact cluster percentiles, not averages of per-server percentiles.
//
// glider_top and `glider_cli cluster-stats` are thin views over Poll();
// the monitor keeps cached connections so a 1-second poll loop costs one
// RPC per server per tick.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/health.h"
#include "net/rpc_obs.h"
#include "net/transport.h"
#include "nodekernel/protocol.h"

namespace glider {

class ClusterMonitor {
 public:
  // One polled server. `status` is per-server: a dead server marks its
  // entry unavailable without failing the whole poll.
  struct ServerSample {
    nk::ListServersResponse::Entry server;
    bool is_metadata = false;
    Status status = Status::Ok();
    net::SeriesDumpResponse dump;  // valid when status.ok()
    // Failure-detector view of this address (fed by every poll: a
    // successful dump is a heartbeat). Unreachable servers keep their
    // detector row, so glider_top can show suspect/dead instead of a bare
    // error.
    obs::PeerState health = obs::PeerState::kUnknown;
    double phi = 0.0;
    // From the dump gauges when present (milli-scaled "load_index" /
    // "hotspot_slots" published by the server's LoadTracker).
    double load_index = 0.0;
    std::int64_t hotspot_slots = -1;  // -1 = not reported
  };

  struct ClusterSample {
    std::vector<ServerSample> servers;
    obs::MetricsSnapshot merged;  // across all reachable servers
    // True when this round used the cached server list because the
    // metadata server did not answer Discover().
    bool stale_discovery = false;
  };

  // `transport` must outlive the monitor; `link` (nullable) shapes the
  // monitoring connections (control-class traffic). `health_options`
  // tunes the embedded failure detector.
  ClusterMonitor(net::Transport* transport, std::string metadata_address,
                 std::shared_ptr<net::LinkModel> link = nullptr,
                 obs::HealthDetector::Options health_options = {});

  // Re-reads the server list from the metadata server. Called implicitly
  // by Poll(); exposed so tools can list without polling.
  Result<nk::ListServersResponse> Discover();

  // Per-server clock offset estimated by RTT-midpoint sampling over
  // kHeartbeat's server_time_us (DESIGN.md §11): offset is (server clock -
  // this process's TraceNowMicros clock), min-RTT filtered so the residual
  // error is bounded by min_rtt / 2. Per-node trace timebases are steady
  // clocks since *process start*, so offsets are large (whole boot-time
  // deltas) and alignment is mandatory before merging dumps.
  struct ClockOffset {
    std::int64_t offset_us = 0;
    std::uint64_t min_rtt_us = 0;  // error bound = min_rtt_us / 2
    int samples = 0;
  };

  // Samples every discovered server (plus the metadata server) N times and
  // publishes "clock.offset_us.<addr>" gauges into the global registry.
  // Servers that fail mid-sampling are omitted from the result; fails only
  // when no server answered at all.
  Result<std::map<std::string, ClockOffset>> AlignClocks(
      int samples_per_server = 8);

  // One server's kTraceDump JSON (clear_after requests clear-after-dump).
  Result<std::string> FetchTraceJson(const std::string& address,
                                     bool clear_after = false);

  // One poll across the cluster: discover + kSeriesDump everyone. A dead
  // metadata server degrades to the cached server list (stale_discovery)
  // with the metadata row marked unreachable — one dead server, even that
  // one, never blinds the whole sample. Fails only before the first
  // successful discovery, when there is no cached list to fall back to.
  Result<ClusterSample> Poll();

  // One attribution poll: discover + kLedgerDump every reachable server
  // (deduped by address, like Poll), exactly merged — ledger cells sum per
  // (principal, op), sketches merge under the space-saving rule.
  // `clear_after` requests clear-after-dump on every server. Fails only
  // when no server answered.
  Result<net::LedgerDumpResponse> PollLedgers(bool clear_after = false);

  // The monitor's failure detector, fed one heartbeat per reachable server
  // per Poll(). Exposed so tools can render the board or tune thresholds.
  obs::HealthDetector& health() { return health_; }

  // Bucket-wise merge of per-server snapshots (sum counters/gauges, merge
  // histograms). Public + static: tests and offline tooling merge dumps
  // without a live cluster.
  static obs::MetricsSnapshot Merge(
      const std::vector<const obs::MetricsSnapshot*>& snapshots);

 private:
  Result<std::shared_ptr<net::Connection>> Conn(const std::string& address);

  net::Transport* transport_;
  std::string metadata_address_;
  std::shared_ptr<net::LinkModel> link_;
  std::map<std::string, std::shared_ptr<net::Connection>> conns_;
  obs::HealthDetector health_;
  // Last successful Discover() result, the fallback when metadata dies.
  std::vector<nk::ListServersResponse::Entry> last_discovered_;
  bool has_discovered_ = false;
};

}  // namespace glider
