// StreamChannel: the per-stream task queue between network workers and
// action threads (paper §4.2 "Accessing actions", §5).
//
// Two usages:
//   * write streams: network workers push data tasks asynchronously (in
//     sequence order, acknowledging the client when a task is admitted);
//     the action thread pops them from inside Action::onWrite.
//   * read streams: the action thread pushes chunks from Action::onRead
//     (blocking while the client is behind); network workers pop them
//     asynchronously to answer pipelined read requests in sequence order.
//
// Network workers NEVER block here: when the queue is full, admission is
// deferred (the ack fires once space frees); when it is empty, consumption
// is parked (the consumer fires once data arrives). This is what prevents a
// fleet of blocked network workers from starving unrelated streams — e.g.
// actions writing to other actions on the same server.
//
// Hot-path discipline (see DESIGN.md "Hot-path batching & wakeup"):
//   * AsyncPushAll is the doorbell: a whole batch of contiguous chunks is
//     admitted under one lock acquisition with one admission ack and at
//     most one consumer wakeup;
//   * the expected case (in-order arrival, queue open) skips the
//     out-of-order buffering map entirely;
//   * the action-side cv is only notified when a waiter is parked, and
//     always after the lock is released;
//   * action-side blocking calls spin adaptively on an atomic size hint
//     before parking (common/spin_park.h).
//
// Action-side blocking calls take an ActionMonitor*: non-null (interleaving
// enabled) releases the action's execution turn while waiting, so another
// method of the same action may run (paper §4.2 "action interleaving",
// applied like Orleans turns).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/attribution.h"
#include "common/bytes.h"
#include "common/spin_park.h"
#include "common/status.h"
#include "common/trace.h"

namespace glider::core {

// Serializes method execution per action ("as if run by a single thread",
// paper §4.2). Enter blocks until the action is idle; interleaved waits
// Exit/Enter around their sleep.
class ActionMonitor {
 public:
  void Enter() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !busy_; });
    busy_ = true;
  }
  void Exit() {
    {
      std::scoped_lock lock(mu_);
      busy_ = false;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool busy_ = false;
};

struct DataTask {
  Buffer data;
  bool eos = false;  // write streams: the client closed the stream
  // Producer's trace context + enqueue instant, stamped on push while
  // observability is on: the dequeue side records a "channel.wait" transit
  // span parented to the producer (when ctx carries a trace), so stream
  // hops appear inside the assembled trace tree instead of as orphan
  // roots. enqueue_us == 0 = pushed with observability off.
  obs::TraceContext ctx;
  std::uint64_t enqueue_us = 0;
  // Producer's tenant, stamped whenever observability is on (independent of
  // tracing): the pop side bills transit time and delivered bytes to it.
  obs::PrincipalId principal = 0;
};

class StreamChannel {
 public:
  using AdmitFn = std::function<void(Status)>;           // acks one push
  using ConsumeFn = std::function<void(Result<DataTask>)>;  // delivers one pop

  explicit StreamChannel(std::size_t capacity) : capacity_(capacity) {}

  StreamChannel(const StreamChannel&) = delete;
  StreamChannel& operator=(const StreamChannel&) = delete;

  // --- network-worker side (never blocks) ---

  // Admits `task` as operation `seq` (0-based, contiguous). Out-of-order
  // arrivals are buffered; `on_admitted` fires when the task enters the
  // queue (immediately or once space frees).
  void AsyncPush(std::uint64_t seq, DataTask task, AdmitFn on_admitted);

  // Doorbell push: admits `tasks` as operations first_seq .. first_seq +
  // tasks.size() - 1 under one lock acquisition with at most one consumer
  // wakeup. `on_admitted` acks the batch as a whole — it fires once the
  // LAST task has entered the queue (so a client window counts the batch
  // as one in-flight unit).
  void AsyncPushAll(std::uint64_t first_seq, std::vector<DataTask> tasks,
                    AdmitFn on_admitted);

  // Requests the item for read operation `seq`. The consumer fires with the
  // task, or with kClosed at end-of-stream / teardown.
  void AsyncPop(std::uint64_t seq, ConsumeFn consumer);

  // --- action-thread side (may block) ---

  // Pops the next task in order; blocks while empty. With a monitor, the
  // wait yields the action's turn. kClosed after Abort().
  Result<DataTask> BlockingPop(ActionMonitor* monitor);

  // Pops every queued in-order task (at least one; blocks while empty), up
  // to `max_items`, under one lock acquisition. Write-stream consumers use
  // this to drain a doorbell batch at the cost of a single wakeup. The
  // batch may contain the eos task (always last: nothing follows eos).
  Result<std::vector<DataTask>> BlockingPopAll(ActionMonitor* monitor,
                                               std::size_t max_items);

  // Pushes the next chunk; blocks while full. With a monitor, the wait
  // yields the action's turn. kClosed if the consumer went away.
  Status BlockingPush(DataTask task, ActionMonitor* monitor);

  // --- lifecycle ---

  // Producer finished (onRead returned / teardown): parked and future
  // consumers observe kClosed once the queue drains.
  void CloseProducer();

  // Consumer abandoned the stream (client closed a read stream early) or
  // hard teardown: blocked/parked parties all observe kClosed.
  void Abort();

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  struct PendingPush {
    DataTask task;
    AdmitFn on_admitted;  // may be null (interior of a batch)
  };

  // Moves in-order pending pushes into the queue while space remains.
  // Returns the admission callbacks to fire (outside the lock).
  std::vector<AdmitFn> PromoteLocked();
  // Matches queued items with parked consumers. Returns deliveries to fire.
  std::vector<std::pair<ConsumeFn, Result<DataTask>>> MatchLocked();

  // Mirrors queue state into the lock-free spin hint: item count, or
  // kClosedHint once closed/aborted.
  void PublishHintLocked() {
    size_hint_.store(
        (aborted_ || producer_closed_) ? kClosedHint : items_.size(),
        std::memory_order_release);
  }

  // Adaptive spin on the size hint before an action-side pop parks.
  void SpinForItems() {
    if (size_hint_.load(std::memory_order_acquire) != 0) return;
    spin_.SpinUntil([this] {
      return size_hint_.load(std::memory_order_acquire) != 0;
    });
  }

  // One action-side park iteration: cv wait (yielding the monitor turn when
  // interleaving), waiter-counted so producers can gate their notifies.
  void ParkLocked(std::unique_lock<std::mutex>& lock, ActionMonitor* monitor,
                  const char* wait_kind);

  static constexpr std::size_t kClosedHint =
      static_cast<std::size_t>(-1);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes action-side blocking calls
  std::size_t waiters_ = 0;     // action-side threads parked on cv_

  std::deque<DataTask> items_;
  std::uint64_t next_push_seq_ = 0;  // next op admitted to the queue
  std::map<std::uint64_t, PendingPush> pushes_;  // out-of-order / deferred

  std::uint64_t next_pop_seq_ = 0;  // next read op to serve
  std::map<std::uint64_t, ConsumeFn> consumers_;  // parked read ops

  std::atomic<std::size_t> size_hint_{0};
  AdaptiveSpin spin_;

  bool producer_closed_ = false;
  bool aborted_ = false;
};

}  // namespace glider::core
