// Client proxy for action nodes (paper §6.1, Table 1 "Action Node").
//
// Mirrors the paper's four primitives: create (instantiate the action
// object), delete (remove the object), and getInput/OutputStream. Creation
// is two-step and client-driven like every NodeKernel data operation: the
// metadata server allocates the node and its slot, then the client
// instantiates the object directly on the active server.
#pragma once

#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "glider/protocol.h"
#include "nodekernel/client/store_client.h"

namespace glider::core {

class ActionWriter;
class ActionReader;

class ActionNode {
 public:
  // Creates the action node in the namespace and instantiates an object of
  // the registered definition `action_type` in its slot. `config` is handed
  // to onCreate. Returns once onCreate completed.
  static Result<ActionNode> Create(nk::StoreClient& client,
                                   const std::string& path,
                                   const std::string& action_type,
                                   bool interleave = false,
                                   ByteSpan config = {});

  // Binds to an existing action node.
  static Result<ActionNode> Lookup(nk::StoreClient& client,
                                   const std::string& path);

  // Removes the action object (runs onDelete) but keeps the node — the
  // paper's ActionNode.delete(): allows re-creating to clear state.
  Status DeleteObject();

  // Full removal: object finalization plus namespace delete.
  static Status Delete(nk::StoreClient& client, const std::string& path);

  // Opens an I/O stream; triggers one onWrite / onRead execution.
  Result<std::unique_ptr<ActionWriter>> OpenWriter();
  Result<std::unique_ptr<ActionReader>> OpenReader();

  // Self-reported state size (storage-utilization metric).
  Result<std::uint64_t> StateBytes();

  const nk::NodeInfo& info() const { return info_; }
  const std::string& path() const { return path_; }

 private:
  ActionNode(nk::StoreClient& client, std::string path, nk::NodeInfo info,
             std::shared_ptr<net::Connection> conn)
      : client_(&client), path_(std::move(path)), info_(std::move(info)),
        conn_(std::move(conn)) {}

  nk::StoreClient* client_;
  std::string path_;
  nk::NodeInfo info_;
  std::shared_ptr<net::Connection> conn_;  // to the hosting active server
};

// Streams data into an action (drives one onWrite). Keeps a window of
// write operations in flight; Close() returns once the action method has
// finished consuming the stream.
class ActionWriter {
 public:
  ActionWriter(nk::StoreClient& client, std::shared_ptr<net::Connection> conn,
               std::uint64_t stream_id)
      : client_(&client), conn_(std::move(conn)), stream_id_(stream_id) {}
  ~ActionWriter() { (void)Close(); }
  ActionWriter(const ActionWriter&) = delete;
  ActionWriter& operator=(const ActionWriter&) = delete;

  Status Write(ByteSpan data);
  Status Write(std::string_view text) { return Write(AsBytes(text)); }

  // Flushes, sends the final close operation and waits until the action
  // method completed. Idempotent.
  Status Close();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status SendChunk(ByteSpan chunk);
  // Ships the gathered doorbell batch (if any) as one kStreamWriteBatch
  // RPC and counts it as a single in-flight unit.
  Status FlushBatch();
  Status DrainInflight(bool all);

  nk::StoreClient* client_;
  std::shared_ptr<net::Connection> conn_;
  std::uint64_t stream_id_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t bytes_written_ = 0;
  Buffer pending_;
  // Doorbell gathering (write_batch_chunks > 1): chunks are serialized
  // straight into this frame-in-progress; FlushBatch ships it.
  std::optional<BinaryWriter> batch_;
  std::size_t batch_count_ = 0;
  std::deque<std::future<Result<net::Message>>> inflight_;
  Status deferred_error_;
  bool closed_ = false;
};

// Streams data out of an action (drives one onRead). Pipelines read
// operations; the server serves them in sequence order.
class ActionReader {
 public:
  ActionReader(nk::StoreClient& client, std::shared_ptr<net::Connection> conn,
               std::uint64_t stream_id)
      : client_(&client), conn_(std::move(conn)), stream_id_(stream_id) {}
  ~ActionReader() { (void)Close(); }
  ActionReader(const ActionReader&) = delete;
  ActionReader& operator=(const ActionReader&) = delete;

  // Next chunk in stream order; empty at end of stream.
  Result<Buffer> ReadChunk();

  // Releases the stream (lets the action method finish if still producing).
  Status Close();

 private:
  void IssueReads();

  nk::StoreClient* client_;
  std::shared_ptr<net::Connection> conn_;
  std::uint64_t stream_id_;
  std::uint64_t next_seq_ = 0;
  std::deque<std::future<Result<net::Message>>> inflight_;
  bool eof_ = false;
  bool closed_ = false;
};

}  // namespace glider::core
