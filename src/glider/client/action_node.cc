#include "glider/client/action_node.h"

#include <algorithm>

#include "common/buffer_pool.h"
#include "net/rpc_client.h"

namespace glider::core {

Result<ActionNode> ActionNode::Create(nk::StoreClient& client,
                                      const std::string& path,
                                      const std::string& action_type,
                                      bool interleave, ByteSpan config) {
  GLIDER_ASSIGN_OR_RETURN(
      auto info, client.CreateActionNode(path, action_type, interleave));
  GLIDER_ASSIGN_OR_RETURN(auto conn, client.ConnectTo(info.slot.address));

  ActionCreateRequest req;
  req.slot = info.slot.block;
  req.action_type = action_type;
  req.interleave = interleave;
  req.config = Buffer(config.data(), config.size());
  const Status created = net::CallVoid(*conn, kActionCreate, req);
  if (!created.ok()) {
    // Roll the node back so the namespace does not keep a dead action.
    (void)client.Delete(path);
    return created;
  }
  return ActionNode(client, path, std::move(info), std::move(conn));
}

Result<ActionNode> ActionNode::Lookup(nk::StoreClient& client,
                                      const std::string& path) {
  GLIDER_ASSIGN_OR_RETURN(auto info, client.Lookup(path));
  if (info.type != nk::NodeType::kAction) {
    return Status::WrongNodeType(path + " is not an action node");
  }
  GLIDER_ASSIGN_OR_RETURN(auto conn, client.ConnectTo(info.slot.address));
  return ActionNode(client, path, std::move(info), std::move(conn));
}

Status ActionNode::DeleteObject() {
  SlotRequest req;
  req.slot = info_.slot.block;
  return net::CallVoid(*conn_, kActionDelete, req);
}

Status ActionNode::Delete(nk::StoreClient& client, const std::string& path) {
  GLIDER_ASSIGN_OR_RETURN(auto node, Lookup(client, path));
  GLIDER_RETURN_IF_ERROR(node.DeleteObject());
  GLIDER_ASSIGN_OR_RETURN(auto info, client.Delete(path));
  (void)info;
  return Status::Ok();
}

Result<std::unique_ptr<ActionWriter>> ActionNode::OpenWriter() {
  StreamOpenRequest req;
  req.slot = info_.slot.block;
  req.mode = StreamMode::kWrite;
  GLIDER_ASSIGN_OR_RETURN(
      auto resp, net::Call<StreamOpenResponse>(*conn_, kStreamOpen, req));
  client_->CountAccessIfFaas();
  return std::make_unique<ActionWriter>(*client_, conn_, resp.stream_id);
}

Result<std::unique_ptr<ActionReader>> ActionNode::OpenReader() {
  StreamOpenRequest req;
  req.slot = info_.slot.block;
  req.mode = StreamMode::kRead;
  GLIDER_ASSIGN_OR_RETURN(
      auto resp, net::Call<StreamOpenResponse>(*conn_, kStreamOpen, req));
  client_->CountAccessIfFaas();
  return std::make_unique<ActionReader>(*client_, conn_, resp.stream_id);
}

Result<std::uint64_t> ActionNode::StateBytes() {
  SlotRequest req;
  req.slot = info_.slot.block;
  GLIDER_ASSIGN_OR_RETURN(
      auto resp, net::Call<ActionStatResponse>(*conn_, kActionStat, req));
  return resp.state_bytes;
}

// ---- ActionWriter -----------------------------------------------------------

Status ActionWriter::Write(ByteSpan data) {
  if (closed_) return Status::Closed("writer closed");
  GLIDER_RETURN_IF_ERROR(deferred_error_);
  const std::size_t chunk_size = client_->options().chunk_size;
  std::size_t off = 0;
  if (pending_.empty()) {
    while (data.size() - off >= chunk_size) {
      GLIDER_RETURN_IF_ERROR(SendChunk(data.subspan(off, chunk_size)));
      off += chunk_size;
    }
  }
  pending_.Append(data.subspan(off));
  while (pending_.size() >= chunk_size) {
    GLIDER_RETURN_IF_ERROR(SendChunk(pending_.span().subspan(0, chunk_size)));
    // O(1) remainder: a slice of the same storage. The next Append detaches
    // it into fresh storage, so the sent prefix is never disturbed.
    pending_ = pending_.Slice(chunk_size);
  }
  return Status::Ok();
}

Status ActionWriter::SendChunk(ByteSpan chunk) {
  const std::size_t batch_chunks = client_->options().write_batch_chunks;
  if (batch_chunks > 1) {
    // Doorbell gathering: serialize the chunk straight into the batch frame
    // (still exactly one copy of the caller's bytes). The batch ships as a
    // single kStreamWriteBatch RPC once `batch_chunks` chunks accumulated,
    // or at Close().
    if (!batch_.has_value()) {
      const std::size_t chunk_size = client_->options().chunk_size;
      batch_.emplace(BufferPool::Global(),
                     8 + 8 + batch_chunks * (4 + chunk_size));
      batch_->PutU64(stream_id_);
      batch_->PutU64(next_seq_);  // first_seq of the batch
    }
    batch_->PutBytes(chunk);
    ++next_seq_;
    ++batch_count_;
    bytes_written_ += chunk.size();
    if (batch_count_ < batch_chunks) return Status::Ok();
    return FlushBatch();
  }
  // Serialize straight into pooled storage: the caller's bytes are copied
  // exactly once, into the frame that goes on the wire.
  BinaryWriter w(BufferPool::Global(), 8 + 8 + 4 + chunk.size());
  w.PutU64(stream_id_);
  w.PutU64(next_seq_++);
  w.PutBytes(chunk);

  net::Message msg;
  msg.opcode = kStreamWrite;
  msg.payload = std::move(w).Finish();
  inflight_.push_back(conn_->Call(std::move(msg)));
  bytes_written_ += chunk.size();
  return DrainInflight(/*all=*/false);
}

Status ActionWriter::FlushBatch() {
  if (!batch_.has_value()) return Status::Ok();
  net::Message msg;
  msg.opcode = kStreamWriteBatch;
  msg.payload = std::move(*batch_).Finish();
  batch_.reset();
  batch_count_ = 0;
  // One in-flight unit per batch: the server acks once the whole batch is
  // admitted, so the window now counts batches, not chunks.
  inflight_.push_back(conn_->Call(std::move(msg)));
  return DrainInflight(/*all=*/false);
}

Status ActionWriter::DrainInflight(bool all) {
  const std::size_t window = client_->options().inflight_window;
  while (!inflight_.empty() && (all || inflight_.size() > window)) {
    auto response = inflight_.front().get();
    inflight_.pop_front();
    if (!response.ok()) {
      deferred_error_ = response.status();
      return deferred_error_;
    }
    auto payload = net::ToResult(std::move(response).value());
    if (!payload.ok()) {
      deferred_error_ = payload.status();
      return deferred_error_;
    }
  }
  return Status::Ok();
}

Status ActionWriter::Close() {
  if (closed_) return deferred_error_;
  closed_ = true;
  if (deferred_error_.ok() && !pending_.empty()) {
    Buffer rest = std::move(pending_);
    pending_ = Buffer{};
    deferred_error_ = SendChunk(rest.span());
  }
  if (deferred_error_.ok()) {
    // A partially gathered doorbell batch must not outlive the stream.
    deferred_error_ = FlushBatch();
  }
  if (deferred_error_.ok()) {
    deferred_error_ = DrainInflight(/*all=*/true);
  }
  if (deferred_error_.ok()) {
    // The close operation completes when the action method finished
    // consuming the stream (paper §4.2).
    StreamCloseRequest req;
    req.stream_id = stream_id_;
    req.seq = next_seq_;
    deferred_error_ = net::CallVoid(*conn_, kStreamClose, req);
  }
  return deferred_error_;
}

// ---- ActionReader -----------------------------------------------------------

void ActionReader::IssueReads() {
  const std::size_t window = client_->options().inflight_window;
  while (inflight_.size() < window) {
    StreamReadRequest req;
    req.stream_id = stream_id_;
    req.seq = next_seq_++;
    net::Message msg;
    msg.opcode = kStreamRead;
    msg.payload = req.Encode();
    inflight_.push_back(conn_->Call(std::move(msg)));
  }
}

Result<Buffer> ActionReader::ReadChunk() {
  if (eof_ || closed_) return Buffer{};
  IssueReads();
  auto response = inflight_.front().get();
  inflight_.pop_front();
  GLIDER_RETURN_IF_ERROR(response.status());
  if (response->status == StatusCode::kClosed) {
    eof_ = true;
    return Buffer{};
  }
  auto payload = net::ToResult(std::move(response).value());
  GLIDER_RETURN_IF_ERROR(payload.status());
  IssueReads();
  return std::move(payload).value();
}

Status ActionReader::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  // Outstanding pipelined reads resolve as kClosed once the server tears
  // the stream down; collect them so nothing dangles.
  StreamCloseRequest req;
  req.stream_id = stream_id_;
  req.seq = 0;
  const Status result = net::CallVoid(*conn_, kStreamClose, req);
  for (auto& fut : inflight_) {
    (void)fut.get();
  }
  inflight_.clear();
  return result;
}

}  // namespace glider::core
