#include "glider/cluster_monitor.h"

#include <algorithm>
#include <utility>

#include "common/trace_assemble.h"
#include "net/rpc_client.h"

namespace glider {

ClusterMonitor::ClusterMonitor(net::Transport* transport,
                               std::string metadata_address,
                               std::shared_ptr<net::LinkModel> link,
                               obs::HealthDetector::Options health_options)
    : transport_(transport), metadata_address_(std::move(metadata_address)),
      link_(std::move(link)), health_(health_options) {}

Result<std::shared_ptr<net::Connection>> ClusterMonitor::Conn(
    const std::string& address) {
  auto it = conns_.find(address);
  if (it != conns_.end()) return it->second;
  GLIDER_ASSIGN_OR_RETURN(auto conn, transport_->Connect(address, link_));
  conns_[address] = conn;
  return conn;
}

Result<nk::ListServersResponse> ClusterMonitor::Discover() {
  auto conn = Conn(metadata_address_);
  if (!conn.ok()) {
    conns_.erase(metadata_address_);
    return conn.status();
  }
  auto resp = net::Call<nk::ListServersResponse>(
      **conn, nk::kListServers, nk::EmptyRequest{});
  if (!resp.ok()) conns_.erase(metadata_address_);
  return resp;
}

Result<std::map<std::string, ClusterMonitor::ClockOffset>>
ClusterMonitor::AlignClocks(int samples_per_server) {
  if (samples_per_server < 1) samples_per_server = 1;
  auto discovered = Discover();
  if (discovered.ok()) {
    last_discovered_ = std::move(discovered).value().servers;
    has_discovered_ = true;
  } else if (!has_discovered_) {
    return discovered.status();
  }

  std::vector<std::string> addresses{metadata_address_};
  for (const auto& server : last_discovered_) {
    if (std::find(addresses.begin(), addresses.end(), server.address) ==
        addresses.end()) {
      addresses.push_back(server.address);
    }
  }

  std::map<std::string, ClockOffset> offsets;
  auto& registry = obs::MetricsRegistry::Global();
  for (const std::string& address : addresses) {
    auto conn = Conn(address);
    if (!conn.ok()) continue;
    obs::ClockOffsetEstimator estimator;
    bool failed = false;
    for (int i = 0; i < samples_per_server; ++i) {
      obs::ClockSample sample;
      sample.send_us = obs::TraceNowMicros();
      auto resp =
          net::Call<net::HeartbeatResponse>(**conn, net::kHeartbeat, Buffer{});
      sample.recv_us = obs::TraceNowMicros();
      if (!resp.ok()) {
        conns_.erase(address);  // reconnect on the next use
        failed = true;
        break;
      }
      sample.remote_us = resp.value().server_time_us;
      estimator.AddSample(sample);
    }
    if (failed || !estimator.has_estimate()) continue;
    ClockOffset offset;
    offset.offset_us = estimator.offset_us();
    offset.min_rtt_us = estimator.min_rtt_us();
    offset.samples = estimator.samples();
    registry.GetGauge("clock.offset_us." + address).Set(offset.offset_us);
    offsets[address] = offset;
  }
  if (offsets.empty()) {
    return Status::Unavailable("no server answered clock sampling");
  }
  return offsets;
}

Result<std::string> ClusterMonitor::FetchTraceJson(const std::string& address,
                                                   bool clear_after) {
  GLIDER_ASSIGN_OR_RETURN(auto conn, Conn(address));
  Buffer payload;
  if (clear_after) {
    payload.Resize(1);
    payload.mutable_span()[0] = 1;
  }
  auto result = conn->CallSync(net::kTraceDump, std::move(payload));
  if (!result.ok()) {
    conns_.erase(address);
    return result.status();
  }
  return std::string(reinterpret_cast<const char*>(result->data()),
                     result->size());
}

Result<ClusterMonitor::ClusterSample> ClusterMonitor::Poll() {
  ClusterSample sample;
  auto discovered = Discover();
  if (discovered.ok()) {
    last_discovered_ = std::move(discovered).value().servers;
    has_discovered_ = true;
  } else {
    // Metadata down: degrade to the cached server list instead of blinding
    // the whole round. The metadata row itself is polled below and shows
    // up unreachable (its detector state says suspect/dead).
    if (!has_discovered_) return discovered.status();
    sample.stale_discovery = true;
  }

  // The metadata server first (it has no registry entry of its own), then
  // every registered server. Servers that share one process (MiniCluster,
  // single-daemon deployments) share one registry; polling the same
  // address twice would double-count, so dedupe by address.
  std::vector<std::pair<nk::ListServersResponse::Entry, bool>> targets;
  {
    nk::ListServersResponse::Entry meta;
    meta.address = metadata_address_;
    targets.emplace_back(std::move(meta), true);
  }
  for (const auto& server : last_discovered_) {
    targets.emplace_back(server, false);
  }
  std::vector<std::string> seen;
  for (auto& [entry, is_meta] : targets) {
    ServerSample s;
    s.server = std::move(entry);
    s.is_metadata = is_meta;
    if (std::find(seen.begin(), seen.end(), s.server.address) != seen.end()) {
      s.status = Status::AlreadyExists("address already polled");
      sample.servers.push_back(std::move(s));
      continue;
    }
    seen.push_back(s.server.address);
    auto conn = Conn(s.server.address);
    if (!conn.ok()) {
      s.status = conn.status();
    } else {
      auto dump = net::Call<net::SeriesDumpResponse>(**conn, net::kSeriesDump,
                                                     Buffer{});
      if (!dump.ok()) {
        conns_.erase(s.server.address);  // reconnect on the next poll
        s.status = dump.status();
      } else {
        s.dump = std::move(dump).value();
        // A successful dump is a heartbeat; the dump's load gauges (milli
        // scaled, published by the server's LoadTracker) ride along.
        health_.Heartbeat(s.server.address);
        if (const std::int64_t* li = s.dump.snapshot.FindGauge("load_index")) {
          s.load_index = static_cast<double>(*li) / 1000.0;
        }
        if (const std::int64_t* hs =
                s.dump.snapshot.FindGauge("hotspot_slots")) {
          s.hotspot_slots = *hs;
        }
        health_.ReportLoad(s.server.address, s.load_index, s.hotspot_slots);
      }
    }
    s.health = health_.State(s.server.address);
    s.phi = health_.Phi(s.server.address);
    sample.servers.push_back(std::move(s));
  }

  std::vector<const obs::MetricsSnapshot*> snapshots;
  for (const auto& s : sample.servers) {
    if (s.status.ok()) snapshots.push_back(&s.dump.snapshot);
  }
  sample.merged = Merge(snapshots);
  return sample;
}

Result<net::LedgerDumpResponse> ClusterMonitor::PollLedgers(bool clear_after) {
  auto discovered = Discover();
  if (discovered.ok()) {
    last_discovered_ = std::move(discovered).value().servers;
    has_discovered_ = true;
  } else if (!has_discovered_) {
    return discovered.status();
  }

  std::vector<std::string> addresses{metadata_address_};
  for (const auto& server : last_discovered_) {
    if (std::find(addresses.begin(), addresses.end(), server.address) ==
        addresses.end()) {
      addresses.push_back(server.address);
    }
  }

  net::LedgerDumpResponse merged;
  bool any = false;
  for (const std::string& address : addresses) {
    auto conn = Conn(address);
    if (!conn.ok()) continue;
    Buffer payload;
    if (clear_after) {
      payload.Resize(1);
      payload.mutable_span()[0] = 1;
    }
    auto result = (*conn)->CallSync(net::kLedgerDump, std::move(payload));
    if (!result.ok()) {
      conns_.erase(address);
      continue;
    }
    auto dump = net::LedgerDumpResponse::Decode(
        ByteSpan(result->data(), result->size()));
    if (!dump.ok()) continue;
    merged.Merge(dump.value());
    any = true;
  }
  if (!any) return Status::Unavailable("no server answered ledger dump");
  return merged;
}

obs::MetricsSnapshot ClusterMonitor::Merge(
    const std::vector<const obs::MetricsSnapshot*>& snapshots) {
  obs::MetricsSnapshot merged;
  // Order-preserving name -> index maps keep the merged vectors sorted the
  // way std::map-backed registries emit them (first-seen order).
  std::map<std::string, std::size_t> counter_idx, gauge_idx, hist_idx;
  for (const obs::MetricsSnapshot* snap : snapshots) {
    for (const auto& [name, value] : snap->counters) {
      auto [it, inserted] =
          counter_idx.try_emplace(name, merged.counters.size());
      if (inserted) {
        merged.counters.emplace_back(name, value);
      } else {
        merged.counters[it->second].second += value;
      }
    }
    for (const auto& [name, value] : snap->gauges) {
      auto [it, inserted] = gauge_idx.try_emplace(name, merged.gauges.size());
      if (inserted) {
        merged.gauges.emplace_back(name, value);
      } else {
        merged.gauges[it->second].second += value;
      }
    }
    for (const auto& [name, hist] : snap->histograms) {
      auto [it, inserted] =
          hist_idx.try_emplace(name, merged.histograms.size());
      if (inserted) {
        merged.histograms.emplace_back(name, hist);
      } else {
        merged.histograms[it->second].second.Merge(hist);
      }
    }
  }
  return merged;
}

}  // namespace glider
