// HealthMonitor: the active half of the cluster health plane (DESIGN.md
// "Cluster health plane").
//
// One background thread per participating node: it discovers the cluster
// through the metadata server (kListServers), sends the lightweight
// kHeartbeat probe to every server each tick, and feeds the replies into a
// phi-accrual HealthDetector. Results are published two ways:
//
//   * per-peer "health.phi.<address>" gauges (milli-scaled) in the global
//     MetricsRegistry — Prometheus exports them as glider_health_phi_*;
//   * the process HealthBoard, served to any client via kHealthDump
//     (`glider_cli health`).
//
// ClusterMonitor-driven pollers (glider_top) get heartbeats for free from
// their kSeriesDump loop; the HealthMonitor exists so that *servers* watch
// each other even when nobody is polling — the daemon runs one when
// --health-ms is set.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/health.h"
#include "common/trace_assemble.h"
#include "net/transport.h"

namespace glider {

class HealthMonitor {
 public:
  struct Options {
    // Heartbeat tick. The detector adapts to whatever cadence this is.
    std::chrono::milliseconds interval{500};
    obs::HealthDetector::Options detector;
    // Re-run discovery every N ticks; heartbeats in between go to the
    // last-known server set (a dead metadata server degrades discovery,
    // never the heartbeats themselves).
    std::uint32_t discover_every = 4;
    // Publish "health.phi.<address>" and "clock.offset_us.<address>"
    // gauges into the global registry.
    bool publish_metrics = true;
    // Publish the per-tick board to HealthBoard::Global() (kHealthDump).
    bool publish_board = true;
  };

  // `transport` must outlive the monitor. (Two overloads rather than a
  // defaulted Options argument: a nested aggregate's member initializers
  // are not usable in default arguments inside the enclosing class.)
  HealthMonitor(net::Transport* transport, std::string metadata_address);
  HealthMonitor(net::Transport* transport, std::string metadata_address,
                Options options);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Starts the background loop (kAlreadyExists if running).
  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // One synchronous discovery + heartbeat round. The background loop calls
  // this; tests and one-shot CLI verbs call it directly without Start().
  void TickOnce();

  obs::HealthDetector& detector() { return detector_; }

  // Per-peer clock-offset estimators fed by the heartbeat loop (each tick
  // is one RTT-midpoint sample; DESIGN.md §11). Exposed for tests.
  const std::map<std::string, obs::ClockOffsetEstimator>& clock_offsets()
      const {
    return clock_;
  }

 private:
  Result<std::shared_ptr<net::Connection>> Conn(const std::string& address);
  void Publish();

  net::Transport* transport_;
  const std::string metadata_address_;
  const Options options_;
  obs::HealthDetector detector_;

  std::map<std::string, std::shared_ptr<net::Connection>> conns_;
  std::map<std::string, obs::ClockOffsetEstimator> clock_;
  std::vector<std::string> targets_;  // metadata + last discovery, deduped
  std::uint32_t ticks_until_discover_ = 0;

  std::atomic<bool> running_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace glider
