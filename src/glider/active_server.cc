#include "glider/active_server.h"

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <deque>
#include <utility>

#include "common/attribution.h"
#include "common/buffer_pool.h"
#include "common/event_journal.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "net/link_model.h"
#include "net/rpc_client.h"

namespace glider::core {

// CPU time of the calling thread, for per-action cost attribution: wall
// time alone can't distinguish an action burning a core from one parked on
// a stream pop.
static std::uint64_t ThreadCpuMicros() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000u;
}

// Watchdog view of a slot's in-flight method. run_start_us != 0 publishes
// the rest (written by the method thread before it, read by the watchdog
// thread). `cpu_clock` is the method thread's CPU clock: the watchdog
// measures CPU burnt since `cpu_at_progress_us` (bumped on every channel
// touch), so "stalled" means burning CPU without yielding — a method parked
// on a channel accrues no CPU and is never flagged. If the thread exits
// between the run_start check and the clock read, clock_gettime fails and
// the scan skips the slot.
struct SlotRunState {
  std::atomic<std::uint64_t> run_start_us{0};  // wall clock; 0 = idle
  std::atomic<std::uint64_t> cpu_at_progress_us{0};
  std::atomic<clockid_t> cpu_clock{CLOCK_THREAD_CPUTIME_ID};
  std::atomic<const char*> method{""};
  std::atomic<bool> flagged{false};  // one warning per stall episode

  // Called by the method thread whenever it touches its stream channel —
  // the watchdog's definition of "yield/progress".
  void BumpProgress() {
    cpu_at_progress_us.store(ThreadCpuMicros(), std::memory_order_relaxed);
    flagged.store(false, std::memory_order_relaxed);
  }
};

// Marks a slot's method as running for the watchdog, for the lifetime of
// the method body on the action thread.
class MethodRunScope {
 public:
  MethodRunScope(SlotRunState* run, const char* method) : run_(run) {
    clockid_t clock = CLOCK_THREAD_CPUTIME_ID;
    ::pthread_getcpuclockid(::pthread_self(), &clock);
    run_->cpu_clock.store(clock, std::memory_order_relaxed);
    run_->cpu_at_progress_us.store(ThreadCpuMicros(),
                                   std::memory_order_relaxed);
    run_->method.store(method, std::memory_order_relaxed);
    run_->flagged.store(false, std::memory_order_relaxed);
    start_ = obs::TraceNowMicros();
    run_->run_start_us.store(start_, std::memory_order_release);
  }
  ~MethodRunScope() {
    // The scope outlives the monitor hand-off (it unwinds after Exit), so
    // the next method on this slot may already have published its own
    // start. Clear only our own mark.
    std::uint64_t expected = start_;
    run_->run_start_us.compare_exchange_strong(expected, 0,
                                               std::memory_order_release,
                                               std::memory_order_relaxed);
  }
  MethodRunScope(const MethodRunScope&) = delete;
  MethodRunScope& operator=(const MethodRunScope&) = delete;

 private:
  SlotRunState* run_;
  std::uint64_t start_ = 0;
};

// One action slot: the unit of active-server capacity. Holds the live
// action object, its execution monitor, and its creation config.
//
// Locking: method execution (and with it every mutation of interleave/
// action_type/config) is serialized by `monitor`. The live-object pointer
// is additionally guarded by `obj_mu` so network workers can check/observe
// it without entering the monitor (which would queue them behind running
// methods).
struct ActiveServer::Slot {
  std::uint32_t index = 0;
  // shared_ptr (not unique_ptr) because handler lambdas captured into
  // std::function must stay copyable.
  std::shared_ptr<Action> object;
  mutable std::mutex obj_mu;
  ActionMonitor monitor;
  bool interleave = false;
  std::string action_type;
  Buffer config;

  // Per-slot resource accounting ("active.slot<i>.*"), resolved once at
  // server construction; updates are relaxed atomics behind the
  // obs::Enabled() gate. `queue_depth` counts methods submitted but not
  // yet admitted by the monitor; `cpu_us` is method thread CPU time
  // (CLOCK_THREAD_CPUTIME_ID), the cost-attribution signal glider_top
  // uses to blame cluster load on individual actions.
  struct Stats {
    obs::Counter* invocations = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* cpu_us = nullptr;
    obs::Counter* stalls = nullptr;
    obs::Gauge* queue_depth = nullptr;
  } stats;

  SlotRunState run;

  std::shared_ptr<Action> LiveObject() const {
    std::scoped_lock lock(obj_mu);
    return object;
  }
};

// One open I/O stream on an action.
struct ActiveServer::Stream {
  std::uint64_t id = 0;
  std::uint32_t slot = 0;
  StreamMode mode = StreamMode::kRead;
  StreamChannel channel;
  // Write streams: responder for the client's close request, fulfilled when
  // the method finishes consuming the stream ("this sends a final request
  // that ... ends the method execution", §4.2).
  std::mutex close_mu;
  net::Responder close_responder;
  net::Message close_request;
  bool method_done = false;

  Stream(std::uint64_t stream_id, std::uint32_t slot_index, StreamMode m,
         std::size_t capacity)
      : id(stream_id), slot(slot_index), mode(m), channel(capacity) {}
};

namespace {

// Context handed to action methods.
class ServerActionContext : public ActionContext {
 public:
  ServerActionContext(nk::StoreClient* store, ByteSpan config)
      : store_(store), config_(config) {}

  nk::StoreClient& store() override { return *store_; }
  ByteSpan config() const override { return config_; }

 private:
  nk::StoreClient* store_;
  ByteSpan config_;
};

// Input stream over a write-stream channel: pops tasks in order; EOS task
// becomes the empty end-of-stream chunk.
class ChannelInputStream : public ActionInputStream {
 public:
  ChannelInputStream(StreamChannel* channel, ActionMonitor* monitor,
                     SlotRunState* run)
      : channel_(channel), monitor_(monitor), run_(run) {}

  Result<Buffer> ReadChunk() override {
    if (eos_) return Buffer{};
    if (pending_.empty()) {
      run_->BumpProgress();
      // Drain every queued task with a single channel lock/wakeup: doorbell
      // batches arrive together, so one wake serves many ReadChunk calls.
      auto batch = channel_->BlockingPopAll(monitor_, kDrainMax);
      run_->BumpProgress();
      if (!batch.ok()) {
        // Teardown while reading: surface as end of stream.
        eos_ = true;
        return Buffer{};
      }
      for (auto& task : *batch) pending_.push_back(std::move(task));
    }
    DataTask task = std::move(pending_.front());
    pending_.pop_front();
    if (task.eos) {
      eos_ = true;
      return Buffer{};
    }
    return std::move(task.data);
  }

  bool saw_eos() const { return eos_; }

  // Consumes the rest of the stream — local stash first, then the channel —
  // WITHOUT monitor yields: used after the method returned or threw, when
  // the action's execution turn has already been released. Terminates on
  // the eos task or channel teardown.
  void DrainUntilEos() {
    while (!eos_) {
      while (!pending_.empty()) {
        DataTask task = std::move(pending_.front());
        pending_.pop_front();
        if (task.eos) {
          eos_ = true;
          break;
        }
      }
      if (eos_) break;
      auto batch = channel_->BlockingPopAll(nullptr, kDrainMax);
      if (!batch.ok()) {
        eos_ = true;
        break;
      }
      for (auto& task : *batch) pending_.push_back(std::move(task));
    }
  }

 private:
  // Bounds the local stash so channel capacity (and thus client admission
  // windows) keeps functioning as backpressure.
  static constexpr std::size_t kDrainMax = 16;

  StreamChannel* channel_;
  ActionMonitor* monitor_;
  SlotRunState* run_;
  std::deque<DataTask> pending_;
  bool eos_ = false;
};

// Output stream over a read-stream channel.
class ChannelOutputStream : public ActionOutputStream {
 public:
  ChannelOutputStream(StreamChannel* channel, ActionMonitor* monitor,
                      SlotRunState* run)
      : channel_(channel), monitor_(monitor), run_(run) {}

  Status Write(ByteSpan data) override {
    if (closed_) return Status::Closed("output stream closed");
    run_->BumpProgress();
    DataTask task;
    // One copy, into pooled chunk storage; the network worker later ships
    // this buffer to the wire without copying it again.
    Buffer chunk = BufferPool::Global().Acquire(data.size());
    std::copy(data.begin(), data.end(), chunk.mutable_span().begin());
    data_plane::RecordCopy(data.size());
    task.data = std::move(chunk);
    const Status admitted = channel_->BlockingPush(std::move(task), monitor_);
    run_->BumpProgress();
    return admitted;
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    channel_->CloseProducer();
  }

 private:
  StreamChannel* channel_;
  ActionMonitor* monitor_;
  SlotRunState* run_;
  bool closed_ = false;
};

// Observability for one action-method execution. Captured on the network
// worker at submit time (while the RPC server span is the current context),
// then consumed on the action thread: the submit->monitor-admit gap becomes
// the queue-wait span, monitor-admit->exit the run span, each feeding an
// "action.<method>.{queue,run}_us" histogram.
struct MethodTrace {
  bool active = false;
  obs::TraceContext parent;
  obs::PrincipalId principal = 0;  // caller's tenant, captured at submit
  std::uint64_t submit_us = 0;
  std::uint64_t run_span_id = 0;  // pre-allocated: the run span's id
  const char* method = "";

  static MethodTrace Begin(const char* method) {
    MethodTrace t;
    if (!obs::Enabled()) return t;
    t.active = true;
    t.parent = obs::CurrentTraceContext();
    t.principal = obs::CurrentPrincipal();
    t.submit_us = obs::TraceNowMicros();
    t.run_span_id = obs::NewSpanId();
    t.method = method;
    return t;
  }

  // Context for the method body: the run span id is allocated up front so
  // nested work (store RPCs, channel pushes/pops) parents *under* the run
  // span — the assembled tree then decomposes run time into cpu / net /
  // channel instead of flattening those spans beside it.
  obs::TraceContext RunContext() const {
    if (!active || parent.trace_id == 0) return parent;
    return obs::TraceContext{parent.trace_id, run_span_id};
  }

  // Call once the monitor admits the method; returns the run start time.
  // Call with the method's profile tag installed: the queue wait becomes an
  // off-CPU sample attributed to the method that was kept waiting.
  std::uint64_t EnterRun() const {
    if (!active) return 0;
    const std::uint64_t now = obs::TraceNowMicros();
    obs::SamplingProfiler::Global().AddWaitSample("action.queue",
                                                  now - submit_us);
    obs::RecordSpan("action", std::string("action.") + method + ".queue",
                    parent, obs::NewSpanId(), submit_us, now);
    obs::MetricsRegistry::Global()
        .GetHistogram(std::string("action.") + method + ".queue_us")
        .Record(now - submit_us);
    obs::LedgerCell wait;
    wait.queue_us = now - submit_us;
    obs::ResourceLedger::Global().Charge(
        principal, std::string("action.") + method, wait);
    return now;
  }

  void FinishRun(std::uint64_t run_start_us) const {
    if (!active) return;
    const std::uint64_t now = obs::TraceNowMicros();
    obs::RecordSpan("action", std::string("action.") + method + ".run",
                    parent, run_span_id, run_start_us, now);
    obs::MetricsRegistry::Global()
        .GetHistogram(std::string("action.") + method + ".run_us")
        .Record(now - run_start_us);
  }

  // Bills `cpu_us` of action-thread CPU (the same delta the per-slot
  // cpu_us counter receives) plus one invocation to the caller's tenant,
  // keyed "action.<method>" — the ledger's action-plane cpu therefore sums
  // exactly to the per-slot accounting.
  void ChargeCpu(std::uint64_t cpu_us) const {
    if (!active) return;
    obs::LedgerCell cell;
    cell.cpu_us = cpu_us;
    cell.invocations = 1;
    obs::ResourceLedger::Global().Charge(
        principal, std::string("action.") + method, cell);
  }
};

}  // namespace

ActiveServer::ActiveServer(Options options,
                           std::shared_ptr<ActionRegistry> registry,
                           std::shared_ptr<Metrics> metrics)
    : net::ServiceRouter("active", metrics.get()),
      options_(std::move(options)),
      registry_(std::move(registry)),
      metrics_(std::move(metrics)) {
  auto& reg = obs::MetricsRegistry::Global();
  total_queue_depth_ = &reg.GetGauge("active.queue_depth");
  total_stalls_ = &reg.GetCounter("active.stalls");
  slots_.reserve(options_.num_slots);
  for (std::uint32_t i = 0; i < options_.num_slots; ++i) {
    auto slot = std::make_shared<Slot>();
    slot->index = i;
    const std::string prefix = "active.slot" + std::to_string(i) + ".";
    slot->stats.invocations = &reg.GetCounter(prefix + "invocations");
    slot->stats.bytes_in = &reg.GetCounter(prefix + "bytes_in");
    slot->stats.bytes_out = &reg.GetCounter(prefix + "bytes_out");
    slot->stats.cpu_us = &reg.GetCounter(prefix + "cpu_us");
    slot->stats.stalls = &reg.GetCounter(prefix + "stalls");
    slot->stats.queue_depth = &reg.GetGauge(prefix + "queue_depth");
    slots_.push_back(std::move(slot));
  }
  RouteDeferred<ActionCreateRequest>(
      kActionCreate, "ActionCreate",
      [this](ActionCreateRequest req, net::Message request,
             net::Responder responder) {
        DoActionCreate(std::move(req), std::move(request),
                       std::move(responder));
      });
  RouteDeferred<SlotRequest>(
      kActionDelete, "ActionDelete",
      [this](SlotRequest req, net::Message request, net::Responder responder) {
        DoActionDelete(req, std::move(request), std::move(responder));
      });
  RouteDeferred<SlotRequest>(
      kActionStat, "ActionStat",
      [this](SlotRequest req, net::Message request, net::Responder responder) {
        DoActionStat(req, std::move(request), std::move(responder));
      });
  RouteDeferred<StreamOpenRequest>(
      kStreamOpen, "StreamOpen",
      [this](StreamOpenRequest req, net::Message request,
             net::Responder responder) {
        DoStreamOpen(req, std::move(request), std::move(responder));
      });
  RouteDeferred<StreamWriteRequest>(
      kStreamWrite, "StreamWrite",
      [this](StreamWriteRequest req, net::Message request,
             net::Responder responder) {
        DoStreamWrite(std::move(req), std::move(request),
                      std::move(responder));
      });
  RouteDeferred<StreamWriteBatchRequest>(
      kStreamWriteBatch, "StreamWriteBatch",
      [this](StreamWriteBatchRequest req, net::Message request,
             net::Responder responder) {
        DoStreamWriteBatch(std::move(req), std::move(request),
                           std::move(responder));
      });
  RouteDeferred<StreamReadRequest>(
      kStreamRead, "StreamRead",
      [this](StreamReadRequest req, net::Message request,
             net::Responder responder) {
        DoStreamRead(req, std::move(request), std::move(responder));
      });
  RouteDeferred<StreamCloseRequest>(
      kStreamClose, "StreamClose",
      [this](StreamCloseRequest req, net::Message request,
             net::Responder responder) {
        DoStreamClose(req, std::move(request), std::move(responder));
      });
}

Status ActiveServer::MethodRunner::Submit(std::function<void()> task) {
  std::vector<std::thread> reaped;
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) return Status::Closed("active server shutting down");
    // Pull out threads whose bodies already completed; joined below,
    // outside the lock (the join itself only waits for thread exit).
    reaped.reserve(finished_.size());
    for (const std::uint64_t id : finished_) {
      auto it = threads_.find(id);
      if (it != threads_.end()) {
        reaped.push_back(std::move(it->second));
        threads_.erase(it);
      }
    }
    finished_.clear();
    const std::uint64_t id = next_id_++;
    threads_.emplace(id, std::thread([this, id, task = std::move(task)] {
                       task();
                       std::scoped_lock done_lock(mu_);
                       finished_.push_back(id);
                     }));
  }
  for (auto& t : reaped) {
    if (t.joinable()) t.join();
  }
  return Status::Ok();
}

void ActiveServer::MethodRunner::Shutdown() {
  std::map<std::uint64_t, std::thread> to_join;
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
    to_join.swap(threads_);
  }
  for (auto& [id, t] : to_join) {
    if (t.joinable()) t.join();
  }
}

ActiveServer::~ActiveServer() { Stop(); }

void ActiveServer::Stop() {
  // Stop accepting requests before tearing down action state. Joining the
  // method threads here (not just in the destructor) matters: the
  // transport's listener entry holds a shared_ptr to this service, so the
  // destructor alone can never run while the listener exists. Abort open
  // streams first: a method blocked on a stream the client abandoned
  // without closing would otherwise block the join forever.
  if (listener_) {
    obs::JournalEvent(obs::EventType::kServerDown, address_, "active");
  }
  listener_.reset();
  {
    std::scoped_lock lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  streams_.AbortAll();
  if (action_pool_) action_pool_->Shutdown();
  // With the methods joined, nothing touches the internal client or the
  // action objects any more. Release both: connections held by the client
  // (and, transitively, by retained action state) can reference active
  // servers — including this one — and would otherwise keep a cycle of
  // server entries alive past shutdown.
  internal_client_.reset();
  for (const auto& slot : slots_) {
    std::scoped_lock lock(slot->obj_mu);
    slot->object.reset();
  }
}

Status ActiveServer::Start(net::Transport& transport,
                           const std::string& metadata_address) {
  // Everything handler threads read (the method runner, the internal store
  // client) must be in place before Listen: the first RPC can arrive on a
  // listener thread with no synchronization edge back to this one.
  action_pool_ = std::make_unique<MethodRunner>();

  // The store client actions use to reach other nodes, over the
  // storage-internal link. Connects to the metadata server, so it does not
  // depend on our own listener being up.
  nk::StoreClient::Options copts;
  copts.transport = &transport;
  copts.metadata_address = metadata_address;
  copts.data_link = std::make_shared<net::LinkModel>(
      options_.internal_link_class, options_.internal_link_bps,
      std::chrono::microseconds(0), metrics_);
  GLIDER_ASSIGN_OR_RETURN(internal_client_,
                          nk::StoreClient::Connect(std::move(copts)));

  auto listener =
      transport.Listen(options_.preferred_address, shared_from_this());
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  address_ = listener_->address();

  // Register the slots as the blocks of this storage space, grouped under
  // the active storage class.
  auto conn = transport.Connect(
      metadata_address, net::LinkModel::Unshaped(LinkClass::kControl, metrics_));
  if (!conn.ok()) return conn.status();
  nk::RegisterServerRequest req;
  req.storage_class = nk::kActiveClass;
  req.address = address_;
  req.num_blocks = options_.num_slots;
  req.block_size = options_.slot_bytes;
  GLIDER_RETURN_IF_ERROR(net::CallVoid(**conn, nk::kRegisterServer, req));

  if (options_.stall_multiple > 0 && options_.interleave_quantum.count() > 0 &&
      !watchdog_.joinable()) {
    {
      std::scoped_lock lock(watchdog_mu_);
      watchdog_stop_ = false;
    }
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
  obs::JournalEvent(obs::EventType::kServerUp, address_, "active");
  return Status::Ok();
}

void ActiveServer::WatchdogLoop() {
  const std::uint64_t threshold_us = static_cast<std::uint64_t>(
      options_.stall_multiple *
      static_cast<double>(options_.interleave_quantum.count()) * 1000.0);
  std::unique_lock lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, options_.watchdog_interval,
                          [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    for (const auto& slot : slots_) {
      SlotRunState& run = slot->run;
      const std::uint64_t run_start =
          run.run_start_us.load(std::memory_order_acquire);
      if (run_start == 0) continue;  // idle
      if (run.flagged.load(std::memory_order_relaxed)) continue;
      // CPU burnt by the method thread since it last touched a channel. A
      // clock_gettime failure means the thread already exited — skip.
      timespec ts{};
      const clockid_t clock = run.cpu_clock.load(std::memory_order_relaxed);
      if (::clock_gettime(clock, &ts) != 0) continue;
      const std::uint64_t cpu_now =
          static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
          static_cast<std::uint64_t>(ts.tv_nsec) / 1000u;
      const std::uint64_t cpu_base =
          run.cpu_at_progress_us.load(std::memory_order_relaxed);
      if (cpu_now <= cpu_base || cpu_now - cpu_base <= threshold_us) continue;
      const std::uint64_t stalled_us = cpu_now - cpu_base;
      run.flagged.store(true, std::memory_order_relaxed);  // once per episode
      const char* method = run.method.load(std::memory_order_relaxed);
      total_stalls_->Increment();
      slot->stats.stalls->Increment();
      GLIDER_LOG(kWarn, "active")
          << "slot " << slot->index << " method " << method << " on-CPU "
          << stalled_us << "us without yielding (threshold " << threshold_us
          << "us = " << options_.stall_multiple << " x "
          << options_.interleave_quantum.count() << "ms quantum)";
      obs::SpanRecord record;
      record.name = "stall.slot" + std::to_string(slot->index) + "." + method;
      record.category = "active";
      record.start_us = run_start;
      record.dur_us = stalled_us;
      obs::SlowTraceStore::Global().Flag(std::move(record), threshold_us);
      obs::JournalEvent(obs::EventType::kSlotStall,
                        "slot" + std::to_string(slot->index), method,
                        static_cast<std::int64_t>(stalled_us));
    }
  }
}

void ActiveServer::StreamTable::Insert(std::uint64_t id,
                                       std::shared_ptr<Stream> stream) {
  Stripe& stripe = StripeFor(id);
  std::scoped_lock lock(stripe.mu);
  stripe.streams[id] = std::move(stream);
}

Result<std::shared_ptr<ActiveServer::Stream>> ActiveServer::StreamTable::Find(
    std::uint64_t id) const {
  const Stripe& stripe = StripeFor(id);
  std::scoped_lock lock(stripe.mu);
  auto it = stripe.streams.find(id);
  if (it == stripe.streams.end()) {
    return Status::NotFound("unknown stream " + std::to_string(id));
  }
  return it->second;
}

void ActiveServer::StreamTable::Erase(std::uint64_t id) {
  Stripe& stripe = StripeFor(id);
  std::scoped_lock lock(stripe.mu);
  stripe.streams.erase(id);
}

void ActiveServer::StreamTable::AbortAll() {
  for (Stripe& stripe : stripes_) {
    std::scoped_lock lock(stripe.mu);
    for (auto& [id, stream] : stripe.streams) stream->channel.Abort();
  }
}

Result<std::shared_ptr<ActiveServer::Slot>> ActiveServer::GetSlot(
    std::uint32_t index, bool must_have_object) {
  if (index >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(index) +
                              " out of range");
  }
  std::shared_ptr<Slot> slot = slots_[index];
  if (must_have_object && slot->LiveObject() == nullptr) {
    return Status::NotFound("no action in slot " + std::to_string(index));
  }
  return slot;
}

void ActiveServer::DoActionCreate(ActionCreateRequest req,
                                  net::Message request,
                                  net::Responder responder) {
  auto slot_result = GetSlot(req.slot, /*must_have_object=*/false);
  if (!slot_result.ok()) {
    return responder.SendError(request, slot_result.status());
  }
  auto slot = std::move(slot_result).value();
  auto object = registry_->Create(req.action_type);
  if (!object.ok()) return responder.SendError(request, object.status());

  // Instantiate under the action's execution turn: onCreate is user code
  // and follows the single-threaded model like any other method.
  const MethodTrace mt = MethodTrace::Begin("onCreate");
  const bool acct = obs::Enabled();
  if (acct) {
    slot->stats.invocations->Increment();
    slot->stats.queue_depth->Add(1);
    total_queue_depth_->Add(1);
  }
  const Status submitted = action_pool_->Submit(
      [this, slot, mt, acct, req = std::move(req),
       object = std::shared_ptr<Action>(std::move(object).value()),
       request, responder]() mutable {
        slot->monitor.Enter();
        if (acct) {
          slot->stats.queue_depth->Add(-1);
          total_queue_depth_->Add(-1);
        }
        std::string profile_tag;
        if (obs::SamplingProfiler::ActiveFast()) {
          profile_tag = "slot" + std::to_string(slot->index) + ":" +
                        req.action_type + ".onCreate";
        }
        obs::ProfileTagScope ptag(profile_tag.empty() ? nullptr
                                                      : profile_tag.c_str());
        MethodRunScope run_scope(&slot->run, "onCreate");
        const std::uint64_t cpu_start = acct ? ThreadCpuMicros() : 0;
        const std::uint64_t run_start = mt.EnterRun();
        obs::TraceContextScope trace_scope(mt.RunContext());
        obs::PrincipalScope principal_scope(mt.principal);
        if (acct) obs::MethodSketch().Offer(req.action_type + ".onCreate");
        if (slot->LiveObject() != nullptr) {
          slot->monitor.Exit();
          return responder.SendError(
              request, Status::AlreadyExists("slot already holds an action"));
        }
        slot->interleave = req.interleave;
        slot->action_type = req.action_type;
        slot->config = std::move(req.config);
        {
          std::scoped_lock lock(slot->obj_mu);
          slot->object = std::move(object);
        }
        ServerActionContext ctx(internal_client_.get(), slot->config.span());
        try {
          slot->object->onCreate(ctx);
          slot->monitor.Exit();
          mt.FinishRun(run_start);
          if (acct) {
            const std::uint64_t cpu = ThreadCpuMicros() - cpu_start;
            slot->stats.cpu_us->Add(cpu);
            mt.ChargeCpu(cpu);
          }
          responder.SendOk(request);
        } catch (const std::exception& e) {
          {
            std::scoped_lock lock(slot->obj_mu);
            slot->object.reset();
          }
          slot->monitor.Exit();
          mt.FinishRun(run_start);
          if (acct) {
            const std::uint64_t cpu = ThreadCpuMicros() - cpu_start;
            slot->stats.cpu_us->Add(cpu);
            mt.ChargeCpu(cpu);
          }
          responder.SendError(request,
                              Status::Internal(std::string("onCreate: ") +
                                               e.what()));
        }
      });
  if (!submitted.ok()) {
    if (acct) {
      slot->stats.queue_depth->Add(-1);
      total_queue_depth_->Add(-1);
    }
    responder.SendError(request, submitted);
  }
}

void ActiveServer::DoActionDelete(SlotRequest req, net::Message request,
                                  net::Responder responder) {
  auto slot_result = GetSlot(req.slot, /*must_have_object=*/true);
  if (!slot_result.ok()) {
    return responder.SendError(request, slot_result.status());
  }
  auto slot = std::move(slot_result).value();
  const MethodTrace mt = MethodTrace::Begin("onDelete");
  const bool acct = obs::Enabled();
  if (acct) {
    slot->stats.invocations->Increment();
    slot->stats.queue_depth->Add(1);
    total_queue_depth_->Add(1);
  }
  const Status submitted =
      action_pool_->Submit([this, slot, mt, acct, request,
                            responder]() mutable {
        slot->monitor.Enter();
        if (acct) {
          slot->stats.queue_depth->Add(-1);
          total_queue_depth_->Add(-1);
        }
        std::string profile_tag;
        if (obs::SamplingProfiler::ActiveFast()) {
          profile_tag = "slot" + std::to_string(slot->index) + ":" +
                        slot->action_type + ".onDelete";
        }
        obs::ProfileTagScope ptag(profile_tag.empty() ? nullptr
                                                      : profile_tag.c_str());
        MethodRunScope run_scope(&slot->run, "onDelete");
        const std::uint64_t cpu_start = acct ? ThreadCpuMicros() : 0;
        const std::uint64_t run_start = mt.EnterRun();
        obs::TraceContextScope trace_scope(mt.RunContext());
        obs::PrincipalScope principal_scope(mt.principal);
        if (acct) obs::MethodSketch().Offer(slot->action_type + ".onDelete");
        std::shared_ptr<Action> object = slot->LiveObject();
        if (object == nullptr) {
          slot->monitor.Exit();
          return responder.SendError(request,
                                     Status::NotFound("slot already empty"));
        }
        ServerActionContext ctx(internal_client_.get(), slot->config.span());
        try {
          object->onDelete(ctx);
        } catch (const std::exception& e) {
          GLIDER_LOG(kWarn, "active") << "onDelete threw: " << e.what();
        }
        {
          std::scoped_lock lock(slot->obj_mu);
          slot->object.reset();
        }
        slot->monitor.Exit();
        mt.FinishRun(run_start);
        if (acct) {
          const std::uint64_t cpu = ThreadCpuMicros() - cpu_start;
          slot->stats.cpu_us->Add(cpu);
          mt.ChargeCpu(cpu);
        }
        responder.SendOk(request);
      });
  if (!submitted.ok()) {
    if (acct) {
      slot->stats.queue_depth->Add(-1);
      total_queue_depth_->Add(-1);
    }
    responder.SendError(request, submitted);
  }
}

void ActiveServer::DoActionStat(SlotRequest req, net::Message request,
                                net::Responder responder) {
  auto slot_result = GetSlot(req.slot, /*must_have_object=*/true);
  if (!slot_result.ok()) {
    return responder.SendError(request, slot_result.status());
  }
  auto slot = std::move(slot_result).value();
  const Status submitted =
      action_pool_->Submit([slot, request, responder]() mutable {
        slot->monitor.Enter();
        ActionStatResponse resp;
        if (auto object = slot->LiveObject()) {
          resp.state_bytes = object->StateBytes();
        }
        slot->monitor.Exit();
        responder.SendOk(request, resp.Encode());
      });
  if (!submitted.ok()) responder.SendError(request, submitted);
}

void ActiveServer::DoStreamOpen(StreamOpenRequest req, net::Message request,
                                net::Responder responder) {
  auto slot_result = GetSlot(req.slot, /*must_have_object=*/true);
  if (!slot_result.ok()) {
    return responder.SendError(request, slot_result.status());
  }
  auto slot = std::move(slot_result).value();

  const std::uint64_t id = next_stream_id_.fetch_add(1);
  auto stream = std::make_shared<Stream>(id, req.slot, req.mode,
                                         options_.channel_capacity);
  streams_.Insert(id, stream);
  RunMethod(std::move(slot), stream);

  StreamOpenResponse resp;
  resp.stream_id = id;
  responder.SendOk(request, resp.Encode());
}

void ActiveServer::RunMethod(std::shared_ptr<Slot> slot,
                             std::shared_ptr<Stream> stream) {
  const MethodTrace mt = MethodTrace::Begin(
      stream->mode == StreamMode::kWrite ? "onWrite" : "onRead");
  // `acct` is captured so the increment/decrement pair stays balanced even
  // if observability is toggled while the method is queued.
  const bool acct = obs::Enabled();
  if (acct) {
    slot->stats.invocations->Increment();
    slot->stats.queue_depth->Add(1);
    total_queue_depth_->Add(1);
  }
  const Status submitted = action_pool_->Submit([this, slot, stream, mt,
                                                 acct] {
    const char* method_name =
        stream->mode == StreamMode::kWrite ? "onWrite" : "onRead";
    ActionMonitor* monitor = &slot->monitor;
    ActionMonitor* yield = slot->interleave ? monitor : nullptr;
    monitor->Enter();
    if (acct) {
      slot->stats.queue_depth->Add(-1);
      total_queue_depth_->Add(-1);
    }
    // Attribution tag for the profiler: every CPU sample taken on this
    // thread while the method runs lands under the slot it is serving.
    // Built only when the profiler is on (string concat on the hot path).
    std::string profile_tag;
    if (obs::SamplingProfiler::ActiveFast()) {
      profile_tag = "slot" + std::to_string(slot->index) + ":" +
                    slot->action_type + "." + method_name;
    }
    obs::ProfileTagScope ptag(profile_tag.empty() ? nullptr
                                                  : profile_tag.c_str());
    MethodRunScope run_scope(&slot->run, method_name);
    const std::uint64_t cpu_start = acct ? ThreadCpuMicros() : 0;
    const std::uint64_t run_start = mt.EnterRun();
    // Methods issue store RPCs and block on channels; parent all of that
    // under the method's run span (RunContext pre-allocates its id).
    obs::TraceContextScope trace_scope(mt.RunContext());
    // Same hop for the principal: store RPCs and channel traffic issued by
    // the method bill to the tenant that opened the stream.
    obs::PrincipalScope principal_scope(mt.principal);
    if (acct) {
      obs::MethodSketch().Offer(slot->action_type + "." + method_name);
    }
    ServerActionContext ctx(internal_client_.get(), slot->config.span());
    std::shared_ptr<Action> object = slot->LiveObject();
    if (stream->mode == StreamMode::kWrite) {
      ChannelInputStream in(&stream->channel, yield, &slot->run);
      try {
        if (object != nullptr) object->onWrite(in, ctx);
      } catch (const std::exception& e) {
        GLIDER_LOG(kWarn, "active") << "onWrite threw: " << e.what();
      }
      monitor->Exit();
      mt.FinishRun(run_start);
      if (acct) {
        const std::uint64_t cpu = ThreadCpuMicros() - cpu_start;
        slot->stats.cpu_us->Add(cpu);
        mt.ChargeCpu(cpu);
      }
      // The method may return before consuming the whole stream; drain so
      // pipelined client writes still get acknowledged, then complete the
      // client's close. Must go through `in`, not the channel directly: the
      // input stream may hold batch-drained tasks (eos included) in its
      // local stash.
      in.DrainUntilEos();
      net::Responder close_responder;
      net::Message close_request;
      {
        std::scoped_lock lock(stream->close_mu);
        stream->method_done = true;
        close_responder = std::move(stream->close_responder);
        close_request = stream->close_request;
      }
      if (close_responder.valid()) {
        close_responder.SendOk(close_request);
      }
    } else {
      ChannelOutputStream out(&stream->channel, yield, &slot->run);
      try {
        if (object != nullptr) object->onRead(out, ctx);
      } catch (const std::exception& e) {
        GLIDER_LOG(kWarn, "active") << "onRead threw: " << e.what();
      }
      monitor->Exit();
      mt.FinishRun(run_start);
      if (acct) {
        const std::uint64_t cpu = ThreadCpuMicros() - cpu_start;
        slot->stats.cpu_us->Add(cpu);
        mt.ChargeCpu(cpu);
      }
      out.Close();  // idempotent: signals end-of-stream to the reader
      std::scoped_lock lock(stream->close_mu);
      stream->method_done = true;
    }
  });
  if (!submitted.ok()) {
    if (acct) {
      slot->stats.queue_depth->Add(-1);
      total_queue_depth_->Add(-1);
    }
    GLIDER_LOG(kWarn, "active") << "action pool rejected method";
    stream->channel.Abort();
  }
}

void ActiveServer::DoStreamWrite(StreamWriteRequest req, net::Message request,
                                 net::Responder responder) {
  // Zero-copy: req.data is a slice of the request payload; the DataTask
  // keeps the frame's storage alive until the action consumes it.
  auto stream = streams_.Find(req.stream_id);
  if (!stream.ok()) return responder.SendError(request, stream.status());
  if ((*stream)->mode != StreamMode::kWrite) {
    return responder.SendError(request,
                               Status::InvalidArgument("not a write stream"));
  }
  if (obs::Enabled()) {
    slots_[(*stream)->slot]->stats.bytes_in->Add(req.data.size());
  }
  DataTask task;
  task.data = std::move(req.data);
  (*stream)->channel.AsyncPush(
      req.seq, std::move(task),
      [request, responder](Status admit) mutable {
        if (admit.ok()) {
          responder.SendOk(request);
        } else {
          responder.SendError(request, admit);
        }
      });
}

void ActiveServer::DoStreamWriteBatch(StreamWriteBatchRequest req,
                                      net::Message request,
                                      net::Responder responder) {
  // Doorbell write: the whole batch enters the channel under one lock with
  // one wakeup; the single response acks the batch once its last chunk is
  // admitted. Chunks are zero-copy slices of the request payload.
  auto stream = streams_.Find(req.stream_id);
  if (!stream.ok()) return responder.SendError(request, stream.status());
  if ((*stream)->mode != StreamMode::kWrite) {
    return responder.SendError(request,
                               Status::InvalidArgument("not a write stream"));
  }
  if (obs::Enabled()) {
    std::uint64_t total = 0;
    for (const auto& c : req.chunks) total += c.size();
    slots_[(*stream)->slot]->stats.bytes_in->Add(total);
  }
  std::vector<DataTask> tasks;
  tasks.reserve(req.chunks.size());
  for (auto& chunk : req.chunks) {
    DataTask task;
    task.data = std::move(chunk);
    tasks.push_back(std::move(task));
  }
  (*stream)->channel.AsyncPushAll(
      req.first_seq, std::move(tasks),
      [request, responder](Status admit) mutable {
        if (admit.ok()) {
          responder.SendOk(request);
        } else {
          responder.SendError(request, admit);
        }
      });
}

void ActiveServer::DoStreamRead(StreamReadRequest req, net::Message request,
                                net::Responder responder) {
  auto stream = streams_.Find(req.stream_id);
  if (!stream.ok()) return responder.SendError(request, stream.status());
  if ((*stream)->mode != StreamMode::kRead) {
    return responder.SendError(request,
                               Status::InvalidArgument("not a read stream"));
  }
  obs::Counter* bytes_out =
      obs::Enabled() ? slots_[(*stream)->slot]->stats.bytes_out : nullptr;
  (*stream)->channel.AsyncPop(
      req.seq, [request, responder, bytes_out](Result<DataTask> task) mutable {
        if (task.ok()) {
          if (bytes_out != nullptr) bytes_out->Add(task->data.size());
          responder.SendOk(request, std::move(task->data));
        } else {
          // kClosed = end of stream; the client reader treats it as EOF.
          responder.SendError(request, task.status());
        }
      });
}

void ActiveServer::DoStreamClose(StreamCloseRequest req, net::Message request,
                                 net::Responder responder) {
  auto stream_result = streams_.Find(req.stream_id);
  if (!stream_result.ok()) {
    // Already cleaned up; close is idempotent.
    return responder.SendOk(request);
  }
  auto stream = std::move(stream_result).value();

  if (stream->mode == StreamMode::kWrite) {
    bool already_done = false;
    {
      std::scoped_lock lock(stream->close_mu);
      if (stream->method_done) {
        already_done = true;
      } else {
        stream->close_responder = std::move(responder);
        stream->close_request = request;
      }
    }
    // End-of-stream arrives in-band after the last write (seq ordering).
    DataTask eos;
    eos.eos = true;
    stream->channel.AsyncPush(req.seq, std::move(eos), [](Status) {});
    if (already_done) {
      // Method finished early (it may not consume the whole stream).
      net::Responder r = std::move(responder);
      r.SendOk(request);
    }
  } else {
    // Reader is done: unblock the producer if it is still writing.
    stream->channel.Abort();
    responder.SendOk(request);
  }
  streams_.Erase(req.stream_id);
}

std::uint64_t ActiveServer::UsedBytes() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    if (auto object = slot->LiveObject()) total += object->StateBytes();
  }
  return total;
}

std::size_t ActiveServer::LiveActions() const {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot->LiveObject() != nullptr) ++count;
  }
  return count;
}

}  // namespace glider::core
