#include "net/inproc_transport.h"

#include <atomic>
#include <future>
#include <utility>

#include "common/logging.h"
#include "net/rpc_obs.h"

namespace glider::net {

struct InProcTransport::ServerEntry {
  explicit ServerEntry(std::shared_ptr<Service> svc, std::size_t workers)
      : service(std::move(svc)), pool(workers) {}

  std::shared_ptr<Service> service;
  ThreadPool pool;
  // Set by the listener before the pool shuts down so the inline delivery
  // path fails fast like Submit does.
  std::atomic<bool> closed{false};
  // Simulated partition (SetPartitioned): calls fail while the server keeps
  // running, so failure-detection tests can cut a node without killing it.
  std::atomic<bool> partitioned{false};

  bool Reachable() const {
    return !closed.load(std::memory_order_relaxed) &&
           !partitioned.load(std::memory_order_relaxed);
  }
};

class InProcTransport::InProcListener : public Listener {
 public:
  InProcListener(InProcTransport* transport, std::string address,
                 std::shared_ptr<ServerEntry> entry)
      : transport_(transport), address_(std::move(address)),
        entry_(std::move(entry)) {}

  ~InProcListener() override {
    transport_->Unregister(address_);
    entry_->closed.store(true, std::memory_order_relaxed);
    entry_->pool.Shutdown();
  }

  std::string address() const override { return address_; }

 private:
  InProcTransport* transport_;
  std::string address_;
  std::shared_ptr<ServerEntry> entry_;
};

namespace {

// Shared state behind a Responder: fulfills the caller's promise exactly
// once; if every Responder copy is destroyed unused, fails the call.
struct CallState {
  std::promise<Result<Message>> promise;
  std::shared_ptr<LinkModel> link;
  ClientCallTrace trace;
  std::atomic<bool> done{false};

  void Fulfill(Message response) {
    if (done.exchange(true)) return;
    if (link) link->OnReceive(response.WireSize());
    trace.Finish();
    promise.set_value(std::move(response));
  }
  void Fail(const Status& status) {
    if (done.exchange(true)) return;
    trace.Finish();
    promise.set_value(status);
  }
};

// Responder function object whose last copy fails the call when dropped
// without responding.
class ResponderFn {
 public:
  explicit ResponderFn(std::shared_ptr<CallState> state)
      : guard_(std::make_shared<Guard>(std::move(state))) {}

  void operator()(Message response) const {
    guard_->state->Fulfill(std::move(response));
  }

 private:
  struct Guard {
    explicit Guard(std::shared_ptr<CallState> s) : state(std::move(s)) {}
    ~Guard() {
      state->Fail(Status::Unavailable("request dropped without response"));
    }
    std::shared_ptr<CallState> state;
  };
  std::shared_ptr<Guard> guard_;
};

// State for the allocation-free synchronous fast path. Lives on the
// caller's stack: CallSync waits until every responder copy is destroyed
// (refs == 0) before returning, so no reference can dangle even when a
// handler defers the responder to another thread.
struct SyncCallState {
  std::mutex mu;
  std::condition_variable cv;
  Message result;
  bool responded = false;
  int refs = 0;
};

class SyncResponder {
 public:
  explicit SyncResponder(SyncCallState* state) : state_(state) { AddRef(); }
  SyncResponder(const SyncResponder& other) : state_(other.state_) {
    if (state_ != nullptr) AddRef();
  }
  SyncResponder(SyncResponder&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  SyncResponder& operator=(const SyncResponder&) = delete;
  SyncResponder& operator=(SyncResponder&&) = delete;
  ~SyncResponder() {
    if (state_ != nullptr) DropRef();
  }

  void operator()(Message response) const {
    std::scoped_lock lock(state_->mu);
    if (!state_->responded) {
      state_->responded = true;
      state_->result = std::move(response);
    }
  }

 private:
  void AddRef() {
    std::scoped_lock lock(state_->mu);
    ++state_->refs;
  }
  void DropRef() {
    // Notify while holding the mutex: the waiting caller destroys the stack
    // state the moment it observes refs == 0, so signalling after unlock
    // would race with that destruction.
    std::scoped_lock lock(state_->mu);
    if (--state_->refs == 0) state_->cv.notify_one();
  }

  SyncCallState* state_;
};

}  // namespace

class InProcTransport::InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<ServerEntry> entry,
                   std::shared_ptr<LinkModel> link)
      : entry_(std::move(entry)), link_(std::move(link)) {}

  std::future<Result<Message>> Call(Message request) override {
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<CallState>();
    state->link = link_;
    state->trace = ClientCallTrace::Begin(request, /*transport_index=*/0);
    auto fut = state->promise.get_future();

    if (link_) link_->OnSend(request.WireSize());
    const auto latency = link_ ? link_->latency() : std::chrono::microseconds(0);

    Responder responder{Responder::Fn(ResponderFn(state))};

    // Zero-latency links run the handler on the caller's thread: an in-proc
    // hop with no modeled delay gains nothing from a queue handoff and the
    // two context switches it costs. Handlers that defer their responder
    // still complete asynchronously; handlers that block apply the same
    // backpressure a synchronous call would.
    if (latency == std::chrono::microseconds(0)) {
      if (!entry_->Reachable()) {
        state->Fail(Status::Unavailable("server unreachable"));
      } else {
        HandleWithObs(*entry_->service, std::move(request),
                      std::move(responder), /*transport_index=*/0);
      }
      return fut;
    }

    // Propagation latency is applied on the delivery path (the network
    // worker sleeps until the message "arrives"), so pipelined operations
    // overlap their latencies like they would on a real link.
    const auto deliver_at = std::chrono::steady_clock::now() + latency;
    auto entry = entry_;
    Status submitted = entry_->pool.Submit(
        [entry, deliver_at, req = std::move(request),
         resp = std::move(responder)]() mutable {
          std::this_thread::sleep_until(deliver_at);
          // Partition check at delivery time: frames "in flight" when the
          // partition starts are lost too, like on a real cut link (the
          // dropped responder fails the call with kUnavailable).
          if (!entry->Reachable()) return;
          HandleWithObs(*entry->service, std::move(req), std::move(resp),
                        /*transport_index=*/0);
        });
    if (!submitted.ok()) {
      state->Fail(Status::Unavailable("server shut down"));
    }
    return fut;
  }

  // Zero-latency synchronous calls run the handler on this thread against
  // stack-held call state: no promise/future, no heap allocation for the
  // responder plumbing. Calls on delayed links fall back to Call().
  Result<Buffer> CallSync(std::uint16_t opcode, Buffer payload) override {
    if ((link_ && link_->latency() != std::chrono::microseconds(0)) ||
        !entry_->Reachable()) {
      return Connection::CallSync(opcode, std::move(payload));
    }
    Message request;
    request.opcode = opcode;
    request.payload = std::move(payload);
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    if (link_) link_->OnSend(request.WireSize());
    auto trace = ClientCallTrace::Begin(request, /*transport_index=*/0);

    SyncCallState state;
    HandleWithObs(*entry_->service, std::move(request),
                  Responder{Responder::Fn(SyncResponder(&state))},
                  /*transport_index=*/0);
    Message response;
    {
      std::unique_lock lock(state.mu);
      state.cv.wait(lock, [&state] { return state.refs == 0; });
      if (!state.responded) {
        trace.Finish();
        return Status::Unavailable("request dropped without response");
      }
      response = std::move(state.result);
    }
    if (link_) link_->OnReceive(response.WireSize());
    trace.Finish();
    return ToResult(std::move(response));
  }

 private:
  std::shared_ptr<ServerEntry> entry_;
  std::shared_ptr<LinkModel> link_;
  std::atomic<std::uint64_t> next_id_{1};
};

InProcTransport::InProcTransport(std::size_t num_workers)
    : num_workers_(num_workers) {}

InProcTransport::~InProcTransport() = default;

Result<std::unique_ptr<Listener>> InProcTransport::Listen(
    std::string preferred_address, std::shared_ptr<Service> service) {
  std::scoped_lock lock(mu_);
  std::string address = preferred_address.empty()
                            ? "inproc://" + std::to_string(next_anon_++)
                            : std::move(preferred_address);
  if (servers_.contains(address)) {
    return Status::AlreadyExists("address in use: " + address);
  }
  auto entry = std::make_shared<ServerEntry>(std::move(service), num_workers_);
  servers_[address] = entry;
  return std::unique_ptr<Listener>(
      new InProcListener(this, address, std::move(entry)));
}

Result<std::shared_ptr<Connection>> InProcTransport::Connect(
    const std::string& address, std::shared_ptr<LinkModel> link) {
  std::scoped_lock lock(mu_);
  auto it = servers_.find(address);
  if (it == servers_.end()) {
    return Status::NotFound("no server at " + address);
  }
  if (it->second->partitioned.load(std::memory_order_relaxed)) {
    return Status::Unavailable("partitioned from " + address);
  }
  return std::shared_ptr<Connection>(
      std::make_shared<InProcConnection>(it->second, std::move(link)));
}

Status InProcTransport::SetPartitioned(const std::string& address,
                                       bool partitioned) {
  std::scoped_lock lock(mu_);
  auto it = servers_.find(address);
  if (it == servers_.end()) {
    return Status::NotFound("no server at " + address);
  }
  it->second->partitioned.store(partitioned, std::memory_order_relaxed);
  return Status::Ok();
}

void InProcTransport::Unregister(const std::string& address) {
  std::scoped_lock lock(mu_);
  servers_.erase(address);
}

}  // namespace glider::net
