#include "net/inproc_transport.h"

#include <atomic>
#include <future>
#include <utility>

#include "common/logging.h"
#include "net/rpc_obs.h"

namespace glider::net {

struct InProcTransport::ServerEntry {
  explicit ServerEntry(std::shared_ptr<Service> svc, std::size_t workers)
      : service(std::move(svc)), pool(workers) {}

  std::shared_ptr<Service> service;
  ThreadPool pool;
};

class InProcTransport::InProcListener : public Listener {
 public:
  InProcListener(InProcTransport* transport, std::string address,
                 std::shared_ptr<ServerEntry> entry)
      : transport_(transport), address_(std::move(address)),
        entry_(std::move(entry)) {}

  ~InProcListener() override {
    transport_->Unregister(address_);
    entry_->pool.Shutdown();
  }

  std::string address() const override { return address_; }

 private:
  InProcTransport* transport_;
  std::string address_;
  std::shared_ptr<ServerEntry> entry_;
};

namespace {

// Shared state behind a Responder: fulfills the caller's promise exactly
// once; if every Responder copy is destroyed unused, fails the call.
struct CallState {
  std::promise<Result<Message>> promise;
  std::shared_ptr<LinkModel> link;
  ClientCallTrace trace;
  std::atomic<bool> done{false};

  void Fulfill(Message response) {
    if (done.exchange(true)) return;
    if (link) link->OnReceive(response.WireSize());
    trace.Finish();
    promise.set_value(std::move(response));
  }
  void Fail(const Status& status) {
    if (done.exchange(true)) return;
    trace.Finish();
    promise.set_value(status);
  }
};

// Responder function object whose last copy fails the call when dropped
// without responding.
class ResponderFn {
 public:
  explicit ResponderFn(std::shared_ptr<CallState> state)
      : guard_(std::make_shared<Guard>(std::move(state))) {}

  void operator()(Message response) const {
    guard_->state->Fulfill(std::move(response));
  }

 private:
  struct Guard {
    explicit Guard(std::shared_ptr<CallState> s) : state(std::move(s)) {}
    ~Guard() {
      state->Fail(Status::Unavailable("request dropped without response"));
    }
    std::shared_ptr<CallState> state;
  };
  std::shared_ptr<Guard> guard_;
};

}  // namespace

class InProcTransport::InProcConnection : public Connection {
 public:
  InProcConnection(std::shared_ptr<ServerEntry> entry,
                   std::shared_ptr<LinkModel> link)
      : entry_(std::move(entry)), link_(std::move(link)) {}

  std::future<Result<Message>> Call(Message request) override {
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    auto state = std::make_shared<CallState>();
    state->link = link_;
    state->trace = ClientCallTrace::Begin(request, /*transport_index=*/0);
    auto fut = state->promise.get_future();

    if (link_) link_->OnSend(request.WireSize());
    // Propagation latency is applied on the delivery path (the network
    // worker sleeps until the message "arrives"), so pipelined operations
    // overlap their latencies like they would on a real link.
    const auto deliver_at =
        std::chrono::steady_clock::now() +
        (link_ ? link_->latency() : std::chrono::microseconds(0));

    Responder responder{Responder::Fn(ResponderFn(state))};
    auto service = entry_->service;
    Status submitted = entry_->pool.Submit(
        [service, deliver_at, req = std::move(request),
         resp = std::move(responder)]() mutable {
          std::this_thread::sleep_until(deliver_at);
          HandleWithObs(*service, std::move(req), std::move(resp),
                        /*transport_index=*/0);
        });
    if (!submitted.ok()) {
      state->Fail(Status::Unavailable("server shut down"));
    }
    return fut;
  }

 private:
  std::shared_ptr<ServerEntry> entry_;
  std::shared_ptr<LinkModel> link_;
  std::atomic<std::uint64_t> next_id_{1};
};

InProcTransport::InProcTransport(std::size_t num_workers)
    : num_workers_(num_workers) {}

InProcTransport::~InProcTransport() = default;

Result<std::unique_ptr<Listener>> InProcTransport::Listen(
    std::string preferred_address, std::shared_ptr<Service> service) {
  std::scoped_lock lock(mu_);
  std::string address = preferred_address.empty()
                            ? "inproc://" + std::to_string(next_anon_++)
                            : std::move(preferred_address);
  if (servers_.contains(address)) {
    return Status::AlreadyExists("address in use: " + address);
  }
  auto entry = std::make_shared<ServerEntry>(std::move(service), num_workers_);
  servers_[address] = entry;
  return std::unique_ptr<Listener>(
      new InProcListener(this, address, std::move(entry)));
}

Result<std::shared_ptr<Connection>> InProcTransport::Connect(
    const std::string& address, std::shared_ptr<LinkModel> link) {
  std::scoped_lock lock(mu_);
  auto it = servers_.find(address);
  if (it == servers_.end()) {
    return Status::NotFound("no server at " + address);
  }
  return std::shared_ptr<Connection>(
      std::make_shared<InProcConnection>(it->second, std::move(link)));
}

void InProcTransport::Unregister(const std::string& address) {
  std::scoped_lock lock(mu_);
  servers_.erase(address);
}

}  // namespace glider::net
