// Minimal HTTP/1.1 responder serving GET /metrics in Prometheus text
// exposition format, so off-the-shelf scrapers can pull the process
// registry without speaking the glider RPC framing.
//
// Deliberately tiny: one accept thread, one short-lived thread per request,
// reads until the request-head terminator, answers, closes. That is all a
// pull-based scraper at a multi-second scrape interval needs; the RPC data
// plane keeps its own listener and is untouched by scrapes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/metrics_registry.h"
#include "common/prometheus.h"
#include "common/status.h"

namespace glider::net {

class HttpMetricsServer {
 public:
  // Binds host:port ("127.0.0.1:0" picks an ephemeral port; see address()).
  // The registry must outlive the server. `labels` are attached to every
  // exported series (e.g. {{"role", "active"}}) so scrapes from several
  // daemons on one host stay distinguishable. `refresh` (nullable) runs
  // before every scrape renders — daemons pass RefreshMirroredGauges so
  // mirrored link counters and the load index are current at scrape time
  // instead of frozen at the last RPC dump.
  static Result<std::unique_ptr<HttpMetricsServer>> Listen(
      const std::string& address,
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global(),
      obs::PrometheusLabels labels = {},
      std::function<void()> refresh = nullptr);

  ~HttpMetricsServer();
  HttpMetricsServer(const HttpMetricsServer&) = delete;
  HttpMetricsServer& operator=(const HttpMetricsServer&) = delete;

  // The bound address, with the real port filled in.
  std::string address() const;

 private:
  struct Impl;
  explicit HttpMetricsServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace glider::net
