// Transport abstraction.
//
// A Connection carries request/response Messages to one server. All calls are
// asynchronous: Call() returns a future fulfilled when the response arrives
// (in-process: when a server worker responds; TCP: when the reader thread
// matches the response id).
//
// A server registers a Service with a Listener. Handlers receive a Responder
// they may invoke from any thread — this lets the active server's network
// workers park a read request until an action produces data without holding
// a thread.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>

#include "net/message.h"

namespace glider::net {

// Fulfills one request. Move-only; must be invoked exactly once.
class Responder {
 public:
  using Fn = std::function<void(Message)>;
  Responder() = default;
  explicit Responder(Fn fn) : fn_(std::move(fn)) {}

  void Send(Message response) {
    if (fn_) {
      Fn fn = std::move(fn_);
      fn_ = nullptr;
      fn(std::move(response));
    }
  }
  void SendOk(const Message& request, Buffer payload = {}) {
    Send(OkResponse(request, std::move(payload)));
  }
  void SendError(const Message& request, const Status& status) {
    Send(ErrorResponse(request, status));
  }
  bool valid() const { return fn_ != nullptr; }

 private:
  Fn fn_;
};

// A server-side message handler. Implementations must be thread-safe: the
// transport invokes Handle from multiple network worker threads.
class Service {
 public:
  virtual ~Service() = default;
  virtual void Handle(Message request, Responder responder) = 0;
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Sends a request; the future resolves with the response (or a transport
  // error). Safe to call from multiple threads.
  virtual std::future<Result<Message>> Call(Message request) = 0;

  // Pipelining hint: between Cork() and Uncork() the transport may hold
  // outgoing frames in its send coalescer and emit the whole burst in one
  // batched write at Uncork(). Nestable (a depth counter); budget overflow
  // still flushes mid-cork. No-op on transports without a framing layer
  // (in-process calls run inline, there is nothing to batch).
  virtual void Cork() {}
  virtual void Uncork() {}

  // Convenience: synchronous call returning the response payload. Virtual
  // so transports with a same-thread delivery path can skip the
  // promise/future machinery entirely.
  virtual Result<Buffer> CallSync(std::uint16_t opcode, Buffer payload) {
    Message m;
    m.opcode = opcode;
    m.payload = std::move(payload);
    auto fut = Call(std::move(m));
    GLIDER_ASSIGN_OR_RETURN(auto response, fut.get());
    return ToResult(std::move(response));
  }
};

class Listener {
 public:
  virtual ~Listener() = default;
  virtual std::string address() const = 0;
};

// A Transport names servers by address strings and creates connections.
// Connections are shaped by the given LinkModel (nullptr = unshaped,
// unattributed — used by unit tests only).
class LinkModel;
class Transport {
 public:
  virtual ~Transport() = default;

  // Binds `service` and returns a listener handle; the service must outlive
  // the listener. `preferred_address` may be empty (transport picks one).
  virtual Result<std::unique_ptr<Listener>> Listen(
      std::string preferred_address, std::shared_ptr<Service> service) = 0;

  virtual Result<std::shared_ptr<Connection>> Connect(
      const std::string& address, std::shared_ptr<LinkModel> link) = 0;
};

}  // namespace glider::net
