// TCP transport: real sockets on localhost (or any host), a reader thread
// per connection, and a network worker pool per listener. Used by
// integration tests and examples to demonstrate the system runs over a real
// network stack; the shaped in-process transport is used for the benches
// (see DESIGN.md §2).
//
// Frame format on the wire: the 32-byte frame header (opcode, status,
// request id, trace context, payload length — see net/message.h) followed
// by the payload bytes; no separate outer length prefix.
#pragma once

#include <memory>
#include <string>

#include "net/link_model.h"
#include "net/transport.h"

namespace glider::net {

class TcpTransport : public Transport {
 public:
  // num_workers: handler threads per listener.
  explicit TcpTransport(std::size_t num_workers = 8);
  ~TcpTransport() override;

  // preferred_address: "host:port"; empty or port 0 picks a free port on
  // 127.0.0.1. The returned listener's address() reports the bound endpoint.
  Result<std::unique_ptr<Listener>> Listen(
      std::string preferred_address, std::shared_ptr<Service> service) override;

  Result<std::shared_ptr<Connection>> Connect(
      const std::string& address, std::shared_ptr<LinkModel> link) override;

 private:
  const std::size_t num_workers_;
};

}  // namespace glider::net
