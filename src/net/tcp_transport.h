// TCP transport: real sockets on localhost (or any host), a reader thread
// per connection, and a network worker pool per listener. Used by
// integration tests and examples to demonstrate the system runs over a real
// network stack; the shaped in-process transport is used for the benches
// (see DESIGN.md §2).
//
// Wire format: each direction opens with the 8-byte preamble ("GLDR" +
// wire version — mixed-version peers fail fast instead of misframing),
// then a stream of frames: the fixed-size frame header (opcode, status,
// request id, trace context, principal, payload length — see
// net::kFrameHeaderSize in net/message.h) followed by the payload bytes;
// no separate outer length prefix.
//
// Both directions batch (DESIGN.md "Hot-path batching & wakeup"): a
// per-connection send coalescer gathers small frames into one sendmsg
// (large payloads ride along as their own zero-copy iovecs) and the receive
// side decodes every frame a single recv buffered, handing the server's
// worker pool a whole batch per doorbell.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/link_model.h"
#include "net/transport.h"

namespace glider::net {

// Knobs for the per-connection send coalescer (both directions use the
// same settings).
struct TcpOptions {
  // Microseconds a staged frame may wait for peers to coalesce before a
  // dedicated flusher thread emits it. 0 (the default) selects
  // opportunistic mode: the enqueuing thread flushes immediately unless
  // another thread's flush is already on the wire, so an uncontended send
  // pays no added latency and batches form exactly when the link is busy.
  // Nonzero values trade that latency for denser batches (and cost one
  // flusher thread per connection).
  std::uint32_t flush_us = 0;
  // Flush as soon as this many bytes or frames are staged. The byte bound
  // doubles as backpressure: senders block once the staging area holds
  // this much while a flush is in flight.
  std::size_t coalesce_bytes = 256 * 1024;
  std::size_t coalesce_frames = 64;
  // Payloads up to this size are copied into the staging buffer so the
  // whole batch is one contiguous iovec; larger payloads are referenced
  // zero-copy as their own sendmsg iovec.
  std::size_t inline_copy_bytes = 16 * 1024;
};

class TcpTransport : public Transport {
 public:
  // num_workers: handler threads per listener.
  explicit TcpTransport(std::size_t num_workers = 8, TcpOptions options = {});
  ~TcpTransport() override;

  // preferred_address: "host:port"; empty or port 0 picks a free port on
  // 127.0.0.1. The returned listener's address() reports the bound endpoint.
  Result<std::unique_ptr<Listener>> Listen(
      std::string preferred_address, std::shared_ptr<Service> service) override;

  Result<std::shared_ptr<Connection>> Connect(
      const std::string& address, std::shared_ptr<LinkModel> link) override;

 private:
  const std::size_t num_workers_;
  const TcpOptions options_;
};

}  // namespace glider::net
