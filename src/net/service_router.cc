#include "net/service_router.h"

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace glider::net {

ServiceRouter::ServiceRouter(std::string service_name, const Metrics* metrics)
    : service_name_(std::move(service_name)), metrics_(metrics) {}

void ServiceRouter::Handle(Message request, Responder responder) {
  if (TryHandleObs(request, responder, metrics_)) return;
  if (request.opcode < entries_.size()) {
    const Entry& entry = entries_[request.opcode];
    if (entry.fn) {
      entry.fn(std::move(request), std::move(responder));
      return;
    }
  }
  if (obs::Enabled()) {
    static obs::Counter& unroutable =
        obs::MetricsRegistry::Global().GetCounter("rpc.unroutable");
    unroutable.Increment();
  }
  responder.SendError(
      request, Status::Unimplemented(service_name_ + " opcode " +
                                     std::to_string(request.opcode) + " (" +
                                     RpcOpName(request.opcode) + ")"));
}

const char* ServiceRouter::OpName(std::uint16_t opcode) const {
  return opcode < entries_.size() ? entries_[opcode].name : nullptr;
}

Status ServiceRouter::DecodeError(const char* op_name, const Status& status) {
  return Status(status.code(),
                std::string(op_name) + ": bad request: " + status.message());
}

void ServiceRouter::RegisterRaw(std::uint16_t opcode, const char* op_name,
                                RawHandler fn) {
  if (opcode >= entries_.size() || entries_[opcode].fn) {
    // Registration happens once, at construction, from the server's own
    // code: colliding or out-of-range opcodes are programming errors.
    GLIDER_LOG(kError, "rpc") << service_name_ << ": cannot route opcode "
                              << opcode << " (" << op_name << ")";
    return;
  }
  entries_[opcode] = Entry{op_name, std::move(fn)};
}

}  // namespace glider::net
