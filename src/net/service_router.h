// Typed RPC service layer: ServiceRouter maps opcodes to typed handlers so
// no server hand-rolls the Handle -> switch -> Decode -> handle -> Encode
// loop (DESIGN.md "Service layer & locking model").
//
// A server derives from ServiceRouter and registers its opcodes once at
// construction:
//
//   Route<LookupRequest>(kLookup, "Lookup",
//       [this](const LookupRequest& req) { return DoLookup(req); });
//
// The router owns the shared request plumbing:
//   * the management opcodes (kStatsDump/kTraceDump) via TryHandleObs,
//   * request decoding — preferring a zero-copy Decode(const Buffer&)
//     overload when the request type provides one,
//   * response encoding — handlers return Result<Resp> for any Resp with
//     Encode(), or Result<Buffer> for raw/zero-copy payloads,
//   * uniform error wrapping: decode failures carry the registered opcode
//     name; handler Status values travel back as error responses,
//   * opcode-name registration, so logs and error messages never show bare
//     opcode numbers.
//
// Handlers that complete asynchronously (the active server parks stream
// reads until an action produces data) register with RouteDeferred and
// receive the decoded request plus the raw Message/Responder pair.
//
// Dispatch is lock-free: the opcode table is written only during
// construction, before the service is listed on a transport.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "net/rpc_obs.h"
#include "net/transport.h"

namespace glider::net {

namespace detail {

// Decodes a request, preferring the zero-copy Decode(const Buffer&)
// overload (payload fields become slices of the frame) over the copying
// Decode(ByteSpan) one.
template <typename Req>
Result<Req> DecodeRequest(const Message& request) {
  if constexpr (requires { Req::Decode(request.payload); }) {
    return Req::Decode(request.payload);
  } else {
    return Req::Decode(request.payload.span());
  }
}

// Encodes a response struct; Buffer results pass through untouched so
// handlers can return zero-copy payload slices.
template <typename Resp>
Buffer EncodePayload(Resp&& resp) {
  if constexpr (std::is_same_v<std::decay_t<Resp>, Buffer>) {
    return std::forward<Resp>(resp);
  } else {
    return resp.Encode();
  }
}

}  // namespace detail

class ServiceRouter : public Service {
 public:
  // `service_name` labels unroutable-opcode errors and logs. `metrics`
  // (nullable) feeds the management stats opcodes answered before dispatch.
  explicit ServiceRouter(std::string service_name,
                         const Metrics* metrics = nullptr);

  void Handle(Message request, Responder responder) final;

  // Registered name of an opcode ("Lookup"), or nullptr when unrouted.
  const char* OpName(std::uint16_t opcode) const;
  const std::string& service_name() const { return service_name_; }

 protected:
  // Synchronous handler: Result<Resp> fn(const Req&). The router decodes,
  // invokes, encodes, and answers — including the error path.
  template <typename Req, typename Fn>
  void Route(std::uint16_t opcode, const char* op_name, Fn handler) {
    RegisterRaw(opcode, op_name,
                [op_name, handler = std::move(handler)](
                    Message request, Responder responder) {
                  auto req = detail::DecodeRequest<Req>(request);
                  if (!req.ok()) {
                    responder.SendError(request,
                                        DecodeError(op_name, req.status()));
                    return;
                  }
                  auto result = handler(*req);
                  if (!result.ok()) {
                    responder.SendError(request, result.status());
                    return;
                  }
                  responder.SendOk(
                      request, detail::EncodePayload(std::move(result).value()));
                });
  }

  // Deferred handler: void fn(Req, Message, Responder). The handler owns
  // the responder and may fulfil it later, from any thread.
  template <typename Req, typename Fn>
  void RouteDeferred(std::uint16_t opcode, const char* op_name, Fn handler) {
    RegisterRaw(opcode, op_name,
                [op_name, handler = std::move(handler)](
                    Message request, Responder responder) {
                  auto req = detail::DecodeRequest<Req>(request);
                  if (!req.ok()) {
                    responder.SendError(request,
                                        DecodeError(op_name, req.status()));
                    return;
                  }
                  handler(std::move(req).value(), std::move(request),
                          std::move(responder));
                });
  }

  // Late metrics wiring for servers that build their Metrics after the
  // base-class constructor ran.
  void set_metrics(const Metrics* metrics) { metrics_ = metrics; }

 private:
  using RawHandler = std::function<void(Message, Responder)>;

  static Status DecodeError(const char* op_name, const Status& status);
  void RegisterRaw(std::uint16_t opcode, const char* op_name, RawHandler fn);

  // All service protocol opcodes live below 64; the 99x management opcodes
  // are answered by TryHandleObs before the table is consulted.
  static constexpr std::size_t kMaxOpcodes = 64;
  struct Entry {
    const char* name = nullptr;
    RawHandler fn;
  };

  std::string service_name_;
  const Metrics* metrics_;
  std::array<Entry, kMaxOpcodes> entries_{};
};

}  // namespace glider::net
