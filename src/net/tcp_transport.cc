#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/buffer_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "net/rpc_obs.h"

namespace glider::net {
namespace {

constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound

// RAII file descriptor. The descriptor value is atomic because owners
// Close()/Shutdown() from a destructor while an accept or read loop still
// holds get()'s result — the syscalls tolerate the stale fd, but the int
// itself must not race.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  int get() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return get() >= 0; }
  void Close() {
    const int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
  // Closes the socket for reading and writing, unblocking any reader.
  void Shutdown() {
    const int fd = get();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::atomic<int> fd_{-1};
};

Status WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send failed: " +
                                 std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n == 0) return Status::Closed("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Both directions of every connection open with the 8-byte wire preamble
// (net/message.h), sent before any frame: the client in Connect() (so a
// Call() staged before the reader thread spins up can never beat it onto
// the wire), the server at the top of its connection loop (before any
// handler can stage a response). Each side then validates the peer's
// preamble at the top of its read path. Both sides send eagerly, so the
// exchange cannot deadlock and costs no extra round trip; a mixed-version
// or foreign peer fails fast with a clear error instead of misreading
// payload_len at the wrong offset and misframing.
Status SendPreamble(int fd) {
  std::uint8_t ours[kWirePreambleSize];
  EncodeWirePreamble(ours);
  return WriteAll(fd, ours, sizeof(ours));
}

Status ReceivePreamble(int fd) {
  std::uint8_t theirs[kWirePreambleSize];
  GLIDER_RETURN_IF_ERROR(ReadAll(fd, theirs, sizeof(theirs)));
  return CheckWirePreamble(theirs);
}

// Emits a gather list fully, advancing through partial writes. sendmsg is
// called with at most kMaxIovPerCall entries per round (well under any
// platform IOV_MAX); the advance loop resumes mid-entry after a short
// write.
Status SendIovecs(int fd, std::vector<iovec>& iov) {
  constexpr std::size_t kMaxIovPerCall = 64;
  std::size_t at = 0;
  while (at < iov.size()) {
    msghdr msg{};
    msg.msg_iov = iov.data() + at;
    msg.msg_iovlen = std::min(iov.size() - at, kMaxIovPerCall);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send failed: " +
                                 std::string(std::strerror(errno)));
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (at < iov.size() && advanced >= iov[at].iov_len) {
      advanced -= iov[at].iov_len;
      ++at;
    }
    if (at < iov.size() && advanced > 0) {
      iov[at].iov_base =
          static_cast<std::uint8_t*>(iov[at].iov_base) + advanced;
      iov[at].iov_len -= advanced;
    }
  }
  return Status::Ok();
}

// --- Send coalescing --------------------------------------------------------

// Per-connection batching writer. Senders stage frames (header plus small
// payloads copied into one contiguous buffer; large payloads referenced
// zero-copy as their own iovec segments) under the lock, then the whole
// backlog leaves in one sendmsg.
//
// Two flush disciplines (TcpOptions::flush_us):
//   * opportunistic (0): the enqueuing thread flushes immediately unless
//     another thread's flush is already on the wire, in which case the
//     active flusher picks the new frames up on its next swap. Uncontended
//     sends keep the old one-syscall latency; batches form exactly when
//     the link is busy.
//   * deadline (>0): frames wait up to flush_us for peers to coalesce; a
//     dedicated flusher thread emits on deadline or when the byte/frame
//     budget fills, whichever is first.
// Cork()/Uncork() suppress the opportunistic flush so a caller issuing a
// known burst shares one flush; budget overflow still flushes mid-cork.
//
// A send error latches into `status_`: subsequent sends fail fast, and the
// connection's reader notices the dead socket and fails the pending calls,
// covering frames accepted before the error surfaced.
class SendCoalescer {
 public:
  // Consecutive deadline-expiry flushes before a kFlushStorm event fires.
  static constexpr std::uint64_t kFlushStormStreak = 64;

  SendCoalescer(int fd, const TcpOptions& options)
      : fd_(fd), options_(options) {
    if (options_.flush_us > 0) {
      flusher_ = std::thread([this] { FlusherLoop(); });
    }
  }

  ~SendCoalescer() {
    {
      std::unique_lock lock(mu_);
      // Best-effort final flush so responses staged right before teardown
      // still reach the peer.
      if (status_.ok() && frames_ > 0) FlushBacklogLocked(lock);
      closed_ = true;
    }
    cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
  }

  SendCoalescer(const SendCoalescer&) = delete;
  SendCoalescer& operator=(const SendCoalescer&) = delete;

  Status Send(const Message& message) {
    std::unique_lock lock(mu_);
    // Backpressure: past the byte budget with a flush already in flight,
    // wait for the swap instead of staging without bound.
    cv_.wait(lock, [&] {
      return closed_ || !status_.ok() || !flushing_ ||
             staged_bytes_ < options_.coalesce_bytes;
    });
    if (closed_) return Status::Closed("connection closed");
    if (!status_.ok()) return status_;
    StageLocked(message);
    const bool over_budget = staged_bytes_ >= options_.coalesce_bytes ||
                             frames_ >= options_.coalesce_frames;
    if (options_.flush_us > 0) {
      // Deadline mode: wake the flusher on the first frame (arms its
      // deadline) and when the budget fills (flush now).
      if (frames_ == 1 || over_budget) {
        lock.unlock();
        cv_.notify_all();
      }
      return Status::Ok();
    }
    if (cork_depth_ > 0 && !over_budget) return Status::Ok();
    return FlushBacklogLocked(lock);
  }

  void Cork() {
    std::scoped_lock lock(mu_);
    ++cork_depth_;
  }

  void Uncork() {
    std::unique_lock lock(mu_);
    if (cork_depth_ == 0 || --cork_depth_ > 0) return;
    if (frames_ == 0) return;
    if (options_.flush_us > 0) {
      lock.unlock();
      cv_.notify_all();
      return;
    }
    if (status_.ok()) FlushBacklogLocked(lock);
  }

 private:
  // One element of the gather list: either a [stage_off, stage_off +
  // stage_len) window of the staging buffer, or a large payload held
  // zero-copy (`large` non-empty; its frame header still goes through the
  // staging buffer, so the wire order is preserved by segment order).
  struct Segment {
    std::size_t stage_off = 0;
    std::size_t stage_len = 0;
    Buffer large;
  };

  void StageLocked(const Message& message) {
    std::uint8_t header[kFrameHeaderSize];
    message.EncodeHeader(header);
    AppendStageLocked(header, sizeof(header));
    const ByteSpan payload = message.payload.span();
    if (payload.size() <= options_.inline_copy_bytes) {
      AppendStageLocked(payload.data(), payload.size());
    } else {
      Segment seg;
      seg.large = message.payload;  // refcount keeps the bytes alive
      segments_.push_back(std::move(seg));
    }
    ++frames_;
    staged_bytes_ += kFrameHeaderSize + payload.size();
  }

  void AppendStageLocked(const std::uint8_t* data, std::size_t size) {
    if (size == 0) return;
    if (!segments_.empty() && segments_.back().large.empty() &&
        segments_.back().stage_off + segments_.back().stage_len ==
            stage_.size()) {
      segments_.back().stage_len += size;  // extend the open stage window
    } else {
      segments_.push_back(Segment{stage_.size(), size, {}});
    }
    stage_.insert(stage_.end(), data, data + size);
  }

  // Emits the staged backlog, looping until it is empty: frames staged by
  // other threads while this one was inside sendmsg go out on the next
  // swap. At most one thread flushes at a time (`flushing_`); the lock is
  // dropped around the syscall so senders keep staging meanwhile.
  Status FlushBacklogLocked(std::unique_lock<std::mutex>& lock) {
    if (flushing_) return status_;  // active flusher will emit our frames
    flushing_ = true;
    while (status_.ok() && frames_ > 0) {
      std::vector<std::uint8_t> stage = std::move(stage_);
      std::vector<Segment> segments = std::move(segments_);
      stage_.clear();
      segments_.clear();
      frames_ = 0;
      staged_bytes_ = 0;
      lock.unlock();
      cv_.notify_all();  // budget waiters may stage the next batch
      std::vector<iovec> iov;
      iov.reserve(segments.size());
      for (const Segment& seg : segments) {
        iovec v;
        if (seg.large.empty()) {
          v.iov_base = stage.data() + seg.stage_off;
          v.iov_len = seg.stage_len;
        } else {
          v.iov_base = const_cast<std::uint8_t*>(seg.large.data());
          v.iov_len = seg.large.size();
        }
        iov.push_back(v);
      }
      const Status sent = SendIovecs(fd_, iov);
      lock.lock();
      if (!sent.ok()) status_ = sent;
    }
    flushing_ = false;
    if (!status_.ok()) cv_.notify_all();
    return status_;
  }

  void FlusherLoop() {
    // Deadline-expiry flushes in a row without one budget-filled flush in
    // between: a long run means flush_us is adding latency to every frame
    // while never earning a full batch — the tuning signal the journal's
    // kFlushStorm event surfaces.
    std::uint64_t deadline_streak = 0;
    std::unique_lock lock(mu_);
    while (!closed_) {
      cv_.wait(lock, [&] { return closed_ || frames_ > 0; });
      if (closed_) return;
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.flush_us);
      cv_.wait_until(lock, deadline, [&] {
        return closed_ || staged_bytes_ >= options_.coalesce_bytes ||
               frames_ >= options_.coalesce_frames;
      });
      if (closed_) return;
      const bool budget_filled = staged_bytes_ >= options_.coalesce_bytes ||
                                 frames_ >= options_.coalesce_frames;
      if (budget_filled) {
        deadline_streak = 0;
      } else {
        static obs::Counter* deadline_flushes =
            &obs::MetricsRegistry::Global().GetCounter("net.deadline_flushes");
        deadline_flushes->Increment();
        // One event per storm episode, as the streak crosses the threshold.
        if (++deadline_streak == kFlushStormStreak) {
          obs::JournalEvent(
              obs::EventType::kFlushStorm, "tcp",
              "deadline flushes without a filled batch (flush_us=" +
                  std::to_string(options_.flush_us) + ")",
              static_cast<std::int64_t>(kFlushStormStreak));
        }
      }
      if (status_.ok()) FlushBacklogLocked(lock);
      if (!status_.ok()) {
        // Dead socket: nothing further will flush; park until teardown so
        // the loop does not spin on the armed frames_ > 0 predicate.
        cv_.wait(lock, [&] { return closed_; });
        return;
      }
    }
  }

  const int fd_;
  const TcpOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> stage_;
  std::vector<Segment> segments_;
  std::size_t frames_ = 0;
  std::size_t staged_bytes_ = 0;
  int cork_depth_ = 0;
  bool flushing_ = false;
  bool closed_ = false;
  Status status_ = Status::Ok();
  std::thread flusher_;  // deadline mode only
};

// --- Buffered receive -------------------------------------------------------

// Buffered frame decoder: each recv fills a pooled window (often with many
// frames — the peer coalesces), and Next() peels frames off as zero-copy
// slices of that window. A frame torn across the window boundary is
// reassembled by copying only the partial remainder into a fresh window
// (the old storage stays alive through the slices already handed out);
// payloads too large for a window bypass the buffering and read straight
// into their own pooled allocation.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  // Blocking: decodes the next frame, refilling from the socket as needed.
  Result<Message> Next() {
    for (;;) {
      const std::size_t avail = filled_ - pos_;
      if (avail < kFrameHeaderSize) {
        GLIDER_RETURN_IF_ERROR(Refill(kFrameHeaderSize));
        continue;
      }
      Message m;
      std::uint32_t len = 0;
      GLIDER_RETURN_IF_ERROR(ParseHeader(base_ + pos_, m, len));
      const std::size_t total = kFrameHeaderSize + len;
      if (avail >= total) {
        if (len > 0) m.payload = buf_.Slice(pos_ + kFrameHeaderSize, len);
        pos_ += total;
        return m;
      }
      if (total > window_) {
        // Oversized frame: copy what is buffered of the payload, then read
        // the rest of it directly into its own exact-size allocation.
        Buffer payload = BufferPool::Global().Acquire(len);
        const std::size_t have = avail - kFrameHeaderSize;
        std::memcpy(payload.data(), base_ + pos_ + kFrameHeaderSize, have);
        pos_ = filled_;
        GLIDER_RETURN_IF_ERROR(ReadAll(fd_, payload.data() + have, len - have));
        m.payload = std::move(payload);
        return m;
      }
      GLIDER_RETURN_IF_ERROR(Refill(total));
    }
  }

  // True when the next whole frame is already buffered, i.e. Next() will
  // not touch the socket. The server loop uses this to size its dispatch
  // batches without risking a block mid-batch.
  bool FrameBuffered() const {
    const std::size_t avail = filled_ - pos_;
    if (avail < kFrameHeaderSize) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(
                 base_[pos_ + kFrameHeaderSize - 4 + i])
             << (8 * i);
    }
    return avail >= kFrameHeaderSize + len;
  }

 private:
  static constexpr std::size_t kWindowBytes = 64 * 1024;

  static Status ParseHeader(const std::uint8_t* header, Message& m,
                            std::uint32_t& len) {
    auto get16 = [&](int at) {
      return static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(header[at]) |
          (static_cast<std::uint16_t>(header[at + 1]) << 8));
    };
    auto get64 = [&](int at) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(header[at + i]) << (8 * i);
      }
      return v;
    };
    m.opcode = get16(0);
    m.status = static_cast<StatusCode>(get16(2));
    m.request_id = get64(4);
    m.trace_id = get64(12);
    m.span_id = get64(20);
    m.principal = get64(28);
    len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(header[kFrameHeaderSize - 4 + i])
             << (8 * i);
    }
    if (len > kMaxFrame) return Status::InvalidArgument("oversized frame");
    return Status::Ok();
  }

  // One recv into the window tail (first making sure the current frame can
  // complete there: `need` bytes from pos_). Swapping to a fresh window
  // copies only the unconsumed partial-frame remainder; outstanding payload
  // slices keep the old storage alive on their own.
  //
  // The window is written through `base_`, captured once while the Buffer
  // was provably unique: recv only ever fills [filled_, window_), which no
  // handed-out slice views (slices end at filled_), so the writes can never
  // show through a slice. Going through Buffer::data() here instead would
  // trigger its copy-on-write detach the moment a slice exists.
  Status Refill(std::size_t need) {
    if (window_ - pos_ < need) {
      const std::size_t remain = filled_ - pos_;
      Buffer fresh = BufferPool::Global().Acquire(
          need > kWindowBytes ? need : kWindowBytes);
      std::uint8_t* fresh_base = fresh.data();  // unique here, no detach
      if (remain > 0) std::memcpy(fresh_base, base_ + pos_, remain);
      buf_ = std::move(fresh);
      base_ = fresh_base;
      window_ = buf_.size();
      pos_ = 0;
      filled_ = remain;
    }
    const ssize_t n = ::recv(fd_, base_ + filled_, window_ - filled_, 0);
    if (n == 0) return Status::Closed("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) return Status::Ok();  // caller loops
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    filled_ += static_cast<std::size_t>(n);
    return Status::Ok();
  }

  const int fd_;
  Buffer buf_;
  std::uint8_t* base_ = nullptr;
  std::size_t window_ = 0;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

Result<std::pair<std::string, std::uint16_t>> SplitHostPort(
    const std::string& address) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address must be host:port: " + address);
  }
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port in " + address);
  }
  return std::pair<std::string, std::uint16_t>(
      host.empty() ? "127.0.0.1" : host, static_cast<std::uint16_t>(port));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// --- Server side -----------------------------------------------------------

class TcpListener : public Listener {
 public:
  TcpListener(Fd listen_fd, std::string address,
              std::shared_ptr<Service> service, std::size_t num_workers,
              TcpOptions options)
      : listen_fd_(std::move(listen_fd)), address_(std::move(address)),
        service_(std::move(service)), options_(options), pool_(num_workers) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~TcpListener() override {
    stopping_ = true;
    listen_fd_.Shutdown();
    listen_fd_.Close();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::scoped_lock lock(conns_mu_);
      for (auto& c : conns_) c->fd.Shutdown();
    }
    for (auto& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    pool_.Shutdown();
  }

  std::string address() const override { return address_; }

 private:
  struct ServerConn {
    ServerConn(int fd_value, const TcpOptions& options)
        : fd(fd_value), writer(fd.get(), options) {}
    Fd fd;
    SendCoalescer writer;
  };

  void AcceptLoop() {
    while (!stopping_) {
      const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (cfd < 0) {
        if (stopping_) return;
        if (errno == EINTR) continue;
        return;
      }
      SetNoDelay(cfd);
      auto conn = std::make_shared<ServerConn>(cfd, options_);
      {
        std::scoped_lock lock(conns_mu_);
        conns_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
      }
    }
  }

  std::function<void()> MakeTask(const std::shared_ptr<ServerConn>& conn,
                                 Message request) {
    auto service = service_;
    Responder responder(Responder::Fn([conn](Message response) {
      const Status s = conn->writer.Send(response);
      if (!s.ok()) {
        GLIDER_LOG(kDebug, "tcp") << "response write: " << s.ToString();
      }
    }));
    return [service, req = std::move(request),
            resp = std::move(responder)]() mutable {
      HandleWithObs(*service, std::move(req), std::move(resp),
                    /*transport_index=*/1);
    };
  }

  // Reads frames and rings the worker-pool doorbell: all the frames the
  // last recv buffered dispatch as one SubmitAll batch (one shard lock,
  // one wakeup, peers poked for the surplus) instead of one Submit each.
  void ConnLoop(std::shared_ptr<ServerConn> conn) {
    // Preamble first in both directions: ours goes out before any handler
    // can stage a response; the peer's is validated before any bytes are
    // interpreted as a frame header. Rejected peers get an immediate
    // shutdown so they observe a clean close instead of a hung socket
    // (accepted connections otherwise stay registered until listener
    // teardown).
    if (!SendPreamble(conn->fd.get()).ok()) return;
    if (const Status s = ReceivePreamble(conn->fd.get()); !s.ok()) {
      GLIDER_LOG(kWarn, "tcp") << "rejecting connection: " << s.ToString();
      conn->fd.Shutdown();
      return;
    }
    FrameReader reader(conn->fd.get());
    while (!stopping_) {
      auto first = reader.Next();
      if (!first.ok()) return;
      std::vector<std::function<void()>> batch;
      Status read_status = Status::Ok();
      Message request = std::move(first).value();
      for (;;) {
        batch.push_back(MakeTask(conn, std::move(request)));
        if (!reader.FrameBuffered()) break;
        auto next = reader.Next();
        if (!next.ok()) {
          read_status = next.status();
          break;
        }
        request = std::move(next).value();
      }
      if (!pool_.SubmitAll(std::move(batch)).ok()) return;
      if (!read_status.ok()) return;
    }
  }

  Fd listen_fd_;
  std::string address_;
  std::shared_ptr<Service> service_;
  const TcpOptions options_;
  ThreadPool pool_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ServerConn>> conns_;
  std::vector<std::thread> conn_threads_;
};

// --- Client side ------------------------------------------------------------

class TcpConnection : public Connection {
 public:
  TcpConnection(Fd fd, std::shared_ptr<LinkModel> link, TcpOptions options)
      : fd_(std::move(fd)), link_(std::move(link)),
        writer_(fd_.get(), options) {}

  // The reader captures `this`, not a shared_ptr: owning itself would make
  // the final release happen on the reader thread, which then joins itself.
  // The destructor shuts the socket down and joins before members die.
  void StartReader() {
    reader_ = std::thread([this] { ReadLoop(); });
  }

  ~TcpConnection() override {
    closing_ = true;
    fd_.Shutdown();
    if (reader_.joinable()) reader_.join();
    FailAllPending(Status::Closed("connection destroyed"));
  }

  std::future<Result<Message>> Call(Message request) override {
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    PendingCall pending;
    pending.trace = ClientCallTrace::Begin(request, /*transport_index=*/1);
    auto fut = pending.promise.get_future();
    {
      std::scoped_lock lock(pending_mu_);
      if (closing_) {
        pending.promise.set_value(Status::Closed("connection closed"));
        return fut;
      }
      pending_[request.request_id] = std::move(pending);
    }
    if (link_) {
      link_->OnSend(request.WireSize());
      // TCP cannot shape the receiver, so propagation latency is charged
      // on the sender (conservative for pipelined ops).
      if (link_->latency().count() > 0) {
        std::this_thread::sleep_for(link_->latency());
      }
    }
    const Status s = writer_.Send(request);
    if (!s.ok()) {
      TakePending(request.request_id, s);
    }
    return fut;
  }

  void Cork() override { writer_.Cork(); }
  void Uncork() override { writer_.Uncork(); }

 private:
  void ReadLoop() {
    // Our preamble already went out in Connect(), ahead of any staged
    // frame; validate the server's before decoding frame headers.
    if (const Status s = ReceivePreamble(fd_.get()); !s.ok()) {
      FailAllPending(s);
      return;
    }
    FrameReader reader(fd_.get());
    while (true) {
      auto response = reader.Next();
      if (!response.ok()) {
        FailAllPending(response.status());
        return;
      }
      if (link_) link_->OnReceive(response->WireSize());
      TakePendingOk(std::move(response).value());
    }
  }

  struct PendingCall {
    std::promise<Result<Message>> promise;
    ClientCallTrace trace;
  };

  void TakePendingOk(Message response) {
    PendingCall pending;
    {
      std::scoped_lock lock(pending_mu_);
      auto it = pending_.find(response.request_id);
      if (it == pending_.end()) return;  // response to an abandoned call
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending.trace.Finish();
    pending.promise.set_value(std::move(response));
  }

  void TakePending(std::uint64_t id, const Status& status) {
    PendingCall pending;
    {
      std::scoped_lock lock(pending_mu_);
      auto it = pending_.find(id);
      if (it == pending_.end()) return;
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending.trace.Finish();
    pending.promise.set_value(status);
  }

  void FailAllPending(const Status& status) {
    std::map<std::uint64_t, PendingCall> taken;
    {
      std::scoped_lock lock(pending_mu_);
      closing_ = true;
      taken.swap(pending_);
    }
    for (auto& [id, pending] : taken) {
      pending.trace.Finish();
      pending.promise.set_value(status);
    }
  }

  Fd fd_;
  std::shared_ptr<LinkModel> link_;
  SendCoalescer writer_;
  std::mutex pending_mu_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> closing_{false};
  std::thread reader_;
};

}  // namespace

TcpTransport::TcpTransport(std::size_t num_workers, TcpOptions options)
    : num_workers_(num_workers), options_(options) {}

TcpTransport::~TcpTransport() = default;

Result<std::unique_ptr<Listener>> TcpTransport::Listen(
    std::string preferred_address, std::shared_ptr<Service> service) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (!preferred_address.empty()) {
    GLIDER_ASSIGN_OR_RETURN(auto hp, SplitHostPort(preferred_address));
    host = hp.first;
    port = hp.second;
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable("bind failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(fd.get(), 128) != 0) {
    return Status::Unavailable("listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len);
  const std::string address =
      host + ":" + std::to_string(ntohs(bound.sin_port));

  return std::unique_ptr<Listener>(new TcpListener(
      std::move(fd), address, std::move(service), num_workers_, options_));
}

Result<std::shared_ptr<Connection>> TcpTransport::Connect(
    const std::string& address, std::shared_ptr<LinkModel> link) {
  GLIDER_ASSIGN_OR_RETURN(auto hp, SplitHostPort(address));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.second);
  if (::inet_pton(AF_INET, hp.first.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + hp.first);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable("connect to " + address + " failed: " +
                               std::string(std::strerror(errno)));
  }
  SetNoDelay(fd.get());
  // Preamble before the connection (and its coalescer) exists, so no frame
  // can precede it on the wire; the server's preamble is validated by the
  // reader thread.
  GLIDER_RETURN_IF_ERROR(SendPreamble(fd.get()));
  auto conn = std::make_shared<TcpConnection>(std::move(fd), std::move(link),
                                              options_);
  conn->StartReader();
  return std::shared_ptr<Connection>(conn);
}

}  // namespace glider::net
