#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "net/rpc_obs.h"

namespace glider::net {
namespace {

// RAII file descriptor. The descriptor value is atomic because owners
// Close()/Shutdown() from a destructor while an accept or read loop still
// holds get()'s result — the syscalls tolerate the stale fd, but the int
// itself must not race.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  int get() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return get() >= 0; }
  void Close() {
    const int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
  // Closes the socket for reading and writing, unblocking any reader.
  void Shutdown() {
    const int fd = get();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::atomic<int> fd_{-1};
};

Status ReadAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n == 0) return Status::Closed("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv failed: " +
                                 std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Scatter-gather frame write: the 32-byte header is serialized into a stack
// array and emitted together with the payload via writev — the payload is
// never copied into a frame buffer (Message::Encode is off this path).
// Wire format: the frame header (which carries the payload length) followed
// by the payload bytes; there is no separate outer length prefix.
Status WriteFrame(int fd, std::mutex& write_mu, const Message& message) {
  std::uint8_t header[kFrameHeaderSize];
  message.EncodeHeader(header);
  const ByteSpan payload = message.payload.span();

  std::scoped_lock lock(write_mu);
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<std::uint8_t*>(payload.data());
  iov[1].iov_len = payload.size();
  int iov_at = 0;
  const int iov_count = payload.empty() ? 1 : 2;
  msghdr msg{};
  while (iov_at < iov_count) {
    msg.msg_iov = iov + iov_at;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count - iov_at);
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send failed: " +
                                 std::string(std::strerror(errno)));
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (iov_at < iov_count && advanced >= iov[iov_at].iov_len) {
      advanced -= iov[iov_at].iov_len;
      ++iov_at;
    }
    if (iov_at < iov_count && advanced > 0) {
      iov[iov_at].iov_base =
          static_cast<std::uint8_t*>(iov[iov_at].iov_base) + advanced;
      iov[iov_at].iov_len -= advanced;
    }
  }
  return Status::Ok();
}

Result<Message> ReadFrame(int fd) {
  std::uint8_t header[kFrameHeaderSize];
  GLIDER_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header)));
  auto get16 = [&](int at) {
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(header[at]) |
        (static_cast<std::uint16_t>(header[at + 1]) << 8));
  };
  auto get64 = [&](int at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(header[at + i]) << (8 * i);
    }
    return v;
  };
  Message m;
  m.opcode = get16(0);
  m.status = static_cast<StatusCode>(get16(2));
  m.request_id = get64(4);
  m.trace_id = get64(12);
  m.span_id = get64(20);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[28 + i]) << (8 * i);
  }
  constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB sanity bound
  if (len > kMaxFrame) return Status::InvalidArgument("oversized frame");
  if (len > 0) {
    // One pooled allocation per frame; the payload buffer is handed to the
    // message as-is — downstream decoders slice it without copying.
    Buffer payload = BufferPool::Global().Acquire(len);
    GLIDER_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len));
    m.payload = std::move(payload);
  }
  return m;
}

Result<std::pair<std::string, std::uint16_t>> SplitHostPort(
    const std::string& address) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address must be host:port: " + address);
  }
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port in " + address);
  }
  return std::pair<std::string, std::uint16_t>(
      host.empty() ? "127.0.0.1" : host, static_cast<std::uint16_t>(port));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// --- Server side -----------------------------------------------------------

class TcpListener : public Listener {
 public:
  TcpListener(Fd listen_fd, std::string address,
              std::shared_ptr<Service> service, std::size_t num_workers)
      : listen_fd_(std::move(listen_fd)), address_(std::move(address)),
        service_(std::move(service)), pool_(num_workers) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~TcpListener() override {
    stopping_ = true;
    listen_fd_.Shutdown();
    listen_fd_.Close();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::scoped_lock lock(conns_mu_);
      for (auto& c : conns_) c->fd.Shutdown();
    }
    for (auto& t : conn_threads_) {
      if (t.joinable()) t.join();
    }
    pool_.Shutdown();
  }

  std::string address() const override { return address_; }

 private:
  struct ServerConn {
    Fd fd;
    std::mutex write_mu;
  };

  void AcceptLoop() {
    while (!stopping_) {
      const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (cfd < 0) {
        if (stopping_) return;
        if (errno == EINTR) continue;
        return;
      }
      SetNoDelay(cfd);
      auto conn = std::make_shared<ServerConn>();
      conn->fd = Fd(cfd);
      {
        std::scoped_lock lock(conns_mu_);
        conns_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { ConnLoop(conn); });
      }
    }
  }

  void ConnLoop(std::shared_ptr<ServerConn> conn) {
    while (!stopping_) {
      auto request = ReadFrame(conn->fd.get());
      if (!request.ok()) return;
      auto service = service_;
      Responder responder(Responder::Fn(
          [conn](Message response) {
            const Status s =
                WriteFrame(conn->fd.get(), conn->write_mu, response);
            if (!s.ok()) {
              GLIDER_LOG(kDebug, "tcp") << "response write: " << s.ToString();
            }
          }));
      const Status submitted = pool_.Submit(
          [service, req = std::move(request).value(),
           resp = std::move(responder)]() mutable {
            HandleWithObs(*service, std::move(req), std::move(resp),
                          /*transport_index=*/1);
          });
      if (!submitted.ok()) return;
    }
  }

  Fd listen_fd_;
  std::string address_;
  std::shared_ptr<Service> service_;
  ThreadPool pool_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ServerConn>> conns_;
  std::vector<std::thread> conn_threads_;
};

// --- Client side ------------------------------------------------------------

class TcpConnection : public Connection {
 public:
  TcpConnection(Fd fd, std::shared_ptr<LinkModel> link)
      : fd_(std::move(fd)), link_(std::move(link)) {}

  // The reader captures `this`, not a shared_ptr: owning itself would make
  // the final release happen on the reader thread, which then joins itself.
  // The destructor shuts the socket down and joins before members die.
  void StartReader() {
    reader_ = std::thread([this] { ReadLoop(); });
  }

  ~TcpConnection() override {
    closing_ = true;
    fd_.Shutdown();
    if (reader_.joinable()) reader_.join();
    FailAllPending(Status::Closed("connection destroyed"));
  }

  std::future<Result<Message>> Call(Message request) override {
    request.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    PendingCall pending;
    pending.trace = ClientCallTrace::Begin(request, /*transport_index=*/1);
    auto fut = pending.promise.get_future();
    {
      std::scoped_lock lock(pending_mu_);
      if (closing_) {
        pending.promise.set_value(Status::Closed("connection closed"));
        return fut;
      }
      pending_[request.request_id] = std::move(pending);
    }
    if (link_) {
      link_->OnSend(request.WireSize());
      // TCP cannot shape the receiver, so propagation latency is charged
      // on the sender (conservative for pipelined ops).
      if (link_->latency().count() > 0) {
        std::this_thread::sleep_for(link_->latency());
      }
    }
    const Status s = WriteFrame(fd_.get(), write_mu_, request);
    if (!s.ok()) {
      TakePending(request.request_id, s);
    }
    return fut;
  }

 private:
  void ReadLoop() {
    while (true) {
      auto response = ReadFrame(fd_.get());
      if (!response.ok()) {
        FailAllPending(response.status());
        return;
      }
      if (link_) link_->OnReceive(response->WireSize());
      TakePendingOk(std::move(response).value());
    }
  }

  struct PendingCall {
    std::promise<Result<Message>> promise;
    ClientCallTrace trace;
  };

  void TakePendingOk(Message response) {
    PendingCall pending;
    {
      std::scoped_lock lock(pending_mu_);
      auto it = pending_.find(response.request_id);
      if (it == pending_.end()) return;  // response to an abandoned call
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending.trace.Finish();
    pending.promise.set_value(std::move(response));
  }

  void TakePending(std::uint64_t id, const Status& status) {
    PendingCall pending;
    {
      std::scoped_lock lock(pending_mu_);
      auto it = pending_.find(id);
      if (it == pending_.end()) return;
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending.trace.Finish();
    pending.promise.set_value(status);
  }

  void FailAllPending(const Status& status) {
    std::map<std::uint64_t, PendingCall> taken;
    {
      std::scoped_lock lock(pending_mu_);
      closing_ = true;
      taken.swap(pending_);
    }
    for (auto& [id, pending] : taken) {
      pending.trace.Finish();
      pending.promise.set_value(status);
    }
  }

  Fd fd_;
  std::shared_ptr<LinkModel> link_;
  std::mutex write_mu_;
  std::mutex pending_mu_;
  std::map<std::uint64_t, PendingCall> pending_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> closing_{false};
  std::thread reader_;
};

}  // namespace

TcpTransport::TcpTransport(std::size_t num_workers)
    : num_workers_(num_workers) {}

TcpTransport::~TcpTransport() = default;

Result<std::unique_ptr<Listener>> TcpTransport::Listen(
    std::string preferred_address, std::shared_ptr<Service> service) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  if (!preferred_address.empty()) {
    GLIDER_ASSIGN_OR_RETURN(auto hp, SplitHostPort(preferred_address));
    host = hp.first;
    port = hp.second;
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable("bind failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(fd.get(), 128) != 0) {
    return Status::Unavailable("listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len);
  const std::string address =
      host + ":" + std::to_string(ntohs(bound.sin_port));

  return std::unique_ptr<Listener>(new TcpListener(
      std::move(fd), address, std::move(service), num_workers_));
}

Result<std::shared_ptr<Connection>> TcpTransport::Connect(
    const std::string& address, std::shared_ptr<LinkModel> link) {
  GLIDER_ASSIGN_OR_RETURN(auto hp, SplitHostPort(address));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.second);
  if (::inet_pton(AF_INET, hp.first.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host: " + hp.first);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable("connect to " + address + " failed: " +
                               std::string(std::strerror(errno)));
  }
  SetNoDelay(fd.get());
  auto conn = std::make_shared<TcpConnection>(std::move(fd), std::move(link));
  conn->StartReader();
  return std::shared_ptr<Connection>(conn);
}

}  // namespace glider::net
