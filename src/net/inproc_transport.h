// In-process transport: servers are registered under string addresses inside
// one process; connections dispatch messages onto the server's network-worker
// pool. Payload bytes are shaped by the connection's LinkModel, which is how
// the benches model FaaS-grade vs storage-internal links (see DESIGN.md §2).
//
// Semantics match the TCP transport: asynchronous request/response, responses
// may be fulfilled from any thread (deferred responders), and a dropped
// responder fails the call with kUnavailable instead of leaking a hung future.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "net/link_model.h"
#include "net/transport.h"

namespace glider::net {

class InProcTransport : public Transport {
 public:
  // num_workers: network worker threads per listening server.
  explicit InProcTransport(std::size_t num_workers = 8);
  ~InProcTransport() override;

  Result<std::unique_ptr<Listener>> Listen(
      std::string preferred_address, std::shared_ptr<Service> service) override;

  Result<std::shared_ptr<Connection>> Connect(
      const std::string& address, std::shared_ptr<LinkModel> link) override;

  // Simulated network partition for failure-detection tests: while
  // partitioned, calls to `address` (existing connections and new ones)
  // fail with kUnavailable and new Connects are refused, but the server —
  // unlike a killed one — keeps running and heals when the partition
  // lifts. Returns kNotFound for unknown addresses.
  Status SetPartitioned(const std::string& address, bool partitioned);

 private:
  struct ServerEntry;
  class InProcListener;
  class InProcConnection;

  void Unregister(const std::string& address);

  const std::size_t num_workers_;
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<ServerEntry>> servers_;
  std::uint64_t next_anon_ = 0;
};

}  // namespace glider::net
