// Typed client stubs, the caller-side half of the service layer
// (service_router.h): Call<Resp>(conn, opcode, req) encodes the request,
// performs the synchronous RPC, and decodes the response, so call sites in
// StoreClient/ActionNode/the FaaS invoker carry no per-call encode/decode
// boilerplate. Hot pipelined paths (file_streams.cc block I/O, ActionWriter
// chunking) stay on the raw async Connection::Call by design — they batch
// futures and reuse pooled encoders.
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace glider::net {

namespace detail {

template <typename Req>
Buffer EncodeRequest(const Req& req) {
  if constexpr (std::is_same_v<std::decay_t<Req>, Buffer>) {
    return req;
  } else {
    return req.Encode();
  }
}

template <typename Resp>
Result<Resp> DecodeResponse(Buffer payload) {
  if constexpr (std::is_same_v<Resp, Buffer>) {
    return payload;
  } else if constexpr (requires { Resp::Decode(payload); }) {
    return Resp::Decode(payload);  // zero-copy overload
  } else {
    return Resp::Decode(payload.span());
  }
}

}  // namespace detail

// One synchronous typed RPC: encode `req`, send, decode the response as
// Resp. Resp = Buffer returns the raw payload; response types with a
// zero-copy Decode(const Buffer&) overload keep their payload fields as
// slices of the response frame.
template <typename Resp, typename Req>
Result<Resp> Call(Connection& conn, std::uint16_t opcode, const Req& req) {
  GLIDER_ASSIGN_OR_RETURN(auto payload,
                          conn.CallSync(opcode, detail::EncodeRequest(req)));
  return detail::DecodeResponse<Resp>(std::move(payload));
}

// Typed RPC whose response carries no payload worth decoding.
template <typename Req>
Status CallVoid(Connection& conn, std::uint16_t opcode, const Req& req) {
  return conn.CallSync(opcode, detail::EncodeRequest(req)).status();
}

// RAII cork: issue a known burst of calls inside the guard's scope and the
// transport emits all their frames in one batched write at destruction
// (no-op on transports without a framing layer).
class CorkGuard {
 public:
  explicit CorkGuard(Connection& conn) : conn_(&conn) { conn_->Cork(); }
  ~CorkGuard() { conn_->Uncork(); }
  CorkGuard(const CorkGuard&) = delete;
  CorkGuard& operator=(const CorkGuard&) = delete;

 private:
  Connection* conn_;
};

// Pipelined typed RPC: issues one call per request back-to-back under a
// cork — over TCP every request frame shares one coalesced sendmsg — then
// waits for all responses. Results are returned in request order; the
// first failure (transport or server) aborts the decode and is returned
// after every response has been awaited.
template <typename Resp, typename Req>
Result<std::vector<Resp>> CallBatch(Connection& conn, std::uint16_t opcode,
                                    const std::vector<Req>& reqs) {
  std::vector<std::future<Result<Message>>> futures;
  futures.reserve(reqs.size());
  {
    CorkGuard cork(conn);
    for (const Req& req : reqs) {
      Message m;
      m.opcode = opcode;
      m.payload = detail::EncodeRequest(req);
      futures.push_back(conn.Call(std::move(m)));
    }
  }
  std::vector<Resp> out;
  out.reserve(futures.size());
  Status first_error = Status::Ok();
  for (auto& fut : futures) {
    auto response = fut.get();
    if (!first_error.ok()) continue;  // keep draining the remaining futures
    if (!response.ok()) {
      first_error = response.status();
      continue;
    }
    auto payload = ToResult(std::move(response).value());
    if (!payload.ok()) {
      first_error = payload.status();
      continue;
    }
    auto decoded = detail::DecodeResponse<Resp>(std::move(payload).value());
    if (!decoded.ok()) {
      first_error = decoded.status();
      continue;
    }
    out.push_back(std::move(decoded).value());
  }
  if (!first_error.ok()) return first_error;
  return out;
}

// Pipelined typed RPC whose responses carry no payload worth decoding.
template <typename Req>
Status CallVoidBatch(Connection& conn, std::uint16_t opcode,
                     const std::vector<Req>& reqs) {
  std::vector<std::future<Result<Message>>> futures;
  futures.reserve(reqs.size());
  {
    CorkGuard cork(conn);
    for (const Req& req : reqs) {
      Message m;
      m.opcode = opcode;
      m.payload = detail::EncodeRequest(req);
      futures.push_back(conn.Call(std::move(m)));
    }
  }
  Status first_error = Status::Ok();
  for (auto& fut : futures) {
    auto response = fut.get();
    const Status s = response.ok()
                         ? ToResult(std::move(response).value()).status()
                         : response.status();
    if (first_error.ok() && !s.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace glider::net
