// Typed client stubs, the caller-side half of the service layer
// (service_router.h): Call<Resp>(conn, opcode, req) encodes the request,
// performs the synchronous RPC, and decodes the response, so call sites in
// StoreClient/ActionNode/the FaaS invoker carry no per-call encode/decode
// boilerplate. Hot pipelined paths (file_streams.cc block I/O, ActionWriter
// chunking) stay on the raw async Connection::Call by design — they batch
// futures and reuse pooled encoders.
#pragma once

#include <type_traits>
#include <utility>

#include "net/transport.h"

namespace glider::net {

namespace detail {

template <typename Req>
Buffer EncodeRequest(const Req& req) {
  if constexpr (std::is_same_v<std::decay_t<Req>, Buffer>) {
    return req;
  } else {
    return req.Encode();
  }
}

template <typename Resp>
Result<Resp> DecodeResponse(Buffer payload) {
  if constexpr (std::is_same_v<Resp, Buffer>) {
    return payload;
  } else if constexpr (requires { Resp::Decode(payload); }) {
    return Resp::Decode(payload);  // zero-copy overload
  } else {
    return Resp::Decode(payload.span());
  }
}

}  // namespace detail

// One synchronous typed RPC: encode `req`, send, decode the response as
// Resp. Resp = Buffer returns the raw payload; response types with a
// zero-copy Decode(const Buffer&) overload keep their payload fields as
// slices of the response frame.
template <typename Resp, typename Req>
Result<Resp> Call(Connection& conn, std::uint16_t opcode, const Req& req) {
  GLIDER_ASSIGN_OR_RETURN(auto payload,
                          conn.CallSync(opcode, detail::EncodeRequest(req)));
  return detail::DecodeResponse<Resp>(std::move(payload));
}

// Typed RPC whose response carries no payload worth decoding.
template <typename Req>
Status CallVoid(Connection& conn, std::uint16_t opcode, const Req& req) {
  return conn.CallSync(opcode, detail::EncodeRequest(req)).status();
}

}  // namespace glider::net
