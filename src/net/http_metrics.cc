#include "net/http_metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/prometheus.h"

namespace glider::net {

namespace {

void SendAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // scrape client went away; nothing to recover
    }
    off += static_cast<std::size_t>(n);
  }
}

// Reads until the end of the request head ("\r\n\r\n") and returns the
// whole head, or empty on error. Bodies are ignored — /metrics is GET.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > 16 * 1024) return {};  // oversized head: drop
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return {};
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  return head;
}

// True when the request's Accept header asks for the OpenMetrics
// exposition format. Exemplars are only legal there — the classic 0.0.4
// parser errors on them — so the format is negotiated per scrape.
bool AcceptsOpenMetrics(const std::string& head) {
  std::size_t at = head.find("\r\n");
  while (at != std::string::npos) {
    at += 2;
    const std::size_t end = head.find("\r\n", at);
    std::string line = head.substr(
        at, end == std::string::npos ? std::string::npos : end - at);
    for (char& c : line) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (line.rfind("accept:", 0) == 0 &&
        line.find("application/openmetrics-text") != std::string::npos) {
      return true;
    }
    at = end;
  }
  return false;
}

}  // namespace

struct HttpMetricsServer::Impl {
  obs::MetricsRegistry* registry = nullptr;
  obs::PrometheusLabels labels;
  std::function<void()> refresh;
  int listen_fd = -1;
  std::string address;
  std::atomic<bool> stopping{false};
  std::thread accept_thread;
  std::mutex threads_mu;
  std::vector<std::thread> conn_threads;

  void Serve(int cfd) {
    const std::string head = ReadRequestHead(cfd);
    const std::string request = head.substr(0, head.find("\r\n"));
    std::string response;
    if (request.rfind("GET /metrics", 0) == 0 ||
        request.rfind("GET / ", 0) == 0) {
      if (refresh) refresh();
      const obs::PrometheusFormat format =
          AcceptsOpenMetrics(head) ? obs::PrometheusFormat::kOpenMetrics
                                   : obs::PrometheusFormat::kClassic04;
      const std::string body = obs::PrometheusText(*registry, labels, format);
      response =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: " +
          std::string(obs::PrometheusContentType(format)) +
          "\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
    } else {
      response =
          "HTTP/1.1 404 Not Found\r\n"
          "Content-Length: 0\r\nConnection: close\r\n\r\n";
    }
    SendAll(cfd, response.data(), response.size());
    ::close(cfd);
  }

  void AcceptLoop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      const int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (cfd < 0) {
        if (stopping.load(std::memory_order_relaxed)) return;
        if (errno == EINTR) continue;
        return;
      }
      std::scoped_lock lock(threads_mu);
      conn_threads.emplace_back([this, cfd] { Serve(cfd); });
    }
  }

  ~Impl() {
    stopping.store(true, std::memory_order_relaxed);
    // shutdown() wakes the blocked accept() (EINVAL on Linux); the fd is
    // written only after the accept thread is joined, so the loop never
    // reads a closed/reused descriptor.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    if (accept_thread.joinable()) accept_thread.join();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    std::scoped_lock lock(threads_mu);
    for (auto& t : conn_threads) {
      if (t.joinable()) t.join();
    }
  }
};

HttpMetricsServer::HttpMetricsServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

HttpMetricsServer::~HttpMetricsServer() = default;

std::string HttpMetricsServer::address() const { return impl_->address; }

Result<std::unique_ptr<HttpMetricsServer>> HttpMetricsServer::Listen(
    const std::string& address, obs::MetricsRegistry& registry,
    obs::PrometheusLabels labels, std::function<void()> refresh) {
  std::string host = "127.0.0.1";
  int port = 0;
  const auto colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon != 0) host = address.substr(0, colon);
    port = std::atoi(address.c_str() + colon + 1);
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port in " + address);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind failed: " + err);
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Unavailable("listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);

  auto impl = std::make_unique<Impl>();
  impl->registry = &registry;
  impl->labels = std::move(labels);
  impl->refresh = std::move(refresh);
  impl->listen_fd = fd;
  impl->address = host + ":" + std::to_string(ntohs(bound.sin_port));
  impl->accept_thread = std::thread([raw = impl.get()] { raw->AcceptLoop(); });
  return std::unique_ptr<HttpMetricsServer>(
      new HttpMetricsServer(std::move(impl)));
}

}  // namespace glider::net
