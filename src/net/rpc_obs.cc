#include "net/rpc_obs.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>

#include "common/bytes.h"
#include "common/event_journal.h"
#include "common/health.h"
#include "common/load.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/serde.h"

namespace glider::net {

const char* RpcOpName(std::uint16_t opcode) {
  switch (opcode) {
    case 1: return "RegisterServer";
    case 2: return "CreateNode";
    case 3: return "Lookup";
    case 4: return "Delete";
    case 5: return "GetBlock";
    case 6: return "SetSize";
    case 7: return "List";
    case 20: return "WriteBlock";
    case 21: return "ReadBlock";
    case 22: return "ResetBlock";
    case 30: return "ActionCreate";
    case 31: return "ActionDelete";
    case 32: return "StreamOpen";
    case 33: return "StreamWrite";
    case 34: return "StreamRead";
    case 35: return "StreamClose";
    case 36: return "ActionStat";
    case 50: return "S3Put";
    case 51: return "S3Get";
    case 52: return "S3SelectSample";
    case 53: return "S3Delete";
    case 54: return "S3Size";
    case 8: return "ListServers";
    case kStatsDump: return "StatsDump";
    case kTraceDump: return "TraceDump";
    case kSeriesDump: return "SeriesDump";
    case kSlowTraceDump: return "SlowTraceDump";
    case kProfileDump: return "ProfileDump";
    case kHeartbeat: return "Heartbeat";
    case kHealthDump: return "HealthDump";
    case kEventDump: return "EventDump";
    case kLedgerDump: return "LedgerDump";
    default: return "OpOther";
  }
}

obs::LatencyHistogram* RpcHistogram(bool server_side, int transport_index,
                                    std::uint16_t opcode) {
  // Known opcodes are < 64; everything else (including the 99x management
  // ops) shares the last slot, named via RpcOpName's fallback.
  constexpr std::size_t kSlots = 64;
  const std::size_t slot = opcode < kSlots - 1 ? opcode : kSlots - 1;
  static std::array<std::array<std::array<std::atomic<obs::LatencyHistogram*>,
                                          kSlots>,
                               2>,
                    2>
      table{};
  auto& entry = table[server_side ? 1 : 0][transport_index & 1][slot];
  obs::LatencyHistogram* hist = entry.load(std::memory_order_acquire);
  if (hist == nullptr) {
    const std::string name =
        std::string("rpc.") + (server_side ? "server." : "client.") +
        (transport_index == 1 ? "tcp." : "inproc.") + RpcOpName(opcode) +
        "_us";
    hist = &obs::MetricsRegistry::Global().GetHistogram(name);
    entry.store(hist, std::memory_order_release);  // idempotent: same target
  }
  return hist;
}

namespace {

// Profiler attribution tags for server-side dispatch, interned per opcode so
// the hot path hands ProfileTagScope a stable const char* (no per-request
// string build). Same atomic-pointer-table idiom as RpcHistogram.
const char* RpcProfileTag(std::uint16_t opcode) {
  constexpr std::size_t kSlots = 64;
  const std::size_t slot = opcode < kSlots - 1 ? opcode : kSlots - 1;
  static std::array<std::atomic<const char*>, kSlots> table{};
  const char* tag = table[slot].load(std::memory_order_acquire);
  if (tag == nullptr) {
    // Interned for the process lifetime; a raw char block (not a std::string)
    // so the table's pointer is the allocation base and LeakSanitizer sees it
    // as reachable.
    const std::string name = std::string("rpc.") + RpcOpName(opcode);
    char* owned = new char[name.size() + 1];
    std::memcpy(owned, name.c_str(), name.size() + 1);
    tag = owned;
    const char* expected = nullptr;
    if (!table[slot].compare_exchange_strong(expected, tag,
                                             std::memory_order_acq_rel)) {
      delete[] owned;
      tag = expected;
    }
  }
  return tag;
}

}  // namespace

ClientCallTrace ClientCallTrace::Begin(Message& request, int transport_index) {
  ClientCallTrace t;
  // The principal rides the frame header like the trace context, but is
  // independent of both the obs switch and whether a trace is active: a
  // client with observability off must still tag its requests, or servers
  // whose attribution IS on would bill its work to the unattributed tenant.
  request.principal = obs::CurrentPrincipal();
  if (!obs::Enabled()) return t;
  t.active = true;
  t.transport_index_ = transport_index;
  t.opcode = request.opcode;
  t.start_us = obs::TraceNowMicros();
  t.parent = obs::CurrentTraceContext();
  if (t.parent.trace_id != 0) {
    t.span_id = obs::NewSpanId();
    request.trace_id = t.parent.trace_id;
    request.span_id = t.span_id;
  }
  return t;
}

void ClientCallTrace::Finish() const {
  if (!active) return;
  const std::uint64_t now = obs::TraceNowMicros();
  RpcHistogram(/*server_side=*/false, transport_index_, opcode)
      ->Record(now - start_us);
  if (parent.trace_id != 0) {
    obs::RecordSpan("rpc", std::string("rpc.") + RpcOpName(opcode), parent,
                    span_id, start_us, now);
  }
}

void HandleWithObs(Service& service, Message request, Responder responder,
                   int transport_index) {
  if (!obs::Enabled()) {
    service.Handle(std::move(request), std::move(responder));
    return;
  }
  const std::uint16_t opcode = request.opcode;
  const std::uint64_t start_us = obs::TraceNowMicros();
  const obs::TraceContext parent{request.trace_id, request.span_id};
  const obs::PrincipalId principal = request.principal;
  // Management opcodes (>= 900) stay off the ledger so monitoring polls do
  // not pollute the attribution they are reading.
  const bool charged = opcode < 900;
  std::uint64_t span_id = parent.span_id;
  if (parent.trace_id != 0) {
    // The server span is recorded when the RESPONSE is sent, not when the
    // handler returns: the record is then guaranteed to be in the recorder
    // before the client can observe the reply, and deferred responders
    // (stream ops parked in channels) get spans covering the full request
    // lifetime. RecordSpan never touches thread-local trace state, so the
    // send may fire on any thread.
    span_id = obs::NewSpanId();
    responder = Responder(
        [inner = std::make_shared<Responder>(std::move(responder)), opcode,
         parent, span_id, start_us](Message response) mutable {
          obs::RecordSpan("rpc.server",
                          std::string("handle.") + RpcOpName(opcode), parent,
                          span_id, start_us, obs::TraceNowMicros());
          inner->Send(std::move(response));
        });
  }
  {
    // Install the caller's principal alongside its trace context: the
    // handler (and any work it charges synchronously) bills to the caller.
    // Action/channel hops re-capture it, like the trace context.
    obs::TraceContextScope scope(obs::TraceContext{parent.trace_id, span_id});
    obs::PrincipalScope principal_scope(principal);
    obs::ProfileTagScope tag(RpcProfileTag(opcode));
    service.Handle(std::move(request), std::move(responder));
  }
  const std::uint64_t dispatch_us = obs::TraceNowMicros() - start_us;
  RpcHistogram(/*server_side=*/true, transport_index, opcode)
      ->Record(dispatch_us);
  if (charged) {
    // Dispatch-side charge: invocation count plus the synchronous dispatch
    // time. Data bytes are charged at the data-plane sites (stream channel
    // push/pop, storage block ops) so no byte is billed twice.
    obs::LedgerCell cell;
    cell.cpu_us = dispatch_us;
    cell.invocations = 1;
    obs::ResourceLedger::Global().Charge(
        principal, std::string("rpc.") + RpcOpName(opcode), cell);
    obs::PrincipalSketch().Offer(obs::PrincipalName(principal));
  }
}

void RefreshMirroredGauges(const Metrics* metrics) {
  auto& registry = obs::MetricsRegistry::Global();
  if (metrics != nullptr) registry.MirrorLinkCounters(*metrics);
  registry.GetGauge("data_plane.allocs")
      .Set(static_cast<std::int64_t>(data_plane::Allocs()));
  registry.GetGauge("data_plane.copied_bytes")
      .Set(static_cast<std::int64_t>(data_plane::CopiedBytes()));
  registry.GetGauge("data_plane.pool_hits")
      .Set(static_cast<std::int64_t>(data_plane::PoolHits()));
  registry.GetGauge("data_plane.pool_misses")
      .Set(static_cast<std::int64_t>(data_plane::PoolMisses()));
  // Touching the counter here materializes it even at zero, so every stats
  // dump / /metrics scrape reports span loss explicitly instead of omitting
  // the row until the first drop.
  static obs::Counter& dropped =
      obs::MetricsRegistry::Global().GetCounter("trace.dropped_spans");
  (void)dropped;
  // Load index + hotspot gauges ride the same refresh: every stats/series
  // dump (and every /metrics scrape via the HTTP hook) sees fresh values.
  obs::LoadTracker::Global().Update();
  // Per-principal ledger rollups ("ledger.<principal>.*") ride along too,
  // so kSeriesDump / Prometheus / glider_top get attribution without the
  // dedicated kLedgerDump opcode.
  obs::PublishLedgerRollups();
}

std::string StatsJson(const Metrics* metrics) {
  RefreshMirroredGauges(metrics);
  return obs::MetricsRegistry::Global().ToJson();
}

// --- kSeriesDump wire format -------------------------------------------------
//
// Histograms as sparse (u8 bucket index, u64 count) pairs: log2 histograms
// populate a handful of the 64 buckets, so sparse beats dense ~8x.

namespace {

void PutHistogram(BinaryWriter& w, const obs::HistogramSnapshot& h) {
  w.PutU64(h.count);
  w.PutU64(h.sum);
  w.PutU64(h.min);
  w.PutU64(h.max);
  std::uint8_t populated = 0;
  for (std::size_t i = 0; i < obs::LatencyHistogram::kNumBuckets; ++i) {
    if (h.buckets[i] != 0) ++populated;
  }
  w.PutU8(populated);
  for (std::size_t i = 0; i < obs::LatencyHistogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    w.PutU8(static_cast<std::uint8_t>(i));
    w.PutU64(h.buckets[i]);
    // Bucket exemplar (trace_id, value); trace_id 0 = none. Only populated
    // buckets can carry one, so the pairs ride the sparse encoding free.
    w.PutU64(h.exemplar_trace[i]);
    w.PutU64(h.exemplar_value[i]);
  }
}

Result<obs::HistogramSnapshot> GetHistogram(BinaryReader& r) {
  obs::HistogramSnapshot h;
  GLIDER_ASSIGN_OR_RETURN(h.count, r.U64());
  GLIDER_ASSIGN_OR_RETURN(h.sum, r.U64());
  GLIDER_ASSIGN_OR_RETURN(h.min, r.U64());
  GLIDER_ASSIGN_OR_RETURN(h.max, r.U64());
  GLIDER_ASSIGN_OR_RETURN(auto populated, r.U8());
  for (std::uint8_t i = 0; i < populated; ++i) {
    GLIDER_ASSIGN_OR_RETURN(auto idx, r.U8());
    GLIDER_ASSIGN_OR_RETURN(auto count, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto exemplar_trace, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto exemplar_value, r.U64());
    if (idx >= obs::LatencyHistogram::kNumBuckets) {
      return Status::OutOfRange("histogram bucket index out of range");
    }
    h.buckets[idx] = count;
    h.exemplar_trace[idx] = exemplar_trace;
    h.exemplar_value[idx] = exemplar_value;
  }
  return h;
}

}  // namespace

Buffer SeriesDumpResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(snapshot.generation);
  w.PutU32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    w.PutString(name);
    w.PutU64(value);
  }
  w.PutU32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    w.PutString(name);
    w.PutI64(value);
  }
  w.PutU32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, hist] : snapshot.histograms) {
    w.PutString(name);
    PutHistogram(w, hist);
  }
  w.PutU32(static_cast<std::uint32_t>(series.size()));
  for (const auto& s : series) {
    w.PutString(s.name);
    w.PutU32(static_cast<std::uint32_t>(s.samples.size()));
    for (const auto& sample : s.samples) {
      w.PutU64(sample.t_us);
      w.PutDouble(sample.value);
    }
  }
  w.PutU64(sampler_interval_ms);
  return std::move(w).Finish();
}

Result<SeriesDumpResponse> SeriesDumpResponse::Decode(ByteSpan payload) {
  BinaryReader r(payload);
  SeriesDumpResponse resp;
  GLIDER_ASSIGN_OR_RETURN(resp.snapshot.generation, r.U64());
  GLIDER_ASSIGN_OR_RETURN(auto n_counters, r.U32());
  resp.snapshot.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    GLIDER_ASSIGN_OR_RETURN(auto name, r.String());
    GLIDER_ASSIGN_OR_RETURN(auto value, r.U64());
    resp.snapshot.counters.emplace_back(std::move(name), value);
  }
  GLIDER_ASSIGN_OR_RETURN(auto n_gauges, r.U32());
  resp.snapshot.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    GLIDER_ASSIGN_OR_RETURN(auto name, r.String());
    GLIDER_ASSIGN_OR_RETURN(auto value, r.I64());
    resp.snapshot.gauges.emplace_back(std::move(name), value);
  }
  GLIDER_ASSIGN_OR_RETURN(auto n_hists, r.U32());
  resp.snapshot.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    GLIDER_ASSIGN_OR_RETURN(auto name, r.String());
    GLIDER_ASSIGN_OR_RETURN(auto hist, GetHistogram(r));
    resp.snapshot.histograms.emplace_back(std::move(name), hist);
  }
  GLIDER_ASSIGN_OR_RETURN(auto n_series, r.U32());
  resp.series.reserve(n_series);
  for (std::uint32_t i = 0; i < n_series; ++i) {
    obs::SeriesData s;
    GLIDER_ASSIGN_OR_RETURN(s.name, r.String());
    GLIDER_ASSIGN_OR_RETURN(auto n_samples, r.U32());
    s.samples.reserve(n_samples);
    for (std::uint32_t j = 0; j < n_samples; ++j) {
      obs::TimeSeries::Sample sample;
      GLIDER_ASSIGN_OR_RETURN(sample.t_us, r.U64());
      GLIDER_ASSIGN_OR_RETURN(sample.value, r.Double());
      s.samples.push_back(sample);
    }
    resp.series.push_back(std::move(s));
  }
  GLIDER_ASSIGN_OR_RETURN(resp.sampler_interval_ms, r.U64());
  return resp;
}

Buffer LedgerDumpResponse::Encode() const {
  BinaryWriter w;
  w.PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.PutU64(e.principal);
    w.PutString(e.op);
    w.PutU64(e.cell.cpu_us);
    w.PutU64(e.cell.queue_us);
    w.PutU64(e.cell.bytes_in);
    w.PutU64(e.cell.bytes_out);
    w.PutU64(e.cell.invocations);
  }
  w.PutU8(static_cast<std::uint8_t>(sketches.size()));
  for (const auto& sketch : sketches) {
    w.PutString(sketch.name);
    w.PutU64(sketch.total);
    w.PutU32(static_cast<std::uint32_t>(sketch.entries.size()));
    for (const auto& e : sketch.entries) {
      w.PutString(e.key);
      w.PutU64(e.count);
      w.PutU64(e.error);
    }
  }
  return std::move(w).Finish();
}

Result<LedgerDumpResponse> LedgerDumpResponse::Decode(ByteSpan payload) {
  BinaryReader r(payload);
  LedgerDumpResponse resp;
  GLIDER_ASSIGN_OR_RETURN(auto n_entries, r.U32());
  resp.entries.reserve(n_entries);
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    obs::LedgerEntry e;
    GLIDER_ASSIGN_OR_RETURN(e.principal, r.U64());
    GLIDER_ASSIGN_OR_RETURN(e.op, r.String());
    GLIDER_ASSIGN_OR_RETURN(e.cell.cpu_us, r.U64());
    GLIDER_ASSIGN_OR_RETURN(e.cell.queue_us, r.U64());
    GLIDER_ASSIGN_OR_RETURN(e.cell.bytes_in, r.U64());
    GLIDER_ASSIGN_OR_RETURN(e.cell.bytes_out, r.U64());
    GLIDER_ASSIGN_OR_RETURN(e.cell.invocations, r.U64());
    resp.entries.push_back(std::move(e));
  }
  GLIDER_ASSIGN_OR_RETURN(auto n_sketches, r.U8());
  resp.sketches.reserve(n_sketches);
  for (std::uint8_t i = 0; i < n_sketches; ++i) {
    Sketch sketch;
    GLIDER_ASSIGN_OR_RETURN(sketch.name, r.String());
    GLIDER_ASSIGN_OR_RETURN(sketch.total, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto n, r.U32());
    sketch.entries.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      obs::SpaceSavingTopK::Entry e;
      GLIDER_ASSIGN_OR_RETURN(e.key, r.String());
      GLIDER_ASSIGN_OR_RETURN(e.count, r.U64());
      GLIDER_ASSIGN_OR_RETURN(e.error, r.U64());
      sketch.entries.push_back(std::move(e));
    }
    resp.sketches.push_back(std::move(sketch));
  }
  return resp;
}

void LedgerDumpResponse::Merge(const LedgerDumpResponse& other) {
  entries = obs::MergeLedgerEntries(entries, other.entries);
  for (const auto& theirs : other.sketches) {
    Sketch* ours = nullptr;
    for (auto& sketch : sketches) {
      if (sketch.name == theirs.name) {
        ours = &sketch;
        break;
      }
    }
    if (ours == nullptr) {
      sketches.push_back(theirs);
      continue;
    }
    ours->total += theirs.total;
    // Merged sketches keep the union's bound: capacity = the larger side.
    const std::size_t capacity =
        std::max<std::size_t>(64, std::max(ours->entries.size(),
                                           theirs.entries.size()));
    ours->entries = obs::SpaceSavingTopK::MergeEntries(ours->entries,
                                                       theirs.entries,
                                                       capacity);
  }
}

Buffer HeartbeatResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(server_time_us);
  w.PutDouble(load_index);
  w.PutU32(hotspot_slots);
  return std::move(w).Finish();
}

Result<HeartbeatResponse> HeartbeatResponse::Decode(ByteSpan payload) {
  BinaryReader r(payload);
  HeartbeatResponse resp;
  GLIDER_ASSIGN_OR_RETURN(resp.server_time_us, r.U64());
  GLIDER_ASSIGN_OR_RETURN(resp.load_index, r.Double());
  GLIDER_ASSIGN_OR_RETURN(resp.hotspot_slots, r.U32());
  return resp;
}

bool TryHandleObs(Message& request, Responder& responder,
                  const Metrics* metrics) {
  switch (request.opcode) {
    case kHeartbeat: {
      // Cheapest possible liveness probe: no registry snapshot unless the
      // LoadTracker's window elapsed (it caches inside min_window).
      const obs::LoadTracker::LoadSnapshot load =
          obs::LoadTracker::Global().Update();
      HeartbeatResponse resp;
      resp.server_time_us = obs::TraceNowMicros();
      resp.load_index = load.load_index;
      resp.hotspot_slots = static_cast<std::uint32_t>(load.hotspots.size());
      responder.SendOk(request, resp.Encode());
      return true;
    }
    case kHealthDump: {
      responder.SendOk(
          request, Buffer::FromString(obs::HealthBoard::Global().ToJson()));
      return true;
    }
    case kEventDump: {
      auto& journal = obs::EventJournal::Global();
      std::string json = journal.ToJson();
      // Payload byte 0 == 1 requests a clear-after-dump (same convention
      // as kTraceDump/kSlowTraceDump).
      if (request.payload.size() >= 1 && request.payload.data()[0] == 1) {
        journal.Clear();
      }
      responder.SendOk(request, Buffer::FromString(json));
      return true;
    }
    case kStatsDump: {
      responder.SendOk(request, Buffer::FromString(StatsJson(metrics)));
      return true;
    }
    case kTraceDump: {
      auto& recorder = obs::TraceRecorder::Global();
      std::string json = recorder.ToChromeJson();
      // Payload byte 0 == 1 requests a clear-after-dump.
      if (request.payload.size() >= 1 && request.payload.data()[0] == 1) {
        recorder.Clear();
      }
      responder.SendOk(request, Buffer::FromString(json));
      return true;
    }
    case kSeriesDump: {
      RefreshMirroredGauges(metrics);
      SeriesDumpResponse resp;
      auto& sampler = obs::TimeSeriesSampler::Global();
      resp.snapshot = obs::MetricsRegistry::Global().Snapshot();
      resp.series = sampler.Snapshot();
      resp.sampler_interval_ms = sampler.running()
                                     ? static_cast<std::uint64_t>(
                                           sampler.interval().count())
                                     : 0;
      responder.SendOk(request, resp.Encode());
      return true;
    }
    case kLedgerDump: {
      LedgerDumpResponse resp;
      resp.entries = obs::ResourceLedger::Global().Snapshot();
      const struct {
        const char* name;
        obs::SpaceSavingTopK* sketch;
      } sketches[] = {{"keys", &obs::KeySketch()},
                      {"methods", &obs::MethodSketch()},
                      {"principals", &obs::PrincipalSketch()}};
      for (const auto& [name, sketch] : sketches) {
        LedgerDumpResponse::Sketch out;
        out.name = name;
        out.total = sketch->Total();
        out.entries = sketch->Entries();
        resp.sketches.push_back(std::move(out));
      }
      // Payload byte 0 == 1 requests a clear-after-dump (same convention
      // as kTraceDump).
      if (request.payload.size() >= 1 && request.payload.data()[0] == 1) {
        obs::ResourceLedger::Global().Clear();
        obs::KeySketch().Clear();
        obs::MethodSketch().Clear();
        obs::PrincipalSketch().Clear();
      }
      responder.SendOk(request, resp.Encode());
      return true;
    }
    case kSlowTraceDump: {
      auto& store = obs::SlowTraceStore::Global();
      std::string json = store.ToJson();
      // Same clear-after-dump convention as kTraceDump.
      if (request.payload.size() >= 1 && request.payload.data()[0] == 1) {
        store.Clear();
      }
      responder.SendOk(request, Buffer::FromString(json));
      return true;
    }
    case kProfileDump: {
      auto& profiler = obs::SamplingProfiler::Global();
      ProfileCmd cmd = ProfileCmd::kDump;
      std::uint32_t hz = 0;
      if (request.payload.size() >= 1) {
        cmd = static_cast<ProfileCmd>(request.payload.data()[0]);
        if (cmd == ProfileCmd::kStart && request.payload.size() >= 5) {
          std::memcpy(&hz, request.payload.data() + 1, sizeof(hz));
        }
      }
      switch (cmd) {
        case ProfileCmd::kStart: {
          obs::SamplingProfiler::Options opts;
          if (hz != 0) opts.hz = static_cast<int>(hz);
          const Status s = profiler.Start(opts);
          // Byte 1 = "this request started the profiler"; kAlreadyExists
          // maps to 0 so the caller knows not to stop someone else's run.
          Buffer reply = Buffer::FromString(std::string(1, s.ok() ? 1 : 0));
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) {
            responder.SendError(request, s);
          } else {
            responder.SendOk(request, std::move(reply));
          }
          return true;
        }
        case ProfileCmd::kStop:
          profiler.Stop();
          responder.SendOk(request, Buffer());
          return true;
        case ProfileCmd::kDumpClear:
        case ProfileCmd::kDump:
        default: {
          std::string folded =
              profiler.CollectFolded(cmd == ProfileCmd::kDumpClear);
          responder.SendOk(request, Buffer::FromString(std::move(folded)));
          return true;
        }
      }
    }
    default:
      return false;
  }
}

}  // namespace glider::net
