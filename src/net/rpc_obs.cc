#include "net/rpc_obs.h"

#include <array>
#include <atomic>

#include "common/bytes.h"
#include "common/metrics.h"

namespace glider::net {

const char* RpcOpName(std::uint16_t opcode) {
  switch (opcode) {
    case 1: return "RegisterServer";
    case 2: return "CreateNode";
    case 3: return "Lookup";
    case 4: return "Delete";
    case 5: return "GetBlock";
    case 6: return "SetSize";
    case 7: return "List";
    case 20: return "WriteBlock";
    case 21: return "ReadBlock";
    case 22: return "ResetBlock";
    case 30: return "ActionCreate";
    case 31: return "ActionDelete";
    case 32: return "StreamOpen";
    case 33: return "StreamWrite";
    case 34: return "StreamRead";
    case 35: return "StreamClose";
    case 36: return "ActionStat";
    case 50: return "S3Put";
    case 51: return "S3Get";
    case 52: return "S3SelectSample";
    case 53: return "S3Delete";
    case 54: return "S3Size";
    case kStatsDump: return "StatsDump";
    case kTraceDump: return "TraceDump";
    default: return "OpOther";
  }
}

obs::LatencyHistogram* RpcHistogram(bool server_side, int transport_index,
                                    std::uint16_t opcode) {
  // Known opcodes are < 64; everything else (including the 99x management
  // ops) shares the last slot, named via RpcOpName's fallback.
  constexpr std::size_t kSlots = 64;
  const std::size_t slot = opcode < kSlots - 1 ? opcode : kSlots - 1;
  static std::array<std::array<std::array<std::atomic<obs::LatencyHistogram*>,
                                          kSlots>,
                               2>,
                    2>
      table{};
  auto& entry = table[server_side ? 1 : 0][transport_index & 1][slot];
  obs::LatencyHistogram* hist = entry.load(std::memory_order_acquire);
  if (hist == nullptr) {
    const std::string name =
        std::string("rpc.") + (server_side ? "server." : "client.") +
        (transport_index == 1 ? "tcp." : "inproc.") + RpcOpName(opcode) +
        "_us";
    hist = &obs::MetricsRegistry::Global().GetHistogram(name);
    entry.store(hist, std::memory_order_release);  // idempotent: same target
  }
  return hist;
}

ClientCallTrace ClientCallTrace::Begin(Message& request, int transport_index) {
  ClientCallTrace t;
  if (!obs::Enabled()) return t;
  t.active = true;
  t.transport_index_ = transport_index;
  t.opcode = request.opcode;
  t.start_us = obs::TraceNowMicros();
  t.parent = obs::CurrentTraceContext();
  if (t.parent.trace_id != 0) {
    t.span_id = obs::NewSpanId();
    request.trace_id = t.parent.trace_id;
    request.span_id = t.span_id;
  }
  return t;
}

void ClientCallTrace::Finish() const {
  if (!active) return;
  const std::uint64_t now = obs::TraceNowMicros();
  RpcHistogram(/*server_side=*/false, transport_index_, opcode)
      ->Record(now - start_us);
  if (parent.trace_id != 0) {
    obs::RecordSpan("rpc", std::string("rpc.") + RpcOpName(opcode), parent,
                    span_id, start_us, now);
  }
}

void HandleWithObs(Service& service, Message request, Responder responder,
                   int transport_index) {
  if (!obs::Enabled()) {
    service.Handle(std::move(request), std::move(responder));
    return;
  }
  const std::uint16_t opcode = request.opcode;
  const std::uint64_t start_us = obs::TraceNowMicros();
  {
    obs::TraceContextScope scope(
        obs::TraceContext{request.trace_id, request.span_id});
    obs::Span span("rpc.server",
                   std::string("handle.") + RpcOpName(opcode));
    service.Handle(std::move(request), std::move(responder));
  }
  RpcHistogram(/*server_side=*/true, transport_index, opcode)
      ->Record(obs::TraceNowMicros() - start_us);
}

std::string StatsJson(const Metrics* metrics) {
  auto& registry = obs::MetricsRegistry::Global();
  if (metrics != nullptr) registry.MirrorLinkCounters(*metrics);
  registry.GetGauge("data_plane.allocs")
      .Set(static_cast<std::int64_t>(data_plane::Allocs()));
  registry.GetGauge("data_plane.copied_bytes")
      .Set(static_cast<std::int64_t>(data_plane::CopiedBytes()));
  registry.GetGauge("data_plane.pool_hits")
      .Set(static_cast<std::int64_t>(data_plane::PoolHits()));
  registry.GetGauge("data_plane.pool_misses")
      .Set(static_cast<std::int64_t>(data_plane::PoolMisses()));
  return registry.ToJson();
}

bool TryHandleObs(Message& request, Responder& responder,
                  const Metrics* metrics) {
  switch (request.opcode) {
    case kStatsDump: {
      responder.SendOk(request, Buffer::FromString(StatsJson(metrics)));
      return true;
    }
    case kTraceDump: {
      auto& recorder = obs::TraceRecorder::Global();
      std::string json = recorder.ToChromeJson();
      // Payload byte 0 == 1 requests a clear-after-dump.
      if (request.payload.size() >= 1 && request.payload.data()[0] == 1) {
        recorder.Clear();
      }
      responder.SendOk(request, Buffer::FromString(json));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace glider::net
