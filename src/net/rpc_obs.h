// RPC-plane observability glue (DESIGN.md "Observability"):
//
//   * per-opcode client/server latency histograms for both transports
//     ("rpc.client.<transport>.<op>_us" / "rpc.server.<transport>.<op>_us"),
//   * trace-context stamping of outgoing requests and installation of the
//     decoded context around server-side handling,
//   * the management opcodes kStatsDump/kTraceDump answered uniformly by
//     every server role (storage, metadata, active) via TryHandleObs.
//
// Everything short-circuits to a no-op when obs::Enabled() is false, so the
// disabled-mode RPC hot path costs one relaxed atomic load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/attribution.h"
#include "common/metrics_registry.h"
#include "common/time_series.h"
#include "common/trace.h"
#include "net/transport.h"

namespace glider {
class Metrics;
}

namespace glider::net {

// Management opcodes, outside every service's protocol range.
inline constexpr std::uint16_t kStatsDump = 990;      // -> MetricsRegistry JSON
inline constexpr std::uint16_t kTraceDump = 991;      // -> Chrome trace JSON
inline constexpr std::uint16_t kSeriesDump = 992;     // -> SeriesDumpResponse
inline constexpr std::uint16_t kSlowTraceDump = 993;  // -> slow-trace JSON
inline constexpr std::uint16_t kProfileDump = 994;    // -> collapsed stacks
inline constexpr std::uint16_t kHeartbeat = 995;      // -> HeartbeatResponse
inline constexpr std::uint16_t kHealthDump = 996;     // -> HealthBoard JSON
inline constexpr std::uint16_t kEventDump = 997;      // -> EventJournal JSON
inline constexpr std::uint16_t kLedgerDump = 998;     // -> LedgerDumpResponse

// kProfileDump request payload: empty = dump collapsed stacks; otherwise a
// u8 command from this enum (kStart is followed by a u32 hz, 0 = default).
// kStart replies with one byte: 1 = started by this request, 0 = a profiler
// was already running (callers use it to avoid stopping someone else's
// session). kDump/kDumpClear reply with the folded text, kStop with empty.
enum class ProfileCmd : std::uint8_t {
  kDump = 0,
  kDumpClear = 1,
  kStart = 2,
  kStop = 3,
};

// Human-readable opcode name ("Lookup", "StreamWrite", ...). The table
// duplicates the per-service protocol enums on purpose: the net layer can't
// include them (layering), and the names only feed metric/span labels.
const char* RpcOpName(std::uint16_t opcode);

// Registry histograms resolved once per (side, transport, opcode) and then
// cached in an atomic pointer table — no map lookup on the hot path.
// `transport_index`: 0 = inproc, 1 = tcp.
obs::LatencyHistogram* RpcHistogram(bool server_side, int transport_index,
                                    std::uint16_t opcode);

// Client-side per-call trace state: Begin() stamps the request with a fresh
// RPC span id (when a trace is active) and snapshots the clock; Finish()
// records the latency histogram and the client RPC span. Both are no-ops
// when observability is disabled at Begin() time. Copyable so transports
// can carry it through their pending-call tables.
struct ClientCallTrace {
  obs::TraceContext parent;
  std::uint64_t span_id = 0;
  std::uint64_t start_us = 0;
  std::uint16_t opcode = 0;
  bool active = false;

  static ClientCallTrace Begin(Message& request, int transport_index);
  void Finish() const;

 private:
  int transport_index_ = 0;
};

// Runs `service.Handle(request, responder)` under the request's trace
// context with a server-side span + latency histogram around the
// synchronous part of the handler (deferred responders complete later, by
// design — the span measures dispatch, the action-plane spans cover the
// rest).
void HandleWithObs(Service& service, Message request, Responder responder,
                   int transport_index);

// Handles the management opcodes; returns true when the request was
// consumed. `metrics` (may be null) contributes the link-class counters to
// the stats snapshot.
bool TryHandleObs(Message& request, Responder& responder,
                  const Metrics* metrics);

// The stats JSON served by kStatsDump: MetricsRegistry::ToJson() after
// mirroring `metrics` (nullable) and the data-plane/buffer-pool counters.
std::string StatsJson(const Metrics* metrics);

// Republishes `metrics` (nullable) and the data-plane counters into the
// global registry without rendering anything — shared by the JSON and
// binary dump paths so both see identical gauges.
void RefreshMirroredGauges(const Metrics* metrics);

// kSeriesDump payload: the full registry snapshot (binary, mergeable — the
// JSON stats dump has no bucket counts) plus every sampler ring. Histograms
// travel as sparse (bucket index, count) pairs; log2 histograms are mostly
// empty so this keeps cluster polling cheap.
struct SeriesDumpResponse {
  obs::MetricsSnapshot snapshot;
  std::vector<obs::SeriesData> series;
  std::uint64_t sampler_interval_ms = 0;  // 0 = sampler not running

  Buffer Encode() const;
  static Result<SeriesDumpResponse> Decode(ByteSpan payload);
};

// kLedgerDump payload: the node's resource-attribution state — the full
// (principal, op) ledger plus the heavy-hitter sketches (object keys,
// action methods, principals). Request payload byte 0 == 1 requests a
// clear-after-dump (same convention as kTraceDump). Merge() is the exact
// cluster-wide merge used by ClusterMonitor: ledger cells sum per key;
// sketches merge under the space-saving rule.
struct LedgerDumpResponse {
  struct Sketch {
    std::string name;  // "keys" | "methods" | "principals"
    std::uint64_t total = 0;  // stream weight the sketch observed
    std::vector<obs::SpaceSavingTopK::Entry> entries;
  };

  std::vector<obs::LedgerEntry> entries;
  std::vector<Sketch> sketches;

  Buffer Encode() const;
  static Result<LedgerDumpResponse> Decode(ByteSpan payload);
  void Merge(const LedgerDumpResponse& other);
};

// kHeartbeat reply: a liveness proof that also piggybacks the node's
// self-computed load report (the handler runs LoadTracker::Update), so a
// health poll of an otherwise idle link costs one tiny frame and still
// refreshes the load/hotspot picture. Request payload is empty.
struct HeartbeatResponse {
  std::uint64_t server_time_us = 0;  // peer's TraceNowMicros at reply time
  double load_index = 0.0;
  std::uint32_t hotspot_slots = 0;

  Buffer Encode() const;
  static Result<HeartbeatResponse> Decode(ByteSpan payload);
};

}  // namespace glider::net
