// Wire message: the unit of every RPC in the system.
//
// Frame layout (little-endian):
//   u16 opcode | u16 status | u64 request_id | u32 payload_len | payload
//
// Requests carry status=0; responses echo the request id and report the
// outcome in `status`. Payload encoding is per-opcode (see the *Protocol*
// headers of each server).
#pragma once

#include <cstdint>
#include <utility>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/status.h"

namespace glider::net {

inline constexpr std::size_t kFrameHeaderSize = 2 + 2 + 8 + 4;

struct Message {
  std::uint16_t opcode = 0;
  StatusCode status = StatusCode::kOk;
  std::uint64_t request_id = 0;
  Buffer payload;

  std::size_t WireSize() const { return kFrameHeaderSize + payload.size(); }

  // Serializes the full frame (header + payload).
  Buffer Encode() const {
    BinaryWriter w;
    w.PutU16(opcode);
    w.PutU16(static_cast<std::uint16_t>(status));
    w.PutU64(request_id);
    w.PutBytes(payload.span());
    return std::move(w).Finish();
  }

  static Result<Message> Decode(ByteSpan frame) {
    BinaryReader r(frame);
    Message m;
    GLIDER_ASSIGN_OR_RETURN(m.opcode, r.U16());
    GLIDER_ASSIGN_OR_RETURN(auto status_raw, r.U16());
    m.status = static_cast<StatusCode>(status_raw);
    GLIDER_ASSIGN_OR_RETURN(m.request_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto payload, r.Bytes());
    m.payload = Buffer(payload.data(), payload.size());
    return m;
  }
};

// Helpers for building responses.
inline Message OkResponse(const Message& req, Buffer payload = {}) {
  Message m;
  m.opcode = req.opcode;
  m.status = StatusCode::kOk;
  m.request_id = req.request_id;
  m.payload = std::move(payload);
  return m;
}

inline Message ErrorResponse(const Message& req, const Status& status) {
  Message m;
  m.opcode = req.opcode;
  m.status = status.code();
  m.request_id = req.request_id;
  m.payload = Buffer::FromString(status.message());
  return m;
}

// Converts a response message into Result<Buffer> (payload on success).
inline Result<Buffer> ToResult(Message response) {
  if (response.status == StatusCode::kOk) {
    return std::move(response.payload);
  }
  return Status(response.status, response.payload.ToString());
}

}  // namespace glider::net
