// Wire message: the unit of every RPC in the system.
//
// Frame layout (little-endian):
//   u16 opcode | u16 status | u64 request_id | u64 trace_id | u64 span_id |
//   u64 principal | u32 payload_len | payload
//
// Requests carry status=0; responses echo the request id and report the
// outcome in `status`. Payload encoding is per-opcode (see the *Protocol*
// headers of each server).
//
// trace_id/span_id carry the caller's trace context across the wire
// (DESIGN.md "Observability"): span_id is the client-side RPC span, which
// the server installs as the parent of its handler span. Both are 0 when no
// trace is active.
//
// `principal` is the caller's tenant/workload id (DESIGN.md "Resource
// attribution"): stamped from the client's PrincipalScope, installed by the
// server for the handler's duration so downstream work is charged to the
// right tenant. 0 = unattributed.
//
// The frame header itself carries no magic or version — instead every TCP
// connection opens with an 8-byte preamble ("GLDR" + u32 wire version,
// sent by both sides before any frame) so a mixed-version peer fails fast
// with a clear mismatch error instead of misreading payload_len at the
// wrong offset and misframing. Bump kWireVersion whenever the header
// layout changes (v2: the header grew from 32 to 40 bytes when
// `principal` was added).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/status.h"

namespace glider::net {

inline constexpr std::size_t kFrameHeaderSize = 2 + 2 + 8 + 8 + 8 + 8 + 4;

// Connection preamble: 4 magic bytes + u32 wire version (little-endian),
// exchanged once per TCP connection before the first frame in either
// direction. v2 = the 40-byte header with the `principal` field.
inline constexpr std::size_t kWirePreambleSize = 8;
inline constexpr std::uint8_t kWireMagic[4] = {'G', 'L', 'D', 'R'};
inline constexpr std::uint32_t kWireVersion = 2;

inline void EncodeWirePreamble(std::uint8_t (&out)[kWirePreambleSize]) {
  for (int i = 0; i < 4; ++i) out[i] = kWireMagic[i];
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<std::uint8_t>(kWireVersion >> (8 * i));
  }
}

inline Status CheckWirePreamble(const std::uint8_t* preamble) {
  for (int i = 0; i < 4; ++i) {
    if (preamble[i] != kWireMagic[i]) {
      return Status::InvalidArgument(
          "not a glider frame stream (bad preamble magic)");
    }
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(preamble[4 + i]) << (8 * i);
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        "wire protocol version mismatch: peer speaks v" +
        std::to_string(version) + ", this node speaks v" +
        std::to_string(kWireVersion));
  }
  return Status::Ok();
}

struct Message {
  std::uint16_t opcode = 0;
  StatusCode status = StatusCode::kOk;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;   // 0 = untraced
  std::uint64_t span_id = 0;    // caller's RPC span (server-side parent)
  std::uint64_t principal = 0;  // tenant/workload id; 0 = unattributed
  Buffer payload;

  std::size_t WireSize() const { return kFrameHeaderSize + payload.size(); }

  // Serializes the full frame (header + payload) into one buffer. NOT used
  // on the transport hot path — TCP emits the header from a stack array and
  // gathers the payload with writev (see EncodeHeader) — but kept for tests
  // and tools that want a self-contained frame.
  Buffer Encode() const {
    BinaryWriter w(WireSize());
    w.PutU16(opcode);
    w.PutU16(static_cast<std::uint16_t>(status));
    w.PutU64(request_id);
    w.PutU64(trace_id);
    w.PutU64(span_id);
    w.PutU64(principal);
    w.PutBytes(payload.span());
    return std::move(w).Finish();
  }

  // Serializes just the 40-byte frame header (including the payload length)
  // into `out`, for scatter-gather emission alongside the payload.
  void EncodeHeader(std::uint8_t (&out)[kFrameHeaderSize]) const {
    auto put16 = [](std::uint8_t* p, std::uint16_t v) {
      p[0] = static_cast<std::uint8_t>(v);
      p[1] = static_cast<std::uint8_t>(v >> 8);
    };
    auto put32 = [](std::uint8_t* p, std::uint32_t v) {
      for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    auto put64 = [](std::uint8_t* p, std::uint64_t v) {
      for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    };
    put16(out, opcode);
    put16(out + 2, static_cast<std::uint16_t>(status));
    put64(out + 4, request_id);
    put64(out + 12, trace_id);
    put64(out + 20, span_id);
    put64(out + 28, principal);
    put32(out + 36, static_cast<std::uint32_t>(payload.size()));
  }

  // Decodes from a borrowed view; the payload is copied out of the frame.
  static Result<Message> Decode(ByteSpan frame) {
    BinaryReader r(frame);
    Message m;
    GLIDER_ASSIGN_OR_RETURN(m.opcode, r.U16());
    GLIDER_ASSIGN_OR_RETURN(auto status_raw, r.U16());
    m.status = static_cast<StatusCode>(status_raw);
    GLIDER_ASSIGN_OR_RETURN(m.request_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.trace_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.span_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.principal, r.U64());
    GLIDER_ASSIGN_OR_RETURN(auto payload, r.Bytes());
    m.payload = Buffer(payload.data(), payload.size());
    return m;
  }

  // Adopts an owned frame: the payload becomes a zero-copy slice sharing
  // the frame's storage. The hot receive path for whole-frame buffers.
  static Result<Message> Decode(Buffer frame) {
    BinaryReader r(frame.span());
    Message m;
    GLIDER_ASSIGN_OR_RETURN(m.opcode, r.U16());
    GLIDER_ASSIGN_OR_RETURN(auto status_raw, r.U16());
    m.status = static_cast<StatusCode>(status_raw);
    GLIDER_ASSIGN_OR_RETURN(m.request_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.trace_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.span_id, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.principal, r.U64());
    GLIDER_ASSIGN_OR_RETURN(m.payload, GetBytesSlice(r, frame));
    return m;
  }
};

// Helpers for building responses.
inline Message OkResponse(const Message& req, Buffer payload = {}) {
  Message m;
  m.opcode = req.opcode;
  m.status = StatusCode::kOk;
  m.request_id = req.request_id;
  m.trace_id = req.trace_id;
  m.span_id = req.span_id;
  m.principal = req.principal;
  m.payload = std::move(payload);
  return m;
}

inline Message ErrorResponse(const Message& req, const Status& status) {
  Message m;
  m.opcode = req.opcode;
  m.status = status.code();
  m.request_id = req.request_id;
  m.trace_id = req.trace_id;
  m.span_id = req.span_id;
  m.principal = req.principal;
  m.payload = Buffer::FromString(status.message());
  return m;
}

// Converts a response message into Result<Buffer> (payload on success).
inline Result<Buffer> ToResult(Message response) {
  if (response.status == StatusCode::kOk) {
    return std::move(response.payload);
  }
  return Status(response.status, response.payload.ToString());
}

}  // namespace glider::net
