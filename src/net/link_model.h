// Link model: bandwidth + latency shaping for a logical network link, plus
// metrics attribution.
//
// This is the testbed substitute described in DESIGN.md §2. The paper runs
// FaaS workers on bandwidth-limited functions and storage servers on a
// 100 Gbps fabric (with RDMA available inside the storage tier only). Here,
// each connection is tagged with a LinkModel that (a) throttles payload bytes
// through a shared token bucket, (b) adds a fixed per-operation latency, and
// (c) attributes traffic to a LinkClass in the Metrics registry.
//
// A single LinkModel instance is typically shared by all connections of one
// worker, modelling the per-function bandwidth cap of FaaS.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/metrics.h"
#include "common/rate_limiter.h"

namespace glider::net {

class LinkModel {
 public:
  // bytes_per_second == 0 disables throttling; latency may be zero.
  LinkModel(LinkClass link_class, std::uint64_t bytes_per_second,
            std::chrono::microseconds per_op_latency,
            std::shared_ptr<Metrics> metrics)
      : class_(link_class),
        limiter_(bytes_per_second, /*burst_bytes=*/1024 * 1024),
        latency_(per_op_latency),
        metrics_(std::move(metrics)) {}

  // Unshaped link that still attributes traffic to a class.
  static std::shared_ptr<LinkModel> Unshaped(LinkClass link_class,
                                             std::shared_ptr<Metrics> metrics) {
    return std::make_shared<LinkModel>(link_class, 0,
                                       std::chrono::microseconds(0),
                                       std::move(metrics));
  }

  // Called on the request path (client -> server). Blocks for the
  // *serialization* time of the payload (bandwidth). Propagation latency is
  // NOT charged here — it must overlap across pipelined operations, so the
  // transport applies `latency()` on the delivery path instead (the
  // in-process transport delays the server-side handling; TCP sleeps before
  // the socket write).
  void OnSend(std::uint64_t bytes) {
    if (metrics_) metrics_->RecordSend(class_, bytes);
    limiter_.Acquire(bytes);
  }

  // Called on the response path (server -> client).
  void OnReceive(std::uint64_t bytes) {
    if (metrics_) metrics_->RecordReceive(class_, bytes);
    limiter_.Acquire(bytes);
  }

  std::chrono::microseconds latency() const { return latency_; }
  LinkClass link_class() const { return class_; }
  const std::shared_ptr<Metrics>& metrics() const { return metrics_; }

 private:

  const LinkClass class_;
  RateLimiter limiter_;
  const std::chrono::microseconds latency_;
  std::shared_ptr<Metrics> metrics_;
};

}  // namespace glider::net
