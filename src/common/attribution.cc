#include "common/attribution.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>

#include "common/metrics_registry.h"

namespace glider::obs {

namespace {

thread_local PrincipalId t_principal = 0;

}  // namespace

PrincipalId PrincipalFromName(std::string_view name) {
  PrincipalId id = 0;
  const std::size_t n = std::min<std::size_t>(name.size(), 8);
  for (std::size_t i = 0; i < n; ++i) {
    id |= static_cast<PrincipalId>(static_cast<unsigned char>(name[i]))
          << (8 * i);
  }
  return id;
}

std::string PrincipalName(PrincipalId id) {
  if (id == 0) return "-";
  char chars[8];
  std::size_t n = 0;
  bool printable = true;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto c = static_cast<unsigned char>((id >> (8 * i)) & 0xff);
    if (c == 0) {
      // NUL padding: the rest must be NUL too, else the id is not a
      // packed name.
      for (std::size_t j = i; j < 8; ++j) {
        if (((id >> (8 * j)) & 0xff) != 0) printable = false;
      }
      break;
    }
    if (!std::isprint(c)) {
      printable = false;
      break;
    }
    chars[n++] = static_cast<char>(c);
  }
  if (printable && n > 0) return std::string(chars, n);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "p%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

PrincipalId CurrentPrincipal() { return t_principal; }

PrincipalScope::PrincipalScope(PrincipalId id) : prev_(t_principal) {
  t_principal = id;
}

PrincipalScope::~PrincipalScope() { t_principal = prev_; }

// --- ResourceLedger ---------------------------------------------------------

struct ResourceLedger::Shard {
  std::mutex mu;
  std::map<std::pair<PrincipalId, std::string>, LedgerCell> cells;
};

namespace {

// Shards are shared_ptrs held by both the owning thread and a leaked
// registry, so snapshots survive thread exit (same lifetime scheme as the
// trace recorder's thread buffers).
struct ShardRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ResourceLedger::Shard>> shards;
};

ShardRegistry& Shards() {
  static ShardRegistry* registry = new ShardRegistry();
  return *registry;
}

}  // namespace

ResourceLedger& ResourceLedger::Global() {
  static ResourceLedger* ledger = new ResourceLedger();
  return *ledger;
}

ResourceLedger::Shard& ResourceLedger::LocalShard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    auto& registry = Shards();
    std::scoped_lock lock(registry.mu);
    registry.shards.push_back(s);
    return s;
  }();
  return *shard;
}

void ResourceLedger::Charge(PrincipalId principal, const std::string& op,
                            const LedgerCell& delta) {
  Shard& shard = LocalShard();
  std::scoped_lock lock(shard.mu);
  shard.cells[{principal, op}].Merge(delta);
}

std::vector<LedgerEntry> ResourceLedger::Snapshot() const {
  std::map<std::pair<PrincipalId, std::string>, LedgerCell> merged;
  auto& registry = Shards();
  std::scoped_lock lock(registry.mu);
  for (const auto& shard : registry.shards) {
    std::scoped_lock shard_lock(shard->mu);
    for (const auto& [key, cell] : shard->cells) merged[key].Merge(cell);
  }
  std::vector<LedgerEntry> out;
  out.reserve(merged.size());
  for (auto& [key, cell] : merged) {
    out.push_back(LedgerEntry{key.first, key.second, cell});
  }
  return out;
}

void ResourceLedger::Clear() {
  auto& registry = Shards();
  std::scoped_lock lock(registry.mu);
  for (const auto& shard : registry.shards) {
    std::scoped_lock shard_lock(shard->mu);
    shard->cells.clear();
  }
}

std::vector<LedgerEntry> MergeLedgerEntries(
    const std::vector<LedgerEntry>& a, const std::vector<LedgerEntry>& b) {
  std::map<std::pair<PrincipalId, std::string>, LedgerCell> merged;
  for (const auto* list : {&a, &b}) {
    for (const auto& entry : *list) {
      merged[{entry.principal, entry.op}].Merge(entry.cell);
    }
  }
  std::vector<LedgerEntry> out;
  out.reserve(merged.size());
  for (auto& [key, cell] : merged) {
    out.push_back(LedgerEntry{key.first, key.second, cell});
  }
  return out;
}

void PublishLedgerRollups() {
  std::map<PrincipalId, LedgerCell> rollup;
  for (const auto& entry : ResourceLedger::Global().Snapshot()) {
    rollup[entry.principal].Merge(entry.cell);
  }
  auto& registry = MetricsRegistry::Global();
  for (const auto& [principal, cell] : rollup) {
    const std::string prefix = "ledger." + PrincipalName(principal) + ".";
    registry.GetGauge(prefix + "cpu_us")
        .Set(static_cast<std::int64_t>(cell.cpu_us));
    registry.GetGauge(prefix + "queue_us")
        .Set(static_cast<std::int64_t>(cell.queue_us));
    registry.GetGauge(prefix + "bytes_in")
        .Set(static_cast<std::int64_t>(cell.bytes_in));
    registry.GetGauge(prefix + "bytes_out")
        .Set(static_cast<std::int64_t>(cell.bytes_out));
    registry.GetGauge(prefix + "invocations")
        .Set(static_cast<std::int64_t>(cell.invocations));
  }
}

// --- SpaceSavingTopK --------------------------------------------------------

SpaceSavingTopK::SpaceSavingTopK(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpaceSavingTopK::Offer(std::string_view key, std::uint64_t weight) {
  if (weight == 0) return;
  std::scoped_lock lock(mu_);
  total_ += weight;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    Entry e;
    e.key = std::string(key);
    e.count = weight;
    entries_.emplace(e.key, e);
    return;
  }
  // At capacity: replace the minimum-count entry. The newcomer inherits
  // the victim's count (so it can never be under-counted) and records it
  // as error.
  auto victim = entries_.begin();
  for (auto i = std::next(entries_.begin()); i != entries_.end(); ++i) {
    if (i->second.count < victim->second.count) victim = i;
  }
  Entry e;
  e.key = std::string(key);
  e.count = victim->second.count + weight;
  e.error = victim->second.count;
  entries_.erase(victim);
  entries_.emplace(e.key, e);
}

std::vector<SpaceSavingTopK::Entry> SpaceSavingTopK::EntriesLocked() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<SpaceSavingTopK::Entry> SpaceSavingTopK::Entries() const {
  std::scoped_lock lock(mu_);
  return EntriesLocked();
}

std::uint64_t SpaceSavingTopK::Total() const {
  std::scoped_lock lock(mu_);
  return total_;
}

std::size_t SpaceSavingTopK::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

void SpaceSavingTopK::Clear() {
  std::scoped_lock lock(mu_);
  entries_.clear();
  total_ = 0;
}

void SpaceSavingTopK::Merge(const std::vector<Entry>& other) {
  // Heaviest first (key ascending on ties) so the merge is deterministic
  // regardless of the wire ordering, and light tail entries are the ones
  // that pay the replacement-rule error inflation.
  std::vector<Entry> incoming = other;
  std::sort(incoming.begin(), incoming.end(),
            [](const Entry& a, const Entry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  std::scoped_lock lock(mu_);
  for (const auto& e : incoming) {
    total_ += e.count;
    auto it = entries_.find(e.key);
    if (it != entries_.end()) {
      it->second.count += e.count;
      it->second.error += e.error;
      continue;
    }
    if (entries_.size() < capacity_) {
      entries_.emplace(e.key, e);
      continue;
    }
    // At capacity: the same space-saving replacement rule as Offer — the
    // newcomer inherits the evicted minimum's count (folded into both its
    // count and its error bound) instead of the victim's mass being
    // silently discarded. This keeps sum(counts) == total_, so the
    // presence guarantee (every key with true count > total/capacity is
    // tracked) survives cross-node merges. Ties evict the
    // lexicographically larger key, deterministically.
    auto victim = entries_.begin();
    for (auto i = std::next(entries_.begin()); i != entries_.end(); ++i) {
      if (i->second.count < victim->second.count ||
          (i->second.count == victim->second.count &&
           i->first > victim->first)) {
        victim = i;
      }
    }
    Entry merged;
    merged.key = e.key;
    merged.count = victim->second.count + e.count;
    merged.error = victim->second.count + e.error;
    entries_.erase(victim);
    entries_.emplace(merged.key, merged);
  }
}

std::vector<SpaceSavingTopK::Entry> SpaceSavingTopK::MergeEntries(
    const std::vector<Entry>& a, const std::vector<Entry>& b,
    std::size_t capacity) {
  SpaceSavingTopK merged(capacity);
  merged.Merge(a);
  merged.Merge(b);
  return merged.Entries();
}

SpaceSavingTopK& KeySketch() {
  static SpaceSavingTopK* sketch = new SpaceSavingTopK(64);
  return *sketch;
}

SpaceSavingTopK& MethodSketch() {
  static SpaceSavingTopK* sketch = new SpaceSavingTopK(64);
  return *sketch;
}

SpaceSavingTopK& PrincipalSketch() {
  static SpaceSavingTopK* sketch = new SpaceSavingTopK(64);
  return *sketch;
}

}  // namespace glider::obs
