// Minimal leveled logger. Defaults to warnings-and-up so tests and benches
// stay quiet; set GLIDER_LOG=debug|info|warn|error to change.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace glider {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace internal {

// "[t:<trace_id> s:<span_id>] " when tracing is enabled and a trace context
// is active on this thread, else "". Lives in logging.cc so this header
// need not pull in trace.h.
std::string TracePrefix();

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level) {
    stream_ << "[" << Name(level) << "] " << TracePrefix() << tag << ": ";
  }
  ~LogLine() {
    if (level_ >= GlobalLogLevel()) {
      static std::mutex mu;
      std::scoped_lock lock(mu);
      std::cerr << stream_.str() << "\n";
    }
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  static std::string_view Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GLIDER_LOG(level, tag) \
  ::glider::internal::LogLine(::glider::LogLevel::level, tag)

}  // namespace glider
