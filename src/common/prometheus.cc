#include "common/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace glider::obs {

namespace {

bool ValidStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool ValidRest(char c) { return ValidStart(c) || (c >= '0' && c <= '9'); }

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// Renders `labels` as a brace block, optionally appending `extra` (the
// histogram `le` label, already escaped) last. Empty when there is nothing
// to render.
std::string LabelBlock(const PrometheusLabels& labels,
                       const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += PrometheusSanitize(name) + "=\"" + PrometheusEscapeLabelValue(value) +
           "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

// "# HELP" body: the original registry name, with newlines and backslashes
// escaped per the exposition format.
std::string HelpText(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 24);
  out += "Glider metric '";
  for (char c : name) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  out += "'.";
  return out;
}

// OpenMetrics exemplar suffix for a bucket sample line:
// ` # {trace_id="<hex>"} <value>`. Trace ids render like the trace JSON
// (%PRIx64, no zero padding) so they grep/resolve against kTraceDump.
// Only legal in the OpenMetrics format — the classic 0.0.4 parser errors
// on the suffix, so the classic renderer never calls this.
std::string ExemplarSuffix(std::uint64_t trace_id, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " # {trace_id=\"%" PRIx64 "\"} %" PRIu64,
                trace_id, value);
  return buf;
}

}  // namespace

const char* PrometheusContentType(PrometheusFormat format) {
  return format == PrometheusFormat::kOpenMetrics
             ? "application/openmetrics-text; version=1.0.0; charset=utf-8"
             : "text/plain; version=0.0.4; charset=utf-8";
}

std::string PrometheusSanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(ValidRest(c) ? c : '_');
  }
  if (out.empty() || !ValidStart(out.front())) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot,
                           const PrometheusLabels& labels,
                           PrometheusFormat format) {
  const bool openmetrics = format == PrometheusFormat::kOpenMetrics;
  const std::string label_block = LabelBlock(labels);
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = "glider_" + PrometheusSanitize(name);
    const std::string metric = family + "_total";
    // OpenMetrics names the counter family without the _total suffix; the
    // classic format documents the sample name itself.
    const std::string& meta = openmetrics ? family : metric;
    out += "# HELP " + meta + " " + HelpText(name) + "\n";
    out += "# TYPE " + meta + " counter\n";
    out += metric + label_block + " ";
    AppendU64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = "glider_" + PrometheusSanitize(name);
    out += "# HELP " + metric + " " + HelpText(name) + "\n";
    out += "# TYPE " + metric + " gauge\n";
    out += metric + label_block + " ";
    AppendI64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = "glider_" + PrometheusSanitize(name);
    out += "# HELP " + metric + " " + HelpText(name) + "\n";
    out += "# TYPE " + metric + " histogram\n";
    // The snapshot's count and per-bucket counts are sampled with relaxed
    // loads, so under concurrent recording they can disagree. Every series
    // derives from one reconciled total: +Inf == _count >= any finite le.
    std::uint64_t bucket_total = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      bucket_total += hist.buckets[i];
    }
    const std::uint64_t total = std::max(hist.count, bucket_total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;  // elide empty log2 buckets
      // The overflow bucket has no finite upper bound of its own; its
      // events are only visible in the +Inf series below.
      if (i >= LatencyHistogram::kNumBuckets - 1) break;
      cumulative += hist.buckets[i];
      std::string le = "le=\"";
      AppendU64(le, LatencyHistogram::BucketUpperBound(i));
      le.push_back('"');
      out += metric + "_bucket" + LabelBlock(labels, le) + " ";
      AppendU64(out, cumulative);
      if (openmetrics && hist.exemplar_trace[i] != 0) {
        out += ExemplarSuffix(hist.exemplar_trace[i], hist.exemplar_value[i]);
      }
      out.push_back('\n');
    }
    out += metric + "_bucket" + LabelBlock(labels, "le=\"+Inf\"") + " ";
    AppendU64(out, total);
    {
      // The +Inf line carries the overflow bucket's exemplar when present.
      constexpr std::size_t last = LatencyHistogram::kNumBuckets - 1;
      if (openmetrics && hist.exemplar_trace[last] != 0) {
        out += ExemplarSuffix(hist.exemplar_trace[last],
                              hist.exemplar_value[last]);
      }
    }
    out.push_back('\n');
    out += metric + "_sum" + label_block + " ";
    AppendU64(out, hist.sum);
    out.push_back('\n');
    out += metric + "_count" + label_block + " ";
    AppendU64(out, total);
    out.push_back('\n');
  }
  if (openmetrics) out += "# EOF\n";
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry,
                           const PrometheusLabels& labels,
                           PrometheusFormat format) {
  return PrometheusText(registry.Snapshot(), labels, format);
}

}  // namespace glider::obs
