#include "common/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace glider::obs {

namespace {

bool ValidStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool ValidRest(char c) { return ValidStart(c) || (c >= '0' && c <= '9'); }

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

std::string PrometheusSanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back(ValidRest(c) ? c : '_');
  }
  if (out.empty() || !ValidStart(out.front())) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = "glider_" + PrometheusSanitize(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " ";
    AppendU64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = "glider_" + PrometheusSanitize(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " ";
    AppendI64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = "glider_" + PrometheusSanitize(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;  // elide empty log2 buckets
      // The overflow bucket has no finite upper bound of its own; its
      // events are only visible in the +Inf series below.
      if (i >= LatencyHistogram::kNumBuckets - 1) break;
      cumulative += hist.buckets[i];
      out += metric + "_bucket{le=\"";
      AppendU64(out, LatencyHistogram::BucketUpperBound(i));
      out += "\"} ";
      AppendU64(out, cumulative);
      out.push_back('\n');
    }
    out += metric + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, hist.count);
    out.push_back('\n');
    out += metric + "_sum ";
    AppendU64(out, hist.sum);
    out.push_back('\n');
    out += metric + "_count ";
    AppendU64(out, hist.count);
    out.push_back('\n');
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Snapshot());
}

}  // namespace glider::obs
