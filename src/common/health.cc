#include "common/health.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/event_journal.h"
#include "common/trace.h"

namespace glider::obs {

namespace {

// Upper clamp on phi: erfc underflows to 0 around z ~ 38 and the exact
// value past "one in 10^40" carries no information anyway.
constexpr double kPhiMax = 40.0;

std::uint64_t NowOr(std::uint64_t now_us) {
  return now_us != 0 ? now_us : TraceNowMicros();
}

EventType TransitionEvent(PeerState state) {
  switch (state) {
    case PeerState::kSuspect: return EventType::kPeerSuspect;
    case PeerState::kDead: return EventType::kPeerDead;
    default: return EventType::kPeerAlive;
  }
}

}  // namespace

const char* PeerStateName(PeerState state) {
  switch (state) {
    case PeerState::kUnknown: return "unknown";
    case PeerState::kAlive: return "alive";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDead: return "dead";
  }
  return "unknown";
}

double HealthDetector::PhiLocked(const Peer& peer,
                                 std::uint64_t now_us) const {
  if (peer.heartbeats == 0) return 0.0;
  const std::uint64_t elapsed =
      now_us > peer.last_us ? now_us - peer.last_us : 0;

  double mean = static_cast<double>(options_.initial_interval_us);
  double var = 0.0;
  if (!peer.intervals.empty()) {
    double sum = 0.0;
    for (const std::uint64_t v : peer.intervals) {
      sum += static_cast<double>(v);
    }
    mean = sum / static_cast<double>(peer.intervals.size());
    for (const std::uint64_t v : peer.intervals) {
      const double d = static_cast<double>(v) - mean;
      var += d * d;
    }
    var /= static_cast<double>(peer.intervals.size());
  }
  double std_dev = std::sqrt(var);
  std_dev = std::max(std_dev, options_.min_std_fraction * mean);
  std_dev = std::max(std_dev, static_cast<double>(options_.min_std_us));
  if (std_dev <= 0.0) std_dev = 1.0;

  // phi = -log10(P(interval > elapsed)) under N(mean, std_dev^2). The
  // survival function via erfc keeps precision in the far tail, which is
  // exactly where the dead threshold lives.
  const double z = (static_cast<double>(elapsed) - mean) / std_dev;
  const double q = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (q <= 0.0) return kPhiMax;
  const double phi = -std::log10(q);
  return std::min(std::max(phi, 0.0), kPhiMax);
}

PeerState HealthDetector::EvaluateLocked(const std::string& address,
                                         Peer& peer, std::uint64_t now_us) {
  if (peer.heartbeats == 0) return peer.state;
  const double phi = PhiLocked(peer, now_us);
  PeerState next = PeerState::kAlive;
  if (phi >= options_.phi_dead) {
    next = PeerState::kDead;
  } else if (phi >= options_.phi_suspect) {
    next = PeerState::kSuspect;
  }
  // Dead is sticky against phi alone: only a fresh heartbeat (which resets
  // elapsed and re-runs this evaluation) revives a dead peer.
  if (peer.state == PeerState::kDead && next != PeerState::kAlive) {
    return peer.state;
  }
  if (next != peer.state) {
    const PeerState prev = peer.state;
    peer.state = next;
    if (options_.journal_transitions) {
      JournalEvent(TransitionEvent(next), address,
                   std::string("from ") + PeerStateName(prev),
                   static_cast<std::int64_t>(phi * 1000.0));
    }
  }
  return peer.state;
}

void HealthDetector::Heartbeat(const std::string& address,
                               std::uint64_t now_us) {
  now_us = NowOr(now_us);
  std::scoped_lock lock(mu_);
  Peer& peer = peers_[address];
  if (peer.heartbeats > 0 && now_us > peer.last_us) {
    const std::uint64_t interval = now_us - peer.last_us;
    if (peer.intervals.size() < options_.window) {
      peer.intervals.push_back(interval);
    } else {
      peer.intervals[peer.next] = interval;
    }
    peer.next = (peer.next + 1) % std::max<std::size_t>(options_.window, 1);
  }
  peer.last_us = std::max(peer.last_us, now_us);
  ++peer.heartbeats;
  EvaluateLocked(address, peer, now_us);
}

void HealthDetector::ReportLoad(const std::string& address, double load_index,
                                std::int64_t hotspot_slots) {
  std::scoped_lock lock(mu_);
  auto it = peers_.find(address);
  if (it == peers_.end()) return;
  it->second.load_index = load_index;
  it->second.hotspot_slots = hotspot_slots;
}

double HealthDetector::Phi(const std::string& address,
                           std::uint64_t now_us) const {
  now_us = NowOr(now_us);
  std::scoped_lock lock(mu_);
  auto it = peers_.find(address);
  if (it == peers_.end()) return 0.0;
  return PhiLocked(it->second, now_us);
}

PeerState HealthDetector::State(const std::string& address,
                                std::uint64_t now_us) {
  now_us = NowOr(now_us);
  std::scoped_lock lock(mu_);
  auto it = peers_.find(address);
  if (it == peers_.end()) return PeerState::kUnknown;
  return EvaluateLocked(address, it->second, now_us);
}

std::vector<HealthDetector::PeerSnapshot> HealthDetector::Snapshot(
    std::uint64_t now_us) {
  now_us = NowOr(now_us);
  std::vector<PeerSnapshot> out;
  std::scoped_lock lock(mu_);
  out.reserve(peers_.size());
  for (auto& [address, peer] : peers_) {
    PeerSnapshot snap;
    snap.address = address;
    snap.state = EvaluateLocked(address, peer, now_us);
    snap.phi = PhiLocked(peer, now_us);
    snap.heartbeats = peer.heartbeats;
    snap.last_heartbeat_us = peer.last_us;
    if (!peer.intervals.empty()) {
      std::uint64_t sum = 0;
      for (const std::uint64_t v : peer.intervals) sum += v;
      snap.mean_interval_us = sum / peer.intervals.size();
    }
    snap.load_index = peer.load_index;
    snap.hotspot_slots = peer.hotspot_slots;
    out.push_back(std::move(snap));
  }
  return out;
}

void HealthDetector::Forget(const std::string& address) {
  std::scoped_lock lock(mu_);
  peers_.erase(address);
}

// ---- HealthBoard ------------------------------------------------------------

HealthBoard& HealthBoard::Global() {
  static HealthBoard* board = new HealthBoard();
  return *board;
}

void HealthBoard::Publish(std::vector<HealthDetector::PeerSnapshot> peers) {
  std::scoped_lock lock(mu_);
  running_ = true;
  peers_ = std::move(peers);
}

void HealthBoard::SetRunning(bool running) {
  std::scoped_lock lock(mu_);
  running_ = running;
  if (!running) peers_.clear();
}

bool HealthBoard::running() const {
  std::scoped_lock lock(mu_);
  return running_;
}

std::vector<HealthDetector::PeerSnapshot> HealthBoard::Snapshot() const {
  std::scoped_lock lock(mu_);
  return peers_;
}

std::string HealthBoard::ToJson() const {
  const std::uint64_t now = TraceNowMicros();
  std::vector<HealthDetector::PeerSnapshot> peers;
  bool running;
  {
    std::scoped_lock lock(mu_);
    running = running_;
    peers = peers_;
  }
  std::string out = "{\"running\":";
  out += running ? "true" : "false";
  out += ",\"peers\":[";
  char buf[256];
  bool first = true;
  for (const auto& p : peers) {
    if (!first) out += ',';
    first = false;
    const std::uint64_t age =
        now > p.last_heartbeat_us ? now - p.last_heartbeat_us : 0;
    std::snprintf(buf, sizeof(buf),
                  "{\"address\":\"%s\",\"state\":\"%s\",\"phi\":%.3f,"
                  "\"heartbeats\":%" PRIu64 ",\"age_us\":%" PRIu64
                  ",\"mean_interval_us\":%" PRIu64
                  ",\"load_index\":%.3f,\"hotspot_slots\":%lld}",
                  p.address.c_str(), PeerStateName(p.state), p.phi,
                  p.heartbeats, age, p.mean_interval_us, p.load_index,
                  static_cast<long long>(p.hotspot_slots));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace glider::obs
