#include "common/status.h"

namespace glider {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kClosed: return "CLOSED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kWrongNodeType: return "WRONG_NODE_TYPE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace glider
