// Deterministic random generators for workload synthesis.
//
// SplitMix64 gives fast, seedable streams; ZipfGenerator models skewed word
// frequencies (the Wikipedia-corpus substitute in Table 2's workload).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace glider {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Zipf-distributed integers in [0, n) with exponent s, via inverse-CDF over a
// precomputed table. Deterministic given the seed.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double s, std::uint64_t seed)
      : rng_(seed), cdf_(n) {
    double sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  std::uint64_t Next() {
    const double u = rng_.NextDouble();
    // Binary search the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  SplitMix64 rng_;
  std::vector<double> cdf_;
};

}  // namespace glider
