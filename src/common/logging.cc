#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/trace.h"

namespace glider {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("GLIDER_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelRef() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

}  // namespace

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(LevelRef().load()); }
void SetGlobalLogLevel(LogLevel level) {
  LevelRef().store(static_cast<int>(level));
}

namespace internal {

std::string TracePrefix() {
  if (!obs::Enabled()) return "";
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.trace_id == 0) return "";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[t:%llx s:%llx] ",
                static_cast<unsigned long long>(ctx.trace_id),
                static_cast<unsigned long long>(ctx.span_id));
  return buf;
}

}  // namespace internal

}  // namespace glider
