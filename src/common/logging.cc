#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace glider {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("GLIDER_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string_view v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelRef() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

}  // namespace

LogLevel GlobalLogLevel() { return static_cast<LogLevel>(LevelRef().load()); }
void SetGlobalLogLevel(LogLevel level) {
  LevelRef().store(static_cast<int>(level));
}

}  // namespace glider
