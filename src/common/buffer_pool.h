// Freelist pool of chunk-sized buffer storage.
//
// Stream hot paths allocate one chunk-sized block per in-flight operation
// (request payload encode on the send side, frame payload on the receive
// side). At steady state a window of W operations recycles the same W
// allocations; this pool keeps released storage on a small freelist so the
// allocator is out of the loop.
//
// Safety: storage returns to the freelist only when the last Buffer handle
// (parent or any slice) releases it — the shared_ptr deleter is the return
// path — so pool reuse can never alias a live slice.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/event_journal.h"

namespace glider {

class BufferPool {
 public:
  // Process-wide pool used by the transports and stream clients.
  static BufferPool& Global() {
    static BufferPool pool;
    return pool;
  }

  explicit BufferPool(std::size_t max_cached_bytes = 64u << 20,
                      std::size_t max_entries = 64)
      : state_(std::make_shared<State>()) {
    state_->max_cached_bytes = max_cached_bytes;
    state_->max_entries = max_entries;
  }

  // A Buffer of exactly `size` bytes backed by recycled storage when a
  // freelist entry with sufficient capacity exists. Contents are
  // unspecified (callers overwrite).
  Buffer Acquire(std::size_t size) {
    return Wrap(AcquireVec(size, /*resize=*/true));
  }

  // Raw vector with capacity >= `capacity_hint` for incremental encoders
  // (BinaryWriter); pair with Wrap() so the storage comes back on release.
  std::vector<std::uint8_t> AcquireVec(std::size_t capacity_hint) {
    return AcquireVec(capacity_hint, /*resize=*/false);
  }

  // Wraps `vec` into a Buffer whose storage is returned to this pool's
  // freelist once the last handle (including slices) drops it.
  Buffer Wrap(std::vector<std::uint8_t> vec) {
    auto state = state_;
    auto* holder = new std::vector<std::uint8_t>(std::move(vec));
    Buffer::Storage storage(holder,
                            [state](std::vector<std::uint8_t>* v) {
                              state->Release(std::move(*v));
                              delete v;
                            });
    return Buffer::Adopt(std::move(storage));
  }

  std::size_t CachedBytes() const {
    std::scoped_lock lock(state_->mu);
    return state_->cached_bytes;
  }

 private:
  // Consecutive freelist misses before one kPoolExhausted event is
  // journaled (per episode: the streak must break before another fires).
  // At steady state the pool serves nearly every acquire; a run this long
  // means the working set outgrew the cache budget.
  static constexpr std::uint64_t kExhaustionStreak = 256;

  struct State {
    mutable std::mutex mu;
    std::size_t max_cached_bytes = 0;
    std::size_t max_entries = 0;
    std::size_t cached_bytes = 0;
    std::vector<std::vector<std::uint8_t>> free;
    std::atomic<std::uint64_t> miss_streak{0};

    void Release(std::vector<std::uint8_t> vec) {
      const std::size_t cap = vec.capacity();
      if (cap == 0) return;
      std::scoped_lock lock(mu);
      if (free.size() >= max_entries || cached_bytes + cap > max_cached_bytes) {
        return;  // over budget: let it free normally
      }
      vec.clear();
      cached_bytes += cap;
      free.push_back(std::move(vec));
    }
  };

  std::vector<std::uint8_t> AcquireVec(std::size_t size, bool resize) {
    {
      std::scoped_lock lock(state_->mu);
      // Small list: first fit from the hot end is fine.
      auto& free = state_->free;
      for (std::size_t i = free.size(); i-- > 0;) {
        if (free[i].capacity() >= size) {
          std::vector<std::uint8_t> vec = std::move(free[i]);
          if (i + 1 != free.size()) free[i] = std::move(free.back());
          free.pop_back();
          state_->cached_bytes -= vec.capacity();
          data_plane::RecordPoolHit();
          state_->miss_streak.store(0, std::memory_order_relaxed);
          if (resize) vec.resize(size);
          return vec;
        }
      }
    }
    data_plane::RecordPoolMiss();
    data_plane::RecordAlloc(size);
    // Exactly one event as the streak crosses the threshold; recording is
    // off the lock and costs one relaxed RMW per miss.
    if (state_->miss_streak.fetch_add(1, std::memory_order_relaxed) + 1 ==
        kExhaustionStreak) {
      obs::JournalEvent(obs::EventType::kPoolExhausted, "buffer_pool",
                        "freelist missed " +
                            std::to_string(kExhaustionStreak) +
                            " consecutive acquires",
                        static_cast<std::int64_t>(kExhaustionStreak));
    }
    std::vector<std::uint8_t> vec;
    if (resize) {
      vec.resize(size);
    } else {
      vec.reserve(size);
    }
    return vec;
  }

  std::shared_ptr<State> state_;
};

}  // namespace glider
