#include "common/trace_assemble.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <utility>

namespace glider::obs {

// ---- clock alignment --------------------------------------------------------

void ClockOffsetEstimator::AddSample(const ClockSample& sample) {
  const std::uint64_t rtt =
      sample.recv_us > sample.send_us ? sample.recv_us - sample.send_us : 0;
  if (samples_ > 0 && rtt >= min_rtt_us_) {
    ++samples_;
    return;
  }
  // Midpoint estimate: the reply was stamped (assumed) halfway through the
  // round trip. Smallest RTT wins: it has the tightest error bound.
  const std::int64_t midpoint =
      static_cast<std::int64_t>(sample.send_us) +
      static_cast<std::int64_t>(rtt) / 2;
  offset_us_ = static_cast<std::int64_t>(sample.remote_us) - midpoint;
  min_rtt_us_ = rtt;
  ++samples_;
}

// ---- Chrome trace-event JSON parsing ----------------------------------------
//
// A minimal recursive-descent parser for the exact dialect
// TraceRecorder::ToChromeJson() emits (plus the metadata rows ToPerfettoJson
// adds). Unknown keys are skipped structurally, so args can grow.

namespace {

const char* InternCategory(const std::string& category) {
  static std::mutex mu;
  static std::set<std::string>* pool = new std::set<std::string>();
  std::scoped_lock lock(mu);
  return pool->insert(category).first->c_str();
}

struct Cursor {
  const char* p;
  const char* end;

  bool AtEnd() const { return p >= end; }
  void SkipWs() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  char Peek() {
    SkipWs();
    return p < end ? *p : '\0';
  }
};

Status ParseError(const char* what) {
  return Status::InvalidArgument(std::string("trace json: ") + what);
}

Status ParseString(Cursor& c, std::string& out) {
  if (!c.Consume('"')) return ParseError("expected string");
  out.clear();
  while (!c.AtEnd() && *c.p != '"') {
    char ch = *c.p++;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.AtEnd()) return ParseError("dangling escape");
    char esc = *c.p++;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c.end - c.p < 4) return ParseError("truncated \\u escape");
        char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], 0};
        c.p += 4;
        const unsigned cp =
            static_cast<unsigned>(std::strtoul(hex, nullptr, 16));
        // BMP-only UTF-8 encode (the recorder never emits \u itself).
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default:
        return ParseError("unknown escape");
    }
  }
  if (!c.Consume('"')) return ParseError("unterminated string");
  return Status::Ok();
}

Status ParseNumber(Cursor& c, double& out) {
  c.SkipWs();
  char* end = nullptr;
  out = std::strtod(c.p, &end);
  if (end == c.p) return ParseError("expected number");
  c.p = end;
  return Status::Ok();
}

Status SkipValue(Cursor& c);

Status SkipObjectOrArray(Cursor& c, char open, char close) {
  if (!c.Consume(open)) return ParseError("expected { or [");
  if (c.Consume(close)) return Status::Ok();
  while (true) {
    if (open == '{') {
      std::string key;
      GLIDER_RETURN_IF_ERROR(ParseString(c, key));
      if (!c.Consume(':')) return ParseError("expected ':'");
    }
    GLIDER_RETURN_IF_ERROR(SkipValue(c));
    if (c.Consume(',')) continue;
    if (c.Consume(close)) return Status::Ok();
    return ParseError("expected ',' or closer");
  }
}

Status SkipValue(Cursor& c) {
  switch (c.Peek()) {
    case '"': {
      std::string s;
      return ParseString(c, s);
    }
    case '{':
      return SkipObjectOrArray(c, '{', '}');
    case '[':
      return SkipObjectOrArray(c, '[', ']');
    case 't':
    case 'f':
    case 'n': {
      while (!c.AtEnd() && (std::isalpha(static_cast<unsigned char>(*c.p)))) {
        ++c.p;
      }
      return Status::Ok();
    }
    default: {
      double d;
      return ParseNumber(c, d);
    }
  }
}

std::uint64_t HexId(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

// One element of "traceEvents". Returns an empty optional for events that
// are not complete ("X") spans — metadata rows in merged files.
Status ParseEvent(Cursor& c, std::optional<SpanRecord>& out) {
  out.reset();
  if (!c.Consume('{')) return ParseError("expected event object");
  SpanRecord span;
  std::string ph = "X";
  bool have_args = false;
  if (!c.Consume('}')) {
    while (true) {
      std::string key;
      GLIDER_RETURN_IF_ERROR(ParseString(c, key));
      if (!c.Consume(':')) return ParseError("expected ':'");
      if (key == "name") {
        GLIDER_RETURN_IF_ERROR(ParseString(c, span.name));
      } else if (key == "cat") {
        std::string cat;
        GLIDER_RETURN_IF_ERROR(ParseString(c, cat));
        span.category = InternCategory(cat);
      } else if (key == "ph") {
        GLIDER_RETURN_IF_ERROR(ParseString(c, ph));
      } else if (key == "ts" || key == "dur" || key == "tid") {
        double v;
        GLIDER_RETURN_IF_ERROR(ParseNumber(c, v));
        if (v < 0) v = 0;
        if (key == "ts") span.start_us = static_cast<std::uint64_t>(v);
        if (key == "dur") span.dur_us = static_cast<std::uint64_t>(v);
        if (key == "tid") span.tid = static_cast<std::uint32_t>(v);
      } else if (key == "args") {
        have_args = true;
        if (!c.Consume('{')) return ParseError("expected args object");
        if (!c.Consume('}')) {
          while (true) {
            std::string akey;
            GLIDER_RETURN_IF_ERROR(ParseString(c, akey));
            if (!c.Consume(':')) return ParseError("expected ':'");
            if (akey == "trace_id" || akey == "span_id" ||
                akey == "parent_span_id") {
              std::string hex;
              GLIDER_RETURN_IF_ERROR(ParseString(c, hex));
              const std::uint64_t id = HexId(hex);
              if (akey == "trace_id") span.trace_id = id;
              if (akey == "span_id") span.span_id = id;
              if (akey == "parent_span_id") span.parent_span_id = id;
            } else {
              GLIDER_RETURN_IF_ERROR(SkipValue(c));
            }
            if (c.Consume(',')) continue;
            if (c.Consume('}')) break;
            return ParseError("expected ',' or '}' in args");
          }
        }
      } else {
        GLIDER_RETURN_IF_ERROR(SkipValue(c));
      }
      if (c.Consume(',')) continue;
      if (c.Consume('}')) break;
      return ParseError("expected ',' or '}' in event");
    }
  }
  if (ph == "X" && have_args && span.trace_id != 0) out = std::move(span);
  return Status::Ok();
}

}  // namespace

Result<std::vector<SpanRecord>> ParseChromeTraceJson(std::string_view json) {
  Cursor c{json.data(), json.data() + json.size()};
  std::vector<SpanRecord> spans;
  if (!c.Consume('{')) return ParseError("expected top-level object");
  if (c.Consume('}')) return spans;
  while (true) {
    std::string key;
    GLIDER_RETURN_IF_ERROR(ParseString(c, key));
    if (!c.Consume(':')) return ParseError("expected ':'");
    if (key == "traceEvents") {
      if (!c.Consume('[')) return ParseError("expected traceEvents array");
      if (!c.Consume(']')) {
        while (true) {
          std::optional<SpanRecord> span;
          GLIDER_RETURN_IF_ERROR(ParseEvent(c, span));
          if (span) spans.push_back(std::move(*span));
          if (c.Consume(',')) continue;
          if (c.Consume(']')) break;
          return ParseError("expected ',' or ']' in traceEvents");
        }
      }
    } else {
      GLIDER_RETURN_IF_ERROR(SkipValue(c));
    }
    if (c.Consume(',')) continue;
    if (c.Consume('}')) break;
    return ParseError("expected ',' or '}' at top level");
  }
  return spans;
}

// ---- assembly ---------------------------------------------------------------

void TraceAssembler::AddSpans(const std::string& node,
                              std::vector<SpanRecord> spans,
                              std::optional<std::int64_t> offset_us) {
  NodeDump dump;
  dump.node = node;
  dump.spans = std::move(spans);
  dump.offset_us = offset_us;
  dumps_.push_back(std::move(dump));
}

const char* TraceAssembler::BucketFor(std::string_view name) {
  const auto starts = [&](std::string_view prefix) {
    return name.size() >= prefix.size() &&
           name.substr(0, prefix.size()) == prefix;
  };
  const auto ends = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  if (starts("rpc.")) return "net";
  if (starts("handle.") || starts("meta.") || starts("storage.")) {
    return "server";
  }
  if (starts("action.")) {
    if (ends(".queue")) return "queue";
    return "run";
  }
  if (starts("channel.")) return "channel";
  // Roots (load.* / cli.* / faas.*), synthetic roots, and anything
  // unrecognized: time on the requester's side of the boundary.
  return "client";
}

namespace {

// A span mid-flight through assembly: raw record + aligned interval on the
// reference timebase (signed: a node that booted later than the reference
// can own spans that align to negative instants before normalization).
struct AlignedSpan {
  const SpanRecord* raw = nullptr;
  std::size_t dump = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
};

std::int64_t Midpoint(const SpanRecord& s) {
  return static_cast<std::int64_t>(s.start_us) +
         static_cast<std::int64_t>(s.dur_us) / 2;
}

// Builds one AssembledTrace from this trace's aligned spans (already
// deduped), `base` being the global normalization shift.
AssembledTrace BuildTrace(std::uint64_t trace_id,
                          std::vector<AlignedSpan> spans,
                          const std::vector<std::string>& dump_names,
                          std::int64_t base) {
  AssembledTrace trace;
  trace.trace_id = trace_id;

  trace.spans.reserve(spans.size() + 1);
  std::map<std::uint64_t, std::size_t> by_id;
  std::int64_t min_start = 0, max_end = 0;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const AlignedSpan& a = spans[i];
    AssembledSpan out;
    out.span = *a.raw;
    out.span.start_us = static_cast<std::uint64_t>(a.start - base);
    out.span.dur_us = static_cast<std::uint64_t>(
        a.end > a.start ? a.end - a.start : 0);
    out.node = dump_names[a.dump];
    trace.spans.push_back(std::move(out));
    by_id[a.raw->span_id] = i;
    if (i == 0 || a.start < min_start) min_start = a.start;
    if (i == 0 || a.end > max_end) max_end = a.end;
  }

  // Parent links; tops = spans with no resolvable parent in this trace.
  std::vector<std::size_t> tops;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    AssembledSpan& s = trace.spans[i];
    if (s.span.parent_span_id != 0) {
      auto it = by_id.find(s.span.parent_span_id);
      if (it != by_id.end() && it->second != i) {
        s.parent = it->second;
        continue;
      }
      ++trace.orphans;  // parent lived in a process we never dumped
    }
    tops.push_back(i);
  }

  if (tops.size() == 1) {
    trace.root = tops[0];
  } else {
    // Orphan forest (the client process was never dumped): graft every top
    // under a synthetic root spanning the forest, so the critical path and
    // bucket sums stay well-defined. The uncovered gaps become "client"
    // time — the trace's time outside any recorded server span.
    AssembledSpan root;
    root.span.name = "(assembled)";
    root.span.category = "assembled";
    root.span.trace_id = trace_id;
    root.span.span_id = 0;
    root.span.start_us = static_cast<std::uint64_t>(min_start - base);
    root.span.dur_us =
        static_cast<std::uint64_t>(max_end > min_start ? max_end - min_start
                                                       : 0);
    root.synthetic = true;
    trace.root = trace.spans.size();
    trace.spans.push_back(std::move(root));
  }
  for (const std::size_t top : tops) {
    if (top != trace.root) trace.spans[top].parent = trace.root;
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    if (i != trace.root) {
      trace.spans[trace.spans[i].parent].children.push_back(i);
    }
  }
  for (AssembledSpan& s : trace.spans) {
    std::sort(s.children.begin(), s.children.end(),
              [&](std::size_t a, std::size_t b) {
                return trace.spans[a].span.start_us <
                       trace.spans[b].span.start_us;
              });
  }

  // Depth + clamping, breadth-first from the root: children are confined to
  // their parent's window, so residual clock error cannot make the critical
  // path run backwards.
  {
    AssembledSpan& root = trace.spans[trace.root];
    root.clamp_start_us = root.span.start_us;
    root.clamp_end_us = root.span.start_us + root.span.dur_us;
  }
  std::vector<std::size_t> order{trace.root};
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const std::size_t idx = order[qi];
    // Copy the bounds: push_back below may not reallocate trace.spans, but
    // the child loop writes sibling entries of the same vector.
    const std::uint64_t plo = trace.spans[idx].clamp_start_us;
    const std::uint64_t phi = trace.spans[idx].clamp_end_us;
    const std::size_t pdepth = trace.spans[idx].depth;
    for (const std::size_t child : trace.spans[idx].children) {
      AssembledSpan& c = trace.spans[child];
      c.depth = pdepth + 1;
      const std::uint64_t s = c.span.start_us;
      const std::uint64_t e = c.span.start_us + c.span.dur_us;
      c.clamp_start_us = std::clamp(s, plo, phi);
      c.clamp_end_us = std::clamp(e, c.clamp_start_us, phi);
      order.push_back(child);
    }
  }

  // Blocking critical path: sweep the root window; each elementary interval
  // is charged to the deepest covering span (ties: the most recently
  // started, then the later-added). The segments partition the window, so
  // bucket sums equal the end-to-end duration exactly.
  const std::uint64_t rlo = trace.spans[trace.root].clamp_start_us;
  const std::uint64_t rhi = trace.spans[trace.root].clamp_end_us;
  trace.start_us = rlo;
  trace.total_us = rhi - rlo;
  std::vector<std::uint64_t> bounds;
  bounds.reserve(trace.spans.size() * 2);
  for (const AssembledSpan& s : trace.spans) {
    if (s.clamp_end_us > s.clamp_start_us) {
      bounds.push_back(s.clamp_start_us);
      bounds.push_back(s.clamp_end_us);
    }
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    const std::uint64_t lo = bounds[b], hi = bounds[b + 1];
    if (lo < rlo || hi > rhi || hi <= lo) continue;
    std::size_t best = trace.root;
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      const AssembledSpan& s = trace.spans[i];
      if (s.clamp_start_us > lo || s.clamp_end_us < hi ||
          s.clamp_end_us <= s.clamp_start_us) {
        continue;
      }
      const AssembledSpan& cur = trace.spans[best];
      if (s.depth > cur.depth ||
          (s.depth == cur.depth &&
           (s.clamp_start_us > cur.clamp_start_us ||
            (s.clamp_start_us == cur.clamp_start_us && i > best)))) {
        best = i;
      }
    }
    const char* bucket = trace.spans[best].synthetic
                             ? "client"
                             : TraceAssembler::BucketFor(
                                   trace.spans[best].span.name);
    if (!trace.critical_path.empty() &&
        trace.critical_path.back().span == best &&
        trace.critical_path.back().end_us == lo) {
      trace.critical_path.back().end_us = hi;
    } else {
      trace.critical_path.push_back(CriticalSegment{best, lo, hi, bucket});
    }
    trace.bucket_us[bucket] += hi - lo;
  }

  std::set<std::string> nodes;
  for (const AssembledSpan& s : trace.spans) {
    if (!s.node.empty()) nodes.insert(s.node);
  }
  trace.nodes = nodes.size();
  return trace;
}

}  // namespace

std::vector<AssembledTrace> TraceAssembler::Assemble() {
  node_offsets_.clear();
  unaligned_nodes_.clear();

  // 1. Resolve per-dump offsets. Explicit offsets (RTT-midpoint sampled)
  // win; dumps without one are aligned causally: a cross-dump parent-child
  // span pair must overlap in real time, so the median midpoint delta over
  // all such pairs estimates (this dump's clock - reference clock). When
  // nothing has an explicit offset, the first dump anchors the reference.
  std::vector<std::optional<std::int64_t>> offsets(dumps_.size());
  bool any_explicit = false;
  for (std::size_t d = 0; d < dumps_.size(); ++d) {
    if (dumps_[d].offset_us) {
      offsets[d] = *dumps_[d].offset_us;
      any_explicit = true;
    }
  }
  if (!any_explicit && !dumps_.empty()) offsets[0] = 0;

  // Span index across dumps: (trace_id, span_id) -> (dump, record).
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::pair<std::size_t, const SpanRecord*>>
      by_id;
  for (std::size_t d = 0; d < dumps_.size(); ++d) {
    for (const SpanRecord& s : dumps_[d].spans) {
      by_id.try_emplace({s.trace_id, s.span_id}, d, &s);
    }
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t d = 0; d < dumps_.size(); ++d) {
      if (offsets[d]) continue;
      std::vector<std::int64_t> deltas;
      for (const SpanRecord& s : dumps_[d].spans) {
        // This span's parent on an aligned dump...
        if (s.parent_span_id != 0) {
          auto it = by_id.find({s.trace_id, s.parent_span_id});
          if (it != by_id.end() && it->second.first != d &&
              offsets[it->second.first]) {
            const std::int64_t parent_mid = Midpoint(*it->second.second) -
                                            *offsets[it->second.first];
            deltas.push_back(Midpoint(s) - parent_mid);
          }
        }
      }
      for (std::size_t od = 0; od < dumps_.size(); ++od) {
        // ...or children of this span on an aligned dump.
        if (od == d || !offsets[od]) continue;
        for (const SpanRecord& child : dumps_[od].spans) {
          if (child.parent_span_id == 0) continue;
          auto it = by_id.find({child.trace_id, child.parent_span_id});
          if (it != by_id.end() && it->second.first == d) {
            const std::int64_t child_mid = Midpoint(child) - *offsets[od];
            deltas.push_back(Midpoint(*it->second.second) - child_mid);
          }
        }
      }
      if (deltas.empty()) continue;
      std::nth_element(deltas.begin(), deltas.begin() + deltas.size() / 2,
                       deltas.end());
      offsets[d] = deltas[deltas.size() / 2];
      progressed = true;
    }
  }
  for (std::size_t d = 0; d < dumps_.size(); ++d) {
    if (!offsets[d]) {
      offsets[d] = 0;
      unaligned_nodes_.push_back(dumps_[d].node);
    }
    node_offsets_[dumps_[d].node] = *offsets[d];
  }

  // 2. Rebase + group by trace, deduping span ids (MiniCluster-style
  // deployments can serve one recorder behind several addresses).
  std::map<std::uint64_t, std::vector<AlignedSpan>> by_trace;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::int64_t base = 0;
  bool have_base = false;
  for (std::size_t d = 0; d < dumps_.size(); ++d) {
    for (const SpanRecord& s : dumps_[d].spans) {
      if (s.trace_id == 0) continue;
      if (!seen.insert({s.trace_id, s.span_id}).second) continue;
      AlignedSpan a;
      a.raw = &s;
      a.dump = d;
      a.start = static_cast<std::int64_t>(s.start_us) - *offsets[d];
      a.end = a.start + static_cast<std::int64_t>(s.dur_us);
      if (!have_base || a.start < base) {
        base = a.start;
        have_base = true;
      }
      by_trace[s.trace_id].push_back(a);
    }
  }

  std::vector<std::string> dump_names;
  dump_names.reserve(dumps_.size());
  for (const NodeDump& dump : dumps_) dump_names.push_back(dump.node);

  std::vector<AssembledTrace> traces;
  traces.reserve(by_trace.size());
  for (auto& [trace_id, spans] : by_trace) {
    traces.push_back(BuildTrace(trace_id, std::move(spans), dump_names, base));
  }
  std::sort(traces.begin(), traces.end(),
            [](const AssembledTrace& a, const AssembledTrace& b) {
              return a.start_us < b.start_us;
            });
  return traces;
}

// ---- export -----------------------------------------------------------------

namespace {

void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string ToPerfettoJson(const std::vector<AssembledTrace>& traces) {
  // One pid per source node: Perfetto renders each pid as its own
  // process-named track group, so the merged view reads node-by-node.
  std::map<std::string, int> pids;
  for (const AssembledTrace& trace : traces) {
    for (const AssembledSpan& s : trace.spans) {
      const std::string& node = s.synthetic ? "(assembled)" : s.node;
      pids.try_emplace(node.empty() ? "(unknown)" : node,
                       static_cast<int>(pids.size() + 1));
    }
  }

  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const auto& [node, pid] : pids) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"",
                  pid);
    out += buf;
    AppendEscaped(out, node);
    out += "\"}}";
  }
  for (const AssembledTrace& trace : traces) {
    for (const AssembledSpan& s : trace.spans) {
      const std::string& node = s.synthetic ? "(assembled)" : s.node;
      const int pid = pids.at(node.empty() ? "(unknown)" : node);
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":\"";
      AppendEscaped(out, s.span.name);
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
                    ",\"dur\":%" PRIu64 ",\"pid\":%d,\"tid\":%u,"
                    "\"args\":{\"trace_id\":\"%" PRIx64
                    "\",\"span_id\":\"%" PRIx64
                    "\",\"parent_span_id\":\"%" PRIx64 "\",\"node\":\"",
                    s.span.category, s.span.start_us, s.span.dur_us, pid,
                    s.span.tid, s.span.trace_id, s.span.span_id,
                    s.span.parent_span_id);
      out += buf;
      AppendEscaped(out, node);
      out += "\",\"bucket\":\"";
      out += s.synthetic ? "client" : TraceAssembler::BucketFor(s.span.name);
      out += "\"}}";
    }
  }
  out += "]}";
  return out;
}

double PercentileUs(std::vector<std::uint64_t> values, double pct) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= values.size()) idx = values.size() - 1;
  return static_cast<double>(values[idx]);
}

}  // namespace glider::obs
