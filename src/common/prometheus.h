// Prometheus text exposition for the MetricsRegistry, so any glider
// process can be scraped by off-the-shelf tooling. Two formats:
//
//   * kClassic04 — the classic text format (version 0.0.4). No exemplars:
//     the 0.0.4 parser rejects the ` # {...}` suffix, so classic output
//     must stay exemplar-free or the whole scrape fails.
//   * kOpenMetrics — OpenMetrics 1.0. Histogram bucket lines carry
//     exemplars (` # {trace_id="..."} value`), counter families drop the
//     `_total` suffix from HELP/TYPE (samples keep it), and the body ends
//     with `# EOF`. Served when the scraper's Accept header asks for
//     `application/openmetrics-text` (see net/http_metrics.cc).
//
// Mapping (both formats):
//   Counter            -> glider_<name>_total        (TYPE counter)
//   Gauge              -> glider_<name>              (TYPE gauge)
//   LatencyHistogram   -> glider_<name>_bucket{le="..."} cumulative series
//                         over the log2 bucket upper bounds, plus an
//                         {le="+Inf"} series, glider_<name>_sum and
//                         glider_<name>_count        (TYPE histogram)
//
// Registry names use dots ("rpc.latency.Get"); Prometheus metric names
// allow only [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid character becomes
// '_' and a leading digit gets a '_' prefix. Empty log2 buckets are elided
// (they add no information to a cumulative series) except the final +Inf.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"

namespace glider::obs {

// "rpc.latency.Get" -> "rpc_latency_Get"; never empty (falls back to "_").
std::string PrometheusSanitize(const std::string& name);

// Escapes a label VALUE per the 0.0.4 text format: backslash, double quote
// and newline become \\, \" and \n (everything else passes through).
std::string PrometheusEscapeLabelValue(const std::string& value);

// Labels attached to every exported series ({role="active",...}); values
// are escaped, names sanitized.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

enum class PrometheusFormat {
  kClassic04,    // text/plain; version=0.0.4 — never emits exemplars
  kOpenMetrics,  // application/openmetrics-text — exemplars + "# EOF"
};

// The Content-Type header value for `format`.
const char* PrometheusContentType(PrometheusFormat format);

// Renders one snapshot. Ends with a trailing newline as the format
// requires (OpenMetrics output ends with "# EOF\n").
//
// Histogram consistency: the cumulative le series, the +Inf bucket and
// _count all derive from the same total — max(count, sum of bucket counts)
// — so a snapshot torn across relaxed per-bucket loads still satisfies
// "+Inf == _count >= every finite le bucket".
std::string PrometheusText(const MetricsSnapshot& snapshot,
                           const PrometheusLabels& labels = {},
                           PrometheusFormat format =
                               PrometheusFormat::kClassic04);

// Convenience: snapshot + render.
std::string PrometheusText(const MetricsRegistry& registry,
                           const PrometheusLabels& labels = {},
                           PrometheusFormat format =
                               PrometheusFormat::kClassic04);

}  // namespace glider::obs
