// Reservation-based rate limiter used to shape link bandwidth.
//
// The evaluation's link model (FaaS-grade vs storage-internal "RDMA-grade"
// links) is built on this: Acquire(bytes) blocks the caller for the time
// the modelled link would need to carry those bytes.
//
// Reservation semantics (rather than a classic token bucket) keep the
// aggregate rate correct under concurrency: each acquisition reserves the
// next slice of link time under a lock and sleeps until its slice starts,
// so N concurrent streams share one link instead of each enjoying the full
// rate. A small burst window lets short transfers through unthrottled.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

namespace glider {

class RateLimiter {
 public:
  // bytes_per_second == 0 means unlimited.
  explicit RateLimiter(std::uint64_t bytes_per_second,
                       std::uint64_t burst_bytes = 256 * 1024)
      : rate_(bytes_per_second),
        burst_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                rate_ == 0 ? 0.0
                           : static_cast<double>(std::max<std::uint64_t>(
                                 burst_bytes, 1)) /
                                 static_cast<double>(bytes_per_second)))),
        reserved_until_(Clock::now() - burst_) {}

  // Blocks until the link has carried `bytes` at the configured rate.
  void Acquire(std::uint64_t bytes) {
    if (rate_ == 0 || bytes == 0) return;
    const auto cost = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(static_cast<double>(bytes) /
                                      static_cast<double>(rate_)));
    Clock::time_point wait_until;
    {
      std::scoped_lock lock(mu_);
      const auto now = Clock::now();
      // An idle link accumulates at most `burst_` of credit.
      reserved_until_ = std::max(reserved_until_, now - burst_);
      reserved_until_ += cost;
      wait_until = reserved_until_;
    }
    std::this_thread::sleep_until(wait_until);
  }

  std::uint64_t bytes_per_second() const { return rate_; }

 private:
  using Clock = std::chrono::steady_clock;

  const std::uint64_t rate_;
  const Clock::duration burst_;
  std::mutex mu_;
  Clock::time_point reserved_until_;
};

}  // namespace glider
