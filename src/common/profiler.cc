#include "common/profiler.h"

#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"

#if defined(__linux__)
#include <ucontext.h>
#endif

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

// Sanitizer runtimes intercept signal delivery and keep interceptor frames
// on the stack that defeat the frame-pointer walk; SIGPROF sampling is
// compiled out under them (SignalSamplingSupported() == false).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GLIDER_PROFILER_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GLIDER_PROFILER_SANITIZED 1
#endif
#endif

#if !defined(GLIDER_PROFILER_SANITIZED) && defined(__linux__) && \
    (defined(__x86_64__) || defined(__aarch64__))
#define GLIDER_PROFILER_CAN_SAMPLE 1
#endif

namespace glider::obs {

namespace {

// One thread's sample buffer: single producer (the thread's own signal
// handler), single consumer (CollectFolded, serialized by the profiler
// mutex). Entry memory is synchronized by the release on `head` (producer)
// and the release on `tail` (consumer); the capacity check keeps producer
// and consumer out of the same entry.
struct ThreadRing {
  std::unique_ptr<ProfileSample[]> entries;
  std::size_t capacity = 0;
  std::atomic<std::uint64_t> head{0};  // next write index (monotonic)
  std::atomic<std::uint64_t> tail{0};  // next read index (monotonic)
  // The owning thread's stack bounds: every frame-pointer dereference in
  // the handler is checked against them, so a bogus fp can never fault.
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
};

// Rings live until process exit (leaky registry: threads may still receive
// a late signal while static destructors run). Exited threads park their
// ring on a free list; the next new thread reuses it, so memory is bounded
// by the peak number of concurrent threads, not thread churn — essential
// with the active server spawning one thread per method execution.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> all;
  std::vector<ThreadRing*> free_list;
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();  // leaked on purpose
  return *registry;
}

// State the signal handler reads. Both thread-locals are trivially
// constructible/destructible so a handler access never triggers TLS guard
// or destructor-registration machinery (which may allocate).
thread_local ThreadRing* tls_ring = nullptr;
struct TagBuf {
  std::uint32_t len;
  char chars[ProfileSample::kMaxTag];
};
thread_local TagBuf tls_tag = {0, {0}};

std::atomic<bool> g_signal_armed{false};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_unregistered{0};
std::atomic<std::size_t> g_ring_capacity{2048};

// Returns the ring to the free list at thread exit. tls_ring is cleared
// first: a signal landing between the clear and the push is counted as
// unregistered instead of touching a ring being handed over.
struct RingReleaser {
  ThreadRing* ring = nullptr;
  ~RingReleaser() {
    ThreadRing* r = ring;
    if (r == nullptr) return;
    tls_ring = nullptr;
    std::atomic_signal_fence(std::memory_order_seq_cst);
    std::scoped_lock lock(Registry().mu);
    Registry().free_list.push_back(r);
  }
};
thread_local RingReleaser tls_releaser;

ThreadRing* EnsureRing() {
  ThreadRing* ring = tls_ring;
  if (ring != nullptr) return ring;
  {
    RingRegistry& registry = Registry();
    std::scoped_lock lock(registry.mu);
    if (!registry.free_list.empty()) {
      ring = registry.free_list.back();
      registry.free_list.pop_back();
    } else {
      auto owned = std::make_unique<ThreadRing>();
      owned->capacity = g_ring_capacity.load(std::memory_order_relaxed);
      owned->entries = std::make_unique<ProfileSample[]>(owned->capacity);
      ring = owned.get();
      registry.all.push_back(std::move(owned));
    }
  }
  // Stack bounds for the unwinder's pointer checks. Written before the
  // handler can see the ring (tls_ring is still null on this thread).
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* base = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &base, &size) == 0) {
      ring->stack_lo = reinterpret_cast<std::uintptr_t>(base);
      ring->stack_hi = ring->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  std::atomic_signal_fence(std::memory_order_seq_cst);
  tls_ring = ring;
  tls_releaser.ring = ring;
  return ring;
}

#if defined(GLIDER_PROFILER_CAN_SAMPLE)

// Async-signal-safe: no locks, no allocation, bounds-checked dereferences
// only. Runs on the interrupted thread, so the thread-locals it reads are
// ordered with that thread's normal-context writes by the signal fences.
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  if (!g_signal_armed.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  ThreadRing* ring = tls_ring;
  if (ring == nullptr || ring->capacity == 0) {
    g_unregistered.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= ring->capacity) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  ProfileSample& sample = ring->entries[head % ring->capacity];

  const auto* uc = static_cast<const ucontext_t*>(ucontext);
#if defined(__x86_64__)
  std::uintptr_t pc =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  std::uintptr_t fp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  std::uintptr_t sp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  std::uintptr_t pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  std::uintptr_t fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  std::uintptr_t sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#endif

  sample.pcs[0] = reinterpret_cast<void*>(pc);
  std::uint32_t depth = 1;
  // Frame-pointer walk: each frame is {caller fp, return address}. Caller
  // frames live at strictly higher addresses; every dereference must stay
  // inside this thread's stack or the walk stops.
  const std::uintptr_t lo = std::max(sp, ring->stack_lo);
  const std::uintptr_t hi = ring->stack_hi;
  while (depth < ProfileSample::kMaxDepth) {
    if (fp < lo || fp + 2 * sizeof(void*) > hi ||
        (fp & (sizeof(void*) - 1)) != 0) {
      break;
    }
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 4096) break;  // null page: not a code address
    sample.pcs[depth++] = reinterpret_cast<void*>(ret);
    if (next_fp <= fp) break;  // frames must move up the stack
    fp = next_fp;
  }
  sample.depth = depth;

  // Tag snapshot. A ProfileTagScope mid-update published len = 0 first, so
  // a torn string is never observed — worst case the sample is untagged.
  std::uint32_t tag_len = tls_tag.len;
  if (tag_len >= ProfileSample::kMaxTag) tag_len = ProfileSample::kMaxTag - 1;
  for (std::uint32_t i = 0; i < tag_len; ++i) sample.tag[i] = tls_tag.chars[i];
  sample.tag[tag_len] = '\0';

  ring->head.store(head + 1, std::memory_order_release);
  g_samples.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
}

void InstallHandlerOnce() {
  // Installed once and left in place: restoring SIG_DFL with one last
  // timer tick in flight would terminate the process (SIGPROF's default
  // action). Disarm is the g_signal_armed gate + a zeroed timer instead.
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &SigprofHandler;
    sa.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

void ArmTimer(int hz) {
  itimerval tv{};
  const long usec = 1000000L / hz;
  tv.it_interval.tv_sec = usec / 1000000;
  tv.it_interval.tv_usec = usec % 1000000;
  tv.it_value = tv.it_interval;
  ::setitimer(ITIMER_PROF, &tv, nullptr);
}

void DisarmTimer() {
  itimerval tv{};
  ::setitimer(ITIMER_PROF, &tv, nullptr);
}

#endif  // GLIDER_PROFILER_CAN_SAMPLE

// --- symbolization (dump time, normal context) -------------------------------

// Demangles and trims one symbol to a flamegraph-friendly frame name:
// collapsed-stack syntax reserves ';' (frame separator) and ' ' (weight
// separator), so both become '_', and parameter lists are cut at '('.
std::string CleanSymbol(const char* mangled) {
  std::string name;
#if defined(__GNUG__)
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    name.assign(demangled);
  } else {
    name.assign(mangled);
  }
  std::free(demangled);
#else
  name.assign(mangled);
#endif
  const std::size_t paren = name.find('(');
  if (paren != std::string::npos) name.resize(paren);
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  if (name.empty()) name = "??";
  return name;
}

// dladdr resolves through the dynamic symbol table (executables need
// -rdynamic, which the build adds); anything it cannot name falls back to
// the raw address so the sample is never lost.
std::string SymbolizePc(void* pc, bool return_address) {
  // Return addresses point one past the call; step back one byte so calls
  // at the end of a function do not attribute to the next symbol.
  void* lookup = return_address
                     ? reinterpret_cast<void*>(
                           reinterpret_cast<std::uintptr_t>(pc) - 1)
                     : pc;
  Dl_info info;
  if (::dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    return CleanSymbol(info.dli_sname);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR,
                reinterpret_cast<std::uintptr_t>(pc));
  return buf;
}

}  // namespace

std::atomic<bool> SamplingProfiler::active_flag_{false};

const char* CurrentProfileTag() { return tls_tag.chars; }

ProfileTagScope::ProfileTagScope(const char* tag) {
  if (!SamplingProfiler::ActiveFast() || tag == nullptr) return;
  active_ = true;
  prev_len_ = tls_tag.len;
  std::memcpy(prev_, tls_tag.chars, sizeof(prev_));
  std::size_t len = std::strlen(tag);
  if (len >= ProfileSample::kMaxTag) len = ProfileSample::kMaxTag - 1;
  // Publish protocol: len -> 0, write chars, len -> new. A signal between
  // the fences sees either the old tag, no tag, or the new tag — never a
  // mix (the handler runs on this same thread, so program order holds).
  tls_tag.len = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  std::memcpy(tls_tag.chars, tag, len);
  tls_tag.chars[len] = '\0';
  std::atomic_signal_fence(std::memory_order_seq_cst);
  tls_tag.len = static_cast<std::uint32_t>(len);
  EnsureRing();
}

ProfileTagScope::~ProfileTagScope() {
  if (!active_) return;
  tls_tag.len = 0;
  std::atomic_signal_fence(std::memory_order_seq_cst);
  std::memcpy(tls_tag.chars, prev_, sizeof(prev_));
  std::atomic_signal_fence(std::memory_order_seq_cst);
  tls_tag.len = prev_len_;
}

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

bool SamplingProfiler::SignalSamplingSupported() {
#if defined(GLIDER_PROFILER_CAN_SAMPLE)
  return true;
#else
  return false;
#endif
}

Status SamplingProfiler::Start(Options options) {
  if (options.hz <= 0 || options.hz > 10000) {
    return Status::InvalidArgument("profiler hz out of range");
  }
  if (options.ring_capacity == 0) {
    return Status::InvalidArgument("profiler ring capacity must be > 0");
  }
  std::scoped_lock lock(mu_);
  if (running_.load(std::memory_order_relaxed)) {
    return Status::AlreadyExists("profiler already running");
  }
  options_ = options;
  g_ring_capacity.store(options.ring_capacity, std::memory_order_relaxed);
  accumulated_.clear();
  waits_.clear();
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_unregistered.store(0, std::memory_order_relaxed);
  {
    // Fresh window: skip whatever older samples are still parked in rings.
    RingRegistry& registry = Registry();
    std::scoped_lock reg_lock(registry.mu);
    for (auto& ring : registry.all) {
      ring->tail.store(ring->head.load(std::memory_order_acquire),
                       std::memory_order_release);
    }
  }
  EnsureRing();
  active_flag_.store(true, std::memory_order_relaxed);
#if defined(GLIDER_PROFILER_CAN_SAMPLE)
  InstallHandlerOnce();
  g_signal_armed.store(true, std::memory_order_relaxed);
  ArmTimer(options_.hz);
#else
  if (!warned_sanitizer_) {
    warned_sanitizer_ = true;
    GLIDER_LOG(kWarn, "profiler")
        << "SIGPROF sampling unavailable in this build "
        << "(sanitizer or unsupported platform); collecting wait samples only";
  }
#endif
  running_.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void SamplingProfiler::Stop() {
  std::scoped_lock lock(mu_);
  if (!running_.load(std::memory_order_relaxed)) return;
#if defined(GLIDER_PROFILER_CAN_SAMPLE)
  DisarmTimer();
  g_signal_armed.store(false, std::memory_order_relaxed);
#endif
  active_flag_.store(false, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
}

int SamplingProfiler::hz() const {
  std::scoped_lock lock(mu_);
  return options_.hz;
}

void SamplingProfiler::AddWaitSample(const char* kind, std::uint64_t wait_us) {
  if (!ActiveFast() || wait_us == 0 || kind == nullptr) return;
  const char* tag = tls_tag.len != 0 ? tls_tag.chars : "untagged";
  std::string key = std::string(tag) + ";[wait];" + kind;
  std::scoped_lock lock(mu_);
  waits_[std::move(key)] += wait_us;
}

std::string SamplingProfiler::CollectFolded(bool clear) {
  std::scoped_lock lock(mu_);
  // Drain every ring into the accumulated folded map. Symbol lookups are
  // cached per collect: hot stacks repeat the same handful of pcs.
  std::vector<ThreadRing*> rings;
  {
    RingRegistry& registry = Registry();
    std::scoped_lock reg_lock(registry.mu);
    rings.reserve(registry.all.size());
    for (auto& ring : registry.all) rings.push_back(ring.get());
  }
  std::map<void*, std::string> leaf_cache;
  std::map<void*, std::string> ret_cache;
  std::string key;
  for (ThreadRing* ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const ProfileSample& sample = ring->entries[tail % ring->capacity];
      key.assign(sample.tag[0] != '\0' ? sample.tag : "untagged");
      // Collapsed stacks run root -> leaf; the sample stores leaf first.
      for (std::uint32_t i = sample.depth; i-- > 0;) {
        auto& cache = i == 0 ? leaf_cache : ret_cache;
        auto it = cache.find(sample.pcs[i]);
        if (it == cache.end()) {
          it = cache
                   .emplace(sample.pcs[i],
                            SymbolizePc(sample.pcs[i], /*return_address=*/i != 0))
                   .first;
        }
        key.push_back(';');
        key.append(it->second);
      }
      ++accumulated_[key];
    }
    ring->tail.store(tail, std::memory_order_release);
  }

  // Fold the wait accumulators in as synthetic samples at the sampling
  // rate, so their weights are comparable with on-CPU sample counts.
  std::map<std::string, std::uint64_t> lines = accumulated_;
  const std::uint64_t hz = static_cast<std::uint64_t>(
      options_.hz > 0 ? options_.hz : 99);
  for (const auto& [wait_key, us] : waits_) {
    const std::uint64_t weight = (us * hz + 500000) / 1000000;
    if (weight != 0) lines[wait_key] += weight;
  }

  std::vector<std::pair<std::string, std::uint64_t>> sorted(lines.begin(),
                                                            lines.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::string out;
  for (const auto& [stack, count] : sorted) {
    out += stack;
    out.push_back(' ');
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
    out += buf;
    out.push_back('\n');
  }
  if (clear) {
    accumulated_.clear();
    waits_.clear();
  }
  return out;
}

std::uint64_t SamplingProfiler::SampleCount() const {
  return g_samples.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::DroppedSamples() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::UnregisteredSamples() const {
  return g_unregistered.load(std::memory_order_relaxed);
}

}  // namespace glider::obs
