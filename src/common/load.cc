#include "common/load.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/event_journal.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace glider::obs {

namespace {

// Parses "active.slot<i>.cpu_us" -> slot index; -1 for everything else.
int SlotCpuIndex(const std::string& name) {
  constexpr const char* kPrefix = "active.slot";
  constexpr const char* kSuffix = ".cpu_us";
  if (name.rfind(kPrefix, 0) != 0) return -1;
  const std::size_t prefix_len = std::char_traits<char>::length(kPrefix);
  const std::size_t suffix_len = std::char_traits<char>::length(kSuffix);
  if (name.size() <= prefix_len + suffix_len) return -1;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return -1;
  }
  int idx = 0;
  for (std::size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    idx = idx * 10 + (c - '0');
  }
  return idx;
}

}  // namespace

LoadTracker& LoadTracker::Global() {
  static LoadTracker* tracker = new LoadTracker();
  return *tracker;
}

void LoadTracker::SetOptions(Options options) {
  std::scoped_lock lock(mu_);
  options_ = options;
}

LoadTracker::LoadSnapshot LoadTracker::Current() const {
  std::scoped_lock lock(mu_);
  return current_;
}

LoadTracker::LoadSnapshot LoadTracker::Update() {
  const std::uint64_t now = TraceNowMicros();
  std::scoped_lock lock(mu_);
  if (has_prev_ && now - prev_t_us_ < options_.min_window_us) {
    return current_;
  }
  current_ = ComputeLocked(now);
  return current_;
}

LoadTracker::LoadSnapshot LoadTracker::ComputeLocked(std::uint64_t now_us) {
  auto& registry = MetricsRegistry::Global();
  MetricsSnapshot snap = registry.Snapshot();

  LoadSnapshot out;
  // Instantaneous inputs need no window.
  out.queue_depth = static_cast<double>(ThreadPool::TotalPending());
  if (const std::int64_t* qd = snap.FindGauge("active.queue_depth")) {
    out.queue_depth += static_cast<double>(std::max<std::int64_t>(*qd, 0));
  }

  // A reset between snapshots voids the baseline; re-arm and report the
  // instantaneous components only.
  const bool window_valid =
      has_prev_ && snap.generation == prev_.generation && now_us > prev_t_us_;
  if (window_valid) {
    out.window_us = now_us - prev_t_us_;

    // Busy cores: summed slot cpu_us deltas over the window. Track the
    // per-slot deltas too for the hotspot shares.
    std::vector<std::pair<std::uint32_t, double>> slot_cpu;
    double total_cpu = 0.0;
    for (const auto& [name, value] : snap.counters) {
      const int slot = SlotCpuIndex(name);
      if (slot < 0) continue;
      const std::uint64_t* prev = prev_.FindCounter(name);
      const std::uint64_t before = prev != nullptr ? *prev : 0;
      const double delta =
          value > before ? static_cast<double>(value - before) : 0.0;
      slot_cpu.emplace_back(static_cast<std::uint32_t>(slot), delta);
      total_cpu += delta;
    }
    out.cpu_utilization = total_cpu / static_cast<double>(out.window_us);

    // Merged windowed p99 across every server-side RPC histogram.
    HistogramSnapshot rpc;
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("rpc.server.", 0) != 0) continue;
      const HistogramSnapshot* prev = prev_.FindHistogram(name);
      rpc.Merge(prev != nullptr ? hist.DeltaSince(*prev) : hist);
    }
    if (rpc.count > 0) {
      out.p99_ms = static_cast<double>(rpc.Percentile(99.0)) / 1000.0;
    }

    // Buffer-pool pressure: miss fraction among window acquires.
    const std::uint64_t hits = data_plane::PoolHits();
    const std::uint64_t misses = data_plane::PoolMisses();
    const std::uint64_t dh = hits > prev_pool_hits_ ? hits - prev_pool_hits_ : 0;
    const std::uint64_t dm =
        misses > prev_pool_misses_ ? misses - prev_pool_misses_ : 0;
    if (dh + dm > 0) {
      out.pool_miss_fraction =
          static_cast<double>(dm) / static_cast<double>(dh + dm);
    }
    prev_pool_hits_ = hits;
    prev_pool_misses_ = misses;

    // Hotspots: slot share of the windowed CPU vs the fair share.
    if (!slot_cpu.empty() && total_cpu > 0.0 &&
        out.cpu_utilization >= options_.hotspot_min_utilization) {
      const double fair = 1.0 / static_cast<double>(slot_cpu.size());
      const double threshold = options_.hotspot_multiple * fair;
      for (const auto& [slot, cpu] : slot_cpu) {
        const double share = cpu / total_cpu;
        if (share > threshold && share > fair) {
          out.hotspots.push_back(slot);
        }
      }
      std::sort(out.hotspots.begin(), out.hotspots.end());
    }
  } else {
    prev_pool_hits_ = data_plane::PoolHits();
    prev_pool_misses_ = data_plane::PoolMisses();
  }

  out.load_index = options_.w_queue * out.queue_depth +
                   options_.w_cpu * out.cpu_utilization +
                   options_.w_p99_ms * out.p99_ms +
                   options_.w_pool_miss * out.pool_miss_fraction;

  // Journal newly-hot slots (and forget cooled ones) before republishing.
  if (options_.journal_hotspots && out.window_us != 0) {
    std::set<std::uint32_t> now_hot(out.hotspots.begin(), out.hotspots.end());
    for (const std::uint32_t slot : now_hot) {
      if (hot_.insert(slot).second) {
        JournalEvent(EventType::kHotspot, "slot" + std::to_string(slot),
                     "cpu share over " +
                         std::to_string(options_.hotspot_multiple) + "x mean",
                     static_cast<std::int64_t>(out.load_index * 1000.0));
      }
    }
    for (auto it = hot_.begin(); it != hot_.end();) {
      if (now_hot.count(*it) == 0) {
        registry.GetGauge("active.slot" + std::to_string(*it) + ".hot").Set(0);
        it = hot_.erase(it);
      } else {
        ++it;
      }
    }
  }

  registry.GetGauge("load_index")
      .Set(static_cast<std::int64_t>(out.load_index * 1000.0));
  registry.GetGauge("hotspot_slots")
      .Set(static_cast<std::int64_t>(out.hotspots.size()));
  for (const std::uint32_t slot : out.hotspots) {
    registry.GetGauge("active.slot" + std::to_string(slot) + ".hot").Set(1);
  }

  prev_ = std::move(snap);
  has_prev_ = true;
  prev_t_us_ = now_us;
  return out;
}

}  // namespace glider::obs
