// Adaptive spin-then-park policy shared by the blocking primitives
// (ThreadPool workers, BlockingQueue, StreamChannel action-side waits).
//
// Parking on a condition variable costs a futex round trip plus two context
// switches (~5-10us on the bench machines); most waits under load resolve
// in well under that. Spinning briefly before parking converts those short
// waits into sub-microsecond handoffs. The budget is adaptive so idle
// threads do not burn CPU: every spin that observes the condition grows the
// budget, every spin that exhausts it and falls through to a park shrinks
// it, so a consumer that keeps missing quickly stops spinning at all.
//
// The spin loop interleaves CPU relax hints with sched_yield: on
// oversubscribed machines (more runnable threads than cores) a pure pause
// loop would spin against a producer that cannot run; yielding hands the
// core over so the condition can actually become true.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace glider {

namespace detail {
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace detail

class AdaptiveSpin {
 public:
  // `max_spins` bounds the budget; 0 disables spinning entirely (every
  // wait parks immediately — used by tests to force the park path).
  //
  // On a single-core machine spinning is structurally useless: the awaited
  // condition can only become true once the producer gets the CPU, which is
  // exactly what parking yields faster than a spin loop. The budget is
  // therefore forced to 0 there regardless of `max_spins`.
  explicit AdaptiveSpin(std::uint32_t max_spins = kDefaultMaxSpins)
      : max_spins_(MultiCore() ? max_spins : 0), budget_(max_spins_ / 4) {}

  // Spins until `ready()` returns true or the adaptive budget runs out.
  // Returns true when the condition was observed (caller proceeds without
  // parking), false when the caller should fall back to a real park.
  // `ready` must be safe to call without locks (typically an atomic read);
  // the caller re-checks the real predicate under its lock either way.
  template <typename Pred>
  bool SpinUntil(Pred&& ready) {
    if (max_spins_ == 0) return false;
    const std::uint32_t budget = budget_.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (ready()) {
        Grow();
        return true;
      }
      // Yield every 16th iteration so a producer that lost the core can
      // run; relax otherwise.
      if ((i & 15u) == 15u) {
        std::this_thread::yield();
      } else {
        detail::CpuRelax();
      }
    }
    Shrink();
    return false;
  }

  std::uint32_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  static constexpr std::uint32_t kDefaultMaxSpins = 256;

 private:
  void Grow() {
    std::uint32_t b = budget_.load(std::memory_order_relaxed);
    if (b < max_spins_) {
      budget_.store(b + (b / 2) + 1 > max_spins_ ? max_spins_ : b + (b / 2) + 1,
                    std::memory_order_relaxed);
    }
  }
  void Shrink() {
    // Floor above zero (unless spinning is disabled outright) so a thread
    // that went fully idle can still notice a new burst and regrow.
    const std::uint32_t floor = max_spins_ == 0 ? 0 : kMinSpins;
    const std::uint32_t b = budget_.load(std::memory_order_relaxed);
    budget_.store(b / 2 > floor ? b / 2 : floor, std::memory_order_relaxed);
  }

  static bool MultiCore() {
    static const bool multi = std::thread::hardware_concurrency() > 1;
    return multi;
  }

  static constexpr std::uint32_t kMinSpins = 4;

  const std::uint32_t max_spins_;
  // Atomic so concurrent waiters sharing one policy object stay race-free;
  // the adaptation itself is intentionally approximate.
  std::atomic<std::uint32_t> budget_;
};

}  // namespace glider
