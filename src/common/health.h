// Phi-accrual failure detection (DESIGN.md "Cluster health plane").
//
// The detector keeps, per peer, a sliding window of heartbeat inter-arrival
// times and models them as a normal distribution. The suspicion level for a
// peer that last reported `elapsed` microseconds ago is
//
//   phi(elapsed) = -log10( P(interval > elapsed) )
//
// i.e. phi = 1 means "if the peer were healthy there would be a 10% chance
// of a gap this long", phi = 8 means one in 10^8. Unlike a fixed timeout,
// the threshold adapts to the observed heartbeat cadence and its jitter:
// a peer polled every 100ms is suspected after a few hundred milliseconds,
// one polled every 5s after tens of seconds, with no retuning.
//
// The standard deviation is floored (relative and absolute) so a perfectly
// regular heartbeat stream doesn't collapse the model into suspecting a
// peer over scheduler noise. With the default sigma floor of mean/3 and
// phi_dead = 8 (z ~ 5.6), a dead peer is declared at roughly
// mean + 5.6*(mean/3) ~ 2.9 heartbeat intervals — inside the "detect within
// 3 windows" budget while tolerating ~5 sigma of jitter before a false
// positive.
//
// State machine per peer: unknown -> alive on the first heartbeat;
// alive -> suspect at phi_suspect; suspect -> dead at phi_dead; any state
// heals back to alive on the next heartbeat. Transitions are recorded in
// the EventJournal (kPeerAlive/kPeerSuspect/kPeerDead).
//
// Heartbeats come from two sources: the ClusterMonitor/HealthMonitor poll
// loops call Heartbeat() on every successful kSeriesDump/kHeartbeat reply,
// and the dedicated kHeartbeat opcode keeps otherwise idle links observed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace glider::obs {

enum class PeerState : std::uint8_t {
  kUnknown = 0,  // never heard from
  kAlive = 1,
  kSuspect = 2,  // phi >= phi_suspect
  kDead = 3,     // phi >= phi_dead
};

const char* PeerStateName(PeerState state);

class HealthDetector {
 public:
  struct Options {
    double phi_suspect = 3.0;  // ~1 in 10^3 chance of a healthy gap
    double phi_dead = 8.0;     // ~1 in 10^8
    // Inter-arrival samples kept per peer (sliding window).
    std::size_t window = 64;
    // Sigma floors: sigma = max(observed, min_std_fraction * mean,
    // min_std_us). The relative floor dominates for fast heartbeats, the
    // absolute one guards sub-millisecond cadences in tests.
    double min_std_fraction = 1.0 / 3.0;
    std::uint64_t min_std_us = 1000;
    // Interval assumed until two heartbeats have arrived (the first
    // heartbeat carries no interval).
    std::uint64_t initial_interval_us = 500 * 1000;
    // Record kPeerAlive/kPeerSuspect/kPeerDead transitions in the global
    // EventJournal.
    bool journal_transitions = true;
  };

  struct PeerSnapshot {
    std::string address;
    PeerState state = PeerState::kUnknown;
    double phi = 0.0;
    std::uint64_t heartbeats = 0;
    std::uint64_t last_heartbeat_us = 0;  // TraceNowMicros timebase
    std::uint64_t mean_interval_us = 0;
    // Piggybacked load report from the peer's last kHeartbeat reply (0 /
    // -1 slots when the peer never reported).
    double load_index = 0.0;
    std::int64_t hotspot_slots = -1;
  };

  HealthDetector() = default;
  explicit HealthDetector(Options options) : options_(options) {}

  // A sign of life from `address`. `now_us` defaults to TraceNowMicros();
  // tests pass synthetic clocks. Re-evaluates state (dead peers heal).
  void Heartbeat(const std::string& address, std::uint64_t now_us = 0);

  // Attaches the peer's self-reported load (from a kHeartbeat reply) to
  // its snapshot row. No-op for unknown peers.
  void ReportLoad(const std::string& address, double load_index,
                  std::int64_t hotspot_slots);

  // Current suspicion level; 0 for unknown peers.
  double Phi(const std::string& address, std::uint64_t now_us = 0) const;

  // Evaluates (and journals) the state transition implied by the current
  // phi, then returns the state.
  PeerState State(const std::string& address, std::uint64_t now_us = 0);

  // Evaluates every peer and returns the board, sorted by address.
  std::vector<PeerSnapshot> Snapshot(std::uint64_t now_us = 0);

  // Drops a peer (deregistered servers stop being reported dead forever).
  void Forget(const std::string& address);

  const Options& options() const { return options_; }

 private:
  struct Peer {
    std::vector<std::uint64_t> intervals;  // ring, <= options_.window
    std::size_t next = 0;
    std::uint64_t last_us = 0;
    std::uint64_t heartbeats = 0;
    PeerState state = PeerState::kUnknown;
    double load_index = 0.0;
    std::int64_t hotspot_slots = -1;
  };

  double PhiLocked(const Peer& peer, std::uint64_t now_us) const;
  PeerState EvaluateLocked(const std::string& address, Peer& peer,
                           std::uint64_t now_us);

  mutable std::mutex mu_;
  Options options_;
  std::map<std::string, Peer> peers_;
};

// Latest health board of this process, published by whichever monitor loop
// runs here (glider_daemon's HealthMonitor) and served by kHealthDump so
// any node can answer `glider_cli health`. Decoupled from the detector:
// the board is a plain snapshot store, so dump handlers never touch
// detector locks.
class HealthBoard {
 public:
  static HealthBoard& Global();

  // Replaces the board (marks it running).
  void Publish(std::vector<HealthDetector::PeerSnapshot> peers);
  void SetRunning(bool running);
  bool running() const;

  std::vector<HealthDetector::PeerSnapshot> Snapshot() const;

  // {"running":true,"peers":[{"address":...,"state":"alive","phi":...,
  //   "heartbeats":...,"age_us":...,"load_index":...,"hotspot_slots":...}]}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  bool running_ = false;
  std::vector<HealthDetector::PeerSnapshot> peers_;
};

}  // namespace glider::obs
