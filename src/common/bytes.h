// Byte buffer vocabulary types.
//
// Buffer owns a contiguous byte payload; it is cheap to move and is the unit
// that travels through RPC messages and stream task queues. Views into
// buffers use std::span (no ownership).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace glider {

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size) : data_(size) {}
  explicit Buffer(std::vector<std::uint8_t> data) : data_(std::move(data)) {}
  explicit Buffer(std::string_view text)
      : data_(text.begin(), text.end()) {}
  Buffer(const std::uint8_t* data, std::size_t size)
      : data_(data, data + size) {}

  static Buffer FromString(std::string_view s) { return Buffer(s); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }

  ByteSpan span() const { return {data_.data(), data_.size()}; }
  MutableByteSpan mutable_span() { return {data_.data(), data_.size()}; }

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }
  std::string ToString() const { return std::string(AsStringView()); }

  void Append(ByteSpan bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void Append(std::string_view text) {
    data_.insert(data_.end(), text.begin(), text.end());
  }

  void Resize(std::size_t size) { data_.resize(size); }
  void Reserve(std::size_t size) { data_.reserve(size); }
  void Clear() { data_.clear(); }

  std::vector<std::uint8_t>& vec() { return data_; }
  const std::vector<std::uint8_t>& vec() const { return data_; }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<std::uint8_t> data_;
};

inline ByteSpan AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string_view AsText(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace glider
