// Byte buffer vocabulary types.
//
// Buffer owns a contiguous byte payload through a ref-counted storage block
// and views an (offset, length) window of it. Copying a Buffer is O(1) and
// shares the bytes; Slice() carves O(1) sub-views that keep the storage
// alive independently of the parent handle. Mutating operations preserve
// value semantics by detaching (copying the viewed window into fresh
// storage) whenever the storage is shared with another handle, so no write
// is ever visible through a previously-taken slice. Views without ownership
// use std::span.
//
// The data_plane counters record every fresh storage allocation and every
// payload memcpy performed by this vocabulary (including serde bulk copies
// and pool misses); benches report them so copy regressions are visible.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace glider {

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// Process-wide hot-path accounting: fresh buffer storage allocations and
// bytes memcpy'd between buffers. Cheap relaxed atomics; reported by
// bench/micro_components as data_plane.allocs / data_plane.copied_bytes.
namespace data_plane {

struct Counters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> copied_bytes{0};
  std::atomic<std::uint64_t> pool_hits{0};
  std::atomic<std::uint64_t> pool_misses{0};
};

inline Counters& counters() {
  static Counters c;
  return c;
}

inline void RecordAlloc(std::uint64_t bytes) {
  counters().allocs.fetch_add(1, std::memory_order_relaxed);
  counters().alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
inline void RecordCopy(std::uint64_t bytes) {
  counters().copied_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
inline void RecordPoolHit() {
  counters().pool_hits.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordPoolMiss() {
  counters().pool_misses.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t Allocs() {
  return counters().allocs.load(std::memory_order_relaxed);
}
inline std::uint64_t CopiedBytes() {
  return counters().copied_bytes.load(std::memory_order_relaxed);
}
inline std::uint64_t PoolHits() {
  return counters().pool_hits.load(std::memory_order_relaxed);
}
inline std::uint64_t PoolMisses() {
  return counters().pool_misses.load(std::memory_order_relaxed);
}

}  // namespace data_plane

class Buffer {
 public:
  using Storage = std::shared_ptr<std::vector<std::uint8_t>>;

  Buffer() = default;
  explicit Buffer(std::size_t size)
      : storage_(std::make_shared<std::vector<std::uint8_t>>(size)),
        size_(size) {
    data_plane::RecordAlloc(size);
  }
  explicit Buffer(std::vector<std::uint8_t> data)
      : storage_(std::make_shared<std::vector<std::uint8_t>>(std::move(data))) {
    size_ = storage_->size();
    data_plane::RecordAlloc(size_);
  }
  explicit Buffer(std::string_view text) : Buffer(AsUnsigned(text), text.size()) {}
  Buffer(const std::uint8_t* data, std::size_t size)
      : storage_(std::make_shared<std::vector<std::uint8_t>>(data, data + size)),
        size_(size) {
    data_plane::RecordAlloc(size);
    data_plane::RecordCopy(size);
  }

  static Buffer FromString(std::string_view s) { return Buffer(s); }

  // Wraps shared storage into a Buffer viewing all of it, without copying.
  // The storage may carry a custom deleter (BufferPool recycling).
  static Buffer Adopt(Storage storage) {
    Buffer b;
    b.size_ = storage ? storage->size() : 0;
    b.storage_ = std::move(storage);
    return b;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::uint8_t* data() const {
    return storage_ ? storage_->data() + offset_ : nullptr;
  }
  // Mutable access detaches when the storage is shared so writes never leak
  // into slices or copies taken earlier (value semantics).
  std::uint8_t* data() {
    EnsureUnique();
    return storage_ ? storage_->data() + offset_ : nullptr;
  }

  ByteSpan span() const { return {data(), size_}; }
  MutableByteSpan mutable_span() {
    EnsureUnique();
    return {data(), size_};
  }

  // O(1) zero-copy sub-view sharing this buffer's storage. The slice keeps
  // the storage alive even after this handle is destroyed. Out-of-range
  // requests clamp to the view.
  Buffer Slice(std::size_t off, std::size_t len) const {
    Buffer b;
    off = std::min(off, size_);
    b.storage_ = storage_;
    b.offset_ = offset_ + off;
    b.size_ = std::min(len, size_ - off);
    return b;
  }
  Buffer Slice(std::size_t off) const {
    return Slice(off, size_ - std::min(off, size_));
  }

  // True when no other Buffer shares this storage (slices included).
  bool unique() const { return !storage_ || storage_.use_count() == 1; }

  std::string_view AsStringView() const {
    return {reinterpret_cast<const char*>(data()), size_};
  }
  std::string ToString() const { return std::string(AsStringView()); }

  void Append(ByteSpan bytes) {
    EnsureAppendable(bytes.size());
    storage_->insert(storage_->end(), bytes.begin(), bytes.end());
    size_ += bytes.size();
    data_plane::RecordCopy(bytes.size());
  }
  void Append(std::string_view text) { Append(AsUnsignedSpan(text)); }

  void Resize(std::size_t size) {
    EnsureAppendable(size > size_ ? size - size_ : 0);
    storage_->resize(size);
    size_ = size;
  }
  void Reserve(std::size_t size) {
    EnsureAppendable(size > size_ ? size - size_ : 0);
    storage_->reserve(size);
  }
  void Clear() {
    storage_.reset();
    offset_ = 0;
    size_ = 0;
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data(), b.data(), a.size_) == 0);
  }

 private:
  static const std::uint8_t* AsUnsigned(std::string_view s) {
    return reinterpret_cast<const std::uint8_t*>(s.data());
  }
  static ByteSpan AsUnsignedSpan(std::string_view s) {
    return {AsUnsigned(s), s.size()};
  }

  // Sole ownership of the storage; the view window may still be a proper
  // sub-range (mutating bytes in place is then safe — nobody else sees
  // them). Copies the view into fresh storage when shared.
  void EnsureUnique() {
    if (!storage_ || storage_.use_count() == 1) return;
    Detach(/*extra_capacity=*/0);
  }

  // Appending additionally requires the view to end at the storage's end
  // and start at its beginning (vector append semantics).
  void EnsureAppendable(std::size_t extra) {
    if (storage_ && storage_.use_count() == 1 && offset_ == 0 &&
        size_ == storage_->size()) {
      return;
    }
    Detach(extra);
  }

  void Detach(std::size_t extra_capacity) {
    auto fresh = std::make_shared<std::vector<std::uint8_t>>();
    fresh->reserve(size_ + extra_capacity);
    if (storage_ && size_ > 0) {
      const std::uint8_t* src = storage_->data() + offset_;
      fresh->assign(src, src + size_);
      data_plane::RecordCopy(size_);
    } else {
      fresh->resize(size_);
    }
    data_plane::RecordAlloc(size_ + extra_capacity);
    storage_ = std::move(fresh);
    offset_ = 0;
  }

  Storage storage_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

inline ByteSpan AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::string_view AsText(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace glider
