// Resource attribution plane (DESIGN.md §12): who is spending the cluster.
//
// Three pieces:
//
//   * A `principal` tag — a tenant/workload id carried in the RPC frame
//     header alongside the trace context and propagated across thread hops
//     (network worker -> action thread, stream-channel producer ->
//     consumer) exactly like TraceContextScope. The id is the name itself:
//     up to 8 ASCII bytes packed little-endian into a u64, so ids are
//     deterministic across processes and decode back to a readable name
//     without any registry or agreement protocol. Longer names truncate;
//     id 0 means unattributed ("-").
//
//   * ResourceLedger — sharded per-thread accumulators keyed by
//     (principal, op) recording cpu_us / queue_us / bytes_in / bytes_out /
//     invocations. Charged at the existing dispatch sites (RPC dispatch,
//     action run/queue accounting, storage block ops, stream-channel
//     push/pop); snapshots merge the shards exactly, and kLedgerDump
//     merges exactly across nodes (sums are associative).
//
//   * SpaceSavingTopK — bounded-memory heavy-hitter sketches (Metwally et
//     al.'s space-saving algorithm) over object keys, action methods and
//     principals. Any key whose true count exceeds N/capacity is
//     guaranteed present; each entry carries an `error` bound (its count
//     overstates the truth by at most `error`). Sketches merge across
//     nodes: counts/errors sum for shared keys; unseen keys enter through
//     the same replacement rule as a live stream (inheriting the evicted
//     minimum's count into their error bound), so merged sketches keep
//     the single-node presence guarantee instead of silently discarding
//     evicted mass.
//
// Everything is charged only when obs::Enabled() is true (callers gate),
// matching the rest of the observability plane: the disabled-mode hot path
// costs nothing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace glider::obs {

// --- Principal tag ----------------------------------------------------------

using PrincipalId = std::uint64_t;  // 0 = unattributed

// Packs up to 8 bytes of `name` little-endian (first char in the low
// byte). Names longer than 8 bytes truncate — ids stay deterministic, so
// every node derives the same id from the same spec string.
PrincipalId PrincipalFromName(std::string_view name);

// Inverse of PrincipalFromName: "-" for 0, the packed characters when all
// printable, else "p<hex>" so a corrupt id still renders safely.
std::string PrincipalName(PrincipalId id);

// The calling thread's current principal (0 when none installed).
PrincipalId CurrentPrincipal();

// Installs `id` as the thread's current principal; restores the previous
// one on destruction. Used at the same boundaries as TraceContextScope:
// the RPC server side (id decoded from the frame header), the action
// thread (id captured at submit time), and load generators.
class PrincipalScope {
 public:
  explicit PrincipalScope(PrincipalId id);
  ~PrincipalScope();
  PrincipalScope(const PrincipalScope&) = delete;
  PrincipalScope& operator=(const PrincipalScope&) = delete;

 private:
  PrincipalId prev_;
};

// --- Resource ledger --------------------------------------------------------

// One accumulator cell; a Charge() delta uses the same shape.
struct LedgerCell {
  std::uint64_t cpu_us = 0;
  std::uint64_t queue_us = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t invocations = 0;

  void Merge(const LedgerCell& other) {
    cpu_us += other.cpu_us;
    queue_us += other.queue_us;
    bytes_in += other.bytes_in;
    bytes_out += other.bytes_out;
    invocations += other.invocations;
  }
};

struct LedgerEntry {
  PrincipalId principal = 0;
  std::string op;  // "action.onWrite", "stream.channel", "storage.read_block"
  LedgerCell cell;
};

// Sharded per-thread (principal, op) accumulators. A charge takes the
// owning thread's shard mutex — uncontended except against a snapshotter —
// so charging never serializes across threads. Shards are owned by a
// leaked registry (the TraceRecorder idiom): a snapshot can walk buffers
// of threads that have already exited.
class ResourceLedger {
 public:
  static ResourceLedger& Global();

  ResourceLedger() = default;
  ResourceLedger(const ResourceLedger&) = delete;
  ResourceLedger& operator=(const ResourceLedger&) = delete;

  void Charge(PrincipalId principal, const std::string& op,
              const LedgerCell& delta);

  // Exact merge across shards, sorted by (principal, op).
  std::vector<LedgerEntry> Snapshot() const;
  void Clear();

  struct Shard;  // public so the shard registry can hold them

 private:
  Shard& LocalShard();
};

// Exact merge of two ledger snapshots (cells sum per (principal, op)):
// the cluster-wide kLedgerDump merge.
std::vector<LedgerEntry> MergeLedgerEntries(
    const std::vector<LedgerEntry>& a, const std::vector<LedgerEntry>& b);

// Republishes per-principal rollups of the global ledger as gauges
// ("ledger.<principal>.{cpu_us,queue_us,bytes_in,bytes_out,invocations}")
// so kSeriesDump / Prometheus / glider_top see attribution without the
// dedicated ledger opcode.
void PublishLedgerRollups();

// --- Heavy-hitter sketch ----------------------------------------------------

// Space-saving top-k: at most `capacity` tracked keys. When a new key
// arrives at capacity, it replaces the current minimum and inherits its
// count (the classic over-estimate); `error` records how much of the
// count may belong to evicted keys. Guarantees: every key with true count
// > total/capacity is present, and true_count <= count <= true_count +
// error. Thread-safe.
class SpaceSavingTopK {
 public:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  // count overstates truth by at most this
  };

  explicit SpaceSavingTopK(std::size_t capacity);

  void Offer(std::string_view key, std::uint64_t weight = 1);

  // Entries sorted by count descending (key ascending on ties, so merges
  // are deterministic).
  std::vector<Entry> Entries() const;
  // The `total` stream weight observed (sum of all offered weights).
  std::uint64_t Total() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  void Clear();

  // Merges another node's entries into this sketch: counts and errors sum
  // for shared keys; at capacity, unseen keys enter via the space-saving
  // replacement rule (the evicted minimum's count folds into the
  // newcomer's count and error bound), never by silently dropping mass —
  // so sum(counts) == Total() and the presence guarantee hold after
  // cross-node merges. Entries are applied heaviest-first, so the result
  // is deterministic but only approximately associative: heavy hitters
  // with clear margins agree across merge orders, churny tail entries may
  // differ within their error bounds.
  void Merge(const std::vector<Entry>& other);

  // Pure merge of two entry lists under a capacity bound: the
  // cluster-side merge for sketch dumps (Merge into an empty sketch).
  static std::vector<Entry> MergeEntries(const std::vector<Entry>& a,
                                         const std::vector<Entry>& b,
                                         std::size_t capacity);

 private:
  std::vector<Entry> EntriesLocked() const;

  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::map<std::string, Entry, std::less<>> entries_;
};

// Process-global sketches fed by the charging sites and served by
// kLedgerDump: object keys (metadata paths), action methods
// ("<type>.<method>"), and principals.
SpaceSavingTopK& KeySketch();
SpaceSavingTopK& MethodSketch();
SpaceSavingTopK& PrincipalSketch();

}  // namespace glider::obs
