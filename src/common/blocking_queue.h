// Bounded MPMC blocking queue with close semantics.
//
// This is the generic task-queue building block (tests, benches, tools);
// the active server's per-stream queues are StreamChannels, which share the
// same wakeup discipline. Close() lets producers signal end-of-stream;
// consumers drain remaining items and then observe kClosed.
//
// Wakeup discipline (the hot-path contract, see DESIGN.md "Hot-path
// batching & wakeup"):
//   * condvars are notified AFTER the mutex is released, so a woken thread
//     never immediately blocks on the lock the notifier still holds;
//   * notifies are gated on a waiter count maintained under the lock, so
//     uncontended pushes/pops skip the notify call entirely;
//   * PushAll/PopAll amortize the lock and the wakeup over a whole batch —
//     one acquisition, one notify, however many items ("doorbell" submit);
//   * blocking calls spin adaptively (common/spin_park.h) on an atomic
//     readiness hint before parking.
#pragma once

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/spin_park.h"
#include "common/status.h"

namespace glider {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Blocks while full. Returns kClosed if the queue was closed.
  Status Push(T item) {
    bool wake = false;
    {
      std::unique_lock lock(mu_);
      WaitNotFull(lock, 1);
      if (closed_) return Status::Closed("queue closed");
      items_.push_back(std::move(item));
      PublishSize();
      wake = pop_waiters_ > 0;
    }
    if (wake) not_empty_.notify_one();
    return Status::Ok();
  }

  // Pushes the whole batch, blocking while the queue lacks space; items are
  // admitted in waves when the batch exceeds free capacity. One lock
  // acquisition and at most one consumer wakeup per wave, not per item.
  // Returns kClosed (remaining items dropped) if the queue was closed.
  Status PushAll(std::vector<T> items) {
    std::size_t at = 0;
    while (at < items.size()) {
      bool wake_one = false;
      bool wake_all = false;
      {
        std::unique_lock lock(mu_);
        WaitNotFull(lock, 1);
        if (closed_) return Status::Closed("queue closed");
        std::size_t room = capacity_ - items_.size();
        while (at < items.size() && room > 0) {
          items_.push_back(std::move(items[at]));
          ++at;
          --room;
        }
        PublishSize();
        wake_all = pop_waiters_ > 1;
        wake_one = pop_waiters_ == 1;
      }
      if (wake_all) {
        not_empty_.notify_all();
      } else if (wake_one) {
        not_empty_.notify_one();
      }
    }
    return Status::Ok();
  }

  // Non-blocking push; kResourceExhausted when full.
  Status TryPush(T item) {
    bool wake = false;
    {
      std::scoped_lock lock(mu_);
      if (closed_) return Status::Closed("queue closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("queue full");
      }
      items_.push_back(std::move(item));
      PublishSize();
      wake = pop_waiters_ > 0;
    }
    if (wake) not_empty_.notify_one();
    return Status::Ok();
  }

  // Blocks while empty. After Close(), drains remaining items, then kClosed.
  Result<T> Pop() {
    SpinForItems();
    T item;
    bool wake = false;
    {
      std::unique_lock lock(mu_);
      WaitNotEmpty(lock);
      if (items_.empty()) return Status::Closed("queue closed");
      item = std::move(items_.front());
      items_.pop_front();
      PublishSize();
      wake = push_waiters_ > 0;
    }
    if (wake) not_full_.notify_one();
    return item;
  }

  // Pops every queued item (at least one; blocks while empty), up to
  // `max_items`. One lock acquisition and at most one producer wakeup for
  // the whole batch. Empty result means closed-and-drained.
  Result<std::vector<T>> PopAll(
      std::size_t max_items = std::numeric_limits<std::size_t>::max()) {
    SpinForItems();
    std::vector<T> batch;
    bool wake_one = false;
    bool wake_all = false;
    {
      std::unique_lock lock(mu_);
      WaitNotEmpty(lock);
      if (items_.empty()) return Status::Closed("queue closed");
      const std::size_t take = items_.size() < max_items
                                   ? items_.size()
                                   : max_items;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      PublishSize();
      // Freeing `take` slots can unblock that many parked producers.
      wake_all = push_waiters_ > 1 && take > 1;
      wake_one = push_waiters_ > 0 && !wake_all;
    }
    if (wake_all) {
      not_full_.notify_all();
    } else if (wake_one) {
      not_full_.notify_one();
    }
    return batch;
  }

  // Non-blocking pop; kUnavailable when currently empty but open.
  Result<T> TryPop() {
    T item;
    bool wake = false;
    {
      std::scoped_lock lock(mu_);
      if (items_.empty()) {
        return closed_ ? Status::Closed("queue closed")
                       : Status::Unavailable("queue empty");
      }
      item = std::move(items_.front());
      items_.pop_front();
      PublishSize();
      wake = push_waiters_ > 0;
    }
    if (wake) not_full_.notify_one();
    return item;
  }

  // After Close, pushes fail; pops drain then report kClosed.
  void Close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
      ready_hint_.store(kClosedHint, std::memory_order_release);
    }
    // Teardown path: wake everyone unconditionally.
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

  // True when a Pop() would block: queue open and empty. Used by the active
  // server to decide whether an interleaved action method should yield.
  bool WouldBlockOnPop() const {
    std::scoped_lock lock(mu_);
    return !closed_ && items_.empty();
  }

 private:
  static constexpr std::size_t kClosedHint =
      std::numeric_limits<std::size_t>::max();

  // Size mirror readable without the lock; kClosedHint once closed. Only a
  // spin hint — every real decision re-checks under mu_.
  void PublishSize() {
    ready_hint_.store(closed_ ? kClosedHint : items_.size(),
                      std::memory_order_release);
  }

  void SpinForItems() {
    spin_.SpinUntil([this] {
      return ready_hint_.load(std::memory_order_acquire) > 0;
    });
  }

  void WaitNotEmpty(std::unique_lock<std::mutex>& lock) {
    if (!closed_ && items_.empty()) {
      ++pop_waiters_;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      --pop_waiters_;
    }
  }

  void WaitNotFull(std::unique_lock<std::mutex>& lock, std::size_t need) {
    if (!closed_ && capacity_ - items_.size() < need) {
      ++push_waiters_;
      not_full_.wait(lock, [&] {
        return closed_ || capacity_ - items_.size() >= need;
      });
      --push_waiters_;
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t pop_waiters_ = 0;
  std::size_t push_waiters_ = 0;
  std::atomic<std::size_t> ready_hint_{0};
  AdaptiveSpin spin_;
  bool closed_ = false;
};

}  // namespace glider
