// Bounded MPMC blocking queue with close semantics.
//
// This is the backbone of the active server: per-stream task queues and the
// read-side output queues are BlockingQueues. Close() lets producers signal
// end-of-stream; consumers drain remaining items and then observe kClosed.
#pragma once

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.h"

namespace glider {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(
      std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Blocks while full. Returns kClosed if the queue was closed.
  Status Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return Status::Closed("queue closed");
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return Status::Ok();
  }

  // Non-blocking push; kResourceExhausted when full.
  Status TryPush(T item) {
    std::scoped_lock lock(mu_);
    if (closed_) return Status::Closed("queue closed");
    if (items_.size() >= capacity_) {
      return Status::ResourceExhausted("queue full");
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return Status::Ok();
  }

  // Blocks while empty. After Close(), drains remaining items, then kClosed.
  Result<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return Status::Closed("queue closed");
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop; kUnavailable when currently empty but open.
  Result<T> TryPop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) {
      return closed_ ? Status::Closed("queue closed")
                     : Status::Unavailable("queue empty");
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close, pushes fail; pops drain then report kClosed.
  void Close() {
    std::scoped_lock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }

  // True when a Pop() would block: queue open and empty. Used by the active
  // server to decide whether an interleaved action method should yield.
  bool WouldBlockOnPop() const {
    std::scoped_lock lock(mu_);
    return !closed_ && items_.empty();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace glider
