#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <utility>

namespace glider::obs {
namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{[] {
    const char* env = std::getenv("GLIDER_TRACE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }()};
  return enabled;
}

thread_local TraceContext t_context;

std::uint64_t ProcessSalt() {
  static const std::uint64_t salt = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  return salt;
}

std::uint32_t LocalThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1);
  return id;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Bound on retained spans per thread; beyond it spans are counted as
// dropped instead of buffered.
constexpr std::size_t kMaxSpansPerThread = 1u << 20;

std::atomic<std::uint64_t> g_dropped{0};

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return t_context; }

// Declared in metrics_registry.h (histogram bucket exemplars); lives here
// because the current-trace thread-local does.
std::uint64_t ExemplarTraceId() { return t_context.trace_id; }

std::uint64_t NewTraceId() {
  static std::atomic<std::uint64_t> next{1};
  return (ProcessSalt() & 0xffffffff00000000ull) | next.fetch_add(1);
}

std::uint64_t NewSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return (ProcessSalt() << 32) ^ next.fetch_add(1);
}

std::uint64_t TraceNowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count());
}

TraceContextScope::TraceContextScope(TraceContext ctx) : prev_(t_context) {
  t_context = ctx;
}

TraceContextScope::~TraceContextScope() { t_context = prev_; }

// ---- recorder ---------------------------------------------------------------

struct TraceRecorder::ThreadBuffer {
  mutable std::mutex mu;
  std::vector<SpanRecord> spans;
};

namespace {

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRecorder::ThreadBuffer>> buffers;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& registry = Registry();
    std::scoped_lock lock(registry.mu);
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceRecorder::Record(SpanRecord record) {
  ThreadBuffer& buffer = LocalBuffer();
  std::scoped_lock lock(buffer.mu);
  if (buffer.spans.size() >= kMaxSpansPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    // Cumulative registry counter (never reset by Clear, unlike g_dropped):
    // surfaces buffer-wrap loss in `glider_cli stats` and /metrics, where a
    // silently truncated dump would otherwise read as a complete trace.
    static Counter& dropped =
        MetricsRegistry::Global().GetCounter("trace.dropped_spans");
    dropped.Increment();
    return;
  }
  buffer.spans.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::vector<SpanRecord> all;
  auto& registry = Registry();
  std::scoped_lock lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::scoped_lock buffer_lock(buffer->mu);
    all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return all;
}

std::uint64_t TraceRecorder::DroppedSpans() const {
  return g_dropped.load(std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  auto& registry = Registry();
  std::scoped_lock lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::scoped_lock buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    for (char c : s.name) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"trace_id\":\"%" PRIx64 "\",\"span_id\":\"%" PRIx64
                  "\",\"parent_span_id\":\"%" PRIx64 "\"}}",
                  s.category, s.start_us, s.dur_us, s.tid, s.trace_id,
                  s.span_id, s.parent_span_id);
    out += buf;
  }
  out += "]}";
  return out;
}

// ---- slow traces ------------------------------------------------------------

namespace {

void AppendSpanJson(std::string& out, const SpanRecord& s) {
  out += "{\"name\":\"";
  for (char c : s.name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
                ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u,"
                "\"args\":{\"trace_id\":\"%" PRIx64 "\",\"span_id\":\"%" PRIx64
                "\",\"parent_span_id\":\"%" PRIx64 "\"}}",
                s.category, s.start_us, s.dur_us, s.tid, s.trace_id, s.span_id,
                s.parent_span_id);
  out += buf;
}

}  // namespace

SlowTraceStore& SlowTraceStore::Global() {
  static SlowTraceStore* store = new SlowTraceStore();
  return *store;
}

void SlowTraceStore::SetOptions(Options options) {
  std::scoped_lock lock(mu_);
  options_ = options;
}

SlowTraceStore::Options SlowTraceStore::options() const {
  std::scoped_lock lock(mu_);
  return options_;
}

void SlowTraceStore::OnRootSpanEnd(SpanRecord root,
                                   const TraceRecorder* recorder) {
  std::scoped_lock lock(mu_);
  auto& slot = by_name_[root.name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  // The threshold uses the p99 of *prior* samples: an op is judged against
  // its history, not against a distribution it is itself part of.
  const std::uint64_t p99 = slot->Count() == 0 ? 0 : slot->Percentile(99);
  slot->Record(root.dur_us);
  std::uint64_t threshold = options_.min_threshold_us;
  if (p99 != 0) {
    const double adaptive = options_.multiplier * static_cast<double>(p99);
    if (adaptive > static_cast<double>(threshold)) {
      threshold = static_cast<std::uint64_t>(adaptive);
    }
  }
  if (root.dur_us <= threshold) return;

  SlowTrace slow;
  slow.threshold_us = threshold;
  if (recorder != nullptr) {
    // Rare path (this root was an outlier): a full recorder snapshot is
    // acceptable here and the recorder's locks never take mu_.
    for (SpanRecord& s : recorder->Snapshot()) {
      if (s.trace_id == root.trace_id && s.span_id != root.span_id) {
        slow.spans.push_back(std::move(s));
      }
    }
  }
  slow.root = std::move(root);
  ring_.push_back(std::move(slow));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

void SlowTraceStore::Flag(SpanRecord root, std::uint64_t threshold_us) {
  std::scoped_lock lock(mu_);
  SlowTrace slow;
  slow.threshold_us = threshold_us;
  slow.root = std::move(root);
  ring_.push_back(std::move(slow));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<SlowTraceStore::SlowTrace> SlowTraceStore::Snapshot() const {
  std::scoped_lock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t SlowTraceStore::size() const {
  std::scoped_lock lock(mu_);
  return ring_.size();
}

void SlowTraceStore::Clear() {
  std::scoped_lock lock(mu_);
  ring_.clear();
  by_name_.clear();
}

std::string SlowTraceStore::ToJson() const {
  const std::vector<SlowTrace> traces = Snapshot();
  std::string out = "{\"slowTraces\":[";
  char buf[128];
  bool first = true;
  for (const SlowTrace& t : traces) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    for (char c : t.root.name) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    std::snprintf(buf, sizeof(buf),
                  "\",\"trace_id\":\"%" PRIx64 "\",\"dur_us\":%" PRIu64
                  ",\"threshold_us\":%" PRIu64 ",\"spans\":[",
                  t.root.trace_id, t.root.dur_us, t.threshold_us);
    out += buf;
    AppendSpanJson(out, t.root);
    for (const SpanRecord& s : t.spans) {
      out.push_back(',');
      AppendSpanJson(out, s);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

// ---- spans ------------------------------------------------------------------

void RecordSpan(const char* category, std::string name, TraceContext parent,
                std::uint64_t span_id, std::uint64_t start_us,
                std::uint64_t end_us) {
  if (!Enabled() || parent.trace_id == 0) return;
  SpanRecord record;
  record.name = std::move(name);
  record.category = category;
  record.trace_id = parent.trace_id;
  record.span_id = span_id;
  record.parent_span_id = parent.span_id;
  record.start_us = start_us;
  record.dur_us = end_us > start_us ? end_us - start_us : 0;
  record.tid = LocalThreadId();
  TraceRecorder::Global().Record(std::move(record));
}

void RecordRootSpan(const char* category, std::string name,
                    std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t start_us, std::uint64_t end_us) {
  if (!Enabled() || trace_id == 0) return;
  SpanRecord record;
  record.name = std::move(name);
  record.category = category;
  record.trace_id = trace_id;
  record.span_id = span_id;
  record.parent_span_id = 0;
  record.start_us = start_us;
  record.dur_us = end_us > start_us ? end_us - start_us : 0;
  record.tid = LocalThreadId();
  // Same order as Span::End for roots: record first so a slow-trace tree
  // copy sees the complete trace, then let the store judge it.
  TraceRecorder::Global().Record(record);
  SlowTraceStore::Global().OnRootSpanEnd(std::move(record));
}

Span::Span(const char* category, std::string name)
    : Span(category, std::move(name), /*root=*/false) {}

Span Span::Root(const char* category, std::string name) {
  return Span(category, std::move(name), /*root=*/true);
}

Span::Span(const char* category, std::string name, bool root) {
  if (!Enabled()) return;
  prev_ = t_context;
  if (root) {
    trace_id_ = NewTraceId();
    parent_span_id_ = 0;
  } else {
    if (prev_.trace_id == 0) return;  // no active trace: stay inert
    trace_id_ = prev_.trace_id;
    parent_span_id_ = prev_.span_id;
  }
  active_ = true;
  category_ = category;
  name_ = std::move(name);
  span_id_ = NewSpanId();
  start_us_ = TraceNowMicros();
  t_context = TraceContext{trace_id_, span_id_};
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  SpanRecord record;
  record.name = std::move(name_);
  record.category = category_;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.start_us = start_us_;
  const std::uint64_t now = TraceNowMicros();
  record.dur_us = now > start_us_ ? now - start_us_ : 0;
  record.tid = LocalThreadId();
  t_context = prev_;
  if (record.parent_span_id == 0) {
    // Root span closing: record it first so the slow-trace tree copy (if
    // any) sees the complete trace, then let the store judge it.
    TraceRecorder::Global().Record(record);
    SlowTraceStore::Global().OnRootSpanEnd(std::move(record));
    return;
  }
  TraceRecorder::Global().Record(std::move(record));
}

}  // namespace glider::obs
