// Metrics registry for the paper's evaluation indicators (§7 "Goals"):
//   (i)  bytes transferred between compute (FaaS) and storage,
//   (ii) number of storage accesses,
//   (iii) storage utilization (bytes resident in the store),
//   (iv) wall-clock time (measured by the benches directly).
//
// Transfers are attributed to a link class so the harness can separate
// compute<->storage traffic (what the paper counts) from storage-internal
// traffic (actions talking to data servers, which the paper's whole point is
// to keep inside the storage system).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace glider {

enum class LinkClass : std::uint8_t {
  kFaas = 0,      // serverless worker <-> storage system (the paper's metric)
  kInternal = 1,  // storage-internal (action <-> data server)
  kRdma = 2,      // storage-internal over the fast network (§7.1 RDMA row)
  kControl = 3,   // metadata lookups
};
inline constexpr std::size_t kNumLinkClasses = 4;

struct LinkCounters {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> operations{0};
};

class Metrics {
 public:
  void RecordSend(LinkClass link, std::uint64_t bytes) {
    auto& c = links_[static_cast<std::size_t>(link)];
    c.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    c.operations.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordReceive(LinkClass link, std::uint64_t bytes) {
    links_[static_cast<std::size_t>(link)].bytes_received.fetch_add(
        bytes, std::memory_order_relaxed);
  }
  void RecordStorageAccess() {
    storage_accesses_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordStoredBytes(std::int64_t delta) {
    const std::int64_t now =
        stored_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    // Track the high-water mark; races only under-report by one update.
    std::int64_t peak = peak_stored_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_stored_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t BytesSent(LinkClass link) const {
    return links_[static_cast<std::size_t>(link)].bytes_sent.load();
  }
  std::uint64_t BytesReceived(LinkClass link) const {
    return links_[static_cast<std::size_t>(link)].bytes_received.load();
  }
  std::uint64_t Operations(LinkClass link) const {
    return links_[static_cast<std::size_t>(link)].operations.load();
  }
  // Total compute<->storage traffic, both directions: the paper's "data
  // transferred between the compute and storage tiers".
  std::uint64_t FaasTransferBytes() const {
    return BytesSent(LinkClass::kFaas) + BytesReceived(LinkClass::kFaas);
  }
  std::uint64_t StorageAccesses() const { return storage_accesses_.load(); }
  std::int64_t StoredBytes() const { return stored_bytes_.load(); }
  std::int64_t PeakStoredBytes() const { return peak_stored_bytes_.load(); }

  void Reset() {
    for (auto& c : links_) {
      c.bytes_sent = 0;
      c.bytes_received = 0;
      c.operations = 0;
    }
    storage_accesses_ = 0;
    stored_bytes_ = 0;
    peak_stored_bytes_ = 0;
  }

 private:
  std::array<LinkCounters, kNumLinkClasses> links_;
  std::atomic<std::uint64_t> storage_accesses_{0};
  std::atomic<std::int64_t> stored_bytes_{0};
  std::atomic<std::int64_t> peak_stored_bytes_{0};
};

}  // namespace glider
