#include "common/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace glider::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::MirrorLinkCounters(const Metrics& metrics) {
  static constexpr const char* kClassNames[kNumLinkClasses] = {
      "faas", "internal", "rdma", "control"};
  for (std::size_t i = 0; i < kNumLinkClasses; ++i) {
    const auto link = static_cast<LinkClass>(i);
    const std::string prefix = std::string("link.") + kClassNames[i];
    GetGauge(prefix + ".bytes_sent")
        .Set(static_cast<std::int64_t>(metrics.BytesSent(link)));
    GetGauge(prefix + ".bytes_received")
        .Set(static_cast<std::int64_t>(metrics.BytesReceived(link)));
    GetGauge(prefix + ".operations")
        .Set(static_cast<std::int64_t>(metrics.Operations(link)));
  }
  GetGauge("store.accesses")
      .Set(static_cast<std::int64_t>(metrics.StorageAccesses()));
  GetGauge("store.stored_bytes").Set(metrics.StoredBytes());
  GetGauge("store.peak_stored_bytes").Set(metrics.PeakStoredBytes());
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::scoped_lock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRId64, g->value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf),
                  "\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"mean\":%.3f,\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                  "}",
                  h->Count(), h->Sum(), h->Mean(), h->Min(), h->Max(),
                  h->Percentile(50), h->Percentile(95), h->Percentile(99));
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace glider::obs
