#include "common/metrics_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace glider::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::MirrorLinkCounters(const Metrics& metrics) {
  static constexpr const char* kClassNames[kNumLinkClasses] = {
      "faas", "internal", "rdma", "control"};
  for (std::size_t i = 0; i < kNumLinkClasses; ++i) {
    const auto link = static_cast<LinkClass>(i);
    const std::string prefix = std::string("link.") + kClassNames[i];
    GetGauge(prefix + ".bytes_sent")
        .Set(static_cast<std::int64_t>(metrics.BytesSent(link)));
    GetGauge(prefix + ".bytes_received")
        .Set(static_cast<std::int64_t>(metrics.BytesReceived(link)));
    GetGauge(prefix + ".operations")
        .Set(static_cast<std::int64_t>(metrics.Operations(link)));
  }
  GetGauge("store.accesses")
      .Set(static_cast<std::int64_t>(metrics.StorageAccesses()));
  GetGauge("store.stored_bytes").Set(metrics.StoredBytes());
  GetGauge("store.peak_stored_bytes").Set(metrics.PeakStoredBytes());
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::scoped_lock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[160];
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRId64, g->value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf),
                  "\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"mean\":%.3f,\"min\":%" PRIu64 ",\"max\":%" PRIu64
                  ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64
                  "}",
                  h->Count(), h->Sum(), h->Mean(), h->Min(), h->Max(),
                  h->Percentile(50), h->Percentile(95), h->Percentile(99));
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::scoped_lock lock(mu_);
  // Bump first: a sampler snapshot taken right after the reset carries the
  // new generation even if its values race with late in-flight updates.
  generation_.fetch_add(1, std::memory_order_relaxed);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.exemplar_trace[i] = exemplar_trace_[i].load(std::memory_order_relaxed);
    snap.exemplar_value[i] = exemplar_value_[i].load(std::memory_order_relaxed);
  }
  snap.count = Count();
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  return snap;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    buckets[i] += other.buckets[i];
    // Keep the first non-empty exemplar so a cluster merge is stable under
    // server ordering; any surviving exemplar names a real trace.
    if (exemplar_trace[i] == 0 && other.exemplar_trace[i] != 0) {
      exemplar_trace[i] = other.exemplar_trace[i];
      exemplar_value[i] = other.exemplar_value[i];
    }
  }
  count += other.count;
  sum += other.sum;
  if (other.count != 0) {
    min = count == other.count ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
  }
}

std::uint64_t HistogramSnapshot::Percentile(double p) const {
  // Empty histograms report 0 for every percentile — never NaN or a stale
  // bucket bound (the other exporters rely on this; see observability
  // regression tests).
  if (count == 0) return 0;
  if (!(p >= 0.0)) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      std::uint64_t bound = LatencyHistogram::BucketUpperBound(i);
      // Clamp to the observed extremes when they are known (delta windows
      // report min = 0 = unknown; see DeltaSince).
      if (min != 0 && bound < min) bound = min;
      if (max != 0 && bound > max) bound = max;
      return bound;
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& prev) const {
  HistogramSnapshot delta;
  for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    delta.buckets[i] =
        buckets[i] >= prev.buckets[i] ? buckets[i] - prev.buckets[i] : 0;
    delta.count += delta.buckets[i];
    if (delta.buckets[i] != 0) {
      // The current exemplar is the most recent hit, so it belongs to the
      // window whenever the bucket grew.
      delta.exemplar_trace[i] = exemplar_trace[i];
      delta.exemplar_value[i] = exemplar_value[i];
    }
  }
  delta.sum = sum >= prev.sum ? sum - prev.sum : 0;
  delta.min = 0;    // unknown for the window
  delta.max = max;  // cumulative max: a conservative upper bound
  return delta;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

const std::uint64_t* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const std::int64_t* MetricsSnapshot::FindGauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.generation = generation_.load(std::memory_order_relaxed);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace glider::obs
