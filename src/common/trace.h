// End-to-end tracing (DESIGN.md "Observability").
//
// A trace is a tree of spans identified by (trace_id, span_id,
// parent_span_id). The context {trace_id, current span} lives in a
// thread-local and is propagated (a) down the call stack by Span RAII
// scopes, (b) across the RPC wire in the frame header (net::Message
// trace_id/span_id), and (c) across thread hops (network worker -> action
// thread) by capturing CurrentTraceContext() and re-installing it with a
// TraceContextScope.
//
// The TraceRecorder keeps completed spans in thread-cached buffers (one
// mutex-protected vector per thread, so recording never contends across
// threads) and exports them as Chrome trace-event JSON ("traceEvents" with
// "X" complete events) loadable in Perfetto / chrome://tracing.
//
// Everything is disabled by default: when !Enabled() (one relaxed atomic
// load), spans are inert and nothing allocates. Set GLIDER_TRACE=1 or call
// SetEnabled(true) to turn the layer on.
// Tail-based slow-trace retention (SlowTraceStore): full tracing keeps
// every span of every request, which is too expensive to leave on in
// production. The store watches only *root* spans as they close; when one
// exceeds an adaptive per-op threshold — max(min_threshold, multiplier x
// the op's live p99, computed from a private per-root-name histogram) —
// the whole span tree is copied out of the TraceRecorder into a bounded
// ring, dumpable via kSlowTraceDump / `glider_cli slow-traces`. The p99 an
// op is judged against excludes the op itself, so the very first samples
// are judged against min_threshold alone.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace glider::obs {

// Master switch for tracing + latency histograms (reads GLIDER_TRACE once
// at startup; programmatic SetEnabled overrides).
bool Enabled();
void SetEnabled(bool enabled);

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no active trace
  std::uint64_t span_id = 0;   // innermost open span (parent for children)
};

TraceContext CurrentTraceContext();

// Unique-enough ids: a per-process random salt in the high bits plus a
// monotone counter, so ids from different daemons don't collide in one
// merged trace.
std::uint64_t NewTraceId();
std::uint64_t NewSpanId();

// Microseconds on the steady clock since process start (the trace
// timebase; Chrome's "ts" field).
std::uint64_t TraceNowMicros();

// Installs `ctx` as the thread's current context; restores the previous
// one on destruction. Used at thread-hop boundaries and on the RPC server
// side (context decoded from the frame header).
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

struct SpanRecord {
  std::string name;
  const char* category = "";
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  // Appends to the calling thread's buffer (drops beyond a per-thread cap
  // so a runaway trace cannot exhaust memory; drops are counted).
  void Record(SpanRecord record);

  // All spans recorded so far, across threads.
  std::vector<SpanRecord> Snapshot() const;
  std::uint64_t DroppedSpans() const;
  void Clear();

  // Chrome trace-event JSON: {"traceEvents":[...]}. Span/trace ids are
  // attached as args so cross-process linkage survives the export.
  std::string ToChromeJson() const;

  struct ThreadBuffer;  // public so the registry of buffers can hold them

 private:
  TraceRecorder() = default;
  ThreadBuffer& LocalBuffer();
};

class SlowTraceStore {
 public:
  struct Options {
    // Spans faster than this are never slow, whatever the p99 says.
    std::uint64_t min_threshold_us = 1000;
    // threshold = max(min_threshold_us, multiplier * live p99 of this op).
    double multiplier = 3.0;
    // Retained slow traces; oldest evicted first.
    std::size_t capacity = 64;
  };

  struct SlowTrace {
    SpanRecord root;
    std::uint64_t threshold_us = 0;  // the threshold the root exceeded
    std::vector<SpanRecord> spans;   // the rest of the tree (root excluded)
  };

  // The store fed by Span::End in this process (kSlowTraceDump's source).
  static SlowTraceStore& Global();

  SlowTraceStore() = default;
  explicit SlowTraceStore(Options options) : options_(options) {}

  void SetOptions(Options options);
  Options options() const;

  // Judges one closed root span: records its duration into the per-name
  // histogram and, if it exceeded the adaptive threshold, copies its span
  // tree from `recorder` (pass nullptr to retain the root alone — tests
  // feed synthetic records with no recorder backing).
  void OnRootSpanEnd(SpanRecord root,
                     const TraceRecorder* recorder = &TraceRecorder::Global());

  // Retains `root` unconditionally, bypassing the adaptive judgement — the
  // entry point for out-of-band flaggers (the active server's slot-stall
  // watchdog). `threshold_us` is reported as the bound that was exceeded.
  void Flag(SpanRecord root, std::uint64_t threshold_us);

  std::vector<SlowTrace> Snapshot() const;
  std::size_t size() const;
  // Drops retained traces AND the per-op duration histograms.
  void Clear();

  // {"slowTraces":[{"name":...,"trace_id":"<hex>","dur_us":...,
  //   "threshold_us":...,"spans":[<chrome X events>]}]}
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  Options options_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> by_name_;
  std::deque<SlowTrace> ring_;
};

// Records a span assembled manually (async paths where no RAII scope can
// live, e.g. the RPC client measuring send->response across threads).
void RecordSpan(const char* category, std::string name, TraceContext parent,
                std::uint64_t span_id, std::uint64_t start_us,
                std::uint64_t end_us);

// Records a manually-assembled ROOT span and feeds it to the slow-trace
// store for tail sampling — what Span::End does for RAII roots, for paths
// that must backdate the start (the open-loop loadgen charges a request's
// span from its *scheduled* arrival, before any code ran).
void RecordRootSpan(const char* category, std::string name,
                    std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t start_us, std::uint64_t end_us);

// RAII span: when tracing is enabled AND a trace is active (trace_id != 0),
// opens a child span of the current context, installs itself as the current
// context, and records itself on End()/destruction. Root() starts a fresh
// trace instead (FaaS invocation entry points).
class Span {
 public:
  Span(const char* category, std::string name);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  static Span Root(const char* category, std::string name);

  void End();
  bool active() const { return active_; }
  std::uint64_t span_id() const { return span_id_; }
  std::uint64_t trace_id() const { return trace_id_; }

 private:
  Span(const char* category, std::string name, bool root);

  bool active_ = false;
  const char* category_ = "";
  std::string name_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::uint64_t start_us_ = 0;
  TraceContext prev_;
};

}  // namespace glider::obs
