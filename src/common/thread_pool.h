// Fixed-size thread pool used for RPC server network workers (both
// transports).
//
// The task queue is sharded per worker: Submit round-robins tasks across
// per-worker queues (own mutex + cv each) and a worker whose queue runs dry
// steals from its peers. A single shared queue serializes every request to
// a server behind one mutex/condvar pair — with many client threads that
// handoff, not the handlers, becomes the throughput ceiling. Sharding keeps
// the common case (producer -> its round-robin home worker) contention-free.
//
// Global FIFO order across Submits is NOT preserved (per-shard order is).
// RPC dispatch is insensitive to this by design: stream operations carry
// sequence numbers and the per-stream channels release them in order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace glider {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    const std::size_t n = num_threads == 0 ? 1 : num_threads;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { RunWorker(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  // Enqueue a task. Returns kClosed after Shutdown().
  Status Submit(std::function<void()> task) {
    const std::size_t n = shards_.size();
    const std::size_t home = rr_.fetch_add(1, std::memory_order_relaxed) % n;
    Shard& shard = *shards_[home];
    {
      std::scoped_lock lock(shard.mu);
      if (shard.closed) return Status::Closed("thread pool shut down");
      shard.tasks.push_back(std::move(task));
    }
    shard.cv.notify_one();
    if (!shard.idle.load(std::memory_order_relaxed)) {
      // Home worker is busy in a task; poke one sleeping peer so the task is
      // stolen instead of waiting out the peer's fallback timeout.
      for (std::size_t k = 1; k < n; ++k) {
        Shard& other = *shards_[(home + k) % n];
        if (other.idle.load(std::memory_order_relaxed)) {
          other.cv.notify_one();
          break;
        }
      }
    }
    return Status::Ok();
  }

  // Drains queued tasks, then joins all workers. Idempotent.
  void Shutdown() {
    for (auto& shard : shards_) {
      std::scoped_lock lock(shard->mu);
      shard->closed = true;
    }
    for (auto& shard : shards_) shard->cv.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::size_t num_threads() const { return threads_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    bool closed = false;
    // True while this shard's worker sleeps on cv; lets Submit find a
    // stealer without taking any peer lock.
    std::atomic<bool> idle{false};
  };

  bool TryPopFrom(std::size_t index, std::function<void()>& out) {
    Shard& shard = *shards_[index];
    std::scoped_lock lock(shard.mu);
    if (shard.tasks.empty()) return false;
    out = std::move(shard.tasks.front());
    shard.tasks.pop_front();
    return true;
  }

  void RunWorker(std::size_t me) {
    const std::size_t n = shards_.size();
    std::function<void()> task;
    while (true) {
      bool got = TryPopFrom(me, task);
      for (std::size_t k = 1; !got && k < n; ++k) {
        got = TryPopFrom((me + k) % n, task);
      }
      if (got) {
        task();
        task = nullptr;
        continue;
      }
      Shard& own = *shards_[me];
      std::unique_lock lock(own.mu);
      if (!own.tasks.empty()) continue;
      // Each shard drains through its own worker before that worker exits,
      // so tasks queued before Shutdown still run to completion.
      if (own.closed) return;
      // Wakeups are normally event-driven (Submit notifies the home worker,
      // or an idle peer when the home worker is busy). The timed fallback
      // only covers the window where Submit reads idle=false just before
      // this worker parks — bounded staleness, no hot polling.
      own.idle.store(true, std::memory_order_relaxed);
      own.cv.wait_for(lock, std::chrono::milliseconds(100));
      own.idle.store(false, std::memory_order_relaxed);
    }
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> rr_{0};
};

}  // namespace glider
