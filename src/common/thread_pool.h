// Fixed-size thread pool. Used for RPC server network workers, action
// threads, and the FaaS invoker.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace glider {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads)
      : queue_(/*capacity=*/4096) {
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { RunWorker(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  // Enqueue a task; blocks if the internal queue is full. Returns kClosed
  // after Shutdown().
  Status Submit(std::function<void()> task) {
    return queue_.Push(std::move(task));
  }

  // Drains queued tasks, then joins all workers. Idempotent.
  void Shutdown() {
    queue_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void RunWorker() {
    while (true) {
      auto task = queue_.Pop();
      if (!task.ok()) return;
      (*task)();
    }
  }

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace glider
