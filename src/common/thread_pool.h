// Fixed-size thread pool used for RPC server network workers (both
// transports).
//
// The task queue is sharded per worker: Submit round-robins tasks across
// per-worker queues (own mutex + cv each) and a worker whose queue runs dry
// steals from its peers. A single shared queue serializes every request to
// a server behind one mutex/condvar pair — with many client threads that
// handoff, not the handlers, becomes the throughput ceiling. Sharding keeps
// the common case (producer -> its round-robin home worker) contention-free.
//
// Handoff discipline (see DESIGN.md "Hot-path batching & wakeup"):
//   * SubmitAll is the doorbell: a whole batch of decoded frames lands in
//     one shard under one lock acquisition with one wakeup, then idle peers
//     are poked to come steal the surplus;
//   * workers spin adaptively on the shards' pending-size hints before
//     parking, so short gaps between requests never pay a futex round trip;
//   * parking is purely event-driven — the park predicate is
//     (tasks | closed | poked) and every producer path that can leave a
//     task invisible to a parked worker sets `poked` under that worker's
//     mutex, which closes the lost-wakeup window the old 100ms timed poll
//     papered over.
//
// Global FIFO order across Submits is NOT preserved (per-shard order is).
// RPC dispatch is insensitive to this by design: stream operations carry
// sequence numbers and the per-stream channels release them in order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/spin_park.h"
#include "common/status.h"

namespace glider {

class ThreadPool {
 public:
  // `spin_budget` caps the adaptive pre-park spin (see spin_park.h); 0
  // forces every idle worker straight to the condvar (tests use this to
  // exercise the park/poke protocol).
  explicit ThreadPool(std::size_t num_threads,
                      std::uint32_t spin_budget = AdaptiveSpin::kDefaultMaxSpins)
      : spin_budget_(spin_budget) {
    const std::size_t n = num_threads == 0 ? 1 : num_threads;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { RunWorker(i); });
    }
    {
      auto& registry = LiveRegistry();
      std::scoped_lock lock(registry.mu);
      registry.pools.push_back(this);
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    // Deregister before any member dies so a concurrent TotalPending()
    // never walks into a half-destroyed pool.
    {
      auto& registry = LiveRegistry();
      std::scoped_lock lock(registry.mu);
      std::erase(registry.pools, this);
    }
    Shutdown();
  }

  // Enqueue a task. Returns kClosed after Shutdown().
  Status Submit(std::function<void()> task) {
    const std::size_t n = shards_.size();
    const std::size_t home = rr_.fetch_add(1, std::memory_order_relaxed) % n;
    Shard& shard = *shards_[home];
    bool wake_home = false;
    {
      std::scoped_lock lock(shard.mu);
      if (shard.closed) return Status::Closed("thread pool shut down");
      shard.tasks.push_back(std::move(task));
      shard.PublishPending();
      // `parked` only flips under shard.mu, so this read is exact: either
      // the worker parked before the enqueue (notify it), or it has not
      // parked yet and its park predicate will see the task.
      wake_home = shard.parked;
    }
    if (wake_home) {
      shard.cv.notify_one();
    } else {
      // Home worker is busy in a task; poke one parked peer so the task is
      // stolen instead of waiting for the home worker to resurface.
      PokeParkedPeers(home, 1);
    }
    return Status::Ok();
  }

  // Doorbell submit: enqueues the whole batch into one shard under a single
  // lock acquisition with at most one home wakeup, then pokes up to
  // batch-1 parked peers to steal the surplus. Returns kClosed (batch
  // dropped) after Shutdown().
  Status SubmitAll(std::vector<std::function<void()>> batch) {
    if (batch.empty()) return Status::Ok();
    const std::size_t n = shards_.size();
    const std::size_t home = rr_.fetch_add(1, std::memory_order_relaxed) % n;
    Shard& shard = *shards_[home];
    bool wake_home = false;
    {
      std::scoped_lock lock(shard.mu);
      if (shard.closed) return Status::Closed("thread pool shut down");
      for (auto& task : batch) shard.tasks.push_back(std::move(task));
      shard.PublishPending();
      wake_home = shard.parked;
    }
    std::size_t helpers = batch.size() - 1;
    if (wake_home) {
      shard.cv.notify_one();
    } else {
      // Home worker is busy; the batch itself still needs a first runner.
      ++helpers;
    }
    if (helpers > 0) PokeParkedPeers(home, helpers);
    return Status::Ok();
  }

  // Drains queued tasks, then joins all workers. Idempotent.
  void Shutdown() {
    for (auto& shard : shards_) {
      std::scoped_lock lock(shard->mu);
      shard->closed = true;
      shard->PublishPending();
    }
    for (auto& shard : shards_) shard->cv.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::size_t num_threads() const { return threads_.size(); }

  // Queued-but-unstarted tasks in this pool right now (sum of the shards'
  // lock-free pending hints — a load signal, not a synchronized count).
  std::size_t Pending() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->pending.load(std::memory_order_acquire);
    }
    return total;
  }

  // Same, summed across every live pool in the process — the queue-depth
  // input to the load index (obs::LoadTracker).
  static std::size_t TotalPending() {
    auto& registry = LiveRegistry();
    std::scoped_lock lock(registry.mu);
    std::size_t total = 0;
    for (const ThreadPool* pool : registry.pools) total += pool->Pending();
    return total;
  }

 private:
  struct LivePools {
    std::mutex mu;
    std::vector<const ThreadPool*> pools;
  };

  // Leaked: pools with static storage duration may destruct (and
  // deregister) after a non-leaked registry would already be gone.
  static LivePools& LiveRegistry() {
    static LivePools* registry = new LivePools();
    return *registry;
  }

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    bool closed = false;
    // Set under mu while this shard's worker waits on cv; producers read it
    // under mu to gate the notify. The park predicate also covers `poked`,
    // set by peers that enqueued elsewhere and want this worker stealing.
    bool parked = false;
    bool poked = false;
    // Lock-free mirrors for the peer-scan and the pre-park spin. Hints
    // only — every real decision re-reads under mu.
    std::atomic<bool> parked_hint{false};
    std::atomic<std::size_t> pending{0};

    void PublishPending() {
      pending.store(tasks.size(), std::memory_order_release);
    }
  };

  // Wake up to `want` parked peers of `home` (cheap atomic pre-check, then
  // poked-flag handshake under the peer's mutex — never a lost wakeup).
  void PokeParkedPeers(std::size_t home, std::size_t want) {
    const std::size_t n = shards_.size();
    for (std::size_t k = 1; k < n && want > 0; ++k) {
      Shard& other = *shards_[(home + k) % n];
      if (!other.parked_hint.load(std::memory_order_relaxed)) continue;
      bool wake = false;
      {
        std::scoped_lock lock(other.mu);
        if (other.parked && !other.poked) {
          other.poked = true;
          wake = true;
        }
      }
      if (wake) {
        other.cv.notify_one();
        --want;
      }
    }
  }

  bool TryPopFrom(std::size_t index, std::function<void()>& out) {
    Shard& shard = *shards_[index];
    // Peer steal probes skip the lock when the shard advertises empty; the
    // home worker always takes the lock (its own hint may lag its cv wake).
    std::scoped_lock lock(shard.mu);
    if (shard.tasks.empty()) return false;
    out = std::move(shard.tasks.front());
    shard.tasks.pop_front();
    shard.PublishPending();
    return true;
  }

  bool AnyPending(std::size_t me) const {
    const std::size_t n = shards_.size();
    for (std::size_t k = 0; k < n; ++k) {
      if (shards_[(me + k) % n]->pending.load(std::memory_order_acquire) > 0) {
        return true;
      }
    }
    return false;
  }

  void RunWorker(std::size_t me) {
    const std::size_t n = shards_.size();
    Shard& own = *shards_[me];
    AdaptiveSpin spin(spin_budget_);
    std::function<void()> task;
    while (true) {
      bool got = TryPopFrom(me, task);
      for (std::size_t k = 1; !got && k < n; ++k) {
        const std::size_t peer = (me + k) % n;
        if (shards_[peer]->pending.load(std::memory_order_acquire) == 0) {
          continue;
        }
        got = TryPopFrom(peer, task);
      }
      if (got) {
        task();
        task = nullptr;
        continue;
      }
      // Nothing anywhere: spin briefly on the pending hints before parking.
      if (spin.SpinUntil([&] { return AnyPending(me); })) continue;
      std::unique_lock lock(own.mu);
      if (!own.tasks.empty()) continue;
      // Each shard drains through its own worker before that worker exits,
      // so tasks queued before Shutdown still run to completion.
      if (own.closed) return;
      own.parked = true;
      own.parked_hint.store(true, std::memory_order_relaxed);
      own.cv.wait(lock, [&] {
        return !own.tasks.empty() || own.closed || own.poked;
      });
      own.poked = false;
      own.parked = false;
      own.parked_hint.store(false, std::memory_order_relaxed);
    }
  }

  const std::uint32_t spin_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> rr_{0};
};

}  // namespace glider
