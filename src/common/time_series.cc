#include "common/time_series.h"

#include "common/trace.h"

namespace glider::obs {

TimeSeriesSampler& TimeSeriesSampler::Global() {
  static TimeSeriesSampler* sampler = new TimeSeriesSampler();
  return *sampler;
}

Status TimeSeriesSampler::Start(Options options) {
  std::scoped_lock lock(thread_mu_);
  if (running_) {
    return Status::FailedPrecondition("sampler already running");
  }
  if (options.interval.count() <= 0) {
    return Status::InvalidArgument("sampler interval must be positive");
  }
  stopping_ = false;
  running_ = true;
  {
    std::scoped_lock slock(mu_);
    interval_ = options.interval;
  }
  thread_ = std::thread([this, options] { RunLoop(options); });
  return Status::Ok();
}

void TimeSeriesSampler::Stop() {
  {
    std::scoped_lock lock(thread_mu_);
    if (!running_) return;
    stopping_ = true;
    stop_cv_.notify_all();
  }
  thread_.join();
  std::scoped_lock lock(thread_mu_);
  running_ = false;
}

bool TimeSeriesSampler::running() const {
  std::scoped_lock lock(thread_mu_);
  return running_;
}

void TimeSeriesSampler::RunLoop(Options options) {
  std::unique_lock lock(thread_mu_);
  while (!stopping_) {
    // Sample outside thread_mu_ so Stop() never waits on a snapshot.
    lock.unlock();
    SampleOnce(TraceNowMicros(), options.ring_capacity);
    lock.lock();
    stop_cv_.wait_for(lock, options.interval, [this] { return stopping_; });
  }
}

TimeSeries& TimeSeriesSampler::Ring(const std::string& name,
                                    std::size_t capacity) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(capacity)).first;
  }
  return it->second;
}

void TimeSeriesSampler::SampleOnce(std::uint64_t t_us,
                                   std::size_t ring_capacity) {
  MetricsSnapshot now = registry_.Snapshot();
  std::scoped_lock lock(mu_);
  if (!has_baseline_ || now.generation != baseline_.generation ||
      t_us <= baseline_t_us_) {
    // First sample, a ResetAll() since the baseline, or a non-advancing
    // clock (synthetic test timestamps): record the baseline, emit nothing.
    if (has_baseline_ && now.generation != baseline_.generation) {
      ++rebaselines_;
    }
    baseline_ = std::move(now);
    baseline_t_us_ = t_us;
    has_baseline_ = true;
    return;
  }
  const double dt_sec =
      static_cast<double>(t_us - baseline_t_us_) / 1e6;
  for (const auto& [name, value] : now.counters) {
    const std::uint64_t* prev = baseline_.FindCounter(name);
    const std::uint64_t base = prev ? *prev : 0;
    const std::uint64_t delta = value >= base ? value - base : 0;
    Ring(name + ".rate", ring_capacity)
        .Push({t_us, static_cast<double>(delta) / dt_sec});
  }
  for (const auto& [name, value] : now.gauges) {
    Ring(name, ring_capacity).Push({t_us, static_cast<double>(value)});
  }
  for (const auto& [name, hist] : now.histograms) {
    const HistogramSnapshot* prev = baseline_.FindHistogram(name);
    const HistogramSnapshot window =
        prev ? hist.DeltaSince(*prev) : hist;
    Ring(name + ".rate", ring_capacity)
        .Push({t_us, static_cast<double>(window.count) / dt_sec});
    Ring(name + ".p50", ring_capacity)
        .Push({t_us, static_cast<double>(window.Percentile(50))});
    Ring(name + ".p99", ring_capacity)
        .Push({t_us, static_cast<double>(window.Percentile(99))});
  }
  baseline_ = std::move(now);
  baseline_t_us_ = t_us;
}

std::vector<SeriesData> TimeSeriesSampler::Snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<SeriesData> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    out.push_back({name, ring.Samples()});
  }
  return out;
}

std::chrono::milliseconds TimeSeriesSampler::interval() const {
  std::scoped_lock lock(mu_);
  return interval_;
}

std::uint64_t TimeSeriesSampler::rebaselines() const {
  std::scoped_lock lock(mu_);
  return rebaselines_;
}

void TimeSeriesSampler::Clear() {
  std::scoped_lock lock(mu_);
  series_.clear();
  has_baseline_ = false;
  baseline_ = MetricsSnapshot{};
  baseline_t_us_ = 0;
  rebaselines_ = 0;
}

}  // namespace glider::obs
