// Status and Result<T>: the error-handling vocabulary of the whole code base.
//
// Remote operations in a distributed store fail for recoverable reasons
// (missing node, closed stream, full queue). Those travel as Status values;
// exceptions are reserved for programming errors (see CppCoreGuidelines E.*).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace glider {

enum class StatusCode : std::uint16_t {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnavailable = 7,
  kInternal = 8,
  kClosed = 9,        // stream or connection closed
  kUnimplemented = 10,
  kTimeout = 11,
  kWrongNodeType = 12,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Closed(std::string m) { return {StatusCode::kClosed, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status Timeout(std::string m) { return {StatusCode::kTimeout, std::move(m)}; }
  static Status WrongNodeType(std::string m) { return {StatusCode::kWrongNodeType, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    // An OK status carries no value; that is a caller bug.
    if (std::get<Status>(v_).ok()) {
      std::get<Status>(v_) = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace glider

#define GLIDER_CONCAT_INNER(a, b) a##b
#define GLIDER_CONCAT(a, b) GLIDER_CONCAT_INNER(a, b)

// Propagate a non-OK Status from an expression, in the style of
// absl's RETURN_IF_ERROR. The temporary gets a per-line name so uses
// nested inside lambda arguments don't shadow the outer use.
#define GLIDER_RETURN_IF_ERROR_IMPL(tmp, expr) \
  do {                                         \
    ::glider::Status tmp = (expr);             \
    if (!tmp.ok()) return tmp;                 \
  } while (false)

#define GLIDER_RETURN_IF_ERROR(expr) \
  GLIDER_RETURN_IF_ERROR_IMPL(GLIDER_CONCAT(gl_status_, __LINE__), expr)

#define GLIDER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

// GLIDER_ASSIGN_OR_RETURN(auto x, SomeResultExpr());
#define GLIDER_ASSIGN_OR_RETURN(lhs, expr) \
  GLIDER_ASSIGN_OR_RETURN_IMPL(GLIDER_CONCAT(gl_result_, __LINE__), lhs, expr)
