// Continuous profiling plane (DESIGN.md "Continuous profiling").
//
// A sampling CPU profiler that is safe to leave on in production: a
// process-wide SIGPROF timer (ITIMER_PROF, default 99 Hz) fires on whichever
// thread is burning CPU; the signal handler walks frame pointers from the
// interrupted context (async-signal-safe: no locks, no allocation, every
// dereference bounds-checked against the thread's stack) and appends the
// stack plus the thread's *attribution tag* into a lock-free per-thread
// ring. Symbolization (dladdr + demangle, raw-address fallback) happens at
// dump time, never in the handler.
//
// Attribution tags answer "which action/RPC is this CPU?": a thread-local
// tag set by ProfileTagScope at dispatch boundaries — the RPC service layer
// tags network workers per opcode ("rpc.StreamWrite"), the active server
// tags method threads per slot ("slot3:wordcount.onWrite"), the FaaS
// invoker tags workers per invocation. The same thread-local is read by the
// signal handler, so every sample lands under the work that was on the
// thread when the timer fired.
//
// Off-CPU attribution: code that measurably *waits* (action queue
// admission, stream-channel blocking) reports the wait duration via
// AddWaitSample; dumps convert the accumulated microseconds into synthetic
// samples at the sampling rate under a "tag;[wait];<kind>" frame, so
// flamegraphs show blocked time next to on-CPU time.
//
// Export is Brendan-Gregg collapsed-stack text ("tag;frame;frame N"), one
// line per unique stack — pipe through flamegraph.pl for an SVG. Reachable
// via kProfileDump on every server, `glider_cli profile`, daemon
// --profile/--profile-hz, and MiniCluster's profile_hz option.
//
// Signal-safety rules (everything the handler touches):
//   * the per-thread ring is single-producer (the interrupted thread
//     itself) / single-consumer (the collector) with acquire/release
//     indices — no locks;
//   * rings are registered from normal context before the first sample and
//     are never freed (exited threads park their ring on a free list for
//     the next thread), so the handler never observes a dangling pointer;
//   * the tag is a fixed char array published with a length field and
//     signal fences — a scope mid-update is observed as "no tag", never as
//     a torn string.
//
// Sanitizer builds (ASan/TSan) auto-disable SIGPROF sampling — the
// sanitizers' runtimes intercept signals and their stacks confuse the
// unwinder — logged once at kWarn; wait-sample (off-CPU) accounting stays
// active so the export surface keeps working.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace glider::obs {

// One captured stack, fixed-size so the signal handler never allocates.
struct ProfileSample {
  static constexpr std::size_t kMaxDepth = 32;
  static constexpr std::size_t kMaxTag = 48;  // including the NUL

  std::uint32_t depth = 0;
  char tag[kMaxTag] = {0};
  void* pcs[kMaxDepth] = {nullptr};  // pcs[0] = leaf (interrupted pc)
};

// The calling thread's current attribution tag ("" when none). Test hook;
// the signal handler reads the underlying thread-local directly.
const char* CurrentProfileTag();

// Installs `tag` as the calling thread's attribution tag and restores the
// previous tag on destruction. Registers the thread's sample ring on first
// use (normal context, so the handler never has to). Cheap when the
// profiler is inactive: one relaxed atomic load, nothing else.
class ProfileTagScope {
 public:
  explicit ProfileTagScope(const char* tag);
  ~ProfileTagScope();
  ProfileTagScope(const ProfileTagScope&) = delete;
  ProfileTagScope& operator=(const ProfileTagScope&) = delete;

 private:
  bool active_ = false;
  std::uint32_t prev_len_ = 0;
  char prev_[ProfileSample::kMaxTag] = {0};
};

class SamplingProfiler {
 public:
  struct Options {
    int hz = 99;  // sampling rate; 99 avoids lockstep with 10ms schedulers
    std::size_t ring_capacity = 2048;  // samples buffered per thread
  };

  static SamplingProfiler& Global();

  // False when SIGPROF sampling cannot run in this build (sanitizers, or a
  // platform without a frame-pointer unwinder). Start() still succeeds —
  // wait samples keep flowing — but no CPU samples are taken.
  static bool SignalSamplingSupported();

  // Arms the timer and starts a fresh window (drains every ring, clears
  // accumulated stacks). Returns kAlreadyExists if already running.
  Status Start(Options options);
  // Disarms the timer. Samples already captured stay collectable.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  // Fast gate for instrumentation sites (wait-sample timing).
  static bool ActiveFast() {
    return active_flag_.load(std::memory_order_relaxed);
  }
  int hz() const;

  // Off-CPU attribution: account `wait_us` microseconds of blocked time
  // under the calling thread's tag and `kind` ("channel.pop", ...). No-op
  // unless the profiler is running. Normal context only (takes a mutex).
  void AddWaitSample(const char* kind, std::uint64_t wait_us);

  // Drains every thread ring, symbolizes, and renders collapsed stacks:
  // "tag;outer;inner N\n" sorted by descending weight. Wait accumulators
  // are folded in as "tag;[wait];kind N" at the sampling rate. `clear`
  // resets the accumulated stacks and wait totals after rendering.
  std::string CollectFolded(bool clear = false);

  // Since the last Start(): samples captured / dropped on full rings /
  // taken on threads that never registered a ring.
  std::uint64_t SampleCount() const;
  std::uint64_t DroppedSamples() const;
  std::uint64_t UnregisteredSamples() const;

 private:
  SamplingProfiler() = default;

  static std::atomic<bool> active_flag_;

  std::atomic<bool> running_{false};
  mutable std::mutex mu_;  // guards options_, accumulated_, waits_
  Options options_;
  bool warned_sanitizer_ = false;
  // folded stack -> sample count, merged on every collect.
  std::map<std::string, std::uint64_t> accumulated_;
  // "tag;[wait];kind" -> accumulated microseconds.
  std::map<std::string, std::uint64_t> waits_;
};

}  // namespace glider::obs
