#include "common/event_journal.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

#include "common/trace.h"

namespace glider::obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kServerUp: return "server_up";
    case EventType::kServerDown: return "server_down";
    case EventType::kPeerAlive: return "peer_alive";
    case EventType::kPeerSuspect: return "peer_suspect";
    case EventType::kPeerDead: return "peer_dead";
    case EventType::kSlotStall: return "slot_stall";
    case EventType::kHotspot: return "hotspot";
    case EventType::kFlushStorm: return "flush_storm";
    case EventType::kPoolExhausted: return "pool_exhausted";
  }
  return "unknown";
}

// Fixed-capacity ring: `events` grows to kRingCapacity once, then `next`
// wraps and overwrites the oldest slot. Merge order is restored from the
// timestamps at Snapshot() time, so the ring never shifts elements.
struct EventJournal::ThreadRing {
  mutable std::mutex mu;
  std::vector<Event> events;
  std::size_t next = 0;
  std::uint64_t overwritten = 0;
};

namespace {

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<EventJournal::ThreadRing>> rings;
};

// Leaked intentionally (same as TraceRecorder's registry): thread-exit
// destructors of thread_local shared_ptrs may run after static teardown.
RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

EventJournal::ThreadRing& EventJournal::LocalRing() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    auto& registry = Registry();
    std::scoped_lock lock(registry.mu);
    registry.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void EventJournal::Record(EventType type, std::string scope,
                          std::string detail, std::int64_t value) {
  Event event;
  event.t_us = TraceNowMicros();
  event.trace_id = CurrentTraceContext().trace_id;
  event.type = type;
  event.value = value;
  event.scope = std::move(scope);
  event.detail = std::move(detail);

  ThreadRing& ring = LocalRing();
  std::scoped_lock lock(ring.mu);
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(std::move(event));
  } else {
    ring.events[ring.next] = std::move(event);
    ++ring.overwritten;
  }
  ring.next = (ring.next + 1) % kRingCapacity;
}

std::vector<Event> EventJournal::Snapshot() const {
  std::vector<Event> all;
  auto& registry = Registry();
  std::scoped_lock lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::scoped_lock ring_lock(ring->mu);
    all.insert(all.end(), ring->events.begin(), ring->events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Event& a, const Event& b) { return a.t_us < b.t_us; });
  return all;
}

std::uint64_t EventJournal::Overwritten() const {
  std::uint64_t total = 0;
  auto& registry = Registry();
  std::scoped_lock lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::scoped_lock ring_lock(ring->mu);
    total += ring->overwritten;
  }
  return total;
}

void EventJournal::Clear() {
  auto& registry = Registry();
  std::scoped_lock lock(registry.mu);
  for (const auto& ring : registry.rings) {
    std::scoped_lock ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->overwritten = 0;
  }
}

std::string EventJournal::ToJson() const {
  const std::vector<Event> events = Snapshot();
  std::string out = "{\"events\":[";
  char buf[128];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"t_us\":%" PRIu64 ",\"type\":", e.t_us);
    out += buf;
    AppendJsonString(out, EventTypeName(e.type));
    out += ",\"scope\":";
    AppendJsonString(out, e.scope);
    if (!e.detail.empty()) {
      out += ",\"detail\":";
      AppendJsonString(out, e.detail);
    }
    std::snprintf(buf, sizeof(buf), ",\"value\":%lld",
                  static_cast<long long>(e.value));
    out += buf;
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"trace_id\":\"%" PRIx64 "\"",
                    e.trace_id);
      out += buf;
    }
    out += '}';
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "],\"overwritten\":%" PRIu64 "}",
                Overwritten());
  out += tail;
  return out;
}

void JournalEvent(EventType type, std::string scope, std::string detail,
                  std::int64_t value) {
  EventJournal::Global().Record(type, std::move(scope), std::move(detail),
                                value);
}

}  // namespace glider::obs
