// Generalized metrics registry: named counters, gauges, and concurrent
// log-bucketed latency histograms (p50/p95/p99), exported as JSON by the
// stats verb and the bench harness (BENCH_<name>.json).
//
// The fixed link-class `Metrics` registry (common/metrics.h) remains the
// paper-indicator hot path; `MirrorLinkCounters` republishes its counters
// into this registry at snapshot time so one export surface covers both.
//
// Hot-path cost: a Counter/Gauge/Histogram handle is resolved by name once
// (mutex-protected map insert) and then updated with relaxed atomics only.
// Handles stay valid for the registry's lifetime (node-based storage).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace glider {

class Metrics;

namespace obs {

// The calling thread's current trace id (0 when no trace is active).
// Declared here so LatencyHistogram::Record can capture bucket exemplars;
// defined in trace.cc to avoid a circular include with trace.h.
std::uint64_t ExemplarTraceId();

class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Concurrent histogram over non-negative integer values (microseconds by
// convention) with logarithmic buckets: bucket 0 holds value 0, bucket i>=1
// holds [2^(i-1), 2^i - 1]. Updates are relaxed atomics; percentile queries
// are nearest-rank over a snapshot of the bucket counts and report the
// bucket's upper bound (a conservative estimate within 2x of the true
// value, which is plenty for p50/p95/p99 trend tracking).
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  static std::size_t BucketIndex(std::uint64_t value) {
    if (value == 0) return 0;
    // bit_width(v) = floor(log2(v)) + 1; bucket i covers [2^(i-1), 2^i - 1].
    const std::size_t idx = static_cast<std::size_t>(std::bit_width(value));
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }
  // Inclusive upper bound of a bucket (the value reported by percentiles).
  static std::uint64_t BucketUpperBound(std::size_t index) {
    if (index == 0) return 0;
    if (index >= kNumBuckets - 1) return ~0ull;
    return (1ull << index) - 1;
  }

  void Record(std::uint64_t value) {
    const std::size_t idx = BucketIndex(value);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateMin(value);
    UpdateMax(value);
    // Exemplar: remember the most recent traced (trace_id, value) pair per
    // bucket so a p99 bucket links to a concrete trace. Last-writer-wins
    // relaxed stores: a torn (trace, value) pair across two concurrent
    // records still names a real trace that landed in this bucket.
    const std::uint64_t trace_id = ExemplarTraceId();
    if (trace_id != 0) {
      exemplar_trace_[idx].store(trace_id, std::memory_order_relaxed);
      exemplar_value_[idx].store(value, std::memory_order_relaxed);
    }
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
      const std::uint64_t t =
          other.exemplar_trace_[i].load(std::memory_order_relaxed);
      if (t != 0) {
        exemplar_trace_[i].store(t, std::memory_order_relaxed);
        exemplar_value_[i].store(
            other.exemplar_value_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    if (other.Count() != 0) {
      UpdateMin(other.Min());
      UpdateMax(other.Max());
    }
  }

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const std::uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }
  std::uint64_t Min() const {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == ~0ull ? 0 : v;
  }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  // Nearest-rank percentile (p in [0, 100]) over the current bucket counts.
  // An empty histogram reports 0 for every percentile (never NaN or a
  // stale bound); out-of-range p clamps into [0, 100].
  std::uint64_t Percentile(double p) const {
    const std::uint64_t total = Count();
    if (total == 0) return 0;
    if (!(p >= 0.0)) p = 0.0;
    if (p > 100.0) p = 100.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total) + 0.5);
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen >= rank) {
        // Clamp to the observed extremes so single-bucket distributions
        // report exact values.
        const std::uint64_t bound = BucketUpperBound(i);
        return std::min(std::max(bound, Min()), Max());
      }
    }
    return Max();
  }

  std::uint64_t BucketCount(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  std::uint64_t ExemplarTrace(std::size_t index) const {
    return exemplar_trace_[index].load(std::memory_order_relaxed);
  }
  std::uint64_t ExemplarValue(std::size_t index) const {
    return exemplar_value_[index].load(std::memory_order_relaxed);
  }

  // Consistent-enough copy of the bucket counts and aggregates (individual
  // loads are relaxed; concurrent Records may straddle the copy, which is
  // fine for trend sampling).
  struct HistogramSnapshot Snapshot() const;

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    for (auto& e : exemplar_trace_) e.store(0, std::memory_order_relaxed);
    for (auto& e : exemplar_value_) e.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMin(std::uint64_t value) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(std::uint64_t value) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> exemplar_trace_{};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> exemplar_value_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time copy of one histogram: the log2 bucket counts plus the
// aggregates. Value type — snapshots travel across the wire (kSeriesDump),
// merge across servers (ClusterMonitor) and subtract across time
// (TimeSeriesSampler windows).
struct HistogramSnapshot {
  std::array<std::uint64_t, LatencyHistogram::kNumBuckets> buckets{};
  // Per-bucket exemplar: the most recent traced (trace_id, value) that
  // landed in the bucket; trace_id 0 means no exemplar.
  std::array<std::uint64_t, LatencyHistogram::kNumBuckets> exemplar_trace{};
  std::array<std::uint64_t, LatencyHistogram::kNumBuckets> exemplar_value{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  // Bucket-wise sum (cluster-wide merge; same semantics as
  // LatencyHistogram::Merge).
  void Merge(const HistogramSnapshot& other);

  // Nearest-rank percentile over the snapshot buckets, clamped to
  // [min, max] when those are known (min <= max and count > 0).
  std::uint64_t Percentile(double p) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Windowed view: what was recorded after `prev` was taken. Negative
  // deltas (a reset between the two snapshots) clamp to zero. min is
  // unknown for the window (reported as 0); max keeps the cumulative max
  // as a conservative bound.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& prev) const;
};

// Full registry copy: every counter, gauge and histogram by name, plus the
// registry generation at capture time (see MetricsRegistry::generation()).
// Taken under the registry mutex, so it is never torn by ResetAll().
struct MetricsSnapshot {
  std::uint64_t generation = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  const std::uint64_t* FindCounter(const std::string& name) const;
  const std::int64_t* FindGauge(const std::string& name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Handles are created on first use and stay valid for the registry's
  // lifetime; resolve once and cache at instrumentation sites.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  LatencyHistogram& GetHistogram(const std::string& name);

  // Republishes the fixed link-class Metrics counters as gauges
  // ("link.faas.bytes_sent", ... — see DESIGN.md "Observability") so one
  // JSON export covers the paper indicators too.
  void MirrorLinkCounters(const Metrics& metrics);

  // JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  // {count,sum,mean,min,max,p50,p95,p99}}}.
  std::string ToJson() const;

  // Copies every instrument under the registry mutex. Because ResetAll()
  // zeroes under the same mutex, a snapshot observes either all-pre-reset
  // or all-post-reset values, never a mix; a generation mismatch between
  // two snapshots tells delta consumers (the sampler) that a reset
  // happened in between and the earlier baseline is void.
  MetricsSnapshot Snapshot() const;

  // Bumped by every ResetAll(). Relaxed read; pair with Snapshot() (which
  // captures it consistently) rather than reading it standalone.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  // Zeroes every registered instrument (bench runs measure deltas) and
  // advances the generation. Snapshot/reset ordering: both take `mu_`, so
  // a concurrent TimeSeriesSampler never sees a half-reset registry — it
  // sees the generation change and re-baselines instead of emitting
  // negative rates.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> generation_{0};
  // node-based maps: references returned by Get* are never invalidated.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace glider
