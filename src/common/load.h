// Per-node load index + per-slot hotspot detection (DESIGN.md "Cluster
// health plane") — the signals the future rebalancer (ROADMAP item 1)
// consumes to decide where work should live.
//
// The load index is a weighted blend of windowed rates computed from the
// global MetricsRegistry:
//
//   load = w_queue * (pool pending + active.queue_depth)
//        + w_cpu   * (sum of slot cpu_us deltas / window)   [~cores busy]
//        + w_p99   * (windowed p99 over rpc.server.* histograms, in ms)
//        + w_pool  * (buffer-pool miss fraction in the window)
//
// A slot is a hotspot when its share of the node's windowed slot CPU
// exceeds hotspot_multiple times the fair share (1/num_slots), provided
// the node did meaningful work in the window at all (idle nodes have no
// hotspots, whatever the ratios say).
//
// Update() re-derives everything from a registry snapshot at most once per
// min_window (callers can invoke it from every kHeartbeat/kSeriesDump
// handler without re-paying the snapshot) and publishes the results back
// into the registry — gauges "load_index" (milli-scaled: 1000 = 1.0,
// gauges are integers), "hotspot_slots", and per-slot "active.slot<i>.hot"
// flags — so /metrics, kSeriesDump and glider_top all see them.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "common/metrics_registry.h"

namespace glider::obs {

class LoadTracker {
 public:
  struct Options {
    double w_queue = 1.0;      // per queued task
    double w_cpu = 4.0;        // per busy core
    double w_p99_ms = 0.25;    // per millisecond of server-side RPC p99
    double w_pool_miss = 2.0;  // per unit miss fraction
    // Hotspot: slot share > hotspot_multiple / num_slots of windowed CPU.
    double hotspot_multiple = 4.0;
    // No hotspots unless the node's slots burned at least this fraction of
    // one core over the window (filters idle-noise ratios).
    double hotspot_min_utilization = 0.05;
    // Updates inside this window return the cached snapshot.
    std::uint64_t min_window_us = 200 * 1000;
    // Record kHotspot transitions in the global EventJournal.
    bool journal_hotspots = true;
  };

  struct LoadSnapshot {
    double load_index = 0.0;
    double queue_depth = 0.0;      // pool pending + active queue gauge
    double cpu_utilization = 0.0;  // busy cores over the window
    double p99_ms = 0.0;           // merged rpc.server.* windowed p99
    double pool_miss_fraction = 0.0;
    std::vector<std::uint32_t> hotspots;  // slot indices currently hot
    std::uint64_t window_us = 0;          // 0 = first call, rates unknown
  };

  // The process tracker published to /metrics and kHeartbeat replies.
  static LoadTracker& Global();

  LoadTracker() = default;
  explicit LoadTracker(Options options) : options_(options) {}

  void SetOptions(Options options);

  // Recomputes from the global registry when min_window has elapsed (else
  // returns the cached value) and republishes the gauges.
  LoadSnapshot Update();

  // Cached value; never touches the registry.
  LoadSnapshot Current() const;

 private:
  LoadSnapshot ComputeLocked(std::uint64_t now_us);

  mutable std::mutex mu_;
  Options options_;
  LoadSnapshot current_;
  MetricsSnapshot prev_;
  bool has_prev_ = false;
  std::uint64_t prev_t_us_ = 0;
  std::uint64_t prev_pool_hits_ = 0;
  std::uint64_t prev_pool_misses_ = 0;
  std::set<std::uint32_t> hot_;  // slots journaled hot (for transitions)
};

}  // namespace glider::obs
