// Structured event journal (DESIGN.md "Cluster health plane").
//
// A bounded, lock-light log of typed *system* events — server up/down,
// peer suspect/alive/dead transitions, slot stalls, coalescer deadline-flush
// storms, buffer-pool exhaustion — the discrete state changes that metrics
// rates smear out and traces only capture when a request happens to be in
// flight. Records go to per-thread rings (one mutex per thread, same idiom
// as TraceRecorder's thread buffers, so recording never contends across
// threads); Snapshot() merges the rings sorted by timestamp. Each ring is
// bounded: the newest events win and an overwrite counter reports how many
// were dropped.
//
// Unlike tracing, the journal is always on — events are rare (state
// transitions, not per-request), so there is nothing to gate. When a trace
// is active on the recording thread the event is stamped with its trace_id,
// which lets `glider_cli events` line up a pool-exhaustion event with the
// slow trace that suffered it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace glider::obs {

enum class EventType : std::uint8_t {
  kServerUp = 0,      // scope = address, detail = role
  kServerDown = 1,    // scope = address, detail = role
  kPeerAlive = 2,     // scope = peer address, value = phi (milli)
  kPeerSuspect = 3,   // scope = peer address, value = phi (milli)
  kPeerDead = 4,      // scope = peer address, value = phi (milli)
  kSlotStall = 5,     // scope = "slot<i>", detail = action, value = run_us
  kHotspot = 6,       // scope = "slot<i>", value = load share (milli)
  kFlushStorm = 7,    // scope = transport, value = consecutive flushes
  kPoolExhausted = 8, // scope = pool, value = consecutive misses
};

const char* EventTypeName(EventType type);

struct Event {
  std::uint64_t t_us = 0;      // TraceNowMicros timebase
  std::uint64_t trace_id = 0;  // 0 = no trace active when recorded
  EventType type = EventType::kServerUp;
  std::int64_t value = 0;      // type-specific (see EventType comments)
  std::string scope;           // what the event is about (address, slot, pool)
  std::string detail;          // freeform context, may be empty
};

class EventJournal {
 public:
  // Events retained per thread ring; beyond it the oldest are overwritten.
  static constexpr std::size_t kRingCapacity = 256;

  // The process journal dumped by kEventDump / `glider_cli events`.
  static EventJournal& Global();

  EventJournal() = default;
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Appends to the calling thread's ring. Stamps t_us and the active
  // trace_id (if any); never blocks on other threads.
  void Record(EventType type, std::string scope, std::string detail = {},
              std::int64_t value = 0);

  // All retained events across threads, merged and sorted by t_us.
  std::vector<Event> Snapshot() const;

  // Events lost to ring overwrites since the last Clear().
  std::uint64_t Overwritten() const;

  void Clear();

  // {"events":[{"t_us":...,"type":"peer_dead","scope":...,"detail":...,
  //   "value":...,"trace_id":"<hex>"}],"overwritten":N}
  std::string ToJson() const;

  struct ThreadRing;  // public so the ring registry can hold them

 private:
  ThreadRing& LocalRing();
};

// Shorthand for EventJournal::Global().Record(...): instrumentation sites
// (watchdog, coalescer, pool) stay one line.
void JournalEvent(EventType type, std::string scope, std::string detail = {},
                  std::int64_t value = 0);

}  // namespace glider::obs
