// Cross-node trace assembly (DESIGN.md §11 "Cross-node trace assembly &
// attribution").
//
// Every server answers kTraceDump with its own spans on its own clock
// (TraceNowMicros = steady microseconds since *that process* started), so
// per-node dumps are islands: ids link up across processes (the frame
// header carries trace_id/span_id) but timestamps do not. This library
// turns a set of per-node dumps into cluster-wide traces:
//
//   1. Clock alignment. ClockOffsetEstimator turns N request/response
//      samples of the kHeartbeat `server_time_us` field into a per-node
//      offset via RTT-midpoint estimation with a min-RTT filter: for the
//      sample with the smallest round trip, offset = remote_time -
//      (send + recv) / 2, and the residual error is bounded by rtt / 2.
//      Nodes that were never probed (offline dumps, a client that exited)
//      are aligned *causally*: a cross-node parent-child RPC pair
//      (rpc.<Op> on one node, handle.<Op> on the other) must overlap, so
//      the median midpoint delta over all such pairs estimates the offset.
//   2. Merge + tree rebuild. Spans are grouped by trace_id across nodes,
//      parent links resolved by span id, and orphan forests (the root
//      lived in a process we never dumped) are grafted under a synthetic
//      root spanning the forest.
//   3. Critical path + attribution. The blocking critical path is the
//      partition of the root's [start, end] where each instant is charged
//      to the deepest span covering it (children clamp into their parent's
//      window, so residual skew cannot produce a non-monotone path). Each
//      segment maps to an attribution bucket by span name:
//        client (root / cli.* / load.* / faas.*), net (rpc.*),
//        server (handle.* / meta.* / storage.*), queue (action.*.queue),
//        run (action.*.run), channel (channel.*).
//      The segments partition the root exactly, so bucket sums always
//      equal the end-to-end latency.
//
// tools/glider_trace drives this against a live cluster; RunLoadSweep uses
// it in-process to put per-component percentiles into BENCH_load_curve.json.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/trace.h"

namespace glider::obs {

// One kHeartbeat round trip: local clock at send and receive, remote clock
// as reported in the reply.
struct ClockSample {
  std::uint64_t send_us = 0;    // local clock when the probe left
  std::uint64_t recv_us = 0;    // local clock when the reply arrived
  std::uint64_t remote_us = 0;  // peer's clock when it replied
};

// RTT-midpoint offset estimation with a min-RTT filter: the sample with the
// smallest round trip pins the estimate, because its midpoint assumption
// (the reply was stamped halfway through the round trip) has the least room
// to be wrong. `offset_us` is (remote clock - local clock); subtract it
// from a remote timestamp to land on the local timebase.
class ClockOffsetEstimator {
 public:
  void AddSample(const ClockSample& sample);

  bool has_estimate() const { return samples_ > 0; }
  std::int64_t offset_us() const { return offset_us_; }
  // Round trip of the best (estimate-pinning) sample.
  std::uint64_t min_rtt_us() const { return min_rtt_us_; }
  // The midpoint assumption is off by at most half the round trip.
  std::uint64_t error_bound_us() const { return (min_rtt_us_ + 1) / 2; }
  int samples() const { return samples_; }

 private:
  std::int64_t offset_us_ = 0;
  std::uint64_t min_rtt_us_ = 0;
  int samples_ = 0;
};

// Parses the Chrome trace-event JSON that TraceRecorder::ToChromeJson()
// emits ({"traceEvents":[{"ph":"X",...}]}), recovering the span/trace ids
// from the args. Non-"X" events (metadata rows in merged files) are
// skipped. Categories are interned: SpanRecord stores `const char*`.
Result<std::vector<SpanRecord>> ParseChromeTraceJson(std::string_view json);

// One span of an assembled trace: timestamps rebased onto the aligned
// timebase and normalized (the earliest span of the assembly is t=0).
struct AssembledSpan {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  SpanRecord span;           // start_us/dur_us are aligned + normalized
  std::string node;          // which dump it came from ("" = synthetic)
  std::size_t parent = kNoParent;
  std::vector<std::size_t> children;  // sorted by start
  std::size_t depth = 0;     // root = 0
  bool synthetic = false;
  // Aligned interval clamped into the parent's window (what the critical
  // path sweeps over); equals the span's own interval when clocks agree.
  std::uint64_t clamp_start_us = 0;
  std::uint64_t clamp_end_us = 0;
};

// One segment of the blocking critical path: [start_us, end_us) charged to
// `span` (an index into AssembledTrace::spans) under `bucket`.
struct CriticalSegment {
  std::size_t span = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  const char* bucket = "";
};

struct AssembledTrace {
  std::uint64_t trace_id = 0;
  std::size_t root = 0;               // index into `spans`
  std::vector<AssembledSpan> spans;
  std::vector<CriticalSegment> critical_path;  // partitions the root window
  std::map<std::string, std::uint64_t> bucket_us;  // sums to total_us
  std::uint64_t start_us = 0;  // root start (normalized timebase)
  std::uint64_t total_us = 0;  // root duration = end-to-end latency
  std::size_t nodes = 0;       // distinct source nodes
  std::size_t orphans = 0;     // spans re-parented for a missing parent
};

class TraceAssembler {
 public:
  // Adds one node's span dump. With `offset_us` (remote minus reference
  // clock, from ClockOffsetEstimator) timestamps are rebased explicitly;
  // without it the node is aligned causally against the nodes that do have
  // offsets — the first node added with no offset anchors the reference
  // timebase when nothing has an explicit offset.
  void AddSpans(const std::string& node, std::vector<SpanRecord> spans,
                std::optional<std::int64_t> offset_us = std::nullopt);

  // Merges, aligns, rebuilds trees, and computes critical paths. Traces
  // are sorted by start time. Call once; AddSpans afterwards is invalid.
  std::vector<AssembledTrace> Assemble();

  // Nodes whose offset could not be estimated (no explicit sample and no
  // cross-node span pair); their spans were taken at offset 0. Valid after
  // Assemble().
  const std::vector<std::string>& unaligned_nodes() const {
    return unaligned_nodes_;
  }
  // The causal/explicit offset used per node. Valid after Assemble().
  const std::map<std::string, std::int64_t>& node_offsets() const {
    return node_offsets_;
  }

  // Attribution bucket for a span name ("client", "net", "server",
  // "queue", "run", "channel").
  static const char* BucketFor(std::string_view span_name);

 private:
  struct NodeDump {
    std::string node;
    std::vector<SpanRecord> spans;
    std::optional<std::int64_t> offset_us;
  };

  std::vector<NodeDump> dumps_;
  std::vector<std::string> unaligned_nodes_;
  std::map<std::string, std::int64_t> node_offsets_;
};

// Merged Perfetto/Chrome JSON for a set of assembled traces: one pid per
// source node with a process_name metadata row, so the Perfetto UI shows
// node-labelled tracks on one aligned timeline.
std::string ToPerfettoJson(const std::vector<AssembledTrace>& traces);

// Nearest-rank percentile over per-trace values (helper for breakdown
// reporting; sorts a copy).
double PercentileUs(std::vector<std::uint64_t> values, double pct);

}  // namespace glider::obs
