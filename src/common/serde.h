// Binary serialization helpers used by the wire protocol.
//
// Little-endian, length-prefixed strings/blobs, bounds-checked reads. These
// are deliberately simple: every RPC payload in the system is encoded and
// decoded with BinaryWriter / BinaryReader so the framing is uniform and
// testable in one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/status.h"

namespace glider {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  // Pre-reserves `size_hint` bytes so multi-Put encodes of a known total
  // (header + payload) never reallocate mid-encode.
  explicit BinaryWriter(std::size_t size_hint) { out_.reserve(size_hint); }
  // Pooled variant: draws the backing storage from `pool` and Finish()
  // returns a Buffer that recycles it back on release.
  BinaryWriter(BufferPool& pool, std::size_t size_hint)
      : out_(pool.AcquireVec(size_hint)), pool_(&pool) {}

  void PutU8(std::uint8_t v) { out_.push_back(v); }
  void PutU16(std::uint16_t v) { PutLittleEndian(v); }
  void PutU32(std::uint32_t v) { PutLittleEndian(v); }
  void PutU64(std::uint64_t v) { PutLittleEndian(v); }
  void PutI64(std::int64_t v) { PutLittleEndian(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  // Length-prefixed string / blob.
  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void PutBytes(ByteSpan b) {
    PutU32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
    data_plane::RecordCopy(b.size());
  }
  // Raw append without a length prefix (caller handles framing).
  void PutRaw(ByteSpan b) {
    out_.insert(out_.end(), b.begin(), b.end());
    data_plane::RecordCopy(b.size());
  }

  Buffer Finish() && {
    return pool_ ? pool_->Wrap(std::move(out_)) : Buffer(std::move(out_));
  }
  std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> out_;
  BufferPool* pool_ = nullptr;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) : data_(data) {}

  Result<std::uint8_t> U8() { return Fixed<std::uint8_t>(); }
  Result<std::uint16_t> U16() { return Fixed<std::uint16_t>(); }
  Result<std::uint32_t> U32() { return Fixed<std::uint32_t>(); }
  Result<std::uint64_t> U64() { return Fixed<std::uint64_t>(); }
  Result<std::int64_t> I64() {
    GLIDER_ASSIGN_OR_RETURN(auto v, U64());
    return static_cast<std::int64_t>(v);
  }
  Result<bool> Bool() {
    GLIDER_ASSIGN_OR_RETURN(auto v, U8());
    return v != 0;
  }
  Result<double> Double() {
    GLIDER_ASSIGN_OR_RETURN(auto bits, U64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> String() {
    GLIDER_ASSIGN_OR_RETURN(auto len, U32());
    if (len > Remaining()) {
      return Status::OutOfRange("string length exceeds payload");
    }
    std::string s(AsText(data_.subspan(pos_, len)));
    pos_ += len;
    return s;
  }

  Result<ByteSpan> Bytes() {
    GLIDER_ASSIGN_OR_RETURN(auto len, U32());
    if (len > Remaining()) {
      return Status::OutOfRange("blob length exceeds payload");
    }
    ByteSpan b = data_.subspan(pos_, len);
    pos_ += len;
    return b;
  }

  // Rest of the payload, unprefixed.
  ByteSpan Rest() {
    ByteSpan b = data_.subspan(pos_);
    pos_ = data_.size();
    return b;
  }

  std::size_t Remaining() const { return data_.size() - pos_; }
  std::size_t Position() const { return pos_; }
  bool AtEnd() const { return Remaining() == 0; }

 private:
  template <typename T>
  Result<T> Fixed() {
    if (Remaining() < sizeof(T)) {
      return Status::OutOfRange("payload truncated");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

// Length-prefixed blob read as a zero-copy slice of `owner`. The reader
// must have been constructed over owner.span(); the returned Buffer shares
// owner's storage instead of copying the bytes out of the frame.
inline Result<Buffer> GetBytesSlice(BinaryReader& r, const Buffer& owner) {
  GLIDER_ASSIGN_OR_RETURN(auto bytes, r.Bytes());
  return owner.Slice(r.Position() - bytes.size(), bytes.size());
}

}  // namespace glider
