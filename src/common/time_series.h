// Per-process time-series sampling (DESIGN.md "Cluster observability").
//
// The MetricsRegistry holds cumulative counters and histograms; this layer
// turns them into *series*: a background thread snapshots the registry at a
// fixed cadence, subtracts the previous snapshot, and pushes the windowed
// results into fixed-size ring buffers —
//
//   <counter>.rate       delta / dt                    (per second)
//   <gauge>              the sampled value
//   <hist>.rate          count delta / dt              (events per second)
//   <hist>.p50 / .p99    nearest-rank percentile of the *window's* records
//
// so a scraper (kSeriesDump, glider_top) sees rates and rolling percentiles
// instead of since-boot aggregates. Rings are bounded (default: 120 samples
// = 2 minutes at the 1 s default cadence); old samples fall off the back.
//
// Reset interaction: MetricsRegistry::ResetAll() bumps the registry
// generation under the registry mutex, and Snapshot() captures values and
// generation atomically with respect to it. When the sampler sees the
// generation change between two snapshots it discards the stale baseline
// (no rate points that tick, `rebaselines()` incremented) instead of
// emitting negative or bogus rates. Benches that Reset() mid-run therefore
// coexist with a live sampler; see the regression test in
// tests/cluster_obs_test.cc.
//
// Nothing here touches a request hot path: the only writers are the sampler
// thread itself and whoever calls SampleOnce().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"

namespace glider::obs {

// Fixed-capacity ring of timestamped samples. Not thread-safe on its own;
// the sampler serializes access.
class TimeSeries {
 public:
  struct Sample {
    std::uint64_t t_us = 0;  // TraceNowMicros timebase
    double value = 0;
  };

  explicit TimeSeries(std::size_t capacity) : capacity_(capacity) {}

  void Push(Sample sample) {
    if (capacity_ == 0) return;
    if (samples_.size() < capacity_) {
      samples_.push_back(sample);
    } else {
      samples_[head_] = sample;
      head_ = (head_ + 1) % capacity_;
    }
  }

  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Oldest -> newest.
  std::vector<Sample> Samples() const {
    std::vector<Sample> out;
    out.reserve(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      out.push_back(samples_[(head_ + i) % samples_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::vector<Sample> samples_;
};

// One named series, as exported by kSeriesDump.
struct SeriesData {
  std::string name;
  std::vector<TimeSeries::Sample> samples;
};

class TimeSeriesSampler {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};
    std::size_t ring_capacity = 120;
  };

  // The process-wide sampler (the one kSeriesDump exports). Servers share
  // one registry per process, so they share one sampler too.
  static TimeSeriesSampler& Global();

  explicit TimeSeriesSampler(MetricsRegistry& registry = MetricsRegistry::Global())
      : registry_(registry) {}
  ~TimeSeriesSampler() { Stop(); }
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Starts the background thread. Error if already running.
  Status Start(Options options);
  // Stops and joins the thread. Idempotent. Retained series stay dumpable.
  void Stop();
  bool running() const;

  // Takes one sample at `t_us` on the caller's thread (the background loop
  // calls this with the current trace clock; tests call it with synthetic
  // timestamps to make rates deterministic). The first call after
  // construction or a registry reset only records the baseline.
  void SampleOnce(std::uint64_t t_us, std::size_t ring_capacity = 120);

  // All rings, oldest sample first. Names are stable across calls.
  std::vector<SeriesData> Snapshot() const;

  std::chrono::milliseconds interval() const;
  // Number of times a registry generation change voided the baseline.
  std::uint64_t rebaselines() const;
  // Drops every ring and the baseline (tests).
  void Clear();

 private:
  void RunLoop(Options options);
  TimeSeries& Ring(const std::string& name, std::size_t capacity);

  MetricsRegistry& registry_;

  mutable std::mutex mu_;
  std::map<std::string, TimeSeries> series_;
  MetricsSnapshot baseline_;
  std::uint64_t baseline_t_us_ = 0;
  bool has_baseline_ = false;
  std::uint64_t rebaselines_ = 0;
  std::chrono::milliseconds interval_{0};

  mutable std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace glider::obs
