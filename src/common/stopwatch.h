// Wall-clock stopwatch and simple streaming statistics for the bench harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace glider {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Collects samples; reports min/max/mean/percentiles. Not thread-safe.
class SampleStats {
 public:
  void Add(double v) { samples_.push_back(v); }

  std::size_t count() const { return samples_.size(); }
  double Min() const { return *std::min_element(samples_.begin(), samples_.end()); }
  double Max() const { return *std::max_element(samples_.begin(), samples_.end()); }
  double Mean() const {
    double sum = 0;
    for (double v : samples_) sum += v;
    return samples_.empty() ? 0 : sum / static_cast<double>(samples_.size());
  }
  double Percentile(double p) {
    if (samples_.empty()) return 0;
    std::sort(samples_.begin(), samples_.end());
    const auto idx = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(samples_.size() - 1));
    return samples_[idx];
  }

 private:
  std::vector<double> samples_;
};

}  // namespace glider
