// Wall-clock stopwatch and simple streaming statistics for the bench harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace glider {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Collects samples; reports min/max/mean/stddev/percentiles. Not thread-safe.
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  // Insertion-ordered raw samples (merging stats across threads).
  const std::vector<double>& samples() const { return samples_; }
  double Min() const { return *std::min_element(samples_.begin(), samples_.end()); }
  double Max() const { return *std::max_element(samples_.begin(), samples_.end()); }
  double Mean() const {
    double sum = 0;
    for (double v : samples_) sum += v;
    return samples_.empty() ? 0 : sum / static_cast<double>(samples_.size());
  }
  // Population standard deviation.
  double Stddev() const {
    if (samples_.size() < 2) return 0;
    const double mean = Mean();
    double sq = 0;
    for (double v : samples_) sq += (v - mean) * (v - mean);
    return std::sqrt(sq / static_cast<double>(samples_.size()));
  }
  // Nearest-rank percentile over a lazily-maintained sorted view; the
  // insertion-ordered samples are never reordered.
  double Percentile(double p) const {
    if (samples_.empty()) return 0;
    if (!sorted_) {
      sorted_view_ = samples_;
      std::sort(sorted_view_.begin(), sorted_view_.end());
      sorted_ = true;
    }
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(sorted_view_.size()));
    const std::size_t idx =
        rank < 1 ? 0
                 : std::min(sorted_view_.size() - 1,
                            static_cast<std::size_t>(rank) - 1);
    return sorted_view_[idx];
  }

 private:
  std::vector<double> samples_;
  // Cache for Percentile(): rebuilt on demand after each Add().
  mutable std::vector<double> sorted_view_;
  mutable bool sorted_ = false;
};

}  // namespace glider
