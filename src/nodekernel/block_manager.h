// Block manager: the metadata server's registry of storage servers and their
// blocks (paper §4.1 "System architecture"). Servers register under a
// storage class contributing a fleet of blocks; allocation walks servers of
// the requested class round-robin (the uniform distribution policy the paper
// adopts from Crail/Pocket, §4.2 "Distributing actions").
//
// Not thread-safe; the metadata server serializes access.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "nodekernel/types.h"

namespace glider::nk {

class BlockManager {
 public:
  struct ServerEntry {
    ServerId id = 0;
    StorageClassId storage_class = kDefaultClass;
    std::string address;
    std::uint64_t block_size = kDefaultBlockSize;
    std::uint32_t total_blocks = 0;
    std::deque<std::uint32_t> free_blocks;
  };

  // Registers a server contributing `num_blocks` blocks to `storage_class`.
  ServerId RegisterServer(StorageClassId storage_class, std::string address,
                          std::uint32_t num_blocks, std::uint64_t block_size);

  // Allocates one block from `storage_class`, round-robin across its
  // servers; when the class is exhausted, walks its fallback chain (the
  // paper's "preferred DRAM tier that falls back to an NVMe tier when
  // full", §4.1). kResourceExhausted when the whole chain is out of
  // blocks; kNotFound when no server registered any class in the chain.
  Result<BlockLoc> Allocate(StorageClassId storage_class);

  // Declares that allocations from `storage_class` may spill to
  // `fallback` when exhausted. Chains are followed transitively; cycles
  // are rejected at allocation time by bounding the walk.
  void SetFallback(StorageClassId storage_class, StorageClassId fallback);

  // Returns a block to its server's free list.
  Status Free(const BlockLoc& loc);

  Result<const ServerEntry*> GetServer(ServerId id) const;

  // Every registered server, in id order (kListServers discovery).
  std::vector<const ServerEntry*> ListServers() const {
    std::vector<const ServerEntry*> out;
    out.reserve(servers_.size());
    for (const auto& [id, entry] : servers_) out.push_back(&entry);
    return out;
  }

  std::uint64_t BlockSizeOf(StorageClassId storage_class) const;

  std::uint32_t FreeBlockCount(StorageClassId storage_class) const;
  std::uint32_t TotalBlockCount(StorageClassId storage_class) const;
  std::size_t ServerCount() const { return servers_.size(); }

 private:
  std::map<ServerId, ServerEntry> servers_;
  // Per class: server ids in registration order + round-robin cursor.
  struct ClassEntry {
    std::vector<ServerId> servers;
    std::size_t cursor = 0;
  };
  std::map<StorageClassId, ClassEntry> classes_;
  std::map<StorageClassId, StorageClassId> fallbacks_;
  ServerId next_server_id_ = 1;
};

}  // namespace glider::nk
