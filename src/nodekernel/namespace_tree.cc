#include "nodekernel/namespace_tree.h"

namespace glider::nk {

std::string_view NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kFile: return "File";
    case NodeType::kDirectory: return "Directory";
    case NodeType::kKeyValue: return "KeyValue";
    case NodeType::kTable: return "Table";
    case NodeType::kBag: return "Bag";
    case NodeType::kAction: return "Action";
  }
  return "?";
}

NamespaceTree::NamespaceTree(NodeId first_id)
    : root_(std::make_unique<TreeNode>()), next_id_(first_id) {
  root_->record.type = NodeType::kDirectory;
}

Result<std::vector<std::string>> NamespaceTree::SplitPath(
    std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " +
                                   std::string(path));
  }
  std::vector<std::string> parts;
  std::size_t start = 1;
  while (start <= path.size()) {
    const std::size_t end = path.find('/', start);
    const std::string_view part =
        path.substr(start, end == std::string_view::npos ? end : end - start);
    if (!part.empty()) {
      parts.emplace_back(part);
    } else if (end != std::string_view::npos) {
      return Status::InvalidArgument("empty path component in " +
                                     std::string(path));
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return parts;
}

NamespaceTree::TreeNode* NamespaceTree::Walk(
    const std::vector<std::string>& parts) {
  TreeNode* node = root_.get();
  for (const auto& part : parts) {
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

const NamespaceTree::TreeNode* NamespaceTree::Walk(
    const std::vector<std::string>& parts) const {
  const TreeNode* node = root_.get();
  for (const auto& part : parts) {
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

Status NamespaceTree::CheckChildAllowed(const TreeNode& parent,
                                        NodeType child_type,
                                        bool parent_is_root) {
  const NodeType pt = parent.record.type;
  if (!parent_is_root && !IsContainer(pt)) {
    return Status::WrongNodeType(std::string(NodeTypeName(pt)) +
                                 " cannot hold children");
  }
  if (pt == NodeType::kTable && child_type != NodeType::kKeyValue) {
    return Status::WrongNodeType("Table may only hold KeyValue nodes");
  }
  if (pt == NodeType::kBag && child_type != NodeType::kFile) {
    return Status::WrongNodeType("Bag may only hold File nodes");
  }
  return Status::Ok();
}

Result<NodeRecord*> NamespaceTree::Create(std::string_view path,
                                          NodeType type) {
  GLIDER_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("cannot create the root");
  }
  const std::string leaf = parts.back();
  parts.pop_back();
  TreeNode* parent = Walk(parts);
  if (parent == nullptr) {
    return Status::NotFound("parent missing for " + std::string(path));
  }
  GLIDER_RETURN_IF_ERROR(CheckChildAllowed(*parent, type, parts.empty()));
  if (parent->children.contains(leaf)) {
    return Status::AlreadyExists(std::string(path));
  }
  auto node = std::make_unique<TreeNode>();
  node->record.id = next_id_++;
  node->record.type = type;
  NodeRecord* record = &node->record;
  parent->children[leaf] = std::move(node);
  ++node_count_;
  return record;
}

Result<NodeRecord*> NamespaceTree::Lookup(std::string_view path) {
  GLIDER_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  TreeNode* node = Walk(parts);
  if (node == nullptr || parts.empty()) {
    // The root is not addressable as a node (only listable).
    if (parts.empty()) return Status::InvalidArgument("cannot look up root");
    return Status::NotFound(std::string(path));
  }
  return &node->record;
}

Result<NodeRecord> NamespaceTree::Remove(std::string_view path) {
  GLIDER_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  if (parts.empty()) return Status::InvalidArgument("cannot remove root");
  const std::string leaf = parts.back();
  parts.pop_back();
  TreeNode* parent = Walk(parts);
  if (parent == nullptr) return Status::NotFound(std::string(path));
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Status::NotFound(std::string(path));
  }
  if (!it->second->children.empty()) {
    return Status::FailedPrecondition("container not empty: " +
                                      std::string(path));
  }
  NodeRecord record = std::move(it->second->record);
  parent->children.erase(it);
  --node_count_;
  return record;
}

Result<std::vector<std::pair<std::string, NodeType>>> NamespaceTree::List(
    std::string_view path) const {
  GLIDER_ASSIGN_OR_RETURN(auto parts, SplitPath(path));
  const TreeNode* node = Walk(parts);
  if (node == nullptr) return Status::NotFound(std::string(path));
  if (!parts.empty() && !IsContainer(node->record.type)) {
    return Status::WrongNodeType("not a container: " + std::string(path));
  }
  std::vector<std::pair<std::string, NodeType>> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    out.emplace_back(name, child->record.type);
  }
  return out;
}

}  // namespace glider::nk
